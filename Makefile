# Developer conveniences for the fauré reproduction.
#
# Every target that runs code uses PYTHONPATH=src — the tier-1 invocation
# documented in ROADMAP.md/README.md — so the repo works without an
# editable install.

PYTHON ?= python3
RUN = PYTHONPATH=src $(PYTHON)

.PHONY: install test test-oracle test-robustness bench bench-memo bench-tables examples lint-self clean

install:
	pip install -e . --no-build-isolation

# tier-1: the whole suite, matching ROADMAP.md exactly
test:
	$(RUN) -m pytest -x -q

# differential world-enumeration oracle only
test-oracle:
	$(RUN) -m pytest tests/oracle/ -q

# governor / degradation / fault-injection suite only
test-robustness:
	$(RUN) -m pytest tests/robustness/ -q

bench:
	$(RUN) -m pytest benchmarks/ --benchmark-only

# canonical interning + shared memoization decision-call comparison
bench-memo:
	$(RUN) benchmarks/bench_memo.py

# the paper's tables/figures in their printed layout
bench-tables:
	$(RUN) benchmarks/bench_table4.py
	$(RUN) benchmarks/bench_lossless.py
	$(RUN) benchmarks/bench_verification.py
	$(RUN) benchmarks/bench_ablation.py
	$(RUN) benchmarks/bench_scale.py
	$(RUN) benchmarks/bench_memo.py --smoke
	$(RUN) benchmarks/bench_incremental.py

examples:
	@for f in examples/*.py; do \
		echo "=== $$f ==="; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; \
		echo; \
	done

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
