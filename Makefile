# Developer conveniences for the fauré reproduction.

PYTHON ?= python3

.PHONY: install test test-robustness bench bench-tables examples lint-self clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# governor / degradation / fault-injection suite only
test-robustness:
	PYTHONPATH=src $(PYTHON) -m pytest tests/robustness/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# the paper's tables/figures in their printed layout
bench-tables:
	$(PYTHON) benchmarks/bench_table4.py
	$(PYTHON) benchmarks/bench_lossless.py
	$(PYTHON) benchmarks/bench_verification.py
	$(PYTHON) benchmarks/bench_ablation.py
	$(PYTHON) benchmarks/bench_scale.py
	$(PYTHON) benchmarks/bench_incremental.py

examples:
	@for f in examples/*.py; do \
		echo "=== $$f ==="; \
		$(PYTHON) $$f || exit 1; \
		echo; \
	done

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
