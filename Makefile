# Developer conveniences for the fauré reproduction.
#
# Every target that runs code uses PYTHONPATH=src — the tier-1 invocation
# documented in ROADMAP.md/README.md — so the repo works without an
# editable install.

PYTHON ?= python3
RUN = PYTHONPATH=src $(PYTHON)

.PHONY: install test test-oracle test-robustness test-chaos test-serve test-replication bench bench-memo bench-incremental bench-serve bench-tables bench-smoke bench-parallel test-dataflow examples lint-programs lint-sarif typecheck lint-self clean

install:
	pip install -e . --no-build-isolation

# tier-1: the whole suite, matching ROADMAP.md exactly
test:
	$(RUN) -m pytest -x -q

# differential world-enumeration oracle only
test-oracle:
	$(RUN) -m pytest tests/oracle/ -q

# governor / degradation / fault-injection suite only
test-robustness:
	$(RUN) -m pytest tests/robustness/ -q

# supervised-execution chaos suite: SIGKILLed workers, hung tasks,
# kill-mid-checkpoint resume — every run must stay byte-identical to a
# clean serial one (see docs/ROBUSTNESS.md)
test-chaos:
	$(RUN) -m pytest tests/chaos/ -q

bench:
	$(RUN) -m pytest benchmarks/ --benchmark-only

# serve daemon: WAL recovery, epoch isolation, admission control,
# compaction, withdrawal, replicas, protocol negotiation
test-serve:
	$(RUN) -m pytest tests/serve/ -q

# replication + compaction chaos: SIGKILL the primary mid-ingest with a
# replica attached, kill a compaction between snapshot fsync and
# segment retirement, SIGKILL a replica mid-tail — recovery and
# convergence must stay byte-identical to a never-killed run
test-replication:
	$(RUN) -m pytest tests/chaos/test_replication_chaos.py -q

# canonical interning + shared memoization decision-call comparison
bench-memo:
	$(RUN) benchmarks/bench_memo.py

# incremental maintenance vs recompute-from-scratch; the JSON artifact
# (per-update latency + speedup) is emitted by report.py as
# BENCH_incremental.json
bench-incremental:
	$(RUN) benchmarks/bench_incremental.py

# serve daemon under multi-client load (query p50/p99, acked-ingest
# throughput, shed rate, threshold compaction); exits non-zero unless a
# cold restart answers byte-identically and the WAL stays bounded.  The
# JSON artifact is emitted by report.py as BENCH_serve.json
bench-serve:
	$(RUN) benchmarks/bench_serve.py

# the paper's tables/figures in their printed layout, plus the
# machine-readable BENCH_table4.json / BENCH_parallel.json artifacts
# (serial vs --jobs comparison; see docs/PERFORMANCE.md)
bench-tables:
	$(RUN) benchmarks/bench_table4.py
	$(RUN) benchmarks/bench_lossless.py
	$(RUN) benchmarks/bench_verification.py
	$(RUN) benchmarks/bench_ablation.py
	$(RUN) benchmarks/bench_scale.py
	$(RUN) benchmarks/bench_memo.py --smoke
	$(RUN) benchmarks/bench_incremental.py
	$(RUN) benchmarks/bench_serve.py
	$(RUN) benchmarks/report.py --jobs 4

# CI-sized parallel gate: smallest prefix size, --jobs 2; exits
# non-zero unless both JSON artifacts parse and the serial/parallel
# generated-tuple counts agree exactly.
bench-smoke:
	$(RUN) benchmarks/bench_table4.py --jobs 2 --sizes 20
	$(RUN) benchmarks/report.py --smoke --sizes 20

# Full parallel gate, re-baselining BENCH_parallel.json: serial vs
# jobs=2 vs jobs=4 sweep.  Exits non-zero unless tuple counts agree,
# jobs=2 q6-q8 wall stays within 1.25x of serial, summed worker
# solver CPU at jobs=4 stays within 1.5x of serial on q6/q8, and (on a
# multi-core host) the best q6-q8 speedup reaches 1.5x.
bench-parallel:
	$(RUN) benchmarks/report.py --jobs 4

# static-optimizer gate: ≥300 seeded random programs must render
# byte-identical bytes with the optimizer on vs. off (incl. under fault
# injection), every F016/F017 finding is validated against the
# world-enumeration oracle (see docs/ANALYSIS.md §dataflow).
test-dataflow:
	$(RUN) -m pytest tests/analysis/test_dataflow_oracle.py -q

# SARIF 2.1.0 lint log over the bundled programs (CI annotation surface);
# jq-less validation: the log must parse as JSON and carry a runs[] array.
lint-sarif:
	$(RUN) -m repro lint examples/programs/*.fl \
		tests/fixtures/programs/clean/*.fl \
		tests/fixtures/programs/warn/*.fl \
		--format sarif > lint.sarif
	$(PYTHON) -c "import json; log = json.load(open('lint.sarif')); \
		assert log['version'] == '2.1.0' and log['runs'], 'bad SARIF log'; \
		print('lint.sarif:', len(log['runs'][0]['results']), 'result(s)')"

# static analysis gate over every bundled fauré-log program: the clean
# and warn fixture sets plus the example programs must carry no
# error-severity findings; each bad fixture must produce at least one.
lint-programs:
	$(RUN) -m repro lint examples/programs/*.fl \
		tests/fixtures/programs/clean/*.fl \
		tests/fixtures/programs/warn/*.fl
	@for f in tests/fixtures/programs/bad/*.fl; do \
		if $(RUN) -m repro lint $$f >/dev/null 2>&1; then \
			echo "FAIL: expected error-severity findings in $$f"; exit 1; \
		else \
			echo "ok (errors reported): $$f"; \
		fi; \
	done

# mypy over the analysis subsystem and the modules this PR touched;
# config lives in pyproject.toml ([tool.mypy]).
typecheck:
	$(RUN) -m mypy src/repro/analysis src/repro/faurelog/analyze.py \
		src/repro/faurelog/ast.py src/repro/faurelog/parser.py \
		src/repro/ctable/parse.py src/repro/engine/explain.py src/repro/cli.py

examples:
	@for f in examples/*.py; do \
		echo "=== $$f ==="; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; \
		echo; \
	done

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
