"""Database / domain serialization roundtrips."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import (
    And,
    Comparison,
    LinearAtom,
    Not,
    Or,
    TRUE,
    conjoin,
    disjoin,
    eq,
    ne,
)
from repro.ctable.io import (
    condition_from_obj,
    condition_to_obj,
    database_from_obj,
    database_to_obj,
    domains_from_obj,
    domains_to_obj,
    dump_database,
    load_database,
    term_from_obj,
    term_to_obj,
)
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, IntRange, Unbounded

X, Y = CVariable("x"), CVariable("y")


class TestTermRoundtrip:
    @pytest.mark.parametrize(
        "term",
        [
            Constant("Mkt"),
            Constant(7000),
            Constant(2.5),
            Constant(("A", "B", "C")),
            CVariable("x"),
        ],
    )
    def test_roundtrip(self, term):
        assert term_from_obj(term_to_obj(term)) == term

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            term_from_obj({"nope": 1})
        with pytest.raises(ValueError):
            term_from_obj("bare")


class TestConditionRoundtrip:
    @pytest.mark.parametrize(
        "cond",
        [
            TRUE,
            eq(X, 1),
            ne(X, "Mkt"),
            conjoin([eq(X, 1), ne(Y, 0)]),
            disjoin([eq(X, 1), eq(X, 2)]),
            Not(conjoin([eq(X, 1), eq(Y, 1)])),
            LinearAtom({X: 1, Y: 2}, "<=", 3),
        ],
    )
    def test_roundtrip(self, cond):
        assert condition_from_obj(condition_to_obj(cond)) == cond

    def test_json_serializable(self):
        obj = condition_to_obj(conjoin([eq(X, ("A", "B")), ne(Y, 1)]))
        assert condition_from_obj(json.loads(json.dumps(obj))) is not None


class TestDatabaseRoundtrip:
    @pytest.fixture
    def db(self):
        database = Database()
        t = database.create_table("F", ["n1", "n2"])
        t.add([1, 2], eq(X, 1))
        t.add([X, ("A", "B")])
        database.create_table("Empty", ["a"])
        return database

    def test_obj_roundtrip(self, db):
        clone = database_from_obj(database_to_obj(db))
        assert clone.names() == db.names()
        assert clone.table("F").tuples() == db.table("F").tuples()
        assert len(clone.table("Empty")) == 0

    def test_text_roundtrip(self, db):
        domains = DomainMap({X: BOOL_DOMAIN})
        text = dump_database(db, domains)
        loaded_db, loaded_domains = load_database(text)
        assert loaded_db.table("F").tuples() == db.table("F").tuples()
        assert loaded_domains.domain_of(X) == BOOL_DOMAIN


class TestDomainsRoundtrip:
    def test_all_kinds(self):
        domains = DomainMap(
            {
                X: FiniteDomain([1, "a", ("P", "Q")]),
                Y: IntRange(0, 5),
                CVariable("z"): Unbounded("string"),
            }
        )
        clone = domains_from_obj(domains_to_obj(domains))
        assert clone.domain_of(X) == domains.domain_of(X)
        assert clone.domain_of(Y) == domains.domain_of(Y)
        assert clone.domain_of(CVariable("z")) == Unbounded("string")
