"""Possible-worlds semantics: instantiation and enumeration."""

import pytest

from repro.ctable.condition import eq, ne
from repro.ctable.table import CTable, CTuple, Database
from repro.ctable.terms import Constant, CVariable
from repro.ctable.worlds import (
    certain_rows,
    instantiate_database,
    instantiate_table,
    instantiate_tuple,
    iter_assignments,
    iter_worlds,
    possible_rows,
    world_count,
)
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded

X, Y = CVariable("x"), CVariable("y")


@pytest.fixture
def bool_domains():
    return DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN})


class TestInstantiation:
    def test_tuple_values_substituted(self):
        t = CTuple([X, "k"])
        row = instantiate_tuple(t, {X: Constant(1)})
        assert row == (Constant(1), Constant("k"))

    def test_tuple_absent_when_condition_false(self):
        t = CTuple([1], eq(X, 1))
        assert instantiate_tuple(t, {X: Constant(0)}) is None

    def test_table_instantiation_dedups(self):
        t = CTable("T", ["a"])
        t.add([X], eq(X, 1))
        t.add([1], eq(X, 1))
        rows = instantiate_table(t, {X: Constant(1)})
        assert rows == frozenset({(Constant(1),)})

    def test_database_instantiation(self):
        db = Database()
        db.create_table("A", ["a"]).add([X])
        db.create_table("B", ["b"]).add([0])
        worlds = instantiate_database(db, {X: Constant(1)})
        assert worlds["A"] == frozenset({(Constant(1),)})
        assert worlds["B"] == frozenset({(Constant(0),)})


class TestEnumeration:
    def test_assignment_count(self, bool_domains):
        assignments = list(iter_assignments([X, Y], bool_domains))
        assert len(assignments) == 4
        assert all(set(a) == {X, Y} for a in assignments)

    def test_unbounded_rejected(self):
        domains = DomainMap(default=Unbounded())
        with pytest.raises(ValueError):
            list(iter_assignments([X], domains))

    def test_world_count(self, bool_domains):
        db = Database()
        db.create_table("T", ["a"]).add([X], eq(Y, 1))
        assert world_count(db, bool_domains) == 4

    def test_iter_worlds_covers_all(self, bool_domains):
        db = Database()
        db.create_table("T", ["a"]).add([X], eq(X, 1))
        worlds = list(iter_worlds(db, bool_domains))
        assert len(worlds) == 2  # only x occurs
        present = [bool(w["T"]) for _, w in worlds]
        assert sorted(present) == [False, True]


class TestCertainAndPossible:
    def test_certain_rows(self, bool_domains):
        t = CTable("T", ["a"])
        t.add([7])           # always present
        t.add([X])           # value varies: 0 or 1
        t.add([9], eq(X, 1))  # conditional
        certain = certain_rows(t, bool_domains)
        assert (Constant(7),) in certain
        assert (Constant(9),) not in certain

    def test_possible_rows(self, bool_domains):
        t = CTable("T", ["a"])
        t.add([X])
        possible = possible_rows(t, bool_domains)
        assert possible == frozenset({(Constant(0),), (Constant(1),)})

    def test_certain_empty_when_table_varies_fully(self, bool_domains):
        t = CTable("T", ["a"])
        t.add([0], eq(X, 0))
        t.add([1], eq(X, 1))
        assert certain_rows(t, bool_domains) == frozenset()
        assert len(possible_rows(t, bool_domains)) == 2
