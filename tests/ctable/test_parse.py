"""The shared term/condition syntax."""

import pytest

from repro.ctable.condition import And, Comparison, LinearAtom, Or
from repro.ctable.parse import (
    ParseError,
    TokenStream,
    parse_condition,
    parse_term,
    tokenize,
)
from repro.ctable.terms import Constant, CVariable, Variable


def term_of(text, **kwargs):
    return parse_term(TokenStream(tokenize(text), text), **kwargs)


class TestTokenizer:
    def test_cvar_token(self):
        assert tokenize("$x")[0] == ("cvar", "$x", 0)

    def test_address_token(self):
        kinds = [t[0] for t in tokenize("1.2.3.4")]
        assert kinds[0] == "addr"

    def test_prefix_token(self):
        assert tokenize("10.0.0.0/8")[0][0] == "addr"

    def test_plain_decimal_reclassified_as_number(self):
        assert tokenize("1.5")[0][0] == "number"

    def test_number_then_period(self):
        kinds = [(t[0], t[1]) for t in tokenize("1.")[:2]]
        assert kinds == [("number", "1"), ("op", ".")]

    def test_comments_dropped(self):
        toks = tokenize("a % comment here\nb")
        assert [t[1] for t in toks[:-1]] == ["a", "b"]

    def test_keywords_case_insensitive(self):
        assert tokenize("and")[0] == ("kw", "AND", 0)
        assert tokenize("Not")[0][1] == "NOT"

    def test_rule_operator(self):
        assert (":-" in [t[1] for t in tokenize("a :- b")])

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestTermParsing:
    def test_cvariable(self):
        assert term_of("$port") == CVariable("port")

    def test_quoted_string(self):
        assert term_of("'R&D'") == Constant("R&D")
        assert term_of('"hello world"') == Constant("hello world")

    def test_capitalized_is_constant(self):
        assert term_of("Mkt") == Constant("Mkt")

    def test_lowercase_is_variable(self):
        assert term_of("n1") == Variable("n1")

    def test_numbers(self):
        assert term_of("7000") == Constant(7000)
        assert term_of("3.5") == Constant(3.5)

    def test_address_is_string_constant(self):
        assert term_of("1.2.3.4") == Constant("1.2.3.4")

    def test_path_literal(self):
        assert term_of("[A B C]") == Constant(("A", "B", "C"))

    def test_path_with_numbers(self):
        assert term_of("[1 2 3]") == Constant((1, 2, 3))

    def test_custom_resolver(self):
        out = term_of("anything", resolve_ident=lambda n: Constant(n.upper()))
        assert out == Constant("ANYTHING")


class TestConditionParsing:
    def test_simple_comparison(self):
        c = parse_condition("$x = 1")
        assert isinstance(c, Comparison)

    def test_operator_spellings(self):
        assert parse_condition("$x == 1") == parse_condition("$x = 1")
        assert parse_condition("$x <> 1") == parse_condition("$x != 1")

    def test_linear_atom(self):
        c = parse_condition("$x + $y + $z = 1")
        assert isinstance(c, LinearAtom)
        assert c.bound == 1

    def test_linear_with_constant_shift(self):
        c = parse_condition("$x + 1 = 2")
        assert isinstance(c, LinearAtom)
        assert c.bound == 1

    def test_and_or_structure(self):
        c = parse_condition("$x = 1 AND ($y = 0 OR $z = 0)")
        assert isinstance(c, And)
        assert any(isinstance(ch, Or) for ch in c.children)

    def test_not_pushes_to_atom(self):
        c = parse_condition("NOT $x = 1")
        assert c == parse_condition("$x != 1")

    def test_string_comparison(self):
        c = parse_condition("$s != 'Mkt'")
        assert isinstance(c, Comparison)

    def test_folding(self):
        from repro.ctable.condition import TRUE, FALSE

        assert parse_condition("1 = 1") is TRUE
        assert parse_condition("1 = 2") is FALSE

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_condition("$x = 1 bogus extra")

    def test_linear_over_non_numeric_rejected(self):
        with pytest.raises(ParseError):
            parse_condition("$x + Mkt = 1")

    def test_stream_mode_stops_at_boundary(self):
        text = "$x = 1, rest"
        stream = TokenStream(tokenize(text), text)
        c = parse_condition(stream)
        assert isinstance(c, Comparison)
        assert stream.peek()[1] == ","
