"""Terms of the c-domain: construction, identity, immutability."""

import pytest

from repro.ctable.terms import (
    Constant,
    CVariable,
    Term,
    Variable,
    as_term,
    constant,
    cvar,
    is_ground,
    var,
)


class TestConstant:
    def test_string_payload(self):
        c = Constant("Mkt")
        assert c.value == "Mkt"
        assert c.is_constant and not c.is_cvariable and not c.is_variable

    def test_numeric_payloads(self):
        assert Constant(7000).value == 7000
        assert Constant(3.5).value == 3.5
        assert Constant(True).value is True

    def test_list_becomes_tuple(self):
        c = Constant(["A", "B", "C"])
        assert c.value == ("A", "B", "C")

    def test_wrapping_constant_unwraps(self):
        inner = Constant(5)
        assert Constant(inner).value == 5

    def test_rejects_unsupported_payload(self):
        with pytest.raises(TypeError):
            Constant({"a": 1})
        with pytest.raises(TypeError):
            Constant(None)

    def test_equality_and_hash(self):
        assert Constant("x") == Constant("x")
        assert Constant("x") != Constant("y")
        assert Constant(1) != Constant("1") or Constant(1).value != "1"
        assert hash(Constant(("A", "B"))) == hash(Constant(("A", "B")))

    def test_constant_not_equal_to_cvariable_of_same_name(self):
        assert Constant("x") != CVariable("x")
        assert hash(Constant("x")) != hash(CVariable("x"))

    def test_immutable(self):
        c = Constant(1)
        with pytest.raises(AttributeError):
            c.value = 2

    def test_str_of_path(self):
        assert str(Constant(("A", "B", "C"))) == "[A B C]"


class TestCVariable:
    def test_name(self):
        assert CVariable("x").name == "x"

    def test_name_validation(self):
        with pytest.raises(ValueError):
            CVariable("")
        with pytest.raises(ValueError):
            CVariable("1x")
        with pytest.raises(ValueError):
            CVariable("has space")

    def test_allows_domain_style_names(self):
        assert CVariable("l_1_2").name == "l_1_2"

    def test_identity(self):
        assert CVariable("x") == CVariable("x")
        assert CVariable("x") != CVariable("y")
        assert CVariable("x") != Variable("x")

    def test_usable_as_dict_key(self):
        d = {CVariable("x"): 1}
        assert d[CVariable("x")] == 1


class TestVariable:
    def test_identity(self):
        assert Variable("n1") == Variable("n1")
        assert Variable("n1") != Variable("n2")

    def test_kind_flags(self):
        v = Variable("n")
        assert v.is_variable and not v.is_constant and not v.is_cvariable


class TestHelpers:
    def test_as_term_coerces_raw_values(self):
        assert as_term("a") == Constant("a")
        assert as_term(5) == Constant(5)
        assert as_term(("A", "B")) == Constant(("A", "B"))

    def test_as_term_passes_terms_through(self):
        v = Variable("x")
        assert as_term(v) is v

    def test_shorthand_constructors(self):
        assert constant(1) == Constant(1)
        assert cvar("x") == CVariable("x")
        assert var("y") == Variable("y")

    def test_is_ground(self):
        assert is_ground([Constant(1), CVariable("x")])
        assert not is_ground([Constant(1), Variable("y")])
