"""The condition language: construction, folding, substitution, evaluation."""

import pytest

from repro.ctable.condition import (
    And,
    Comparison,
    FALSE,
    LinearAtom,
    Not,
    Or,
    TRUE,
    conjoin,
    disjoin,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.ctable.terms import Constant, CVariable, Variable

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")


def assignment(**kwargs):
    return {CVariable(k): Constant(v) for k, v in kwargs.items()}


class TestComparison:
    def test_constant_folding_equal(self):
        assert eq(1, 1) is TRUE
        assert eq(1, 2) is FALSE
        assert ne(1, 2) is TRUE
        assert lt(1, 2) is TRUE
        assert ge(1, 2) is FALSE

    def test_incomparable_constants(self):
        # strings vs ints: equality decides, ordering stays symbolic
        assert eq("a", 1) is FALSE
        assert ne("a", 1) is TRUE

    def test_identical_symbolic_sides(self):
        assert eq(X, X) is TRUE
        assert ne(X, X) is FALSE
        assert le(X, X) is TRUE
        assert lt(X, X) is FALSE

    def test_symbolic_comparison_stays(self):
        c = eq(X, 1)
        assert isinstance(c, Comparison)
        assert c.cvariables() == frozenset({X})

    def test_canonical_orientation_constant_right(self):
        c = Comparison(Constant(1), "<", X)
        # flipped to x > 1
        assert c.lhs == X and c.op == ">" and c.rhs == Constant(1)

    def test_symmetric_ops_sorted(self):
        assert eq(X, Y) == eq(Y, X)
        assert ne(X, Y) == ne(Y, X)

    def test_evaluate(self):
        c = eq(X, 1)
        assert c.evaluate(assignment(x=1))
        assert not c.evaluate(assignment(x=0))

    def test_evaluate_ordering(self):
        assert lt(X, 5).evaluate(assignment(x=3))
        assert not gt(X, 5).evaluate(assignment(x=3))

    def test_negate(self):
        assert eq(X, 1).negate() == ne(X, 1)
        assert lt(X, 1).negate() == ge(X, 1)
        assert le(X, 1).negate() == gt(X, 1)

    def test_substitute_to_constant_folds(self):
        c = eq(X, 1)
        assert c.substitute({X: Constant(1)}) is TRUE
        assert c.substitute({X: Constant(2)}) is FALSE

    def test_substitute_to_other_cvariable(self):
        c = eq(X, 1)
        out = c.substitute({X: Y})
        assert out == eq(Y, 1)

    def test_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            Comparison(X, "~", Y)


class TestLinearAtom:
    def test_construction_from_list(self):
        a = LinearAtom([X, Y, Z], "=", 1)
        assert dict(a.coeffs) == {X: 1, Y: 1, Z: 1}

    def test_construction_from_mapping_merges(self):
        a = LinearAtom({X: 1, Y: 2}, "<=", 3)
        assert dict(a.coeffs) == {X: 1, Y: 2}

    def test_zero_coefficients_dropped(self):
        a = LinearAtom({X: 1, Y: 0}, "=", 1)
        assert dict(a.coeffs) == {X: 1}

    def test_evaluate(self):
        a = LinearAtom([X, Y, Z], "=", 1)
        assert a.evaluate(assignment(x=1, y=0, z=0))
        assert not a.evaluate(assignment(x=1, y=1, z=0))

    def test_negate(self):
        a = LinearAtom([X, Y], "<=", 1)
        assert a.negate() == LinearAtom([X, Y], ">", 1)

    def test_substitute_partial(self):
        a = LinearAtom([X, Y, Z], "=", 1)
        out = a.substitute({X: Constant(0)})
        assert out == LinearAtom([Y, Z], "=", 1)

    def test_substitute_full_folds(self):
        a = LinearAtom([X, Y], "=", 1)
        assert a.substitute({X: Constant(1), Y: Constant(0)}) is TRUE
        assert a.substitute({X: Constant(1), Y: Constant(1)}) is FALSE

    def test_substitute_var_to_var_merges(self):
        a = LinearAtom([X, Y], "=", 1)
        out = a.substitute({Y: X})
        assert dict(out.coeffs) == {X: 2}

    def test_rejects_non_cvariable(self):
        with pytest.raises(TypeError):
            LinearAtom([Variable("v")], "=", 1)

    def test_rejects_non_numeric_substitution(self):
        a = LinearAtom([X], "=", 1)
        with pytest.raises(TypeError):
            a.substitute({X: Constant("str")})


class TestBooleanStructure:
    def test_conjoin_flattens_and_dedups(self):
        c = conjoin([eq(X, 1), conjoin([eq(Y, 1), eq(X, 1)])])
        assert isinstance(c, And)
        assert len(c.children) == 2

    def test_conjoin_short_circuits(self):
        assert conjoin([eq(X, 1), FALSE]) is FALSE
        assert conjoin([TRUE, TRUE]) is TRUE
        assert conjoin([]) is TRUE
        assert conjoin([eq(X, 1)]) == eq(X, 1)

    def test_disjoin_short_circuits(self):
        assert disjoin([eq(X, 1), TRUE]) is TRUE
        assert disjoin([]) is FALSE
        assert disjoin([FALSE, eq(X, 1)]) == eq(X, 1)

    def test_demorgan_negation(self):
        c = conjoin([eq(X, 1), eq(Y, 0)])
        n = c.negate()
        assert isinstance(n, Or)
        assert set(n.children) == {ne(X, 1), ne(Y, 0)}

    def test_not_wraps_and_unwraps(self):
        c = conjoin([eq(X, 1), eq(Y, 0)])
        n = Not(c)
        assert n.negate() is c

    def test_evaluate_compound(self):
        c = disjoin([conjoin([eq(X, 1), eq(Y, 1)]), eq(Z, 0)])
        assert c.evaluate(assignment(x=1, y=1, z=1))
        assert c.evaluate(assignment(x=0, y=0, z=0))
        assert not c.evaluate(assignment(x=0, y=1, z=1))

    def test_substitution_recurses(self):
        c = conjoin([eq(X, 1), disjoin([eq(Y, 0), eq(Z, 1)])])
        out = c.substitute({X: Constant(1), Y: Constant(0)})
        assert out is TRUE

    def test_cvariables_collects_all(self):
        c = conjoin([eq(X, 1), LinearAtom([Y, Z], "=", 1)])
        assert c.cvariables() == frozenset({X, Y, Z})

    def test_atoms_iteration(self):
        c = conjoin([eq(X, 1), disjoin([ne(Y, 0), LinearAtom([Z], "<", 1)])])
        kinds = {type(a).__name__ for a in c.atoms()}
        assert kinds == {"Comparison", "LinearAtom"}

    def test_operators(self):
        c = eq(X, 1) & eq(Y, 1)
        assert isinstance(c, And)
        d = eq(X, 1) | eq(Y, 1)
        assert isinstance(d, Or)
        assert (~eq(X, 1)) == ne(X, 1)


class TestTrueFalse:
    def test_singletons_behave(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False
        assert TRUE.negate() is FALSE
        assert FALSE.negate() is TRUE
        assert list(TRUE.atoms()) == []
        assert TRUE.substitute({X: Constant(1)}) is TRUE
