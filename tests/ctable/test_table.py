"""C-tables and databases: storage semantics."""

import pytest

from repro.ctable.condition import TRUE, eq, ne
from repro.ctable.table import CTable, CTuple, Database
from repro.ctable.terms import Constant, CVariable, Variable

X = CVariable("x")


class TestCTuple:
    def test_values_coerced_to_terms(self):
        t = CTuple(["a", 1, X])
        assert t.values == (Constant("a"), Constant(1), X)

    def test_rejects_program_variables(self):
        with pytest.raises(ValueError):
            CTuple([Variable("v")])

    def test_default_condition_is_true(self):
        assert CTuple([1]).condition is TRUE

    def test_is_certain(self):
        assert CTuple([1, "a"]).is_certain
        assert not CTuple([X]).is_certain
        assert not CTuple([1], eq(X, 1)).is_certain

    def test_cvariables_from_data_and_condition(self):
        t = CTuple([X, 1], eq(CVariable("y"), 0))
        assert t.cvariables() == frozenset({X, CVariable("y")})

    def test_and_condition(self):
        t = CTuple([1], eq(X, 1))
        t2 = t.and_condition(ne(X, 0))
        assert t2.values == t.values
        assert t2.condition != t.condition

    def test_substitute(self):
        t = CTuple([X], eq(X, 1))
        out = t.substitute({X: Constant(1)})
        assert out.values == (Constant(1),)
        assert out.condition is TRUE

    def test_equality_includes_condition(self):
        assert CTuple([1], eq(X, 1)) != CTuple([1], eq(X, 0))
        assert CTuple([1], eq(X, 1)) == CTuple([1], eq(X, 1))


class TestCTable:
    def test_schema_validation(self):
        with pytest.raises(ValueError):
            CTable("T", ["a", "a"])
        with pytest.raises(ValueError):
            CTable("", ["a"])

    def test_add_and_iterate(self):
        t = CTable("T", ["a", "b"])
        assert t.add([1, 2])
        assert t.add([3, 4], eq(X, 1))
        assert len(t) == 2
        assert [tuple(v.value for v in row.values) for row in t] == [(1, 2), (3, 4)]

    def test_duplicate_collapses(self):
        t = CTable("T", ["a"])
        assert t.add([1])
        assert not t.add([1])
        assert len(t) == 1

    def test_same_data_different_condition_kept(self):
        t = CTable("T", ["a"])
        t.add([1], eq(X, 1))
        t.add([1], eq(X, 0))
        assert len(t) == 2

    def test_arity_mismatch(self):
        t = CTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add([1])

    def test_condition_inside_ctuple_only(self):
        t = CTable("T", ["a"])
        with pytest.raises(ValueError):
            t.add(CTuple([1]), eq(X, 1))

    def test_is_regular(self):
        t = CTable("T", ["a"])
        t.add([1])
        assert t.is_regular()
        t.add([X])
        assert not t.is_regular()

    def test_attribute_index(self):
        t = CTable("T", ["a", "b"])
        assert t.attribute_index("b") == 1
        with pytest.raises(KeyError):
            t.attribute_index("zz")

    def test_copy_is_independent(self):
        t = CTable("T", ["a"])
        t.add([1])
        c = t.copy()
        c.add([2])
        assert len(t) == 1 and len(c) == 2

    def test_pretty_contains_condition_column(self):
        t = CTable("T", ["a"])
        t.add([X], eq(X, 1))
        text = t.pretty()
        assert "condition" in text
        assert "T" in text.splitlines()[0]

    def test_pretty_truncates(self):
        t = CTable("T", ["a"])
        for i in range(40):
            t.add([i])
        text = t.pretty(max_rows=5)
        assert "more" in text


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        t = db.create_table("T", ["a"])
        assert db.table("T") is t
        assert "T" in db

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("T", ["a"])
        with pytest.raises(ValueError):
            db.create_table("T", ["a"])

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_cvariables_across_tables(self):
        db = Database()
        t1 = db.create_table("A", ["a"])
        t1.add([X])
        t2 = db.create_table("B", ["b"])
        t2.add([1], eq(CVariable("y"), 1))
        assert db.cvariables() == frozenset({X, CVariable("y")})

    def test_copy_deep_enough(self):
        db = Database()
        db.create_table("T", ["a"]).add([1])
        clone = db.copy()
        clone.table("T").add([2])
        assert len(db.table("T")) == 1

    def test_replace_table(self):
        db = Database()
        db.create_table("T", ["a"])
        replacement = CTable("T", ["a"])
        replacement.add([9])
        db.replace_table(replacement)
        assert len(db.table("T")) == 1
