"""The ``lint`` CLI subcommand and the bundled program sets."""

import json
from pathlib import Path

import pytest

from repro.cli import main, parse_lint_pragmas

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "programs"
EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "programs"


class TestPragmas:
    def test_all_keys(self):
        text = (
            "% edb: R Fw Lb\n"
            "% outputs: panic\n"
            "% size: R 5000\n"
            "% lint-ignore: F007 F015\n"
            "q1: panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).\n"
        )
        pragmas = parse_lint_pragmas(text)
        assert pragmas["edb"] == ["R", "Fw", "Lb"]
        assert pragmas["outputs"] == ["panic"]
        assert pragmas["sizes"] == {"R": 5000}
        assert pragmas["ignore"] == ["F007", "F015"]

    def test_plain_comments_ignored(self):
        pragmas = parse_lint_pragmas("% just prose, edb: not a pragma\nq1: P(x) :- R(x).")
        assert pragmas == {"edb": [], "outputs": [], "sizes": {}, "ignore": []}

    def test_malformed_size_raises(self):
        with pytest.raises(ValueError):
            parse_lint_pragmas("% size: R\n")


class TestLintCommand:
    def write(self, tmp_path, text, name="p.fl"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_clean_program_exit_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, "% edb: A\n% outputs: Out\nq1: Out(x) :- A(x).\n")
        assert main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        path = self.write(tmp_path, "q1: Out(x, y) :- A(x).\n")
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "F001" in out and f"{path}:1:5" in out

    def test_parse_error_exit_two_and_position(self, tmp_path, capsys):
        path = self.write(tmp_path, "q1: Out( :- A(x).\n")
        assert main(["lint", path]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err

    def test_parse_error_does_not_mask_other_files(self, tmp_path, capsys):
        bad = self.write(tmp_path, "q1: Out( :- A(x).\n", "bad.fl")
        warn = self.write(tmp_path, "q1: Out(x) :- A(x), B(y).\n", "warn.fl")
        assert main(["lint", bad, warn]) == 2
        captured = capsys.readouterr()
        assert "F007" in captured.out

    def test_json_format(self, tmp_path, capsys):
        path = self.write(tmp_path, "q1: Out(x) :- A(x), B(y).\n")
        assert main(["lint", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(d["code"] == "F007" for d in payload)
        f007 = next(d for d in payload if d["code"] == "F007")
        assert f007["line"] == 1 and f007["file"] == path

    def test_select_and_ignore(self, tmp_path, capsys):
        text = "q1: Out(x, y) :- A(x).\nq2: Out(x, x) :- A(x), B(x).\n"
        path = self.write(tmp_path, text)
        main(["lint", path, "--select", "F001"])
        out = capsys.readouterr().out
        assert "F001" in out and "F007" not in out
        rc = main(["lint", path, "--ignore", "F001,F007"])
        out = capsys.readouterr().out
        assert rc == 0 and "F001" not in out

    def test_unknown_code_is_usage_error(self, tmp_path):
        path = self.write(tmp_path, "q1: Out(x) :- A(x).\n")
        assert main(["lint", path, "--select", "F999"]) == 2

    def test_pragmas_merge_with_flags(self, tmp_path, capsys):
        text = (
            "% edb: A\n"
            "% lint-ignore: F007\n"
            "q1: Out(x) :- A(x), B(y), Missing(x).\n"
        )
        path = self.write(tmp_path, text)
        rc = main(["lint", path, "--edb", "B"])
        out = capsys.readouterr().out
        # edb union {A, B} leaves only Missing undefined; F007 pragma-ignored.
        assert rc == 1
        assert "Missing" in out and "F007" not in out

    def test_size_pragma_feeds_estimates(self, tmp_path, capsys):
        text = (
            "% edb: A B\n% outputs: Out\n"
            "% size: A 7\n% size: B 7\n"
            "q1: Out(x) :- A(x), B(x).\n"
        )
        path = self.write(tmp_path, text)
        main(["lint", path, "--select", "F015"])
        assert "~7 rows" in capsys.readouterr().out


class TestSarifFormat:
    def write(self, tmp_path, text, name="p.fl"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_sarif_format(self, tmp_path, capsys):
        path = self.write(tmp_path, "q1: Out(x) :- A(x), B(y).\n")
        assert main(["lint", path, "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        f007 = next(r for r in run["results"] if r["ruleId"] == "F007")
        (loc,) = f007["locations"]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] == path

    def test_sarif_clean_run_keeps_rule_table(self, tmp_path, capsys):
        path = self.write(tmp_path, "% edb: A\n% outputs: Out\nq1: Out(x) :- A(x).\n")
        assert main(["lint", path, "--format", "sarif"]) == 0
        (run,) = json.loads(capsys.readouterr().out)["runs"]
        assert run["results"] == []
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {"F001", "F016"}

    def test_optimize_report_flags_dead_rule(self, tmp_path, capsys):
        text = (
            "% edb: A\n% outputs: Out\n"
            "q1: Out(x) :- A(x).\n"
            "q2: Out(x) :- A(x), $u = 1, $u != 1.\n"
        )
        path = self.write(tmp_path, text)
        main(["lint", path, "--optimize-report"])
        out = capsys.readouterr().out
        assert "F016" in out

    def test_optimize_report_off_by_default(self, tmp_path, capsys):
        text = (
            "% edb: A\n% outputs: Out\n"
            "q1: Out(x) :- A(x).\n"
            "q2: Out(x) :- A(x), $u = 1, $u != 1.\n"
        )
        path = self.write(tmp_path, text)
        main(["lint", path])
        assert "F016" not in capsys.readouterr().out


class TestBundledProgramGate:
    """The same invariants `make lint-programs` enforces in CI."""

    def test_fixture_sets_exist(self):
        for sub in ("clean", "warn", "bad"):
            assert list((FIXTURES / sub).glob("*.fl")), f"no fixtures in {sub}/"
        assert list(EXAMPLES.glob("*.fl")), "no example programs"

    def test_clean_and_examples_lint_without_errors(self, capsys):
        files = sorted(EXAMPLES.glob("*.fl")) + sorted((FIXTURES / "clean").glob("*.fl"))
        assert main(["lint", *map(str, files)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_warn_fixtures_warn_but_pass(self, capsys):
        files = sorted((FIXTURES / "warn").glob("*.fl"))
        assert main(["lint", *map(str, files)]) == 0
        out = capsys.readouterr().out
        for expected in ("F008", "F010", "F011", "F012", "F013"):
            assert expected in out, f"{expected} missing from warn fixtures"

    def test_bad_fixtures_each_fail(self, capsys):
        for path in sorted((FIXTURES / "bad").glob("*.fl")):
            assert main(["lint", str(path)]) == 1, f"{path.name} should report errors"
            capsys.readouterr()
