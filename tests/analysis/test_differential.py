"""Differential soundness: the abstract domain vs the real solver.

The abstraction's contract is one-sided — it may say UNKNOWN wherever
it likes, but whenever it *claims* a proof the NP-complete solver must
agree:

* ``prove_unsat(c)``  ⇒  ``not solver.is_satisfiable(c)``
* ``prove_valid(c)``  ⇒  ``solver.is_valid(c)``

Checked over a seeded generator of structured random conditions and
over every condition produced by the §6 RIB forwarding workload.
Zero false positives, by assertion.
"""

import random

import pytest

from repro.analysis.abstract import prove_unsat, prove_valid
from repro.ctable.condition import (
    Comparison,
    LinearAtom,
    Not,
    conjoin,
    disjoin,
)
from repro.ctable.terms import Constant, cvar
from repro.solver.domains import DomainMap, Unbounded
from repro.solver.interface import ConditionSolver


def make_solver():
    return DomainMap(default=Unbounded("any")), ConditionSolver(
        DomainMap(default=Unbounded("any"))
    )


VARS = [cvar(n) for n in "abcd"]
CONSTS = [Constant(v) for v in (0, 1, 2, 5, 10)]
OPS = ["=", "!=", "<", "<=", ">", ">="]


def random_atom(rng):
    kind = rng.random()
    if kind < 0.6:
        return Comparison(rng.choice(VARS), rng.choice(OPS), rng.choice(CONSTS))
    if kind < 0.85:
        a, b = rng.sample(VARS, 2)
        return Comparison(a, rng.choice(OPS), b)
    coeffs = rng.sample(VARS, rng.randint(1, 3))
    return LinearAtom(coeffs, rng.choice(OPS), rng.randint(0, 5))


def random_condition(rng, depth=2):
    if depth == 0 or rng.random() < 0.4:
        return random_atom(rng)
    combine = conjoin if rng.random() < 0.6 else disjoin
    children = [random_condition(rng, depth - 1) for _ in range(rng.randint(2, 3))]
    cond = combine(children)
    if rng.random() < 0.2:
        cond = Not(cond) if not isinstance(cond, (Comparison, LinearAtom)) else cond.negate()
    return cond


class TestGeneratedConditions:
    def test_no_false_positives(self):
        rng = random.Random(20210610)
        _, solver = make_solver()
        proved_unsat = proved_valid = 0
        for _ in range(400):
            cond = random_condition(rng)
            if prove_unsat(cond):
                proved_unsat += 1
                assert not solver.is_satisfiable(cond), f"false UNSAT: {cond}"
            if prove_valid(cond):
                proved_valid += 1
                assert solver.is_valid(cond), f"false VALID: {cond}"
        # The generator must actually exercise both claims.
        assert proved_unsat > 0, "generator produced no provable contradictions"
        assert proved_valid > 0, "generator produced no provable tautologies"

    def test_seeded_contradictions_all_proved_and_agreed(self):
        rng = random.Random(7)
        _, solver = make_solver()
        for _ in range(50):
            base = random_atom(rng)
            cond = conjoin([base, base.negate()])
            assert prove_unsat(cond), f"missed planted contradiction: {cond}"
            assert not solver.is_satisfiable(cond)

    def test_seeded_tautologies_all_proved_and_agreed(self):
        rng = random.Random(11)
        _, solver = make_solver()
        for _ in range(50):
            base = random_atom(rng)
            cond = disjoin([base, base.negate()])
            assert prove_valid(cond), f"missed planted tautology: {cond}"
            assert solver.is_valid(cond)


class TestRibWorkloadConditions:
    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.network.forwarding import compile_forwarding
        from repro.workloads.ribgen import RibConfig, generate_rib

        routes = generate_rib(
            RibConfig(prefixes=15, paths_per_prefix=4, as_count=40, seed=20210610)
        )
        return compile_forwarding(routes)

    def test_no_false_positives_on_rib_conditions(self, compiled):
        solver = ConditionSolver(compiled.domains)
        conditions = [row.condition for row in compiled.table]
        assert conditions, "workload produced no conditional tuples"
        checked = 0
        for cond in conditions:
            if prove_unsat(cond):
                assert not solver.is_satisfiable(cond), f"false UNSAT: {cond}"
            if prove_valid(cond):
                assert solver.is_valid(cond), f"false VALID: {cond}"
            checked += 1
        assert checked == len(conditions)

    def test_pairwise_conjunctions(self, compiled):
        # Conjunctions of per-prefix route conditions are exactly what
        # the reachability join builds; excluded routes of the same
        # prefix contradict, and the abstraction's claims must agree
        # with the solver on every pair.
        solver = ConditionSolver(compiled.domains)
        conditions = [row.condition for row in compiled.table][:20]
        for i, a in enumerate(conditions):
            for b in conditions[i + 1:]:
                cond = conjoin([a, b])
                if prove_unsat(cond):
                    assert not solver.is_satisfiable(cond)
