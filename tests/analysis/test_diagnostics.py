"""Diagnostic records, the code registry, filtering, renderers."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    code_info,
    filter_diagnostics,
    render_json,
    render_sarif,
    render_text,
)
from repro.ctable.parse import Span


class TestRegistry:
    def test_codes_are_stable_format(self):
        for code in CODES:
            assert code.startswith("F") and len(code) == 4 and code[1:].isdigit()

    def test_contiguous_from_f001(self):
        numbers = sorted(int(c[1:]) for c in CODES)
        assert numbers == list(range(1, len(CODES) + 1))

    def test_registry_lookup(self):
        assert code_info("F011").default_severity is Severity.WARNING
        with pytest.raises(KeyError):
            code_info("F999")

    def test_severity_rank_order(self):
        assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank


class TestDiagnostic:
    def test_make_uses_registered_severity(self):
        d = Diagnostic.make("F005", "msg")
        assert d.severity is Severity.ERROR

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic.make("F999", "msg")

    def test_str_with_span_and_rule(self):
        span = Span(line=3, col=7, end_line=3, end_col=12)
        d = Diagnostic.make("F007", "singleton", span=span, rule="q1", file="a.fl")
        assert str(d) == "a.fl:3:7: F007 warning [q1]: singleton"

    def test_str_without_span(self):
        d = Diagnostic.make("F009", "dead")
        assert str(d) == "-: F009 warning: dead"

    def test_to_dict_round_trips_span(self):
        span = Span(line=2, col=1, end_line=2, end_col=9)
        d = Diagnostic.make("F011", "contradiction", span=span, rule="q2")
        payload = d.to_dict()
        assert payload["code"] == "F011"
        assert payload["line"] == 2 and payload["end_col"] == 9
        assert payload["severity"] == "warning"


class TestFiltering:
    def _findings(self):
        return [
            Diagnostic.make("F005", "a"),
            Diagnostic.make("F007", "b"),
            Diagnostic.make("F011", "c"),
        ]

    def test_select(self):
        kept = filter_diagnostics(self._findings(), select=["F007,F011"])
        assert [d.code for d in kept] == ["F007", "F011"]

    def test_ignore(self):
        kept = filter_diagnostics(self._findings(), ignore=["F007"])
        assert [d.code for d in kept] == ["F005", "F011"]

    def test_select_then_ignore(self):
        kept = filter_diagnostics(
            self._findings(), select=["F005", "F007"], ignore=["F007"]
        )
        assert [d.code for d in kept] == ["F005"]

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError):
            filter_diagnostics(self._findings(), select=["F123"])
        with pytest.raises(ValueError):
            filter_diagnostics(self._findings(), ignore=["nonsense"])


class TestRenderers:
    def test_text_tally(self):
        out = render_text([Diagnostic.make("F005", "a"), Diagnostic.make("F007", "b")])
        assert out.endswith("2 finding(s): 1 error(s), 1 warning(s)")

    def test_json_parses(self):
        payload = json.loads(render_json([Diagnostic.make("F005", "a")]))
        assert payload == [{"code": "F005", "severity": "error", "message": "a"}]

    def test_json_includes_span_end_columns(self):
        span = Span(line=4, col=2, end_line=4, end_col=11)
        payload = json.loads(
            render_json([Diagnostic.make("F016", "dead", span=span)])
        )
        (entry,) = payload
        assert entry["line"] == 4 and entry["col"] == 2
        assert entry["end_line"] == 4 and entry["end_col"] == 11


class TestSarif:
    def _log(self, findings):
        return json.loads(render_sarif(findings))

    def test_envelope(self):
        log = self._log([])
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["results"] == []

    def test_every_code_registered_as_driver_rule(self):
        (run,) = self._log([])["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(CODES)
        for rule in rules:
            assert rule["shortDescription"]["text"]

    def test_result_region_and_level(self):
        span = Span(line=3, col=7, end_line=3, end_col=12)
        findings = [
            Diagnostic.make("F018", "narrowed", span=span, rule="q1", file="a.fl"),
            Diagnostic.make("F005", "bad arity"),
        ]
        (run,) = self._log(findings)["runs"]
        narrowed, arity = run["results"]
        assert narrowed["ruleId"] == "F018"
        assert narrowed["level"] == "note"  # info maps to SARIF "note"
        assert narrowed["properties"]["rule"] == "q1"
        (loc,) = narrowed["locations"]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "a.fl"
        region = phys["region"]
        assert region == {
            "startLine": 3,
            "startColumn": 7,
            "endLine": 3,
            "endColumn": 12,
        }
        assert arity["ruleId"] == "F005" and arity["level"] == "error"
        assert "locations" not in arity

    def test_warning_level_passthrough(self):
        (run,) = self._log([Diagnostic.make("F016", "unreachable")])["runs"]
        (result,) = run["results"]
        assert result["level"] == "warning"
