"""Tests for the static analysis subsystem (repro.analysis)."""
