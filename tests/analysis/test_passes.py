"""Per-code positive and negative tests for every analysis pass.

Each code gets at least one program that triggers it (with its span
checked) and one near-miss that must stay silent.
"""

import pytest

from repro.analysis import analyze_text


def codes(findings):
    return [d.code for d in findings]


def only(findings, code):
    return [d for d in findings if d.code == code]


class TestF001HeadUnsafe:
    def test_positive_with_span(self):
        findings = analyze_text("q1: Out(x, y) :- A(x).", select=["F001"])
        (d,) = findings
        assert "head variable y" in d.message
        assert d.rule == "q1"
        assert d.span is not None and (d.span.line, d.span.col) == (1, 5)

    def test_negative(self):
        assert not analyze_text("q1: Out(x, y) :- A(x), B(y).", select=["F001"])


class TestF002NegationOnly:
    def test_positive_with_span(self):
        findings = analyze_text("q1: Out(x) :- A(x), not B(y).", select=["F002"])
        (d,) = findings
        assert "only under negation" in d.message
        assert d.span is not None and d.span.line == 1 and d.span.col == 21

    def test_negative_bound_positively(self):
        text = "q1: Out(x) :- A(x), B(y), not B(y)."
        assert not analyze_text(text, select=["F002"])


class TestF003ComparisonUnbound:
    def test_positive(self):
        findings = analyze_text("q1: Out(x) :- A(x), z < 3.", select=["F003"])
        (d,) = findings
        assert "comparison variable z" in d.message
        assert d.span is not None

    def test_negative_cvariable_ok(self):
        assert not analyze_text("q1: Out(x) :- A(x), $z < 3.", select=["F003"])


class TestF004ArityClash:
    def test_positive_with_span(self):
        findings = analyze_text("q1: Out(x) :- A(x, y), A(x, y, y).", select=["F004"])
        (d,) = findings
        assert "arity 3" in d.message and "arity 2" in d.message
        assert d.span is not None and d.span.col == 24

    def test_negative(self):
        assert not analyze_text("q1: Out(x) :- A(x, y), A(y, x).", select=["F004"])


class TestF005UndefinedPredicate:
    def test_positive_needs_edb_declaration(self):
        text = "q1: panic :- Rech(Mkt, CS)."
        findings = analyze_text(text, edb=["Reach"], select=["F005"])
        (d,) = findings
        assert "Rech" in d.message and "neither defined" in d.message
        assert d.severity.value == "error"

    def test_negative_without_edb(self):
        assert not analyze_text("q1: panic :- Whatever(Mkt).", select=["F005"])

    def test_negative_idb_reference(self):
        text = "q1: Mid(x) :- R(x). q2: panic :- Mid(CS)."
        assert not analyze_text(text, edb=["R"], select=["F005"])


class TestF006Unstratifiable:
    TEXT = """
    q1: P(x) :- R(x), not Q(x).
    q2: Q(x) :- P(x).
    """

    def test_positive_with_witness(self):
        findings = analyze_text(self.TEXT, edb=["R"], select=["F006"])
        (d,) = findings
        assert "witness: Q -> P -> Q" in d.message
        assert "Q -> P is negated" in d.message
        # anchored at the negated literal
        assert d.span is not None and d.span.line == 2

    def test_negative_stratified_negation(self):
        text = """
        q1: P(x) :- R(x), not Q(x).
        q2: Q(x) :- S(x).
        """
        assert not analyze_text(text, edb=["R", "S"], select=["F006"])


class TestF007Singleton:
    def test_positive(self):
        findings = analyze_text("q1: Out(x) :- A(x), B(y).", select=["F007"])
        (d,) = findings
        assert "variable y occurs only once" in d.message

    def test_negative_comparison_counts(self):
        text = "q1: Out(x) :- A(x), B(y), y != 1."
        assert not analyze_text(text, select=["F007"])

    def test_negative_annotation_counts(self):
        text = "q1: Out($x) :- A($x), B(y)[y != 1]."
        assert not analyze_text(text, select=["F007"])


class TestF008Duplicates:
    def test_positive_reordered_conditions(self):
        text = """
        q1: Out($x) :- A($x), $x != 1, $x < 9.
        q2: Out($x) :- A($x), $x < 9, $x != 1.
        """
        findings = analyze_text(text, select=["F008"])
        (d,) = findings
        assert "duplicates q1" in d.message
        assert d.rule == "q2"
        assert d.span is not None and d.span.line == 3

    def test_positive_flipped_comparison(self):
        text = """
        q1: Out(y) :- A(y), y != 2.
        q2: Out(y) :- A(y), 2 != y.
        """
        assert codes(analyze_text(text, select=["F008"])) == ["F008"]

    def test_positive_double_negation(self):
        text = """
        q1: Out($x) :- A($x), $x < 9.
        q2: Out($x) :- A($x), not not $x < 9.
        """
        try:
            findings = analyze_text(text, select=["F008"])
        except Exception:
            pytest.skip("parser does not accept stacked negation")
        assert codes(findings) == ["F008"]

    def test_negative_different_bounds(self):
        text = """
        q1: Out($x) :- A($x), $x < 9.
        q2: Out($x) :- A($x), $x < 8.
        """
        assert not analyze_text(text, select=["F008"])

    def test_negative_different_literal_order_same_rule(self):
        # body literal order is irrelevant too
        text = """
        q1: Out(x) :- A(x), B(x).
        q2: Out(x) :- B(x), A(x).
        """
        assert codes(analyze_text(text, select=["F008"])) == ["F008"]


class TestF009Unreachable:
    def test_positive(self):
        text = """
        q1: panic :- V(x).
        q2: V($a) :- R($a).
        q3: Orphan($a) :- R($a).
        """
        findings = analyze_text(text, edb=["R"], outputs=["panic"], select=["F009"])
        (d,) = findings
        assert "Orphan" in d.message and "never used" in d.message

    def test_negative_transitive_use(self):
        text = """
        q1: panic :- V(x).
        q2: V($a) :- W($a).
        q3: W($a) :- R($a).
        """
        assert not analyze_text(
            text, edb=["R"], outputs=["panic"], select=["F009"]
        )


class TestF010Tautology:
    def test_positive(self):
        findings = analyze_text("q1: Out(x) :- A(x), x = x.", select=["F010"])
        (d,) = findings
        assert "always true" in d.message
        assert d.span is not None and d.span.col == 21

    def test_negative(self):
        assert not analyze_text("q1: Out(x) :- A(x), x = 1.", select=["F010"])


class TestF011Contradiction:
    def test_positive_cvariable_interval(self):
        text = "q1: Out($x) :- A($x), $x < 5, $x > 10."
        findings = analyze_text(text, select=["F011"])
        (d,) = findings
        assert "never fire" in d.message
        assert d.span is not None and d.span.line == 1

    def test_positive_program_variable(self):
        text = "q1: Out(y) :- A(y), y = 1, y != 1."
        assert codes(analyze_text(text, select=["F011"])) == ["F011"]

    def test_positive_annotation_conjoined(self):
        text = "q1: Out($x) :- A($x)[$x = 1], $x != 1."
        assert codes(analyze_text(text, select=["F011"])) == ["F011"]

    def test_negative_satisfiable(self):
        text = "q1: Out($x) :- A($x), $x > 1, $x < 5."
        assert not analyze_text(text, select=["F011"])

    def test_negative_domain_dependent(self):
        # Only UNSAT over the *declared* domain — the abstraction must
        # stay silent because it quantifies over all domains.
        text = "q1: Out($b) :- A($b), $b != 0, $b != 1."
        assert not analyze_text(text, select=["F011"])


class TestF012CrossSort:
    def test_positive(self):
        # R's first column carries port numbers (evidence from q1's
        # constant); comparing $p against an address is flagged.  The
        # comparison constant itself is *not* evidence — otherwise every
        # cross-sort comparison would be self-consistent.
        text = """
        q1: Any(x) :- R(80, x).
        q2: Out($p) :- R($p, CS), $p = '10.0.0.1'.
        """
        findings = analyze_text(text, edb=["R"], select=["F012"])
        (d,) = findings
        assert "mixes c-domain sorts" in d.message
        assert "number" in d.message and "ip-address" in d.message
        assert d.rule == "q2"

    def test_negative_consistent_sorts(self):
        text = """
        q1: Any(x) :- R(80, x).
        q2: Out($p) :- R($p, CS), $p = 8080.
        """
        assert not analyze_text(text, edb=["R"], select=["F012"])


class TestF013NonNumericOrder:
    def test_positive(self):
        text = "q1: Out($q) :- R(80, $q), $q < CS."
        findings = analyze_text(text, edb=["R"], select=["F013"])
        (d,) = findings
        assert "non-numeric" in d.message

    def test_negative_numeric_order(self):
        text = "q1: Out($q) :- R(CS, $q), $q < 7000."
        assert not analyze_text(text, edb=["R"], select=["F013"])


class TestF014CrossProduct:
    def test_positive(self):
        findings = analyze_text("q1: Out(x, y) :- A(x), B(y).", select=["F014"])
        (d,) = findings
        assert "cross product" in d.message

    def test_negative_shared_variable(self):
        assert not analyze_text("q1: Out(x, y) :- A(x, y), B(y).", select=["F014"])

    def test_negative_comparison_chain_connects(self):
        text = "q1: Out(x, y) :- A(x), B(y), x = y."
        assert not analyze_text(text, select=["F014"])


class TestF015CostEstimate:
    def test_positive_info(self):
        text = "q1: Out(x) :- A(x), B(x)."
        findings = analyze_text(text, select=["F015"])
        (d,) = findings
        assert d.severity.value == "info"
        assert "estimated intermediate cardinality" in d.message

    def test_sizes_change_estimate(self):
        text = "q1: Out(x) :- A(x), B(x)."
        small = analyze_text(text, sizes={"A": 10, "B": 10}, select=["F015"])
        big = analyze_text(text, sizes={"A": 10000, "B": 10000}, select=["F015"])
        assert small[0].message != big[0].message

    def test_negative_single_literal(self):
        assert not analyze_text("q1: Out(x) :- A(x).", select=["F015"])


class TestOrderingAndAggregation:
    def test_findings_sorted_by_position(self):
        text = """
        q1: Out(x, w) :- A(x).
        q2: Out(x, x) :- A(x), z < 3.
        """
        findings = analyze_text(text)
        positions = [(d.span.line, d.span.col) for d in findings if d.span]
        assert positions == sorted(positions)

    def test_file_attached_to_findings(self):
        findings = analyze_text("q1: Out(x, y) :- A(x).", file="x.fl")
        assert findings and all(d.file == "x.fl" for d in findings)
