"""Parity of the abstract.py → solver.atoms re-export.

The F010/F011 lint passes and the solver's tier-0 fast path must run
the *same* interval/atom machinery — not two copies that can drift.
This pins the re-export down to object identity and then re-runs the
lint over every fixture program, checking the F010/F011 surface against
a semantic oracle (world enumeration is overkill here; ``prove_*``'s
one-sided contract is exactly what the passes consume).
"""

from pathlib import Path

import pytest

from repro.analysis import abstract as lint_abstract
from repro.analysis.diagnostics import render_text
from repro.analysis.manager import analyze_text
from repro.solver import atoms as solver_atoms

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "programs"
PROGRAMS = sorted(FIXTURES.glob("*/*.fl"))


def test_lint_surface_is_the_solver_surface():
    """Identity, not equality: one function object, two import paths."""
    assert lint_abstract.prove_unsat is solver_atoms.prove_unsat
    assert lint_abstract.prove_valid is solver_atoms.prove_valid
    assert lint_abstract.abstract_sat is solver_atoms.abstract_sat
    assert lint_abstract.AbstractResult is solver_atoms.AbstractResult


def test_public_surface_unchanged():
    assert set(lint_abstract.__all__) == {
        "AbstractResult",
        "abstract_sat",
        "prove_unsat",
        "prove_valid",
    }


@pytest.mark.parametrize("path", PROGRAMS, ids=[p.stem for p in PROGRAMS])
def test_f010_f011_diagnostics_stable(path):
    """The refactor must not move a single F010/F011 finding."""
    findings = analyze_text(
        path.read_text(), file=str(path), select=["F010", "F011"]
    )
    rendered = render_text(findings)
    expected_codes = {
        "contradiction": {"F011"},
        "tautology": {"F010"},
    }.get(path.stem, set())
    assert {f.code for f in findings} == expected_codes, rendered


def test_contradiction_fixture_exact_shape():
    path = FIXTURES / "warn" / "contradiction.fl"
    findings = analyze_text(path.read_text(), select=["F011"])
    assert len(findings) == 2  # both contradictory rules in the fixture
    for finding in findings:
        assert finding.code == "F011"
        assert "never fire" in finding.message


def test_tautology_fixture_exact_shape():
    path = FIXTURES / "warn" / "tautology.fl"
    findings = analyze_text(path.read_text(), select=["F010"])
    assert len(findings) >= 1
    assert {f.code for f in findings} == {"F010"}
