"""Differential fuzz: the static optimizer vs. the unoptimized evaluator.

Gate for the ``--optimize`` pass, in the mold of the memo / fast-path /
chaos gates before it:

* **≥300 seeded random programs**: evaluating with the optimizer on
  (narrowed domains + precheck + deactivated rules) must render the
  exact same bytes as evaluating without it;
* **query-driven slicing**: when an output is requested, the sliced
  program's answer for that output is byte-identical to the full run's;
* **fault injection**: with ≥30% of governed solver calls raising, the
  sequence-changing transformations stand down (the call-indexed fault
  schedule must not shift) and the rendered output stays byte-identical
  to the unoptimized faulted run;
* **zero false positives**: every F016 (unreachable rule) is validated
  by evaluating with and without the flagged rule — same bytes; every
  static-true / static-false conjunct (F017 family) is validated by
  enumerating *all* assignments over the declared domains.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.analysis.dataflow import analyze
from repro.analysis.optimize import OptimizationResult, optimize_program
from repro.ctable.condition import TRUE, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import CVariable
from repro.ctable.worlds import iter_assignments
from repro.faurelog.ast import Program
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

from tests.oracle.oracle import render_result

SEED_COUNT = 300

#: Head predicates are distinct per template so any subset composes into
#: an arity-consistent program.  ``{k}`` draws from 0..3 while the
#: condition variables range over {0,1,2} — k=3 manufactures statically
#: false conjuncts (the F016/F017 raw material).
_TEMPLATES = [
    "O1(x, y) :- E(x, y).",
    "O2(x, z) :- E(x, y), E(y, z).",
    "O3(x, y) :- E(x, y), x != y.",
    "O4(x, y) :- E(x, y), $u = {k}.",
    "O5(x, y) :- E(x, y), $u != {k}.",
    "O6(x, y) :- E(x, y), $v = {k2}, $v != {k2}.",
    "P(x, y) :- E(x, y).\nP(x, z) :- P(x, y), E(y, z).",
    "Dead(x, y) :- E(x, y), $u = 9.",
    "N(x) :- E(x, y).\nM(x) :- E(x, x).\nO8(x) :- N(x), not M(x).",
]


def _random_case(seed: int) -> Tuple[Program, Database, DomainMap, List[str]]:
    rng = random.Random(seed)
    u, v = CVariable("u"), CVariable("v")
    domains = DomainMap({u: FiniteDomain([0, 1, 2]), v: FiniteDomain([0, 1, 2])})

    db = Database()
    table = db.create_table("E", ["a", "b"])
    conditions = [
        lambda: TRUE,
        lambda: eq(u, rng.randint(0, 2)),
        lambda: ne(u, rng.randint(0, 2)),
        lambda: eq(v, rng.randint(0, 2)),
        lambda: ne(v, rng.randint(0, 2)),
    ]
    for _ in range(rng.randint(2, 5)):
        row = [rng.randint(0, 2), rng.randint(0, 2)]
        table.add(row, rng.choice(conditions)())

    chosen = rng.sample(_TEMPLATES, rng.randint(1, 3))
    text = "\n".join(
        t.format(k=rng.randint(0, 3), k2=rng.randint(0, 3)) for t in chosen
    )
    program = parse_program(text)
    outputs = sorted(program.idb_predicates())
    return program, db, domains, outputs


def _run_plain(
    program: Program,
    db: Database,
    domains: DomainMap,
    governor: Optional[Governor] = None,
) -> Database:
    solver = ConditionSolver(domains, governor=governor, memo=None)
    return evaluate(program, db, solver=solver, governor=governor)


def _run_optimized(
    program: Program,
    db: Database,
    domains: DomainMap,
    opt: OptimizationResult,
    governor: Optional[Governor] = None,
) -> Database:
    solver = ConditionSolver(opt.narrowed, governor=governor, memo=None)
    return evaluate(
        opt.sliced,
        db,
        solver=solver,
        governor=governor,
        precheck=opt.precheck_for(governor),
        inactive_rules=opt.inactive_for(governor),
    )


# -- byte-identity over random programs --------------------------------------


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_optimizer_on_off_byte_identical(seed):
    program, db, domains, outputs = _random_case(seed)
    opt = optimize_program(program, db, domains)
    baseline = render_result(_run_plain(program, db, domains), outputs)
    optimized = render_result(
        _run_optimized(program, db, domains, opt), outputs
    )
    assert optimized == baseline, f"seed {seed} diverged"


@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 7))
def test_query_slicing_preserves_requested_output(seed):
    program, db, domains, outputs = _random_case(seed)
    target = outputs[seed % len(outputs)]
    opt = optimize_program(program, db, domains, outputs=[target])
    baseline = render_result(_run_plain(program, db, domains), [target])
    optimized = render_result(
        _run_optimized(program, db, domains, opt), [target]
    )
    assert optimized == baseline, f"seed {seed}/{target} diverged under slicing"


# -- fault injection ---------------------------------------------------------


def _faulted_governor() -> Tuple[Governor, FaultInjector]:
    injector = FaultInjector(FaultPlan(timeout_every=2))
    governor = Governor(on_budget="degrade", injector=injector)
    governor.start()
    return governor, injector


@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 5))
def test_fault_injection_byte_identical(seed):
    """Sequence-changing transforms stand down; output bytes still match."""
    program, db, domains, outputs = _random_case(seed)
    opt = optimize_program(program, db, domains)

    gov_plain, _ = _faulted_governor()
    baseline = render_result(
        _run_plain(program, db, domains, governor=gov_plain), outputs
    )
    gov_opt, injector = _faulted_governor()
    optimized = render_result(
        _run_optimized(program, db, domains, opt, governor=gov_opt), outputs
    )
    assert optimized == baseline, f"seed {seed} diverged under fault injection"
    if injector.calls >= 2:  # the every-2nd-call plan needs 2 calls to fire
        ratio = injector.total_injected / injector.calls
        assert ratio >= 0.3, f"injected only {ratio:.0%} of solver calls"


def test_fault_injection_exercised():
    """Across the sweep the fault plan actually fires (≥30% of calls)."""
    calls = injected = 0
    for seed in range(0, SEED_COUNT, 5):
        program, db, domains, outputs = _random_case(seed)
        opt = optimize_program(program, db, domains)
        governor, injector = _faulted_governor()
        _run_optimized(program, db, domains, opt, governor=governor)
        calls += injector.calls
        injected += injector.total_injected
    assert calls > 0, "fault plan never exercised"
    assert injected / calls >= 0.3


def test_transforms_stand_down_under_injection():
    program, db, domains, _ = _random_case(11)
    opt = optimize_program(program, db, domains)
    governor, _ = _faulted_governor()
    assert opt.precheck_for(governor) is None
    assert opt.inactive_for(governor) == frozenset()
    assert opt.precheck_for(None) is opt.precheck
    plain = Governor(on_budget="degrade")
    plain.start()
    assert opt.precheck_for(plain) is opt.precheck
    assert opt.inactive_for(plain) == opt.inactive


# -- zero false positives ----------------------------------------------------


def _f016_seeds() -> List[int]:
    hits = []
    for seed in range(SEED_COUNT):
        program, db, domains, _ = _random_case(seed)
        opt = optimize_program(program, db, domains)
        if opt.inactive:
            hits.append(seed)
        if len(hits) >= 25:
            break
    return hits


@pytest.mark.parametrize("seed", _f016_seeds())
def test_f016_rules_truly_contribute_nothing(seed):
    """Deactivating every F016-flagged rule in the *unoptimized* pipeline
    must not change a single output byte — the enumeration oracle for
    'this rule can never contribute'."""
    program, db, domains, outputs = _random_case(seed)
    opt = optimize_program(program, db, domains)
    assert opt.inactive
    with_rules = render_result(_run_plain(program, db, domains), outputs)
    solver = ConditionSolver(domains, memo=None)
    without = render_result(
        evaluate(program, db, solver=solver, inactive_rules=opt.inactive),
        outputs,
    )
    assert without == with_rules


def test_f017_conjuncts_hold_in_every_world():
    """Every static-true conjunct holds, and every static-false conjunct
    fails, under *all* assignments over the declared domains."""
    checked = 0
    for seed in range(SEED_COUNT):
        program, db, domains, _ = _random_case(seed)
        opt = optimize_program(program, db, domains)
        for cls in opt.classifications:
            for conjunct in cls.conjuncts:
                if conjunct.tag not in ("static-true", "static-false"):
                    continue
                cvars = sorted(conjunct.condition.cvariables(), key=lambda c: c.name)
                verdicts = {
                    conjunct.condition.evaluate(assignment)
                    for assignment in iter_assignments(cvars, domains)
                }
                if conjunct.tag == "static-true":
                    assert verdicts == {True}, (seed, str(conjunct.condition))
                else:
                    assert verdicts == {False}, (seed, str(conjunct.condition))
                checked += 1
        if checked >= 60:
            break
    assert checked > 0, "fuzz corpus produced no statically classified conjuncts"


# -- dataflow facts are sound over-approximations ----------------------------


@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 11))
def test_dataflow_facts_over_approximate_every_world(seed):
    """Any value a predicate argument takes in any possible world must be
    contained in the abstract fact the fixpoint computed for that slot."""
    program, db, domains, outputs = _random_case(seed)
    flow = analyze(program, db, domains)
    result = _run_plain(program, db, domains)
    # Both declared variables, not just the database's: rule conjuncts can
    # mention $u/$v even when no stored row does.
    cvars = [CVariable("u"), CVariable("v")]
    for assignment in iter_assignments(cvars, domains):
        for name in outputs:
            if name not in result:
                continue
            for tup in result.table(name):
                if not tup.condition.evaluate(assignment):
                    continue
                for index, term in enumerate(tup.values):
                    if isinstance(term, CVariable):
                        value = assignment[term].value
                    else:
                        value = term.value
                    fact = flow.fact(name, index)
                    assert fact.contains(value), (
                        f"seed {seed}: {name}[{index}] = {value!r} "
                        f"outside abstract value {fact.describe()}"
                    )
