"""The sound interval+equality abstract domain."""

import pytest

from repro.ctable.condition import (
    FALSE,
    TRUE,
    Comparison,
    LinearAtom,
    conjoin,
    disjoin,
    eq,
    le,
    lt,
    ne,
)
from repro.ctable.terms import Constant, CVariable, Variable, cvar
from repro.analysis.abstract import (
    AbstractResult,
    abstract_sat,
    prove_unsat,
    prove_valid,
)

x, y, z = cvar("x"), cvar("y"), cvar("z")


def gt(a, b):
    return Comparison(a, ">", b).constant_fold()


def ge(a, b):
    return Comparison(a, ">=", b).constant_fold()


class TestProveUnsat:
    def test_empty_interval(self):
        assert prove_unsat(conjoin([lt(x, 5), gt(x, 10)]))

    def test_eq_neq_same_constant(self):
        assert prove_unsat(conjoin([eq(x, 1), ne(x, 1)]))

    def test_two_different_pins(self):
        assert prove_unsat(conjoin([eq(x, 1), eq(x, 2)]))

    def test_equality_chain_with_disequality(self):
        assert prove_unsat(conjoin([eq(x, y), eq(y, z), ne(x, z)]))

    def test_pinned_classes_merged_unequal(self):
        assert prove_unsat(conjoin([eq(x, 1), eq(y, 2), eq(x, y)]))

    def test_pinned_classes_order_violation(self):
        assert prove_unsat(conjoin([eq(x, 5), eq(y, 3), lt(x, y)]))

    def test_strict_cycle(self):
        assert prove_unsat(conjoin([lt(x, y), lt(y, z), lt(z, x)]))

    def test_strict_cycle_with_weak_edges(self):
        assert prove_unsat(conjoin([lt(x, y), le(y, z), le(z, x)]))

    def test_strict_self_after_merge(self):
        assert prove_unsat(conjoin([eq(x, y), lt(x, y)]))

    def test_linear_pooled(self):
        a = LinearAtom([x, y], "=", 1)
        b = LinearAtom([x, y], "=", 2)
        assert prove_unsat(conjoin([a, b]))

    def test_linear_interval(self):
        a = LinearAtom([x, y], "<", 1)
        b = LinearAtom([x, y], ">", 2)
        assert prove_unsat(conjoin([a, b]))

    def test_case_split_over_disjunction(self):
        cond = conjoin([disjoin([lt(x, 0), gt(x, 10)]), eq(x, 5)])
        assert prove_unsat(cond)

    def test_disjunction_all_arms_unsat(self):
        arm1 = conjoin([lt(x, 0), gt(x, 1)])
        arm2 = conjoin([eq(y, 1), ne(y, 1)])
        assert prove_unsat(disjoin([arm1, arm2]))

    def test_program_variables_count_too(self):
        v = Variable("n")
        assert prove_unsat(conjoin([eq(v, 1), ne(v, 1)]))

    def test_constant_left_orientation(self):
        # Both construction orders must land in the same abstract facts.
        a = Comparison(Constant(1), "=", Variable("n"))
        b = Comparison(Variable("n"), "!=", Constant(1))
        assert prove_unsat(conjoin([a, b]))

    def test_false_literal(self):
        assert prove_unsat(FALSE)


class TestProveUnsatNegative:
    """Satisfiable (or undecided) conditions must never be reported."""

    def test_satisfiable_interval(self):
        assert not prove_unsat(conjoin([gt(x, 1), lt(x, 5)]))

    def test_plain_disequality(self):
        assert not prove_unsat(ne(x, y))

    def test_tight_but_nonempty(self):
        assert not prove_unsat(conjoin([ge(x, 5), le(x, 5)]))

    def test_order_chain_without_cycle(self):
        assert not prove_unsat(conjoin([lt(x, y), lt(y, z)]))

    def test_sat_disjunction_arm(self):
        cond = conjoin([disjoin([lt(x, 0), gt(x, 10)]), eq(x, 20)])
        assert not prove_unsat(cond)

    def test_true_literal(self):
        assert not prove_unsat(TRUE)


class TestProveValid:
    def test_excluded_middle(self):
        assert prove_valid(disjoin([lt(x, 5), ge(x, 5)]))

    def test_eq_or_neq(self):
        assert prove_valid(disjoin([eq(x, y), ne(x, y)]))

    def test_reflexive_equality(self):
        assert prove_valid(eq(x, x))

    def test_not_valid_single_bound(self):
        assert not prove_valid(lt(x, 5))

    def test_not_valid_disjunction_with_gap(self):
        # x < 5 ∨ x > 5 misses x = 5.
        assert not prove_valid(disjoin([lt(x, 5), gt(x, 5)]))

    def test_true_literal(self):
        assert prove_valid(TRUE)


class TestAbstractSat:
    def test_classification(self):
        assert abstract_sat(conjoin([eq(x, 1), ne(x, 1)])) is AbstractResult.UNSAT
        assert abstract_sat(disjoin([eq(x, 1), ne(x, 1)])) is AbstractResult.VALID
        assert abstract_sat(eq(x, 1)) is AbstractResult.UNKNOWN

    def test_budget_degrades_to_unknown_not_crash(self):
        # 2^10 case splits blow the budget; the verdict must degrade.
        arms = [
            disjoin([eq(cvar(f"v{i}"), 0), eq(cvar(f"v{i}"), 1)]) for i in range(10)
        ]
        contradiction = conjoin([eq(x, 1), ne(x, 1)])
        cond = conjoin(arms + [contradiction])
        # Still UNSAT: the flat contradiction is found without splitting.
        assert prove_unsat(cond)
        # A contradiction hidden behind the splits is abandoned soundly.
        hidden = conjoin(
            [disjoin([conjoin([eq(cvar(f"w{i}"), 0), ne(cvar(f"w{i}"), 0)])] * 2)
             for i in range(10)]
        )
        assert isinstance(prove_unsat(hidden), bool)
