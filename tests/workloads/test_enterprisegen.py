"""Random enterprise scenario generation."""

import pytest

from repro.ctable.terms import CVariable
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import Constraint
from repro.verify.subsumption import SubsumptionVerdict, check_subsumption
from repro.workloads.enterprisegen import ScenarioConfig, generate_scenario


class TestGeneration:
    def test_deterministic(self):
        a = generate_scenario(ScenarioConfig(seed=3))
        b = generate_scenario(ScenarioConfig(seed=3))
        assert a.database.table("R").tuples() == b.database.table("R").tuples()

    def test_sizes_scale(self):
        small = generate_scenario(ScenarioConfig(subnets=2, servers=2, seed=1))
        large = generate_scenario(ScenarioConfig(subnets=4, servers=4, seed=1))
        assert len(large.subnets) == 4
        assert len(large.database.table("Fw")) >= len(
            small.database.table("Fw")
        )

    def test_unknown_entries_budgeted(self):
        scenario = generate_scenario(ScenarioConfig(unknown_entries=4, seed=9))
        cvars = scenario.database.cvariables()
        assert 0 < len(cvars) <= 4
        # every unknown got a domain from its column
        for v in cvars:
            assert scenario.domains.domain_of(v).is_finite

    def test_zero_unknowns_regular(self):
        scenario = generate_scenario(ScenarioConfig(unknown_entries=0, seed=9))
        assert not scenario.database.cvariables()

    def test_target_subsumed_by_policy(self):
        scenario = generate_scenario(ScenarioConfig(seed=4))
        solver = ConditionSolver(scenario.domains)
        result = check_subsumption(
            Constraint("target", scenario.target),
            [Constraint("policy", scenario.policies[0])],
            solver,
            schemas=scenario.schemas,
            column_domains=scenario.column_domains,
        )
        assert result.verdict is SubsumptionVerdict.SUBSUMED
