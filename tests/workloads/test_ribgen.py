"""Synthetic RIB generation and its dump format."""

import pytest

from repro.workloads.ribgen import (
    RibConfig,
    dump_rib,
    generate_as_graph,
    generate_rib,
    parse_rib,
)


@pytest.fixture(scope="module")
def routes():
    return generate_rib(RibConfig(prefixes=40, as_count=60, seed=11))


class TestGeneration:
    def test_requested_count(self, routes):
        assert len(routes) == 40

    def test_deterministic(self, routes):
        again = generate_rib(RibConfig(prefixes=40, as_count=60, seed=11))
        assert again == routes

    def test_seed_changes_output(self, routes):
        other = generate_rib(RibConfig(prefixes=40, as_count=60, seed=12))
        assert other != routes

    def test_paths_per_prefix(self, routes):
        # the generator aims for 5; graph structure may yield fewer
        assert all(1 <= len(r.paths) <= 5 for r in routes)
        assert sum(len(r.paths) for r in routes) / len(routes) > 3

    def test_paths_loop_free(self, routes):
        for r in routes:
            for path in r.paths:
                assert len(set(path)) == len(path)

    def test_paths_share_endpoints(self, routes):
        for r in routes:
            starts = {p[0] for p in r.paths}
            ends = {p[-1] for p in r.paths}
            assert len(starts) == 1 and len(ends) == 1

    def test_realistic_lengths(self, routes):
        lengths = [len(p) for r in routes for p in r.paths]
        assert max(lengths) <= RibConfig().max_path_len + 1
        assert 2 <= sum(lengths) / len(lengths) <= 7

    def test_unique_prefixes(self, routes):
        prefixes = [r.prefix for r in routes]
        assert len(set(prefixes)) == len(prefixes)

    def test_as_graph_heavy_tailed(self):
        graph = generate_as_graph(RibConfig(as_count=100, seed=5))
        degrees = sorted((d for _, d in graph.degree()), reverse=True)
        assert degrees[0] > 3 * degrees[len(degrees) // 2]


class TestDumpFormat:
    def test_roundtrip(self, routes):
        assert parse_rib(dump_rib(routes)) == routes

    def test_comments_and_blank_lines(self):
        text = "# a comment\n\np0|A B|A C B\n"
        (route,) = parse_rib(text)
        assert route.prefix == "p0"
        assert route.paths == (("A", "B"), ("A", "C", "B"))

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            parse_rib("justaprefix\n")
