"""Topology generators."""

import pytest

from repro.solver.interface import ConditionSolver
from repro.network.reachability import ReachabilityAnalyzer
from repro.workloads.topologen import fat_tree_frr, grid_frr, random_frr, ring_frr


class TestRing:
    def test_shape(self):
        config = ring_frr(5)
        assert len(config.state_variables) == 5
        assert config.topology.has_link(0, 1)
        assert config.topology.has_link(0, 4)  # detour

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring_frr(2)

    def test_survives_single_failure(self):
        config = ring_frr(4)
        solver = ConditionSolver(config.domain_map())
        analyzer = ReachabilityAnalyzer(config.database(), solver)
        analyzer.compute()
        # 0 reaches 2 even when the (0,1) primary fails
        world = config.world_of([(0, 1)])
        assert analyzer.holds_in_world(0, 2, world)


class TestGrid:
    def test_shape(self):
        config = grid_frr(2, 3)
        # east links: 2 rows × 2, south links: 1×3 → 7 protected
        assert len(config.state_variables) == 7

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            grid_frr(1, 5)

    def test_corner_to_corner_reachable_when_all_up(self):
        config = grid_frr(2, 2)
        solver = ConditionSolver(config.domain_map())
        analyzer = ReachabilityAnalyzer(config.database(), solver)
        analyzer.compute()
        world = config.world_of([])
        assert analyzer.holds_in_world("g0_0", "g1_1", world)


class TestFatTree:
    def test_shape_k4(self):
        config = fat_tree_frr(4)
        # 4 pods × 2 edge switches: 8 protected uplinks
        assert len(config.state_variables) == 8
        assert "core0" in config.topology

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            fat_tree_frr(3)

    def test_uplink_failure_reroutes_through_sibling(self):
        config = fat_tree_frr(4)
        solver = ConditionSolver(config.domain_map())
        analyzer = ReachabilityAnalyzer(config.database(), solver)
        analyzer.compute()
        # edge p0_edge0's primary is p0_agg0; fail it and the sibling
        # aggregation switch must still provide a path to a core
        world = config.world_of([("p0_edge0", "p0_agg0")])
        assert analyzer.holds_in_world("p0_edge0", "core2", world)


class TestRandom:
    def test_deterministic(self):
        a = random_frr(20, 5, seed=3)
        b = random_frr(20, 5, seed=3)
        assert [p.state_var for p in a.protected_links] == [
            p.state_var for p in b.protected_links
        ]

    def test_protected_count(self):
        config = random_frr(20, 7, seed=1)
        assert len(config.state_variables) == 7

    def test_too_many_protected_rejected(self):
        with pytest.raises(ValueError):
            random_frr(4, 1000, seed=1)

    def test_analyzable(self):
        config = random_frr(12, 4, seed=5)
        solver = ConditionSolver(config.domain_map())
        analyzer = ReachabilityAnalyzer(config.database(), solver)
        table = analyzer.compute()
        assert len(table) > 0
