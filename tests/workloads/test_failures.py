"""Failure-pattern families."""

import pytest

from repro.ctable.condition import LinearAtom
from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import BOOL_DOMAIN, DomainMap
from repro.solver.enumerate import count_models
from repro.workloads.failures import (
    all_up,
    at_least_k_failures,
    at_most_k_failures,
    exactly_k_failures,
    must_include_failure,
)

VARS = [CVariable(f"l{i}") for i in range(4)]
DOMAINS = DomainMap({v: BOOL_DOMAIN for v in VARS})


def worlds(cond):
    return count_models(cond, DOMAINS, variables=VARS)


class TestPatterns:
    def test_exactly_k(self):
        # C(4,2) = 6 worlds with exactly 2 failures
        assert worlds(exactly_k_failures(VARS, 2)) == 6

    def test_exactly_zero_is_all_up(self):
        assert worlds(exactly_k_failures(VARS, 0)) == 1
        assert worlds(all_up(VARS)) == 1

    def test_at_least_k(self):
        # ≥1 failure: 16 - 1 = 15
        assert worlds(at_least_k_failures(VARS, 1)) == 15

    def test_at_most_k(self):
        # ≤1 failure: 1 + 4 = 5
        assert worlds(at_most_k_failures(VARS, 1)) == 5

    def test_complementarity(self):
        for k in range(5):
            total = worlds(at_most_k_failures(VARS, k)) + worlds(
                at_least_k_failures(VARS, k + 1) if k < 4 else exactly_k_failures(VARS, 0)
            )
            if k < 4:
                assert total == 16

    def test_must_include_failure(self):
        cond = must_include_failure(exactly_k_failures(VARS, 2), VARS[0])
        # l0 down + one of the remaining 3 down: 3 worlds
        assert worlds(cond) == 3

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            exactly_k_failures(VARS, 5)
        with pytest.raises(ValueError):
            at_least_k_failures(VARS, -1)
        with pytest.raises(ValueError):
            exactly_k_failures([], 0)

    def test_shapes(self):
        assert isinstance(exactly_k_failures(VARS, 1), LinearAtom)
        assert isinstance(at_least_k_failures(VARS, 1), LinearAtom)
