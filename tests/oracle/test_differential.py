"""Differential tests: fauré answers vs. the world-enumeration oracle.

Three regimes per representative program:

* **memo on** (a fresh shared table) — the default pipeline setup;
* **memo off** (``memo=None``) — the ``--no-memo`` escape hatch; the
  rendered answers must be *byte-identical* to the memoized run;
* **fault injection** — ≥30% of governed solver calls raise, the
  governor degrades them to UNKNOWN, and the (less simplified) answer
  must still match ground truth in every world, with memoization both
  on and off.
"""

import pytest

from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.solver.memo import MemoTable

from .oracle import CASES, assert_matches_worlds, render_result, run_faure


@pytest.fixture(params=CASES, ids=[c.name for c in CASES])
def case(request):
    return request.param


def test_memo_on_matches_every_world(case):
    result = run_faure(case, memo=MemoTable())
    worlds = assert_matches_worlds(case, result)
    assert worlds > 1  # the database really is uncertain


def test_memo_off_matches_every_world(case):
    result = run_faure(case, memo=None)
    assert_matches_worlds(case, result)


def test_memo_on_off_byte_identical(case):
    with_memo = run_faure(case, memo=MemoTable())
    without = run_faure(case, memo=None)
    assert render_result(with_memo, case.outputs) == render_result(
        without, case.outputs
    )


@pytest.mark.parametrize("memo_factory", [MemoTable, lambda: None], ids=["memo", "no-memo"])
def test_fault_injection_matches_every_world(case, memo_factory):
    """≥30% injected faults: degraded answers keep per-world semantics."""
    injector = FaultInjector(FaultPlan(timeout_every=2))
    governor = Governor(on_budget="degrade", injector=injector)
    governor.start()
    result = run_faure(case, memo=memo_factory(), governor=governor)
    assert_matches_worlds(case, result)
    assert injector.calls > 0, "fault plan never exercised"
    ratio = injector.total_injected / injector.calls
    assert ratio >= 0.3, f"injected only {ratio:.0%} of solver calls"


def _run_optimized(case, governor=None):
    """Evaluate with the ``--optimize`` pipeline: narrowed solver,
    precheck, deactivated rules (no slicing — every output is compared)."""
    from repro.analysis.optimize import optimize_program
    from repro.faurelog.evaluation import FaureEvaluator
    from repro.solver.interface import ConditionSolver

    opt = optimize_program(case.program, case.database, case.domains)
    solver = ConditionSolver(opt.narrowed, governor=governor, memo=None)
    evaluator = FaureEvaluator(
        case.database,
        solver=solver,
        governor=governor,
        precheck=opt.precheck_for(governor),
        inactive_rules=opt.inactive_for(governor),
    )
    return evaluator.evaluate(opt.sliced)


def test_optimizer_on_off_byte_identical(case):
    baseline = run_faure(case, memo=None)
    optimized = _run_optimized(case)
    assert render_result(optimized, case.outputs) == render_result(
        baseline, case.outputs
    )


def test_optimizer_fault_injection_byte_identical(case):
    """Under ≥30% injected faults the optimizer's sequence-changing
    transformations stand down and the rendered bytes still match."""

    def faulted():
        injector = FaultInjector(FaultPlan(timeout_every=2))
        governor = Governor(on_budget="degrade", injector=injector)
        governor.start()
        return governor, injector

    gov_plain, _ = faulted()
    baseline = run_faure(case, memo=None, governor=gov_plain)
    gov_opt, injector = faulted()
    optimized = _run_optimized(case, governor=gov_opt)
    assert render_result(optimized, case.outputs) == render_result(
        baseline, case.outputs
    )
    assert injector.calls > 0, "fault plan never exercised"
    ratio = injector.total_injected / injector.calls
    assert ratio >= 0.3, f"injected only {ratio:.0%} of solver calls"
