"""Differential fuzz: the solver fast path vs. the world oracle.

The interval/atom semi-decision procedure (:mod:`repro.solver.atoms`)
answers ``True``/``False`` only when it can *prove* the verdict, and
``None`` otherwise.  Over small finite domains every one of its claims
is checkable by brute force: enumerate all assignments and evaluate.
This suite throws ≥500 seeded random conditions at it and demands

* ``fast_sat`` / ``fast_implies`` never contradict world enumeration;
* the full solver produces **byte-identical** verdict streams with the
  fast path on and off (tier 0 is a pure accelerator);
* memoization on/off does not change a single verdict;
* under ≥30% fault injection every definite verdict still matches the
  fault-free stream (faults only ever degrade to UNKNOWN);
* the witness (countermodel) cache — re-asking one antecedent against a
  growing disjunction, the ``is_new`` dedup shape — stays sound.
"""

import random

import pytest

from repro.ctable.condition import (
    And,
    Comparison,
    Condition,
    LinearAtom,
    Or,
    conjoin,
    disjoin,
    eq,
)
from repro.ctable.terms import Constant, CVariable
from repro.ctable.worlds import iter_assignments
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.robustness.verdict import Trivalent, Verdict
from repro.solver import atoms
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable

SEED = 20260808
N_CONDITIONS = 500

NUM_VARS = [CVariable("w0"), CVariable("w1"), CVariable("w2")]
STR_VAR = CVariable("s0")
NUM_VALUES = [0, 1, 2]
STR_VALUES = ["a", "b", "c"]
ORDER_OPS = ["=", "!=", "<", "<=", ">", ">="]


def _domains() -> DomainMap:
    mapping = {v: FiniteDomain(NUM_VALUES) for v in NUM_VARS}
    mapping[STR_VAR] = FiniteDomain(STR_VALUES)
    return DomainMap(mapping)


DOMAINS = _domains()
ALL_VARS = NUM_VARS + [STR_VAR]


def _gen_atom(rng: random.Random) -> Condition:
    kind = rng.randrange(5)
    if kind == 0:  # numeric var-const (sometimes outside the domain)
        var = rng.choice(NUM_VARS)
        value = rng.choice(NUM_VALUES + [3, -1])
        return Comparison(var, rng.choice(ORDER_OPS), Constant(value))
    if kind == 1:  # numeric var-var
        a, b = rng.sample(NUM_VARS, 2)
        return Comparison(a, rng.choice(ORDER_OPS), b)
    if kind == 2:  # string var-const, equality fragment
        value = rng.choice(STR_VALUES + ["z"])
        return Comparison(STR_VAR, rng.choice(["=", "!="]), Constant(value))
    if kind == 3:  # linear sum over a numeric subset
        k = rng.randrange(1, len(NUM_VARS) + 1)
        vs = rng.sample(NUM_VARS, k)
        return LinearAtom(vs, rng.choice(ORDER_OPS), rng.randrange(0, 5))
    # pinning equality — the §4 hot-path shape
    var = rng.choice(ALL_VARS)
    pool = STR_VALUES if var is STR_VAR else NUM_VALUES
    return eq(var, rng.choice(pool))


def _gen_condition(rng: random.Random, depth: int = 2) -> Condition:
    if depth == 0 or rng.random() < 0.4:
        return _gen_atom(rng)
    children = [_gen_condition(rng, depth - 1) for _ in range(rng.randrange(2, 4))]
    return conjoin(children) if rng.random() < 0.6 else disjoin(children)


def _conditions() -> list:
    rng = random.Random(SEED)
    return [_gen_condition(rng) for _ in range(N_CONDITIONS)]


CONDITIONS = _conditions()


def _worlds(*conds: Condition):
    cvars = set()
    for c in conds:
        cvars |= c.cvariables()
    return iter_assignments(sorted(cvars, key=lambda v: v.name), DOMAINS)


def _ground_sat(cond: Condition) -> bool:
    return any(cond.evaluate(w) for w in _worlds(cond))


def _ground_implies(antecedent: Condition, consequent: Condition) -> bool:
    return all(
        consequent.evaluate(w)
        for w in _worlds(antecedent, consequent)
        if antecedent.evaluate(w)
    )


def _pairs() -> list:
    rng = random.Random(SEED + 1)
    pool = CONDITIONS
    return [
        (pool[rng.randrange(len(pool))], pool[rng.randrange(len(pool))])
        for _ in range(N_CONDITIONS)
    ]


def test_fast_sat_never_contradicts_oracle():
    decided = 0
    for cond in CONDITIONS:
        fast = atoms.fast_sat(cond, DOMAINS)
        if fast is None:
            continue
        decided += 1
        assert fast == _ground_sat(cond), f"fast_sat lied on {cond!r}"
    assert decided > 50, "fast path decided almost nothing — fuzzer off target"


def test_fast_implies_never_contradicts_oracle():
    decided = 0
    for antecedent, consequent in _pairs():
        fast = atoms.fast_implies(antecedent, consequent, DOMAINS)
        if fast is None:
            continue
        decided += 1
        assert fast == _ground_implies(antecedent, consequent), (
            f"fast_implies lied on {antecedent!r} ⊨ {consequent!r}"
        )
    assert decided > 50, "fast path decided almost nothing — fuzzer off target"


def _solver(fast_path: bool = True, memo="fresh", governor=None) -> ConditionSolver:
    table = MemoTable() if memo == "fresh" else memo
    return ConditionSolver(
        domains=DOMAINS, memo=table, fast_path=fast_path, governor=governor
    )


def _sat_stream(solver: ConditionSolver) -> list:
    return [solver.sat_verdict(cond) for cond in CONDITIONS]


def _implies_stream(solver: ConditionSolver) -> list:
    return [solver.implies_verdict(a, b) for a, b in _pairs()]


def test_fast_path_on_off_byte_identical():
    on, off = _solver(fast_path=True), _solver(fast_path=False)
    assert _sat_stream(on) == _sat_stream(off)
    assert _implies_stream(on) == _implies_stream(off)
    assert on.stats.fast_path_hits > 0, "fast path never fired"
    assert off.stats.fast_path_hits == 0
    assert Verdict.UNKNOWN not in _sat_stream(off)


def test_memo_on_off_byte_identical():
    with_memo, without = _solver(memo="fresh"), _solver(memo=None)
    assert _sat_stream(with_memo) == _sat_stream(without)
    assert _implies_stream(with_memo) == _implies_stream(without)


def test_unknown_never_cached_under_faults():
    injector = FaultInjector(FaultPlan(timeout_every=2))
    governor = Governor(on_budget="degrade", injector=injector)
    governor.start()
    faulty = _solver(governor=governor)
    baseline_stream = _sat_stream(_solver())
    faulty_stream = _sat_stream(faulty)
    for got, expected in zip(faulty_stream, baseline_stream):
        assert got == expected or got is Verdict.UNKNOWN, (
            "an injected fault changed a definite verdict"
        )
    assert injector.calls > 0, "fault plan never exercised"
    ratio = injector.total_injected / injector.calls
    assert ratio >= 0.3, f"injected only {ratio:.0%} of solver calls"
    # Degraded verdicts must not stick: re-asking with the faults gone
    # (same solver, same memo) recovers every definite answer.
    governor.injector = None
    recovered = _sat_stream(faulty)
    assert recovered == baseline_stream


@pytest.mark.parametrize("memo", ["fresh", None], ids=["memo", "no-memo"])
def test_fault_injection_implies_parity(memo):
    injector = FaultInjector(FaultPlan(timeout_every=2))
    governor = Governor(on_budget="degrade", injector=injector)
    governor.start()
    faulty = _solver(memo=memo, governor=governor)
    baseline_stream = _implies_stream(_solver())
    for got, expected in zip(_implies_stream(faulty), baseline_stream):
        assert got == expected or got is Trivalent.UNKNOWN


def test_witness_cache_growing_disjunction():
    """The ``is_new`` shape: one antecedent vs. an ever-growing Or.

    Re-asking the same antecedent exercises the countermodel cache —
    each cached witness must be re-verified against the *current*
    consequent, so a disjunct that newly covers the witness may not be
    skipped.
    """
    rng = random.Random(SEED + 2)
    atoms._WITNESS_CACHE.clear()
    solver = _solver()
    checks = 0
    for _ in range(40):
        pins = [eq(v, rng.choice(NUM_VALUES)) for v in NUM_VARS]
        antecedent = conjoin(pins + [eq(STR_VAR, rng.choice(STR_VALUES))])
        stored: list = []
        for _ in range(6):
            stored.append(
                conjoin(
                    [eq(v, rng.choice(NUM_VALUES)) for v in rng.sample(NUM_VARS, 2)]
                )
            )
            consequent = disjoin(list(stored))
            got = solver.implies_verdict(antecedent, consequent)
            expected = _ground_implies(antecedent, consequent)
            assert got == (Trivalent.TRUE if expected else Trivalent.FALSE)
            checks += 1
    assert checks == 240
    assert atoms._WITNESS_CACHE, "growing-disjunction shape never cached a witness"


def test_witness_cache_rejects_stale_domains():
    """A cached countermodel from wider domains must be re-verified.

    The cache is keyed on the antecedent alone, so a second solver with
    *narrower* domains can look up a witness whose values its own
    domains no longer admit — ``_check_witness`` must reject it rather
    than report a refutation sourced from an inadmissible world.
    """
    v = CVariable("w0")
    antecedent = Comparison(v, ">=", Constant(0))
    consequent = eq(v, 0)
    wide = DomainMap({v: FiniteDomain([0, 1])})
    assert atoms.fast_implies(antecedent, consequent, wide) is False
    assert antecedent in atoms._WITNESS_CACHE  # countermodel {v: 1} cached
    narrow = DomainMap({v: FiniteDomain([0])})
    result = atoms.fast_implies(antecedent, consequent, narrow)
    assert result is not False, "stale witness leaked across domain maps"
