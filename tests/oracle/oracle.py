"""The differential world-enumeration oracle.

A fauré-log answer is a c-table; its meaning is the *set of regular
answers across every possible world*.  The oracle makes that meaning
executable: expand a small uncertain database into all of its worlds,
run the query per world with the independent ground evaluator
(:class:`repro.verify.baseline.GroundEvaluator` — plain datalog, no
conditions, no solver), and demand that instantiating the c-table answer
in each world yields exactly the ground answer.

Used by ``test_differential.py`` to pin down the memoization layer: the
per-world semantics must hold with the shared memo on, off, and under
heavy fault injection (where the solver degrades to UNKNOWN on a large
fraction of calls).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import CVariable
from repro.ctable.worlds import instantiate_database, iter_assignments
from repro.faurelog.evaluation import FaureEvaluator
from repro.faurelog.parser import parse_program
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import GroundEvaluator

__all__ = ["CASES", "OracleCase", "run_faure", "render_result", "assert_matches_worlds"]


class OracleCase:
    """One program + uncertain database + its finite world space."""

    def __init__(self, name: str, program_text: str, database: Database,
                 domains: DomainMap, outputs: Tuple[str, ...]):
        self.name = name
        self.program = parse_program(program_text)
        self.database = database
        self.domains = domains
        self.outputs = outputs

    def __repr__(self) -> str:
        return f"OracleCase({self.name})"


def _relational_db() -> Tuple[Database, DomainMap]:
    """A(x), B(x, y) over {0,1,2} with two uncertainty variables."""
    w0, w1 = CVariable("w0"), CVariable("w1")
    db = Database()
    a = db.create_table("A", ["x"])
    a.add([0], eq(w0, 0))
    a.add([1], ne(w0, 1))
    a.add([w1])
    b = db.create_table("B", ["x", "y"])
    b.add([0, 1])
    b.add([1, 2], disjoin([eq(w0, 1), eq(w1, 1)]))
    b.add([2, 0], conjoin([eq(w0, 0), ne(w1, 0)]))
    b.add([w0, w1], ne(w0, w1))
    domains = DomainMap({w0: FiniteDomain([0, 1, 2]), w1: FiniteDomain([0, 1, 2])})
    return db, domains


def _link_db() -> Tuple[Database, DomainMap]:
    """A §4-style network: Link(n1, n2) gated by {0,1} link states."""
    x, y, z = CVariable("x"), CVariable("y"), CVariable("z")
    db = Database()
    link = db.create_table("Link", ["n1", "n2"])
    link.add(["a", "b"], eq(x, 1))
    link.add(["b", "c"], eq(y, 1))
    link.add(["a", "d"], eq(x, 0))  # backup route when a-b is down
    link.add(["d", "c"], eq(z, 1))
    link.add(["c", "e"])
    domains = DomainMap({v: BOOL_DOMAIN for v in (x, y, z)})
    return db, domains


def _build_cases() -> List[OracleCase]:
    rel_db, rel_domains = _relational_db()
    link_db, link_domains = _link_db()
    return [
        OracleCase(
            "join",
            "Out(x, z) :- B(x, y), B(y, z).",
            rel_db, rel_domains, ("Out",),
        ),
        OracleCase(
            "filter-compare",
            "Out(x, y) :- B(x, y), A(x), x != y.",
            rel_db, rel_domains, ("Out",),
        ),
        OracleCase(
            "negation",
            "Out(x) :- A(x), not Blocked(x). Blocked(x) :- B(x, x).",
            rel_db, rel_domains, ("Out", "Blocked"),
        ),
        OracleCase(
            "recursion",
            "Reach(u, v) :- Link(u, v). Reach(u, v) :- Link(u, w), Reach(w, v).",
            link_db, link_domains, ("Reach",),
        ),
        OracleCase(
            "recursion-negation",
            """
            Cut(u) :- Node(u), not Reach(u, "e").
            Node(u) :- Link(u, v).
            Reach(u, v) :- Link(u, v).
            Reach(u, v) :- Link(u, w), Reach(w, v).
            """,
            link_db, link_domains, ("Cut", "Reach"),
        ),
    ]


#: The representative programs the oracle sweeps.
CASES: List[OracleCase] = _build_cases()


def run_faure(case: OracleCase, memo, governor=None) -> Database:
    """Evaluate the case's program with the given memo/governor setup."""
    solver = ConditionSolver(case.domains, governor=governor, memo=memo)
    evaluator = FaureEvaluator(case.database, solver=solver, governor=governor)
    return evaluator.evaluate(case.program)


def render_result(result: Database, outputs: Iterable[str]) -> str:
    """Deterministic full rendering of the answer tables (byte-compare)."""
    parts = []
    for name in outputs:
        table = result.table(name) if name in result else CTable(name, [])
        parts.append(table.pretty(max_rows=None))
    return "\n".join(parts)


def assert_matches_worlds(case: OracleCase, result: Database) -> int:
    """Per-world differential check; returns the number of worlds swept."""
    cvars = sorted(case.database.cvariables(), key=lambda v: v.name)
    worlds = 0
    for assignment in iter_assignments(cvars, case.domains):
        ground = GroundEvaluator(instantiate_database(case.database, assignment))
        truth = ground.run(case.program)
        for output in case.outputs:
            expected = truth.get(output, set())
            table = result.table(output) if output in result else CTable(output, [])
            got = set()
            for tup in table:
                if tup.condition.evaluate(assignment):
                    got.add(tuple(
                        assignment[v] if isinstance(v, CVariable) else v
                        for v in tup.values
                    ))
            assert got == expected, (
                f"{case.name}/{output} diverged in world {assignment}: "
                f"faure={sorted(got)} ground={sorted(expected)}"
            )
        worlds += 1
    return worlds
