"""Oracle regime for the shared verdict store: served ≡ computed.

The store's soundness claim (repro.parallel.shared_memo) is that a
verdict read from another process's log is indistinguishable from one
computed locally.  Here the claim meets ground truth: a "worker" memo
whose *only* warm source is a store seeded by a previous run must
produce answers byte-identical to every other regime and correct in
every possible world.
"""

import pytest

from repro.parallel.shared_memo import SharedMemoSession, reads_allowed
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.solver.memo import MemoTable

from .oracle import CASES, assert_matches_worlds, render_result, run_faure


@pytest.fixture(params=CASES, ids=[c.name for c in CASES])
def case(request):
    return request.param


def test_store_served_run_matches_every_world(case):
    """Round 1 computes and seeds the log; round 2 answers from it."""
    warm = MemoTable()
    baseline = run_faure(case, memo=warm)
    session = SharedMemoSession(warm)
    try:
        assert session.store.writes > 0
        served_memo = MemoTable()
        served_memo.backing = session.store.lookup_key
        served = run_faure(case, memo=served_memo)
        assert session.store.hits > 0, "round 2 never consulted the log"
        assert render_result(served, case.outputs) == render_result(
            baseline, case.outputs
        )
        assert_matches_worlds(case, served)
        # The served run is also byte-identical to the no-memo regime
        # (chaining with test_memo_on_off_byte_identical's guarantee).
        plain = run_faure(case, memo=None)
        assert render_result(served, case.outputs) == render_result(
            plain, case.outputs
        )
    finally:
        session.close()


def test_governed_run_writes_but_never_reads(case):
    """≥30% faults with a store attached: write-only, world-correct.

    An armed governor stands the read side down (reads_allowed) so the
    fault-injection schedule stays jobs-invariant; definite verdicts
    still flow *into* the log for ungoverned consumers.
    """
    memo = MemoTable()
    session = SharedMemoSession(memo)
    try:
        injector = FaultInjector(FaultPlan(timeout_every=2))
        governor = Governor(on_budget="degrade", injector=injector).start()
        assert not reads_allowed(governor)
        session.store.reads = False  # what the parallel plumbing does
        result = run_faure(case, memo=memo, governor=governor)
        assert_matches_worlds(case, result)
        assert session.store.hits == 0
        assert session.store.writes > 0, "no definite verdict reached the log"
    finally:
        session.close()
