"""Unit tests for the Governor: budgets, deadlines, ceilings, tickets."""

import pytest

from repro.ctable.condition import conjoin, disjoin, eq, ne
from repro.ctable.terms import CVariable
from repro.robustness import (
    BudgetExceeded,
    ConditionTooLarge,
    FaureError,
    Governor,
    SolverFailure,
    Trivalent,
    Verdict,
    WorkTicket,
)


class FakeClock:
    """Deterministic clock; advances only when told to."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


x = CVariable("x")
y = CVariable("y")


class TestExceptionHierarchy:
    def test_all_derive_from_faure_error(self):
        for cls in (BudgetExceeded, SolverFailure, ConditionTooLarge):
            assert issubclass(cls, FaureError)

    def test_budget_resource_tag(self):
        exc = BudgetExceeded("out of time", resource="deadline")
        assert exc.resource == "deadline"

    def test_condition_too_large_payload(self):
        exc = ConditionTooLarge("too big", atoms=12, limit=4)
        assert exc.atoms == 12 and exc.limit == 4


class TestVerdicts:
    def test_from_bool_roundtrip(self):
        assert Verdict.from_bool(True) is Verdict.SAT
        assert Verdict.from_bool(False) is Verdict.UNSAT
        assert Verdict.SAT.as_bool() is True
        assert Verdict.UNSAT.as_bool() is False

    def test_unknown_as_bool_raises(self):
        with pytest.raises(BudgetExceeded):
            Verdict.UNKNOWN.as_bool()
        with pytest.raises(BudgetExceeded):
            Trivalent.UNKNOWN.as_bool()

    def test_definiteness(self):
        assert Verdict.SAT.is_definite and Verdict.UNSAT.is_definite
        assert not Verdict.UNKNOWN.is_definite


class TestGovernorBudgets:
    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            Governor(on_budget="explode")

    def test_call_budget_exhaustion(self):
        gov = Governor(solver_call_budget=2)
        gov.start()
        gov.begin_solver_call()
        gov.begin_solver_call()
        with pytest.raises(BudgetExceeded) as info:
            gov.begin_solver_call()
        assert info.value.resource == "solver-calls"
        assert gov.events.budget_hits == 1

    def test_start_resets_call_counter(self):
        gov = Governor(solver_call_budget=1)
        gov.start()
        gov.begin_solver_call()
        gov.start()
        gov.begin_solver_call()  # fresh query, fresh budget

    def test_deadline(self):
        clock = FakeClock()
        gov = Governor(deadline_seconds=5.0, clock=clock)
        gov.start()
        gov.check_deadline()  # within budget
        clock.advance(6.0)
        with pytest.raises(BudgetExceeded) as info:
            gov.check_deadline()
        assert info.value.resource == "deadline"

    def test_ensure_started_is_idempotent(self):
        clock = FakeClock()
        gov = Governor(deadline_seconds=5.0, clock=clock)
        gov.ensure_started()
        clock.advance(3.0)
        gov.ensure_started()  # must NOT re-arm from the new now
        clock.advance(3.0)
        with pytest.raises(BudgetExceeded):
            gov.check_deadline()

    def test_condition_ceiling(self):
        gov = Governor(max_condition_atoms=2)
        gov.start()
        small = conjoin([eq(x, 1), ne(y, 2)])
        gov.admit(small)  # exactly at the ceiling
        big = disjoin([eq(x, 1), eq(x, 2), eq(x, 3)])
        with pytest.raises(ConditionTooLarge) as info:
            gov.admit(big)
        assert info.value.atoms == 3 and info.value.limit == 2
        assert gov.events.condition_rejections == 1

    def test_scale_grows_budgets(self):
        gov = Governor(deadline_seconds=1.0, solver_call_budget=10, steps_per_call=100)
        gov.scale(4.0)
        assert gov.deadline_seconds == 4.0
        assert gov.solver_call_budget == 40
        assert gov.steps_per_call == 400
        assert gov.events.retries == 1

    def test_events_ledger_roundtrip(self):
        gov = Governor(solver_call_budget=100)
        gov.start()
        gov.begin_solver_call()
        snapshot = gov.events.as_dict()
        assert snapshot["solver_calls"] == 1
        gov.events.reset()
        assert gov.events.as_dict()["solver_calls"] == 0


class TestWorkTicket:
    def test_step_budget(self):
        ticket = WorkTicket(None, steps=3)
        ticket.tick()
        ticket.tick(2)
        with pytest.raises(BudgetExceeded) as info:
            ticket.tick()
        assert info.value.resource == "steps"

    def test_unlimited_ticket(self):
        ticket = WorkTicket(None, steps=None)
        for _ in range(10_000):
            ticket.tick()
        assert ticket.remaining is None

    def test_sub_ticket_fractions(self):
        ticket = WorkTicket(None, steps=100)
        half = ticket.sub(0.5)
        assert half.steps == 50
        assert ticket.sub(1.0).steps == 100
        ticket.tick(40)
        assert ticket.sub(0.5).steps == 30

    def test_ticket_checks_governor_deadline(self):
        clock = FakeClock()
        gov = Governor(deadline_seconds=1.0, clock=clock)
        gov.start()
        ticket = WorkTicket(gov, steps=None)
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded):
            for _ in range(300):  # deadline checked every 256 ticks
                ticket.tick()
