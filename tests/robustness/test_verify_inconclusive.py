"""Verification under budget pressure: INCONCLUSIVE, never wrong.

A budget-starved check must say so explicitly — an INCONCLUSIVE verdict
with the reason — rather than hang or report a wrong HOLDS.  And because
verification is where definite answers matter, the verifier escalates:
retry the direct check with multiplied budgets until it decides or the
retry allowance runs out.
"""

import pytest

from repro.ctable.condition import eq, ne
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.robustness import FaultInjector, FaultPlan, Governor
from repro.solver.domains import BOOL_DOMAIN, DomainMap
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import Constraint, Status
from repro.verify.verifier import Level, RelativeCompleteVerifier

x = CVariable("x")
DOMAINS = DomainMap({x: BOOL_DOMAIN})

#: Panic iff some Link row is down (value 0) — conditional on x.
CONSTRAINT = "panic :- Link(u, s), s == 0."


def state_database():
    db = Database()
    link = db.create_table("Link", ["u", "s"])
    link.add(["a", x])  # up iff x == 1
    link.add(["b", 1])
    return db


def plain_check():
    solver = ConditionSolver(DOMAINS)
    constraint = Constraint.from_text("links-up", CONSTRAINT)
    return constraint.check(state_database(), solver)


def test_ungoverned_check_is_conditional():
    result = plain_check()
    assert result.status is Status.CONDITIONAL


def test_injected_budget_yields_inconclusive_not_wrong():
    governor = Governor(
        injector=FaultInjector(FaultPlan(timeout_every=1)), on_budget="degrade"
    )
    governor.start()
    solver = ConditionSolver(DOMAINS, governor=governor)
    constraint = Constraint.from_text("links-up", CONSTRAINT)
    result = constraint.check(state_database(), solver)
    assert result.status is Status.INCONCLUSIVE
    assert "budget" in result.detail


def test_call_budget_exhaustion_yields_inconclusive():
    governor = Governor(solver_call_budget=1, on_budget="degrade")
    governor.start()
    solver = ConditionSolver(DOMAINS, governor=governor)
    constraint = Constraint.from_text("links-up", CONSTRAINT)
    result = constraint.check(state_database(), solver)
    assert result.status is Status.INCONCLUSIVE


def test_verifier_retries_with_larger_budget_until_definite():
    # Budget of 1 call starves the first direct check; one x4 escalation
    # is enough for this tiny instance, so the ladder ends CONDITIONAL.
    governor = Governor(solver_call_budget=1, on_budget="degrade")
    governor.start()
    solver = ConditionSolver(DOMAINS, governor=governor)
    verifier = RelativeCompleteVerifier(
        [], solver, budget_retries=3, budget_growth=4.0
    )
    target = Constraint.from_text("links-up", CONSTRAINT)
    verdict = verifier.verify(target, state=state_database())
    assert verdict.status is Status.CONDITIONAL
    assert verdict.decided_by is Level.STATE
    assert governor.events.retries >= 1
    assert any("budget x" in step for step in verdict.trail)


def test_verifier_reports_inconclusive_when_retries_exhausted():
    # A permanent 100% fault rate cannot be out-scaled: after the retry
    # allowance the verifier must surface INCONCLUSIVE (ok is False).
    governor = Governor(
        injector=FaultInjector(FaultPlan(timeout_every=1)), on_budget="degrade"
    )
    governor.start()
    solver = ConditionSolver(DOMAINS, governor=governor)
    verifier = RelativeCompleteVerifier([], solver, budget_retries=2)
    target = Constraint.from_text("links-up", CONSTRAINT)
    verdict = verifier.verify(target, state=state_database())
    assert verdict.status is Status.INCONCLUSIVE
    assert not verdict.ok
    assert governor.events.retries == 2


def test_violation_direction_stays_sound_under_injection():
    # Panic under TRUE (certain violation): even with a 50% fault rate
    # the check must never answer HOLDS.
    db = Database()
    link = db.create_table("Link", ["u", "s"])
    link.add(["a", 0])
    governor = Governor(
        injector=FaultInjector(FaultPlan(timeout_every=2)), on_budget="degrade"
    )
    governor.start()
    solver = ConditionSolver(DOMAINS, governor=governor)
    constraint = Constraint.from_text("links-up", CONSTRAINT)
    result = constraint.check(db, solver)
    assert result.status in (Status.VIOLATED, Status.INCONCLUSIVE)
