"""Property-style soundness of every degradation path.

The central claim of ``docs/ROBUSTNESS.md``: keep-on-UNKNOWN changes
*nothing* about the possible-worlds semantics of a result c-table.  For
randomly generated small databases and a pool of program shapes, a run
with ≥ 30% of solver calls fault-injected to UNKNOWN must satisfy

    possible_worlds(degraded result) = possible_worlds(exact result)

world by world (⊇ holds trivially since = does), and with injection off
the governed run must be byte-identical to the ungoverned seed behavior
with zero UNKNOWN verdicts.
"""

import random

import pytest

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import CVariable
from repro.ctable.worlds import instantiate_table, iter_assignments
from repro.engine.algebra import ColumnRef, Join, Pred, Scan, Selection
from repro.engine.pipeline import run_eager, run_lazy
from repro.engine.stats import EvalStats
from repro.faurelog.evaluation import FaureEvaluator
from repro.faurelog.parser import parse_program
from repro.robustness import FaultInjector, FaultPlan, Governor
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

UNIVERSE = [0, 1, 2]
CVARS = [CVariable("w0"), CVariable("w1")]
DOMAINS = DomainMap({v: FiniteDomain(UNIVERSE) for v in CVARS})

PROGRAMS = [
    "Out(x, z) :- B(x, y), B(y, z).",
    "Out(x, y) :- B(x, y), A(x).",
    "Out(x, y) :- B(x, y), x != y.",
    "Out(x) :- A(x), not Blocked(x). Blocked(x) :- B(x, x).",
    "Out(x, y) :- B(x, y). Out(x, y) :- B(x, z), Out(z, y).",
]


def random_database(rng: random.Random) -> Database:
    conditions = [
        TRUE,
        eq(CVARS[0], 0),
        ne(CVARS[0], 1),
        eq(CVARS[1], 2),
        conjoin([eq(CVARS[0], 0), ne(CVARS[1], 0)]),
        disjoin([eq(CVARS[0], 1), eq(CVARS[1], 1)]),
    ]

    def value():
        if rng.random() < 0.25:
            return rng.choice(CVARS)
        return rng.choice(UNIVERSE)

    db = Database()
    a = db.create_table("A", ["x"])
    for _ in range(rng.randint(0, 3)):
        a.add([value()], rng.choice(conditions))
    b = db.create_table("B", ["x", "y"])
    for _ in range(rng.randint(1, 5)):
        b.add([value(), value()], rng.choice(conditions))
    return db


def worlds_of(table: CTable):
    """Map each total assignment to the instantiated relation."""
    cvars = sorted(table.cvariables(), key=lambda v: v.name)
    return {
        tuple(sorted((v.name, a[v]) for v in cvars)): instantiate_table(table, a)
        for a in iter_assignments(cvars, DOMAINS)
    }


def merged_worlds(tables):
    """World-by-world union across the result tables of one predicate set."""
    out = {}
    for table in tables:
        for key, rows in worlds_of(table).items():
            out.setdefault(key, frozenset())
            out[key] = out[key] | rows
    return out


def injected_solver(plan: FaultPlan) -> ConditionSolver:
    gov = Governor(injector=FaultInjector(plan), on_budget="degrade")
    gov.start()
    return ConditionSolver(DOMAINS, governor=gov)


@pytest.mark.parametrize("program_text", PROGRAMS)
@pytest.mark.parametrize("seed", [1, 7, 42, 2026])
def test_fixpoint_worlds_equal_under_injection(program_text, seed):
    """Degraded fixpoint results denote exactly the same possible worlds."""
    rng = random.Random(seed)
    db = random_database(rng)
    program = parse_program(program_text)

    exact = FaureEvaluator(db, solver=ConditionSolver(DOMAINS))
    exact_out = exact.evaluate(program).table("Out")

    solver = injected_solver(FaultPlan(timeout_every=2))  # 50% of calls
    degraded = FaureEvaluator(db, solver=solver)
    degraded_out = degraded.evaluate(program).table("Out")

    injector = solver.governor.injector
    if injector.calls >= 4:
        assert injector.total_injected / injector.calls >= 0.3
    # Every possible world agrees: degradation trades simplification,
    # never information (= implies the required ⊇).
    assert worlds_of(degraded_out) == worlds_of(exact_out), (program_text, seed)
    # The degraded table can only be larger (kept tuples, skipped merges).
    assert len(degraded_out) >= len(exact_out)


@pytest.mark.parametrize("seed", [3, 11, 99])
@pytest.mark.parametrize("plan", [
    FaultPlan(timeout_every=2),
    FaultPlan(timeout_every=3, failure_every=4),
    FaultPlan(timeout_every=3, failure_every=5, oversize_every=7),
])
def test_pipeline_prune_worlds_equal_under_injection(seed, plan):
    """run_lazy / run_eager degrade soundly under mixed fault classes."""
    rng = random.Random(seed)
    db = random_database(rng)
    plan_node = Selection(
        Join(Scan("B"), Scan("A"), on=[("y", "x")]),
        [Pred(ColumnRef("x"), "!=", ColumnRef("y"))],
    )

    exact, _ = run_lazy(plan_node, db, ConditionSolver(DOMAINS))
    for runner in (run_lazy, run_eager):
        solver = injected_solver(plan)
        stats = EvalStats()
        degraded, _ = runner(plan_node, db, solver, stats)
        assert worlds_of(degraded) == worlds_of(exact), (seed, runner.__name__)
        assert len(degraded) >= len(exact)
        # Kept-unknown tuples are surfaced in the stats ledger.
        assert stats.unknown_kept == solver.stats.unknown_verdicts or stats.unknown_kept <= solver.stats.unknown_verdicts


@pytest.mark.parametrize("program_text", PROGRAMS)
def test_no_injection_is_byte_identical(program_text):
    """A governed run without faults equals the ungoverned run exactly."""
    rng = random.Random(1234)
    db = random_database(rng)
    program = parse_program(program_text)

    baseline = FaureEvaluator(db, solver=ConditionSolver(DOMAINS))
    baseline_out = baseline.evaluate(program).table("Out")

    gov = Governor(
        deadline_seconds=300.0, solver_call_budget=10**9, steps_per_call=10**9
    )
    gov.start()
    governed = FaureEvaluator(db, solver=ConditionSolver(DOMAINS, governor=gov))
    governed_out = governed.evaluate(program).table("Out")

    assert [(t.values, t.condition) for t in governed_out] == [
        (t.values, t.condition) for t in baseline_out
    ]
    assert governed.stats.unknown_kept == 0
    assert governed.partial is False
    assert gov.events.unknown_verdicts == 0
