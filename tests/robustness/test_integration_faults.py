"""Acceptance: the §6 pipeline survives heavy solver faulting.

With ≥ 30% of solver calls forced to UNKNOWN, every pipeline query must
still terminate inside its deadline and produce a *sound* reachability
c-table — world-for-world the same answers as the exact run, since
keep-on-UNKNOWN never changes what any concrete failure combination can
observe.  With injection off, the governed run is byte-identical to the
ungoverned seed behavior and reports zero UNKNOWN verdicts.
"""

import itertools
import random

import pytest

from repro.network.forwarding import compile_forwarding
from repro.network.reachability import ReachabilityAnalyzer
from repro.robustness import FaultInjector, FaultPlan, Governor
from repro.solver.interface import ConditionSolver
from repro.workloads.failures import exactly_k_failures
from repro.workloads.ribgen import RibConfig, generate_rib


@pytest.fixture(scope="module")
def compiled():
    routes = generate_rib(RibConfig(prefixes=8, as_count=24, seed=7))
    return routes, compile_forwarding(routes)


def exact_analyzer(compiled_fw):
    analyzer = ReachabilityAnalyzer(
        compiled_fw.database(), ConditionSolver(compiled_fw.domains), per_flow=True
    )
    analyzer.compute()
    return analyzer


def injected_analyzer(compiled_fw, plan, deadline=30.0):
    governor = Governor(
        deadline_seconds=deadline,
        injector=FaultInjector(plan),
        on_budget="degrade",
    )
    governor.start()
    solver = ConditionSolver(compiled_fw.domains, governor=governor)
    analyzer = ReachabilityAnalyzer(compiled_fw.database(), solver, per_flow=True)
    analyzer.compute()
    return analyzer


def sample_worlds(variables, rng, count=6):
    """All-up, all-down, and a few random link-state combinations."""
    worlds = [
        {v: 1 for v in variables},
        {v: 0 for v in variables},
    ]
    for _ in range(count):
        worlds.append({v: rng.randint(0, 1) for v in variables})
    return worlds


def test_pipeline_terminates_and_stays_sound_at_50pct_unknown(compiled):
    routes, compiled_fw = compiled
    exact = exact_analyzer(compiled_fw)
    degraded = injected_analyzer(compiled_fw, FaultPlan(timeout_every=2))

    injector = degraded.solver.governor.injector
    if injector.calls:
        assert injector.total_injected / injector.calls >= 0.3

    rng = random.Random(2026)
    for route in routes:
        variables = list(compiled_fw.variables_of(route.prefix))
        endpoints = {(p[0], p[-1]) for p in route.paths}
        for assignment in sample_worlds(variables, rng):
            for src, dst in endpoints:
                assert degraded.holds_in_world(
                    src, dst, assignment, flow=route.prefix
                ) == exact.holds_in_world(src, dst, assignment, flow=route.prefix), (
                    route.prefix,
                    src,
                    dst,
                )


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(timeout_every=3, failure_every=4),
        FaultPlan(timeout_every=2, oversize_every=5),
    ],
)
def test_pattern_queries_terminate_under_mixed_faults(compiled, plan):
    routes, compiled_fw = compiled
    degraded = injected_analyzer(compiled_fw, plan)
    route = next(r for r in routes if len(r.paths) >= 2)
    variables = list(compiled_fw.variables_of(route.prefix))
    table, stats = degraded.under_pattern(
        exactly_k_failures(variables, 1), flow=route.prefix
    )
    # Terminated (no hang) with a well-formed result table; any tuple it
    # reports is for the requested flow.
    assert all(t.values[0].value == route.prefix for t in table)
    assert stats.tuples_generated >= len(table)


def test_injection_off_is_byte_identical_with_zero_unknowns(compiled):
    _, compiled_fw = compiled
    exact = exact_analyzer(compiled_fw)

    governor = Governor(deadline_seconds=300.0, solver_call_budget=10**9)
    governor.start()
    solver = ConditionSolver(compiled_fw.domains, governor=governor)
    governed = ReachabilityAnalyzer(compiled_fw.database(), solver, per_flow=True)
    governed.compute()

    assert [(t.values, t.condition) for t in governed.reach_table] == [
        (t.values, t.condition) for t in exact.reach_table
    ]
    assert governor.events.unknown_verdicts == 0
    assert solver.stats.unknown_verdicts == 0
    assert governed.stats.unknown_kept == 0
