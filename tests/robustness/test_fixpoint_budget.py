"""Fixpoint evaluation under mid-iteration budget exhaustion.

A blown deadline must stop the semi-naive loop cleanly: terminate (no
spin), report partial-result status, and leave the input database
exactly as it was (the IDB scratch tables are always unwound).
"""

import pytest

from repro.ctable.condition import eq
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.evaluation import FaureEvaluator, evaluate
from repro.faurelog.parser import parse_program
from repro.robustness import BudgetExceeded, Governor
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver


class SteppingClock:
    """Advances a fixed amount every time it is read."""

    def __init__(self, step):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


CHAIN = "Path(x, y) :- Edge(x, y). Path(x, y) :- Edge(x, z), Path(z, y)."


def chain_database(n=6):
    db = Database()
    edge = db.create_table("Edge", ["x", "y"])
    for i in range(n):
        edge.add([i, i + 1])
    return db


def make_solver(on_budget, clock_step=1.0, deadline=1.0):
    # With clock_step=1.0 the clock reads 1.0 at start() (deadline_at =
    # 2.0), passes the first per-rule deadline check at 2.0, and blows
    # the deadline at the second check (3.0) — i.e. deterministically
    # mid-iteration, after rule 1 fired and before rule 2 does.
    gov = Governor(
        deadline_seconds=deadline,
        on_budget=on_budget,
        clock=SteppingClock(clock_step),
    )
    gov.start()
    return ConditionSolver(DomainMap(), governor=gov)


def test_degrade_terminates_with_partial_status():
    db = chain_database()
    before = {name: len(db.table(name)) for name in db.names()}
    evaluator = FaureEvaluator(db, solver=make_solver("degrade"))
    result = evaluator.evaluate(parse_program(CHAIN))
    assert evaluator.partial is True
    assert evaluator.stats.partial_results == 1
    # Partial output under-approximates: strictly fewer Path facts than
    # the full transitive closure (6+5+4+3+2+1 = 21).
    assert len(result.table("Path")) < 21
    # Input database untouched: same tables, same sizes, no leaked IDB.
    assert {name: len(db.table(name)) for name in db.names()} == before
    assert "Path" not in db.names()


def test_fail_mode_raises_and_restores_database():
    db = chain_database()
    evaluator = FaureEvaluator(db, solver=make_solver("fail"))
    with pytest.raises(BudgetExceeded):
        evaluator.evaluate(parse_program(CHAIN))
    assert "Path" not in db.names()
    assert set(db.names()) == {"Edge"}


def test_unexhausted_budget_is_not_partial():
    db = chain_database()
    evaluator = FaureEvaluator(
        db, solver=make_solver("degrade", clock_step=0.0, deadline=60.0)
    )
    result = evaluator.evaluate(parse_program(CHAIN))
    assert evaluator.partial is False
    assert evaluator.stats.partial_results == 0
    assert len(result.table("Path")) == 21


def test_partial_flag_resets_between_runs():
    db = chain_database()
    solver = make_solver("degrade")
    evaluator = FaureEvaluator(db, solver=solver)
    evaluator.evaluate(parse_program(CHAIN))
    assert evaluator.partial is True
    # Re-arm generously: the second evaluation must clear the flag.
    solver.governor.deadline_seconds = 1e9
    solver.governor.start()
    evaluator.evaluate(parse_program(CHAIN))
    assert evaluator.partial is False


def test_partial_status_flows_into_stats():
    from repro.engine.stats import EvalStats

    db = chain_database()
    stats = EvalStats()
    evaluate(parse_program(CHAIN), db, solver=make_solver("degrade"), stats=stats)
    assert stats.partial_results == 1
    assert stats.degraded


def test_max_iterations_safety_valve_still_works():
    db = chain_database()
    evaluator = FaureEvaluator(
        db, solver=ConditionSolver(DomainMap()), max_iterations=1
    )
    with pytest.raises(ProgramError):
        evaluator.evaluate(parse_program(CHAIN))
