"""Determinism and scheduling of the fault-injection harness."""

import pytest

from repro.ctable.condition import eq
from repro.ctable.terms import CVariable
from repro.robustness import (
    BudgetExceeded,
    ConditionTooLarge,
    FaultInjector,
    FaultPlan,
    Governor,
    SolverFailure,
    Verdict,
)
from repro.solver.domains import BOOL_DOMAIN, DomainMap
from repro.solver.interface import ConditionSolver


def fire_kinds(injector, calls):
    """Drive the injector ``calls`` times; record which fault (if any) fired."""
    kinds = []
    for _ in range(calls):
        try:
            injector.on_solver_call()
            kinds.append(None)
        except BudgetExceeded:
            kinds.append("timeout")
        except SolverFailure:
            kinds.append("failure")
        except ConditionTooLarge:
            kinds.append("oversize")
    return kinds


class TestFaultPlan:
    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_every=0)

    def test_enabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan(failure_every=2).enabled


class TestFaultInjector:
    def test_every_nth_schedule(self):
        injector = FaultInjector(FaultPlan(timeout_every=3))
        kinds = fire_kinds(injector, 9)
        assert kinds == [None, None, "timeout"] * 3
        assert injector.injected["timeout"] == 3

    def test_deterministic_replay(self):
        plan = FaultPlan(timeout_every=2, failure_every=3)
        first = fire_kinds(FaultInjector(plan), 12)
        second = fire_kinds(FaultInjector(plan), 12)
        assert first == second

    def test_precedence_timeout_over_failure(self):
        # Call 6 matches both schedules; only the timeout fires.
        injector = FaultInjector(FaultPlan(timeout_every=2, failure_every=3))
        kinds = fire_kinds(injector, 6)
        assert kinds[5] == "timeout"
        assert kinds[2] == "failure"  # call 3: failure only

    def test_start_after_grace_period(self):
        injector = FaultInjector(FaultPlan(timeout_every=1, start_after=4))
        kinds = fire_kinds(injector, 6)
        assert kinds == [None, None, None, None, "timeout", "timeout"]

    def test_oversize_schedule(self):
        injector = FaultInjector(FaultPlan(oversize_every=2))
        kinds = fire_kinds(injector, 4)
        assert kinds == [None, "oversize", None, "oversize"]

    def test_reset(self):
        injector = FaultInjector(FaultPlan(timeout_every=1))
        fire_kinds(injector, 3)
        injector.reset()
        assert injector.calls == 0 and injector.total_injected == 0

    def test_governor_ledger_counts_injections(self):
        injector = FaultInjector(FaultPlan(timeout_every=2))
        gov = Governor(injector=injector)
        gov.start()
        gov.begin_solver_call()
        with pytest.raises(BudgetExceeded):
            gov.begin_solver_call()
        assert gov.events.injected_faults == 1


class TestInjectionThroughSolver:
    """Injected faults must surface as UNKNOWN (degrade) or raise (fail)."""

    def setup_method(self):
        self.x = CVariable("x")
        self.domains = DomainMap({self.x: BOOL_DOMAIN})
        self.condition = eq(self.x, 1)

    def solver(self, on_budget, plan):
        gov = Governor(injector=FaultInjector(plan), on_budget=on_budget)
        gov.start()
        return ConditionSolver(self.domains, governor=gov)

    def test_degrade_mode_yields_unknown(self):
        solver = self.solver("degrade", FaultPlan(timeout_every=1))
        assert solver.sat_verdict(self.condition) is Verdict.UNKNOWN
        assert solver.stats.unknown_verdicts == 1
        assert solver.governor.events.unknown_verdicts == 1

    def test_fail_mode_raises(self):
        solver = self.solver("fail", FaultPlan(timeout_every=1))
        with pytest.raises(BudgetExceeded):
            solver.sat_verdict(self.condition)

    def test_spurious_failure_degrades(self):
        solver = self.solver("degrade", FaultPlan(failure_every=1))
        assert solver.sat_verdict(self.condition) is Verdict.UNKNOWN

    def test_oversize_degrades(self):
        solver = self.solver("degrade", FaultPlan(oversize_every=1))
        assert solver.sat_verdict(self.condition) is Verdict.UNKNOWN

    def test_unknown_is_not_cached(self):
        # Call 1 injected → UNKNOWN; call 2 clean → definite, proving the
        # UNKNOWN was never cached.
        solver = self.solver("degrade", FaultPlan(timeout_every=2, start_after=-1))
        assert solver.sat_verdict(self.condition) is Verdict.UNKNOWN
        assert solver.sat_verdict(self.condition) is Verdict.SAT

    def test_time_accounted_even_when_raising(self):
        solver = self.solver("fail", FaultPlan(timeout_every=1))
        with pytest.raises(BudgetExceeded):
            solver.sat_verdict(self.condition)
        assert solver.stats.time_seconds >= 0.0
        assert solver.stats.sat_calls == 1
