"""Distinct CLI exit codes for distinct failure classes.

Scripts wrapping ``python -m repro`` need to tell "your input is broken"
(exit 2) apart from "the resource budget ran out" (exit 3) and "the
solver itself failed" (exit 4).
"""

import pytest

from repro.cli import (
    EXIT_BUDGET,
    EXIT_PARSE_ERROR,
    EXIT_SOLVER_FAILURE,
    main,
)
from repro.ctable import Database, cvar, eq
from repro.ctable.io import dump_database
from repro.robustness import SolverFailure
from repro.solver import BOOL_DOMAIN, DomainMap

RECURSIVE = "R(a,b) :- F(a,b). R(a,b) :- F(a,c), R(c,b)."


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    t = db.create_table("F", ["a", "b"])
    t.add([1, 2], eq(cvar("x"), 1))
    t.add([2, 3])
    path = tmp_path / "db.json"
    path.write_text(dump_database(db, DomainMap({cvar("x"): BOOL_DOMAIN})))
    return path


def test_parse_error_is_exit_2(db_file, capsys):
    code = main(["query", "--db", str(db_file), "--program", "((("])
    assert code == EXIT_PARSE_ERROR
    assert "error:" in capsys.readouterr().err


def test_missing_file_is_exit_2():
    assert main(
        ["query", "--db", "/no/such.json", "--program", "A(a) :- F(a, b)."]
    ) == EXIT_PARSE_ERROR


def test_blown_deadline_in_fail_mode_is_exit_3(db_file, capsys):
    code = main(
        [
            "query",
            "--db",
            str(db_file),
            "--program",
            RECURSIVE,
            "--deadline",
            "0",
            "--on-budget",
            "fail",
        ]
    )
    assert code == EXIT_BUDGET
    assert "budget error:" in capsys.readouterr().err


def test_exhausted_call_budget_in_fail_mode_is_exit_3(db_file):
    code = main(
        [
            "query",
            "--db",
            str(db_file),
            "--program",
            RECURSIVE,
            "--solver-budget",
            "0",
            "--on-budget",
            "fail",
        ]
    )
    assert code == EXIT_BUDGET


def test_degrade_mode_exits_zero_with_partial_banner(db_file, capsys):
    code = main(
        [
            "query",
            "--db",
            str(db_file),
            "--program",
            RECURSIVE,
            "--deadline",
            "0",
            "--on-budget",
            "degrade",
        ]
    )
    assert code == 0
    assert "[PARTIAL: budget exhausted]" in capsys.readouterr().out


def test_governed_run_without_pressure_is_exit_zero(db_file, capsys):
    code = main(
        [
            "query",
            "--db",
            str(db_file),
            "--program",
            RECURSIVE,
            "--deadline",
            "300",
            "--solver-budget",
            "100000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "tuples derived" in out
    assert "PARTIAL" not in out


def test_solver_failure_is_exit_4(monkeypatch, db_file, capsys):
    def explode(args):
        raise SolverFailure("backend crashed")

    monkeypatch.setattr("repro.cli._cmd_query", explode)
    code = main(["query", "--db", str(db_file), "--program", "A(a) :- F(a, b)."])
    assert code == EXIT_SOLVER_FAILURE
    assert "solver error:" in capsys.readouterr().err
