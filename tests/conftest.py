"""Shared fixtures: the paper's running examples, ready to use.

Also installs a global per-test wall-clock timeout (SIGALRM based, so no
extra dependency): solver routines are worst-case exponential, and a
future hang should fail one test fast instead of wedging the whole
suite.  Override with ``FAURE_TEST_TIMEOUT=<seconds>`` (0 disables).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.ctable import CTable, Database, cvar, disjoin, eq, ne
from repro.network.enterprise import (
    EnterpriseModel,
    SCHEMAS,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.network.frr import paper_figure1
from repro.solver import BOOL_DOMAIN, ConditionSolver, DomainMap, FiniteDomain, Unbounded
from repro.solver.memo import reset_shared_memo


_TEST_TIMEOUT_SECONDS = float(os.environ.get("FAURE_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _fresh_shared_memo():
    """Clear the process-wide solver memo between tests.

    The memo table is deliberately process-global (that is the point of
    the feature), but tests asserting on backend-usage counters must not
    observe verdicts another test already paid for.
    """
    reset_shared_memo()
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _TEST_TIMEOUT_SECONDS <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded the global {_TEST_TIMEOUT_SECONDS:g}s timeout "
            f"(set FAURE_TEST_TIMEOUT to change)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def bool_solver():
    """Solver where x, y, z are {0,1} link states."""
    domains = DomainMap(
        {cvar("x"): BOOL_DOMAIN, cvar("y"): BOOL_DOMAIN, cvar("z"): BOOL_DOMAIN}
    )
    return ConditionSolver(domains)


@pytest.fixture
def string_solver():
    """Solver over unbounded string-ish domains."""
    return ConditionSolver(DomainMap(default=Unbounded("string")))


@pytest.fixture
def path_database():
    """The paper's Table 2: PATH' = {P^i, C}."""
    xp, yd = cvar("xp"), cvar("yd")
    p = CTable("P", ["dest", "path"])
    p.add(
        ["1.2.3.4", xp],
        disjoin([eq(xp, ("A", "B", "C")), eq(xp, ("A", "D", "E", "C"))]),
    )
    p.add([yd, ("A", "B", "E")], ne(yd, "1.2.3.4"))
    p.add(["1.2.3.6", ("A", "D", "E", "C")])
    c = CTable("C", ["path", "cost"])
    c.add([("A", "B", "C"), 3])
    c.add([("A", "D", "E", "C"), 4])
    c.add([("A", "B", "E"), 3])
    return Database([p, c])


@pytest.fixture
def path_domains():
    """Finite domains for the Table 2 c-variables (world enumeration)."""
    return DomainMap(
        {
            cvar("xp"): FiniteDomain([("A", "B", "C"), ("A", "D", "E", "C")]),
            cvar("yd"): FiniteDomain(["1.2.3.4", "1.2.3.5", "1.2.3.6"]),
        }
    )


@pytest.fixture
def figure1():
    """The §4 fast-reroute configuration."""
    return paper_figure1()


@pytest.fixture
def figure1_solver(figure1):
    return ConditionSolver(figure1.domain_map())


@pytest.fixture
def enterprise():
    """The §5 paper state with its solver, constraints, and update."""
    model = EnterpriseModel.paper_state()
    return {
        "model": model,
        "database": model.database(),
        "solver": ConditionSolver(model.domain_map()),
        "schemas": SCHEMAS,
        "column_domains": column_domains(),
        "T1": constraint_T1(),
        "T2": constraint_T2(),
        "C_lb": policy_C_lb(),
        "C_s": policy_C_s(),
        "update": listing4_update(),
    }
