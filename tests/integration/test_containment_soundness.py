"""Empirical soundness of the containment reduction.

Whenever ``contains(Q, [P])`` answers *contained*, then on every concrete
database (here: exhaustively enumerated small regular databases over a
tiny universe), a world violating Q must also violate P.  A single
counterexample would falsify the freeze-and-evaluate reduction.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.faurelog.containment import contains
from repro.faurelog.parser import parse_program
from repro.solver.domains import DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import GroundEvaluator

UNIVERSE = ["A", "B"]
SCHEMAS = {"R": ["col"], "S": ["col"]}
COLDOMS = {"col": FiniteDomain(UNIVERSE)}


def random_constraint(rng: random.Random) -> str:
    """A small random panic program over R(col), S(col)."""
    rules = []
    for _ in range(rng.randint(1, 2)):
        body = [f"R($v)"]
        if rng.random() < 0.5:
            body.append(rng.choice(["not S($v)", "S($v)"]))
        if rng.random() < 0.6:
            body.append(f"$v != {rng.choice(UNIVERSE)}")
        rules.append("panic :- " + ", ".join(body) + ".")
    return "\n".join(rules)


def all_databases():
    """Every regular database over R, S with universe {a, b}."""
    rows = [(v,) for v in UNIVERSE]
    subsets = list(
        itertools.chain.from_iterable(
            itertools.combinations(rows, k) for k in range(len(rows) + 1)
        )
    )
    for r_rows in subsets:
        for s_rows in subsets:
            yield {"R": set(r_rows), "S": set(s_rows)}


def panics(program, relations) -> bool:
    from repro.ctable.terms import Constant

    ground = GroundEvaluator(
        {
            name: {tuple(Constant(v) for v in row) for row in rows}
            for name, rows in relations.items()
        }
    )
    return bool(ground.run(program).get("panic"))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_contained_verdicts_are_sound(seed):
    rng = random.Random(seed)
    q_text = random_constraint(rng)
    p_text = random_constraint(rng)
    q = parse_program(q_text)
    p = parse_program(p_text)
    solver = ConditionSolver(DomainMap(default=Unbounded("any")))
    verdict = contains(
        q, [p], solver, schemas=SCHEMAS, column_domains=COLDOMS
    )
    if not verdict.contained:
        return  # "not shown" makes no claim
    for relations in all_databases():
        if panics(q, relations):
            assert panics(p, relations), (q_text, p_text, relations)


def test_known_noncontainment_has_concrete_witness():
    """Sanity: when the verdict is 'not shown' for a genuinely larger
    containee, some database separates the two."""
    q = parse_program("panic :- R($v).")
    p = parse_program("panic :- R($v), $v != A.")
    solver = ConditionSolver(DomainMap(default=Unbounded("any")))
    verdict = contains(q, [p], solver, schemas=SCHEMAS, column_domains=COLDOMS)
    assert not verdict.contained
    separating = [
        relations
        for relations in all_databases()
        if panics(q, relations) and not panics(p, relations)
    ]
    assert separating
