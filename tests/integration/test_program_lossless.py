"""Loss-lessness across program shapes (the §3/§4 theorem, generalized).

For a pool of program templates covering joins, comparisons, negation,
recursion, c-variable patterns and constants, and hypothesis-generated
random c-table databases: evaluating the program ONCE over the c-table
must agree, in every possible world, with ground datalog over that
world's instantiation.  This is the loss-less-modeling guarantee for the
full language, not just reachability.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.ctable.worlds import instantiate_database, iter_assignments
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import GroundEvaluator

#: Program templates over EDB A(x), B(x, y); output predicate Out.
PROGRAMS = [
    # plain join
    "Out(x, z) :- B(x, y), B(y, z).",
    # join with EDB filter
    "Out(x, y) :- B(x, y), A(x).",
    # comparisons
    "Out(x, y) :- B(x, y), x != y.",
    "Out(x) :- A(x), x != 1.",
    # constants and implicit pattern matching
    "Out(y) :- B(1, y).",
    # stratified negation
    "Out(x) :- A(x), not Blocked(x). Blocked(x) :- B(x, x).",
    # negation over a join
    "Out(x, y) :- B(x, y), not A(y).",
    # recursion (transitive closure)
    "Out(x, y) :- B(x, y). Out(x, y) :- B(x, z), Out(z, y).",
    # recursion + negation below
    """
    Out(x, y) :- Path(x, y), not A(x).
    Path(x, y) :- B(x, y).
    Path(x, y) :- B(x, z), Path(z, y).
    """,
    # c-variable patterns in rules (Listing 3 style)
    "Out($u, $v) :- B($u, $v), $u != 1.",
]

UNIVERSE = [0, 1, 2]
CVARS = [CVariable("w0"), CVariable("w1")]
DOMAINS = DomainMap({v: FiniteDomain(UNIVERSE) for v in CVARS})


def random_database(rng: random.Random) -> Database:
    """A small random c-table database over A(x), B(x, y)."""
    conditions = [
        TRUE,
        eq(CVARS[0], 0),
        ne(CVARS[0], 1),
        eq(CVARS[1], 2),
        conjoin([eq(CVARS[0], 0), ne(CVARS[1], 0)]),
        disjoin([eq(CVARS[0], 1), eq(CVARS[1], 1)]),
    ]

    def value():
        if rng.random() < 0.25:
            return rng.choice(CVARS)
        return rng.choice(UNIVERSE)

    db = Database()
    a = db.create_table("A", ["x"])
    for _ in range(rng.randint(0, 3)):
        a.add([value()], rng.choice(conditions))
    b = db.create_table("B", ["x", "y"])
    for _ in range(rng.randint(1, 5)):
        b.add([value(), value()], rng.choice(conditions))
    return db


def faure_rows_in_world(result_table, assignment):
    rows = set()
    for tup in result_table:
        if tup.condition.evaluate(assignment):
            row = tuple(
                assignment[v] if isinstance(v, CVariable) else v
                for v in tup.values
            )
            rows.add(row)
    return rows


@pytest.mark.parametrize("program_text", PROGRAMS)
@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_program_lossless(program_text, seed):
    rng = random.Random(seed)
    db = random_database(rng)
    program = parse_program(program_text)
    solver = ConditionSolver(DOMAINS)
    result = evaluate(program, db, solver=solver)
    out = result.table("Out")

    cvars = sorted(db.cvariables(), key=lambda v: v.name)
    for assignment in iter_assignments(cvars, DOMAINS):
        ground = GroundEvaluator(instantiate_database(db, assignment))
        truth = ground.run(program).get("Out", set())
        faure = faure_rows_in_world(out, assignment)
        assert faure == truth, (program_text, seed, assignment)
