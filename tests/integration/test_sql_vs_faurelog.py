"""The two query front-ends agree: mini-SQL vs fauré-log.

§3 argues datalog is the right surface but the semantics must match the
extended relational algebra of the c-table literature.  Here the same
conjunctive queries run through both engines and must produce equivalent
(data, condition) sets.
"""

import pytest

from repro.ctable.condition import TRUE, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.engine.sql import SqlEngine
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")


@pytest.fixture
def setup():
    db = Database()
    p = db.create_table("P", ["dest", "path"])
    p.add(["d1", X], disjoin([eq(X, "p1"), eq(X, "p2")]))
    p.add([Y, "p3"], ne(Y, "d1"))
    p.add(["d3", "p2"])
    c = db.create_table("C", ["path", "cost"])
    c.add(["p1", 3])
    c.add(["p2", 4])
    c.add(["p3", 3])
    domains = DomainMap(
        {X: FiniteDomain(["p1", "p2", "p3"]), Y: FiniteDomain(["d1", "d2", "d3"])}
    )
    return db, ConditionSolver(domains)


def canonical(table, solver, domains):
    """(data, satisfying-world-set) pairs — condition-representation-free."""
    from repro.solver.enumerate import iter_models

    cvars = sorted(
        {v for t in table for v in t.cvariables()}, key=lambda v: v.name
    )
    out = set()
    for tup in table:
        worlds = frozenset(
            tuple(sorted((v.name, a[v].value) for v in cvars))
            for a in iter_models(tup.condition, domains, variables=cvars)
        )
        data = []
        for v in tup.values:
            data.append(("var", v.name) if isinstance(v, CVariable) else ("const", v.value))
        out.add((tuple(data), worlds))
    return out


CASES = [
    (
        "SELECT C.cost FROM P, C WHERE P.dest = 'd1' AND P.path = C.path",
        "ans(z) :- P(d1, y), C(y, z).",
    ),
    (
        "SELECT C.cost FROM P, C WHERE P.dest = 'd2' AND P.path = C.path",
        "ans(z) :- P(d2, y), C(y, z).",
    ),
    (
        "SELECT P.dest FROM P WHERE P.path != 'p2'",
        "ans(d) :- P(d, y), y != p2.",
    ),
]


@pytest.mark.parametrize("sql_text,faurelog_text", CASES)
def test_sql_and_faurelog_agree(setup, sql_text, faurelog_text):
    db, solver = setup
    engine = SqlEngine(db, solver=solver)
    sql_result = engine.execute(sql_text)

    program = parse_program(faurelog_text.replace("d1", "'d1'").replace("d2", "'d2'").replace("p2", "'p2'"))
    log_result = evaluate(program, db, solver=solver).table("ans")

    domains = solver.domains
    # compare world-level answer sets (conditions may differ syntactically)
    def world_answers(table):
        from repro.ctable.worlds import instantiate_table, iter_assignments

        cvars = sorted(db.cvariables(), key=lambda v: v.name)
        answers = {}
        for assignment in iter_assignments(cvars, domains):
            key = tuple(sorted((v.name, assignment[v].value) for v in cvars))
            answers[key] = instantiate_table(table, assignment)
        return answers

    assert world_answers(sql_result) == world_answers(log_result)
