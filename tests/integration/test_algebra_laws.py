"""Relational-algebra laws over c-tables, property-tested.

The extended algebra must satisfy the classical equivalences *per
possible world* — selection commutes, projection-then-selection equals
selection-then-projection (when columns allow), join is monotone, etc.
Each law is checked semantically: instantiate both plans' results in
every world and compare row sets.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.ctable.worlds import instantiate_table, iter_assignments
from repro.engine.algebra import (
    ColumnRef,
    Join,
    Pred,
    Product,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
    evaluate_plan,
)
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

CVARS = [CVariable("m0"), CVariable("m1")]
UNIVERSE = [0, 1, 2]
DOMAINS = DomainMap({v: FiniteDomain(UNIVERSE) for v in CVARS})


def random_db(seed: int) -> Database:
    rng = random.Random(seed)
    conditions = [TRUE, eq(CVARS[0], 0), ne(CVARS[1], 2), eq(CVARS[1], 1)]

    def value():
        return rng.choice(CVARS) if rng.random() < 0.3 else rng.choice(UNIVERSE)

    db = Database()
    r = db.create_table("R", ["a", "b"])
    for _ in range(rng.randint(1, 5)):
        r.add([value(), value()], rng.choice(conditions))
    s = db.create_table("S", ["b2", "c"])
    for _ in range(rng.randint(1, 4)):
        s.add([value(), value()], rng.choice(conditions))
    return db


def worlds_of(table, db):
    cvars = sorted(set(db.cvariables()) | set(table.cvariables()), key=lambda v: v.name)
    out = {}
    for assignment in iter_assignments(cvars, DOMAINS):
        key = tuple(sorted((v.name, assignment[v].value) for v in cvars))
        out[key] = instantiate_table(table, assignment)
    return out


def equivalent(plan_a, plan_b, db):
    solver = ConditionSolver(DOMAINS)
    a = evaluate_plan(plan_a, db, solver=solver)
    b = evaluate_plan(plan_b, db, solver=solver)
    return worlds_of(a, db) == worlds_of(b, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_selection_commutes(seed):
    db = random_db(seed)
    p1 = Pred(ColumnRef("a"), "!=", 0)
    p2 = Pred(ColumnRef("b"), "=", 1)
    plan_a = Selection(Selection(Scan("R"), [p1]), [p2])
    plan_b = Selection(Selection(Scan("R"), [p2]), [p1])
    assert equivalent(plan_a, plan_b, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_selection_merges(seed):
    db = random_db(seed)
    p1 = Pred(ColumnRef("a"), "!=", 0)
    p2 = Pred(ColumnRef("b"), "=", 1)
    plan_a = Selection(Scan("R"), [p1, p2])
    plan_b = Selection(Selection(Scan("R"), [p1]), [p2])
    assert equivalent(plan_a, plan_b, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_projection_selection_pushdown(seed):
    db = random_db(seed)
    pred = Pred(ColumnRef("a"), "=", 1)  # touches only the kept column
    plan_a = Projection(Selection(Scan("R"), [pred]), ["a"])
    plan_b = Selection(Projection(Scan("R"), ["a"]), [pred])
    assert equivalent(plan_a, plan_b, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_join_equals_product_plus_selection(seed):
    db = random_db(seed)
    join = Join(Scan("R"), Scan("S"), on=[("b", "b2")], project_right=["c"])
    product = Product(Scan("R"), Scan("S"))
    filtered = Selection(product, [Pred(ColumnRef("b"), "=", ColumnRef("b2"))])
    projected = Projection(filtered, ["a", "b", "c"], merge=False)
    assert equivalent(join, projected, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_union_idempotent(seed):
    db = random_db(seed)
    plan_a = Union([Scan("R"), Scan("R")])
    plan_b = Scan("R")
    assert equivalent(plan_a, plan_b, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_rename_roundtrip(seed):
    db = random_db(seed)
    plan_a = Rename(Rename(Scan("R"), {"a": "x"}), {"x": "a"})
    plan_b = Scan("R")
    assert equivalent(plan_a, plan_b, db)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pruning_is_invisible(seed):
    """Eager solver pruning never changes world-level results."""
    db = random_db(seed)
    plan = Join(Scan("R"), Scan("S"), on=[("b", "b2")])
    solver = ConditionSolver(DOMAINS)
    pruned = evaluate_plan(plan, db, solver=solver, prune=True)
    unpruned = evaluate_plan(plan, db, solver=None, prune=False)
    assert worlds_of(pruned, db) == worlds_of(unpruned, db)
