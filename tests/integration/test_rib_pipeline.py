"""End-to-end §6 pipeline: RIB → forwarding c-table → queries → stats."""

import random

import pytest

from repro.ctable.terms import Constant
from repro.network.forwarding import compile_forwarding
from repro.network.reachability import ReachabilityAnalyzer
from repro.solver.interface import ConditionSolver
from repro.workloads.failures import exactly_k_failures
from repro.workloads.ribgen import RibConfig, dump_rib, generate_rib, parse_rib


@pytest.fixture(scope="module")
def pipeline():
    routes = generate_rib(RibConfig(prefixes=30, as_count=50, seed=99))
    text = dump_rib(routes)           # exercise the dump/parse path,
    routes = parse_rib(text)          # like reading the real RIB file
    compiled = compile_forwarding(routes)
    solver = ConditionSolver(compiled.domains)
    analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
    analyzer.compute()
    return routes, compiled, analyzer


class TestPipeline:
    def test_reach_covers_every_primary_path(self, pipeline):
        """With all paths up, the vantage reaches the origin per prefix."""
        routes, compiled, analyzer = pipeline
        for route in routes[:10]:
            primary = route.paths[0]
            assignment = {v: 1 for v in compiled.variables_of(route.prefix)}
            assert analyzer.holds_in_world(
                primary[0], primary[-1], assignment, flow=route.prefix
            ), route.prefix

    def test_backup_engages_on_primary_failure(self, pipeline):
        routes, compiled, analyzer = pipeline
        route = next(r for r in routes if len(r.paths) >= 2)
        variables = compiled.variables_of(route.prefix)
        assignment = {v: 1 for v in variables}
        assignment[variables[0]] = 0  # primary down
        backup = route.paths[1]
        assert analyzer.holds_in_world(
            backup[0], backup[-1], assignment, flow=route.prefix
        )

    def test_all_paths_down_unreachable(self, pipeline):
        routes, compiled, analyzer = pipeline
        route = routes[0]
        src, dst = route.paths[0][0], route.paths[0][-1]
        assignment = {v: 0 for v in compiled.variables_of(route.prefix)}
        assert not analyzer.holds_in_world(src, dst, assignment, flow=route.prefix)

    def test_pattern_query_scopes_to_prefix_variables(self, pipeline):
        routes, compiled, analyzer = pipeline
        route = next(r for r in routes if len(r.paths) >= 3)
        variables = compiled.variables_of(route.prefix)
        table, stats = analyzer.under_pattern(
            exactly_k_failures(list(variables), 1), flow=route.prefix
        )
        assert stats.tuples_generated == len(table)
        assert all(t.values[0] == Constant(route.prefix) for t in table)

    def test_stats_split_reported(self, pipeline):
        _, _, analyzer = pipeline
        assert analyzer.stats.sql_seconds > 0
        assert analyzer.stats.tuples_generated > 0
