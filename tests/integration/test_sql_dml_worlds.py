"""SQL UPDATE/DELETE against per-world classical semantics, randomized.

For random c-tables and random single-table UPDATE/DELETE statements,
the c-table result instantiated in each world must equal applying the
classical row operation to that world's instantiation.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import TRUE, conjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.ctable.worlds import instantiate_table, iter_assignments
from repro.engine.sql import SqlEngine
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

CVARS = [CVariable("s0"), CVariable("s1")]
VALUES = [0, 1, 2]
DOMAINS = DomainMap({v: FiniteDomain(VALUES) for v in CVARS})


def random_engine(seed: int):
    rng = random.Random(seed)
    db = Database()
    t = db.create_table("T", ["a", "b"])
    conditions = [TRUE, eq(CVARS[0], 0), ne(CVARS[1], 1)]
    for _ in range(rng.randint(1, 5)):
        a = rng.choice(VALUES + [CVARS[0]])
        b = rng.choice(VALUES + [CVARS[1]])
        t.add([a, b], rng.choice(conditions))
    return SqlEngine(db, solver=ConditionSolver(DOMAINS)), rng


def world_tables(table):
    out = {}
    for assignment in iter_assignments(CVARS, DOMAINS):
        key = tuple(sorted((v.name, assignment[v].value) for v in CVARS))
        out[key] = instantiate_table(table, assignment)
    return out


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(VALUES))
def test_delete_matches_world_semantics(seed, pivot):
    engine, _ = random_engine(seed)
    before = world_tables(engine.db.table("T"))
    engine.execute(f"DELETE FROM T WHERE a = {pivot}")
    after = world_tables(engine.db.table("T"))
    for key, rows in before.items():
        expected = {row for row in rows if row[0] != Constant(pivot)}
        assert after[key] == expected, (seed, pivot, key)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(VALUES))
def test_update_matches_world_semantics(seed, pivot):
    engine, _ = random_engine(seed)
    before = world_tables(engine.db.table("T"))
    engine.execute(f"UPDATE T SET b = 9 WHERE a = {pivot}")
    after = world_tables(engine.db.table("T"))
    for key, rows in before.items():
        expected = {
            (row[0], Constant(9)) if row[0] == Constant(pivot) else row
            for row in rows
        }
        assert after[key] == expected, (seed, pivot, key)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_delete_then_insert_roundtrip(seed):
    engine, rng = random_engine(seed)
    engine.execute("DELETE FROM T")
    assert len(engine.db.table("T")) == 0
    engine.execute("INSERT INTO T VALUES (5, 5)")
    worlds = world_tables(engine.db.table("T"))
    assert all(rows == {(Constant(5), Constant(5))} for rows in worlds.values())
