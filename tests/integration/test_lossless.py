"""The loss-less modeling claim (§4), tested at property level.

For randomly generated fast-reroute configurations, the fauré-log
reachability computed *once* on the c-table must agree, world by world,
with conventional graph reachability computed in every possible failure
combination.  This is the paper's central semantic guarantee.
"""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.terms import Constant, CVariable
from repro.network.frr import FrrConfig
from repro.network.reachability import ReachabilityAnalyzer
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import GroundEvaluator
from repro.ctable.worlds import instantiate_database, iter_assignments


def random_frr(seed: int, nodes: int = 5, protected: int = 3) -> FrrConfig:
    """A random FRR config: ring skeleton + protected chords + backups."""
    rng = random.Random(seed)
    config = FrrConfig()
    labels = list(range(nodes))
    # skeleton ring (unprotected) keeps the graph connected-ish
    for a, b in zip(labels, labels[1:]):
        config.add_link(a, b)
    for k in range(protected):
        src, dst = rng.sample(labels, 2)
        candidates = [n for n in labels if n not in (src, dst)]
        backups = rng.sample(candidates, k=min(len(candidates), rng.randint(0, 2)))
        config.protect(src, dst, backups=backups, state_var=f"s{k}")
    return config


def world_graph(config: FrrConfig, assignment):
    graph = nx.DiGraph()
    graph.add_nodes_from(config.topology.nodes)
    for tup in config.forwarding_table():
        if tup.condition.evaluate(assignment):
            graph.add_edge(tup.values[0].value, tup.values[1].value)
    return graph


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_reachability_lossless_on_random_frr(seed):
    config = random_frr(seed)
    solver = ConditionSolver(config.domain_map())
    analyzer = ReachabilityAnalyzer(config.database(), solver)
    analyzer.compute()
    variables = list(config.state_variables)
    nodes = sorted(config.topology.nodes)
    for bits in itertools.product([0, 1], repeat=len(variables)):
        int_assign = dict(zip(variables, bits))
        assignment = {v: Constant(b) for v, b in int_assign.items()}
        graph = world_graph(config, assignment)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                truth = nx.has_path(graph, src, dst)
                faure = analyzer.holds_in_world(src, dst, int_assign)
                assert truth == faure, (seed, bits, src, dst)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=3),
)
def test_failure_pattern_queries_lossless(seed, k):
    """q6-style pattern results agree with filtering enumerated worlds."""
    config = random_frr(seed)
    variables = list(config.state_variables)
    if k > len(variables):
        k = len(variables)
    solver = ConditionSolver(config.domain_map())
    analyzer = ReachabilityAnalyzer(config.database(), solver)
    analyzer.compute()
    table, _ = analyzer.exactly_k_up(variables, k)
    answers = [(t.values, t.condition) for t in table]
    nodes = sorted(config.topology.nodes)
    for bits in itertools.product([0, 1], repeat=len(variables)):
        if sum(bits) != k:
            continue
        int_assign = dict(zip(variables, bits))
        assignment = {v: Constant(b) for v, b in int_assign.items()}
        graph = world_graph(config, assignment)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                truth = nx.has_path(graph, src, dst)
                faure = any(
                    values == (Constant(src), Constant(dst))
                    and cond.evaluate(assignment)
                    for values, cond in answers
                )
                assert truth == faure, (seed, bits, src, dst)


class TestLossLessGeneralQueries:
    """Loss-lessness for arbitrary fauré-log programs on random c-tables."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_join_query_agrees_with_worlds(self, seed):
        from repro.ctable.condition import eq, ne
        from repro.ctable.table import CTable, Database
        from repro.faurelog.evaluation import evaluate
        from repro.faurelog.parser import parse_program
        from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain

        rng = random.Random(seed)
        x, y = CVariable("x"), CVariable("y")
        domains = DomainMap({x: BOOL_DOMAIN, y: FiniteDomain(["a", "b"])})
        a = CTable("A", ["k", "v"])
        b = CTable("B", ["v", "w"])
        values = ["a", "b"]
        for _ in range(rng.randint(1, 4)):
            key = rng.randint(0, 2)
            val = rng.choice(values + [y])
            cond = rng.choice([eq(x, 0), eq(x, 1), ne(y, "a")])
            a.add([key, val], cond)
        for _ in range(rng.randint(1, 4)):
            val = rng.choice(values + [y])
            b.add([val, rng.randint(0, 2)])
        db = Database([a, b])
        solver = ConditionSolver(domains)
        program = parse_program("H(k, w) :- A(k, v), B(v, w).")
        out = evaluate(program, db, solver=solver)
        answers = [(t.values, t.condition) for t in out.table("H")]
        for assignment in iter_assignments(sorted(db.cvariables(), key=lambda v: v.name), domains):
            ground = GroundEvaluator(instantiate_database(db, assignment))
            truth = {
                tuple(c.value for c in row) for row in ground.run(program)["H"]
            }
            faure = {
                tuple(
                    (assignment[v] if isinstance(v, CVariable) else v).value
                    for v in values_
                )
                for values_, cond in answers
                if cond.evaluate(assignment)
            }
            assert truth == faure, (seed, assignment)
