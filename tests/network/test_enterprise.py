"""The §5 enterprise model builders."""

import pytest

from repro.ctable.condition import TRUE
from repro.ctable.terms import Constant, CVariable
from repro.network.enterprise import (
    EnterpriseModel,
    PORTS,
    SCHEMAS,
    SERVERS,
    SUBNETS,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.solver.domains import FiniteDomain


class TestConstants:
    def test_paper_universe(self):
        assert SUBNETS == ("Mkt", "R&D")
        assert SERVERS == ("CS", "GS")
        assert PORTS == (80, 344, 7000)

    def test_schemas(self):
        assert SCHEMAS["R"] == ["subnet", "server", "port"]

    def test_column_domains_finite(self):
        doms = column_domains()
        assert doms["server"] == FiniteDomain(["CS", "GS"])


class TestPrograms:
    def test_constraints_parse_to_panic(self):
        for prog in [constraint_T1(), constraint_T2(), policy_C_lb(), policy_C_s()]:
            assert "panic" in prog.idb_predicates()

    def test_policies_have_violation_rules(self):
        assert len(policy_C_lb().rules_for("Vt")) == 3
        assert len(policy_C_s().rules_for("Vs")) == 2

    def test_update_shape(self):
        update = listing4_update()
        assert len(update) == 2
        assert update[0].predicate == "Lb"


class TestModel:
    def test_builder_chain(self):
        model = (
            EnterpriseModel()
            .allow("Mkt", "CS", 7000)
            .balance("Mkt", "CS")
            .firewall("Mkt", "CS")
        )
        db = model.database()
        assert len(db.table("R")) == 1
        assert len(db.table("Lb")) == 1
        assert len(db.table("Fw")) == 1

    def test_partial_state_domains_from_columns(self):
        v = CVariable("who")
        model = EnterpriseModel().allow(v, "CS", 7000)
        domains = model.domain_map()
        assert domains.domain_of(v) == FiniteDomain(["Mkt", "R&D"])

    def test_declare_overrides(self):
        v = CVariable("who")
        model = EnterpriseModel().allow(v, "CS", 7000).declare(v, ["Mkt"])
        assert model.domain_map().domain_of(v) == FiniteDomain(["Mkt"])

    def test_paper_state_consistent(self):
        db = EnterpriseModel.paper_state().database()
        r_rows = {tuple(v.value for v in t.values) for t in db.table("R")}
        assert ("R&D", "CS", 7000) in r_rows
        # no Mkt→CS traffic: the Listing 4 update must not break C_lb
        assert not any(r[:2] == ("Mkt", "CS") for r in r_rows)
        fw_rows = {tuple(v.value for v in t.values) for t in db.table("Fw")}
        assert ("R&D", "CS") in fw_rows
