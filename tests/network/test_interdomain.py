"""Inter-domain analysis under limited visibility."""

import pytest

from repro.ctable.condition import FALSE, TRUE
from repro.ctable.terms import CVariable
from repro.network.interdomain import (
    AnnouncementAnalysis,
    ExportPolicy,
    InterdomainNetwork,
)


@pytest.fixture
def diamond():
    """AS1 → {AS2 known, AS3 unknown} → AS4 (both unknown)."""
    net = InterdomainNetwork()
    net.add_link("AS1", "AS2", ExportPolicy.EXPORTS)
    net.add_link("AS1", "AS3", ExportPolicy.UNKNOWN)
    net.add_link("AS2", "AS4", ExportPolicy.UNKNOWN)
    net.add_link("AS3", "AS4", ExportPolicy.UNKNOWN)
    return net


class TestNetwork:
    def test_self_link_rejected(self):
        net = InterdomainNetwork()
        with pytest.raises(ValueError):
            net.add_link("AS1", "AS1")

    def test_policy_variable_only_for_unknown(self, diamond):
        with pytest.raises(KeyError):
            diamond.policy_variable("AS1", "AS2")
        var = diamond.policy_variable("AS1", "AS3")
        assert var == CVariable("e_AS1_AS3")

    def test_edge_table_shapes(self, diamond):
        table = diamond.edge_table()
        conds = {
            (t.values[0].value, t.values[1].value): t.condition for t in table
        }
        assert conds[("AS1", "AS2")] is TRUE
        assert conds[("AS1", "AS3")] is not TRUE

    def test_blocked_links_absent(self):
        net = InterdomainNetwork()
        net.add_link("AS1", "AS2", ExportPolicy.BLOCKS)
        assert len(net.edge_table()) == 0

    def test_domain_map_boolean(self, diamond):
        domains = diamond.domain_map()
        var = diamond.policy_variable("AS2", "AS4")
        assert domains.domain_of(var).is_finite


class TestAnalysis:
    def test_origin_certain(self, diamond):
        analysis = diamond.analyze("AS1")
        assert analysis.certainly_reaches("AS1")

    def test_known_export_certain(self, diamond):
        analysis = diamond.analyze("AS1")
        assert analysis.certainly_reaches("AS2")

    def test_unknown_link_possible(self, diamond):
        analysis = diamond.analyze("AS1")
        assert analysis.possibly_reaches("AS3")
        assert not analysis.certainly_reaches("AS3")

    def test_disjunctive_paths(self, diamond):
        analysis = diamond.analyze("AS1")
        # AS4 reachable via AS2 (needs e_AS2_AS4) or AS3 (needs two)
        assert analysis.possibly_reaches("AS4")
        cond = analysis.reachability_condition("AS4")
        assert cond.cvariables()  # genuinely conditional

    def test_unreachable_is_never(self):
        net = InterdomainNetwork()
        net.add_link("AS1", "AS2", ExportPolicy.EXPORTS)
        net.add_link("AS3", "AS4", ExportPolicy.UNKNOWN)
        analysis = net.analyze("AS1")
        assert analysis.reachability_condition("AS4") is FALSE
        assert not analysis.possibly_reaches("AS4")

    def test_classification(self, diamond):
        analysis = diamond.analyze("AS1")
        classes = analysis.classification()
        assert classes["AS1"] == "certain"
        assert classes["AS2"] == "certain"
        assert classes["AS3"] == "possible"
        assert classes["AS4"] == "possible"

    def test_required_policies_actionable(self, diamond):
        analysis = diamond.analyze("AS1")
        needed = analysis.required_policies("AS4")
        assert needed is not None
        # applying the returned assignment must indeed deliver the route
        cond = analysis.reachability_condition("AS4")
        from repro.ctable.terms import Constant

        assignment = {var: Constant(v) for var, v in needed.items()}
        # fill unconstrained variables arbitrarily
        for var in cond.cvariables():
            assignment.setdefault(var, Constant(0))
        assert cond.evaluate(assignment)

    def test_required_policies_none_when_impossible(self):
        net = InterdomainNetwork()
        net.add_link("AS1", "AS2", ExportPolicy.BLOCKS)
        analysis = net.analyze("AS1")
        assert analysis.required_policies("AS2") is None

    def test_cycle_terminates(self):
        net = InterdomainNetwork()
        net.add_link("AS1", "AS2", ExportPolicy.UNKNOWN)
        net.add_link("AS2", "AS1", ExportPolicy.UNKNOWN)
        net.add_link("AS2", "AS3", ExportPolicy.UNKNOWN)
        analysis = net.analyze("AS1")
        assert analysis.possibly_reaches("AS3")
