"""Per-prefix forwarding compilation."""

import pytest

from repro.ctable.condition import conjoin, eq
from repro.ctable.terms import Constant, CVariable
from repro.network.forwarding import PrefixRoutes, compile_forwarding
from repro.solver.domains import BOOL_DOMAIN


class TestPrefixRoutes:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixRoutes("p", ())
        with pytest.raises(ValueError):
            PrefixRoutes("p", (("A",),))  # degenerate path

    def test_primary_is_first(self):
        r = PrefixRoutes("p", (("A", "B"), ("A", "C", "B")))
        assert r.paths[0] == ("A", "B")


class TestCompile:
    def test_rows_per_hop(self):
        routes = [PrefixRoutes("p", (("A", "B", "C"),))]
        compiled = compile_forwarding(routes)
        assert len(compiled.table) == 2  # A→B, B→C

    def test_activation_conditions_ranked(self):
        routes = [PrefixRoutes("p", (("A", "B"), ("A", "C"), ("A", "D")))]
        compiled = compile_forwarding(routes)
        u0, u1, u2 = compiled.variables_of("p")
        conds = {
            (t.values[1].value, t.values[2].value): t.condition
            for t in compiled.table
        }
        assert conds[("A", "B")] == eq(u0, 1)
        assert conds[("A", "C")] == conjoin([eq(u0, 0), eq(u1, 1)])
        assert conds[("A", "D")] == conjoin([eq(u0, 0), eq(u1, 0), eq(u2, 1)])

    def test_flow_column_carries_prefix(self):
        routes = [PrefixRoutes("10.0.0.0/24", (("A", "B"),))]
        compiled = compile_forwarding(routes)
        (tup,) = compiled.table.tuples()
        assert tup.values[0] == Constant("10.0.0.0/24")

    def test_domains_are_boolean(self):
        routes = [PrefixRoutes("p", (("A", "B"), ("A", "C")))]
        compiled = compile_forwarding(routes)
        for var in compiled.variables_of("p"):
            assert compiled.domains.domain_of(var) == BOOL_DOMAIN

    def test_distinct_prefixes_distinct_variables(self):
        routes = [
            PrefixRoutes("p0", (("A", "B"),)),
            PrefixRoutes("p1", (("A", "B"),)),
        ]
        compiled = compile_forwarding(routes)
        assert set(compiled.variables_of("p0")).isdisjoint(
            compiled.variables_of("p1")
        )

    def test_shared_edges_kept_separately_per_flow(self):
        routes = [
            PrefixRoutes("p0", (("A", "B"),)),
            PrefixRoutes("p1", (("A", "B"),)),
        ]
        compiled = compile_forwarding(routes)
        assert len(compiled.table) == 2
