"""Fast-reroute configurations and their compilation."""

import pytest

from repro.ctable.condition import TRUE, conjoin, eq
from repro.ctable.terms import Constant, CVariable
from repro.network.frr import FrrConfig, paper_figure1
from repro.solver.domains import BOOL_DOMAIN


def rows_of(table):
    return {
        (t.values[0].value, t.values[1].value): t.condition for t in table
    }


class TestFrrConfig:
    def test_protect_creates_state_variable(self):
        config = FrrConfig()
        link = config.protect("a", "b", backups=["c"], state_var="s")
        assert link.state_var == CVariable("s")
        assert config.state_variables == (CVariable("s"),)

    def test_duplicate_state_var_rejected(self):
        config = FrrConfig()
        config.protect("a", "b", state_var="s")
        with pytest.raises(ValueError):
            config.protect("c", "d", state_var="s")

    def test_topology_includes_backups(self):
        config = FrrConfig()
        config.protect("a", "b", backups=["c", "d"])
        assert config.topology.has_link("a", "c")
        assert config.topology.has_link("a", "d")

    def test_domain_map_declares_bools(self):
        config = FrrConfig()
        config.protect("a", "b", state_var="s")
        domains = config.domain_map()
        assert domains.domain_of(CVariable("s")) == BOOL_DOMAIN

    def test_compilation_primary_and_backup(self):
        config = FrrConfig()
        config.protect("a", "b", backups=["c"], state_var="s")
        rows = rows_of(config.forwarding_table())
        s = CVariable("s")
        assert rows[("a", "b")] == eq(s, 1)
        assert rows[("a", "c")] == eq(s, 0)

    def test_unprotected_link_unconditional(self):
        config = FrrConfig()
        config.add_link("a", "b")
        rows = rows_of(config.forwarding_table())
        assert rows[("a", "b")] is TRUE

    def test_ranked_backups_respect_protection_chain(self):
        # primary a→b (s); backups: first a→c (itself protected, t), then a→d
        config = FrrConfig()
        config.protect("a", "b", backups=["c", "d"], state_var="s")
        config.protect("a", "c", backups=[], state_var="t")
        rows = rows_of(config.forwarding_table())
        s, t = CVariable("s"), CVariable("t")
        assert rows[("a", "d")] == conjoin([eq(s, 0), eq(t, 0)])

    def test_world_of(self):
        config = FrrConfig()
        config.protect(1, 2, state_var="s")
        config.protect(2, 3, state_var="t")
        world = config.world_of([(1, 2)])
        assert world[CVariable("s")] == 0
        assert world[CVariable("t")] == 1


class TestPaperFigure1:
    def test_shape(self):
        config = paper_figure1()
        assert len(config.state_variables) == 3
        assert {v.name for v in config.state_variables} == {"x", "y", "z"}

    def test_table3_fragment(self):
        """F(1,2)[x̄=1], F(1,3)[x̄=0], F(2,3)[ȳ=1], F(2,4)[ȳ=0]."""
        rows = rows_of(paper_figure1().forwarding_table())
        x, y = CVariable("x"), CVariable("y")
        assert rows[(1, 2)] == eq(x, 1)
        assert rows[(1, 3)] == eq(x, 0)
        assert rows[(2, 3)] == eq(y, 1)
        assert rows[(2, 4)] == eq(y, 0)

    def test_detour_link_unconditional(self):
        rows = rows_of(paper_figure1().forwarding_table())
        assert rows[(4, 5)] is TRUE
