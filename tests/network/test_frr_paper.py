"""§4 / Table 3: reachability under failures on the Figure 1 network.

Checks the R fragment the paper prints: the conditions under which node 1
reaches node 5, and (2,3) reachability — then validates the whole table
against brute-force world enumeration (the loss-less claim).
"""

import itertools

import networkx as nx
import pytest

from repro.ctable.condition import conjoin, disjoin, eq
from repro.ctable.terms import Constant, CVariable
from repro.network.frr import paper_figure1
from repro.network.reachability import ReachabilityAnalyzer
from repro.solver.interface import ConditionSolver

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")


@pytest.fixture(scope="module")
def analyzer():
    config = paper_figure1()
    solver = ConditionSolver(config.domain_map())
    an = ReachabilityAnalyzer(config.database(), solver)
    an.compute()
    return config, solver, an


def conditions_for(analyzer, src, dst):
    table = analyzer.reach_table
    return [
        t.condition
        for t in table
        if t.values == (Constant(src), Constant(dst))
    ]


class TestTable3Fragment:
    def test_1_to_5_paper_conditions(self, analyzer):
        """The four (1,5) rows of Table 3 are all derivable."""
        _, solver, an = analyzer
        combined = disjoin(conditions_for(an, 1, 5))
        paper_rows = [
            conjoin([eq(X, 1), eq(Y, 1), eq(Z, 1)]),
            conjoin([eq(X, 0), eq(Z, 1)]),
            conjoin([eq(X, 0), eq(Z, 0)]),
            conjoin([eq(X, 1), eq(Y, 0)]),
        ]
        for row in paper_rows:
            assert solver.implies(row, combined), f"missing world {row}"

    def test_2_to_3_requires_y_up_or_detour(self, analyzer):
        _, solver, an = analyzer
        combined = disjoin(conditions_for(an, 2, 3))
        assert solver.implies(eq(Y, 1), combined)

    def test_1_to_5_universal(self, analyzer):
        """On this FRR config node 1 reaches 5 under *every* failure combo."""
        _, solver, an = analyzer
        combined = disjoin(conditions_for(an, 1, 5))
        assert solver.is_valid(combined)


class TestLossLessAgainstEnumeration:
    def test_every_pair_every_world(self, analyzer):
        """Full §4 loss-less check: 2^3 worlds × all node pairs."""
        config, _, an = analyzer
        forwarding = config.forwarding_table()
        nodes = sorted(config.topology.nodes)
        for bits in itertools.product([0, 1], repeat=3):
            assign_int = dict(zip([X, Y, Z], bits))
            assignment = {v: Constant(b) for v, b in assign_int.items()}
            graph = nx.DiGraph()
            graph.add_nodes_from(nodes)
            for tup in forwarding:
                if tup.condition.evaluate(assignment):
                    graph.add_edge(tup.values[0].value, tup.values[1].value)
            for src in nodes:
                for dst in nodes:
                    if src == dst:
                        continue
                    truth = nx.has_path(graph, src, dst)
                    faure = an.holds_in_world(src, dst, assign_int)
                    assert truth == faure, (src, dst, bits)
