"""Topology structure."""

import pytest

from repro.network.topology import Topology


class TestTopology:
    def test_links_directed(self):
        t = Topology([(1, 2)])
        assert t.has_link(1, 2)
        assert not t.has_link(2, 1)

    def test_add_undirected(self):
        t = Topology()
        t.add_undirected(1, 2)
        assert t.has_link(1, 2) and t.has_link(2, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology([(1, 1)])

    def test_idempotent_links(self):
        t = Topology([(1, 2), (1, 2)])
        assert len(t.links) == 1

    def test_nodes_inferred(self):
        t = Topology([(1, 2), (2, 3)])
        assert t.nodes == frozenset({1, 2, 3})

    def test_isolated_node(self):
        t = Topology(nodes=[9])
        assert 9 in t

    def test_successors(self):
        t = Topology([(1, 2), (1, 3), (2, 3)])
        assert sorted(t.successors(1)) == [2, 3]

    def test_networkx_roundtrip(self):
        t = Topology([(1, 2), (2, 3)])
        g = t.to_networkx()
        assert set(g.edges()) == {(1, 2), (2, 3)}

    def test_reachable_pairs(self):
        t = Topology([(1, 2), (2, 3)])
        assert t.reachable_pairs() == {(1, 2), (2, 3), (1, 3)}
