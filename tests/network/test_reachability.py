"""The reachability analyzer API: patterns, nesting, per-flow mode."""

import pytest

from repro.ctable.condition import LinearAtom, conjoin, eq
from repro.ctable.table import Database
from repro.ctable.terms import Constant, CVariable
from repro.network.forwarding import PrefixRoutes, compile_forwarding
from repro.network.frr import paper_figure1
from repro.network.reachability import ReachabilityAnalyzer, reachability_program
from repro.solver.interface import ConditionSolver
from repro.workloads.failures import (
    all_up,
    at_least_k_failures,
    exactly_k_failures,
    must_include_failure,
)

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")


@pytest.fixture
def analyzer():
    config = paper_figure1()
    solver = ConditionSolver(config.domain_map())
    return config, ReachabilityAnalyzer(config.database(), solver)


class TestProgramShapes:
    def test_two_ary(self):
        prog = reachability_program()
        assert prog.arity_of("R") == 2
        assert len(prog) == 2

    def test_per_flow(self):
        prog = reachability_program(per_flow=True)
        assert prog.arity_of("R") == 3


class TestPatterns:
    def test_q6_two_link_failure(self, analyzer):
        config, an = analyzer
        # exactly 1 of 3 links up == 2 failures
        table, stats = an.exactly_k_up(config.state_variables, 1)
        assert len(table) > 0
        assert stats.tuples_generated == len(table)
        for tup in table:
            assert any(isinstance(a, LinearAtom) for a in tup.condition.atoms())

    def test_q7_nested_with_specific_failure(self, analyzer):
        config, an = analyzer
        pattern = must_include_failure(
            exactly_k_failures(config.state_variables, 2), CVariable("y")
        )
        table, _ = an.under_pattern(pattern, source=2, dest=5)
        # (2,3) down and one more: 2 can still reach 5 via 4
        assert len(table) >= 1
        for tup in table:
            assert tup.values == (Constant(2), Constant(5))

    def test_q8_at_least_one_failure(self, analyzer):
        config, an = analyzer
        table, _ = an.under_pattern(
            at_least_k_failures([Y, Z], 1), source=1
        )
        assert all(t.values[0] == Constant(1) for t in table)

    def test_no_failure_world(self, analyzer):
        config, an = analyzer
        table, _ = an.under_pattern(all_up(config.state_variables))
        solver = an.solver
        for tup in table:
            assert solver.is_satisfiable(tup.condition)

    def test_pattern_true_returns_everything(self, analyzer):
        from repro.ctable.condition import TRUE

        _, an = analyzer
        table, _ = an.under_pattern(TRUE)
        assert len(table) == len(an.reach_table)


class TestPerFlow:
    def test_flows_do_not_mix(self):
        routes = [
            PrefixRoutes("10.0.0.0/24", (("A", "B"),)),
            PrefixRoutes("10.0.1.0/24", (("C", "D"),)),
        ]
        compiled = compile_forwarding(routes)
        solver = ConditionSolver(compiled.domains)
        an = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
        table = an.compute()
        flows = {t.values[0].value for t in table}
        assert flows == {"10.0.0.0/24", "10.0.1.0/24"}
        # no cross-flow A→D path
        assert not any(
            t.values[1].value == "A" and t.values[2].value == "D" for t in table
        )

    def test_flow_pinned_query(self):
        routes = [
            PrefixRoutes("p0", (("A", "B", "C"), ("A", "C"))),
        ]
        compiled = compile_forwarding(routes)
        solver = ConditionSolver(compiled.domains)
        an = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
        an.compute()
        u0, u1 = compiled.variables_of("p0")
        table, _ = an.under_pattern(eq(u0, 0), flow="p0", source="A", dest="C")
        assert len(table) >= 1
        # backup condition: primary failed, backup up
        combined = table.tuples()[0].condition
        assert solver.implies(conjoin([eq(u0, 0), eq(u1, 1)]), combined)

    def test_holds_in_world_per_flow(self):
        routes = [PrefixRoutes("p0", (("A", "B"),))]
        compiled = compile_forwarding(routes)
        solver = ConditionSolver(compiled.domains)
        an = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
        an.compute()
        (u0,) = compiled.variables_of("p0")
        assert an.holds_in_world("A", "B", {u0: 1}, flow="p0")
        assert not an.holds_in_world("A", "B", {u0: 0}, flow="p0")


class TestClassification:
    def test_certain_pairs_survive_all_failures(self, analyzer):
        config, an = analyzer
        an.compute()
        certain = an.certain_pairs()
        # on Figure 1, node 1 reaches 5 under every combination
        assert (1, 5) in certain
        # 4→5 is an unprotected link: always reachable
        assert (4, 5) in certain
        # 1→2 needs x̄=1: not certain
        assert (1, 2) not in certain

    def test_classify_summary(self, analyzer):
        config, an = analyzer
        an.compute()
        answers = an.classify()
        assert answers.certain and answers.possible
        for _, cond in answers.possible:
            assert an.solver.is_satisfiable(cond)
            assert not an.solver.is_valid(cond)
