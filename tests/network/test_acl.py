"""ACLs over partially known rule sets."""

import pytest

from repro.ctable.condition import FALSE, TRUE
from repro.ctable.terms import Constant, CVariable
from repro.network.acl import ANY, Acl, AclRule
from repro.solver.domains import DomainMap, FiniteDomain, IntRange, Unbounded
from repro.solver.interface import ConditionSolver


@pytest.fixture
def solver():
    domains = DomainMap(default=Unbounded("any"))
    domains.declare("who", FiniteDomain(["Mkt", "R&D"]))
    domains.declare("p", IntRange(1, 65535))
    return ConditionSolver(domains)


class TestAclRule:
    def test_action_validated(self):
        with pytest.raises(ValueError):
            AclRule("drop")

    def test_wildcard_matches_everything(self):
        rule = AclRule("permit")
        assert rule.match_condition(
            Constant("a"), Constant("b"), Constant(80)
        ) is TRUE

    def test_port_range(self):
        rule = AclRule("permit", ports=(1000, 2000))
        cond = rule.match_condition(Constant("a"), Constant("b"), Constant(80))
        assert cond is FALSE
        cond = rule.match_condition(Constant("a"), Constant("b"), Constant(1500))
        assert cond is TRUE

    def test_single_port(self):
        rule = AclRule("permit", ports=443)
        assert rule.match_condition(Constant("a"), Constant("b"), Constant(443)) is TRUE


class TestFirstMatch:
    def test_deny_shadows_later_permit(self, solver):
        acl = Acl().deny("Mkt", "CS", ANY).permit(ANY, "CS", ANY)
        assert acl.permits("Mkt", "CS", 80, solver) == "never"
        assert acl.permits("R&D", "CS", 80, solver) == "always"

    def test_default_deny(self, solver):
        acl = Acl().permit("Mkt", ANY, ANY)
        assert acl.permits("R&D", "GS", 80, solver) == "never"

    def test_default_permit(self, solver):
        acl = Acl(default="permit").deny("Mkt", ANY, ANY)
        assert acl.permits("R&D", "GS", 80, solver) == "always"
        assert acl.permits("Mkt", "GS", 80, solver) == "never"

    def test_port_range_split(self, solver):
        acl = Acl().deny(ANY, ANY, (0, 1023)).permit(ANY, ANY, ANY)
        assert acl.permits("a", "b", 80, solver) == "never"
        assert acl.permits("a", "b", 8080, solver) == "always"

    def test_bad_default(self):
        with pytest.raises(ValueError):
            Acl(default="drop")


class TestPartialAcls:
    def test_unknown_rule_endpoint_conditional(self, solver):
        who = CVariable("who")
        acl = Acl().deny(who, "CS", ANY).permit(ANY, "CS", ANY)
        assert acl.permits("Mkt", "CS", 80, solver) == "conditional"
        cond = acl.decision_condition("Mkt", "CS", 80)
        # permitted exactly when the unknown deny is NOT about Mkt
        from repro.ctable.condition import ne

        assert solver.equivalent(cond, ne(who, "Mkt"))

    def test_unknown_packet_port(self, solver):
        p = CVariable("p")
        acl = Acl().permit(ANY, ANY, (1000, 2000))
        cond = acl.decision_condition("a", "b", p)
        assert acl.permits("a", "b", p, solver) == "conditional"
        # the condition is the port interval itself
        assert solver.is_satisfiable(cond)
        from repro.ctable.condition import conjoin, ge, le

        assert solver.equivalent(cond, conjoin([ge(p, 1000), le(p, 2000)]))

    def test_permitted_table_conditions(self, solver):
        who = CVariable("who")
        acl = Acl().deny(who, ANY, ANY).permit(ANY, ANY, ANY)
        table = acl.permitted_table(
            [("Mkt", "CS", 80), ("R&D", "GS", 443)]
        )
        assert len(table) == 2
        for tup in table:
            assert tup.condition is not TRUE
            assert solver.is_satisfiable(tup.condition)

    def test_worlds_agree_with_direct_evaluation(self, solver):
        """Per-world, the compiled condition equals naive rule walking."""
        who = CVariable("who")
        acl = Acl().deny(who, "CS", ANY).permit(ANY, ANY, (0, 100))
        cond = acl.decision_condition("Mkt", "CS", 80)
        for value in ("Mkt", "R&D"):
            assignment = {who: Constant(value)}
            # naive: walk rules with who := value
            naive = None
            for rule in acl.rules:
                src = value if rule.src is who else rule.src
                concrete = AclRule(rule.action, src, rule.dst, rule.ports)
                match = concrete.match_condition(
                    Constant("Mkt"), Constant("CS"), Constant(80)
                )
                if match is TRUE:
                    naive = rule.action == "permit"
                    break
            if naive is None:
                naive = acl.default == "permit"
            assert cond.evaluate(assignment) == naive, value
