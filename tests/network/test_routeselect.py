"""Route selection under unknown preferences."""

import pytest

from repro.ctable.condition import gt
from repro.ctable.terms import Constant, CVariable
from repro.network.routeselect import (
    CandidateRoute,
    classify_selection,
    selection_conditions,
    selection_table,
)
from repro.solver.domains import DomainMap, FiniteDomain, IntRange, Unbounded
from repro.solver.interface import ConditionSolver

P = CVariable("p")
Q = CVariable("q")


@pytest.fixture
def solver():
    domains = DomainMap(default=Unbounded("int"))
    domains.declare(P, IntRange(0, 200))
    domains.declare(Q, IntRange(0, 200))
    return ConditionSolver(domains)


class TestKnownPreferences:
    def test_highest_wins(self, solver):
        candidates = [
            CandidateRoute("10.0/16", "A", 100),
            CandidateRoute("10.0/16", "B", 200),
        ]
        classes = classify_selection(candidates, solver)
        assert classes["10.0/16"] == {"A": "never", "B": "always"}

    def test_tie_break_earlier_wins(self, solver):
        candidates = [
            CandidateRoute("10.0/16", "A", 100),
            CandidateRoute("10.0/16", "B", 100),
        ]
        classes = classify_selection(candidates, solver)
        assert classes["10.0/16"] == {"A": "always", "B": "never"}

    def test_single_candidate_always(self, solver):
        classes = classify_selection([CandidateRoute("10.0/16", "A", 5)], solver)
        assert classes["10.0/16"]["A"] == "always"


class TestUnknownPreferences:
    def test_unknown_vs_known(self, solver):
        candidates = [
            CandidateRoute("10.0/16", "A", P),
            CandidateRoute("10.0/16", "B", 100),
        ]
        classes = classify_selection(candidates, solver)
        assert classes["10.0/16"] == {"A": "possible", "B": "possible"}
        conditions = dict(
            (c.next_hop, cond) for c, cond in selection_conditions(candidates)
        )
        # A wins iff p >= 100 (ties break toward the earlier candidate)
        from repro.ctable.condition import ge

        assert solver.equivalent(conditions["A"], ge(P, 100))
        assert solver.equivalent(conditions["B"], gt(Constant(100), P))

    def test_two_unknowns(self, solver):
        candidates = [
            CandidateRoute("10.0/16", "A", P),
            CandidateRoute("10.0/16", "B", Q),
        ]
        classes = classify_selection(candidates, solver)
        assert set(classes["10.0/16"].values()) == {"possible"}

    def test_unknown_bounded_out(self, solver):
        # q <= 200 by domain; a known preference of 500 always beats it
        candidates = [
            CandidateRoute("10.0/16", "A", 500),
            CandidateRoute("10.0/16", "B", Q),
        ]
        classes = classify_selection(candidates, solver)
        assert classes["10.0/16"] == {"A": "always", "B": "never"}

    def test_selection_table_prunes_dead_candidates(self, solver):
        candidates = [
            CandidateRoute("10.0/16", "A", 500),
            CandidateRoute("10.0/16", "B", Q),
        ]
        table = selection_table(candidates, solver=solver)
        assert len(table) == 1
        assert table.tuples()[0].values[1] == Constant("A")

    def test_prefixes_independent(self, solver):
        candidates = [
            CandidateRoute("10.0/16", "A", 10),
            CandidateRoute("10.1/16", "B", 5),
        ]
        classes = classify_selection(candidates, solver)
        assert classes["10.0/16"]["A"] == "always"
        assert classes["10.1/16"]["B"] == "always"

    def test_exactly_one_winner_per_world(self, solver):
        """In every world the selection picks exactly one next hop."""
        from repro.solver.enumerate import iter_models

        domains = DomainMap()
        domains.declare(P, FiniteDomain([0, 1, 2]))
        domains.declare(Q, FiniteDomain([0, 1, 2]))
        small = ConditionSolver(domains)
        candidates = [
            CandidateRoute("x", "A", P),
            CandidateRoute("x", "B", Q),
            CandidateRoute("x", "C", 1),
        ]
        conds = selection_conditions(candidates)
        for assignment in iter_models(
            __import__("repro.ctable.condition", fromlist=["TRUE"]).TRUE,
            domains,
            variables=[P, Q],
        ):
            winners = [
                c.next_hop for c, cond in conds if cond.evaluate(assignment)
            ]
            assert len(winners) == 1, assignment
