"""Failure-tolerance analysis."""

import itertools

import networkx as nx
import pytest

from repro.ctable.terms import Constant
from repro.network.frr import FrrConfig, paper_figure1
from repro.network.reachability import ReachabilityAnalyzer
from repro.network.resilience import (
    ResilienceReport,
    analyze_resilience,
    critical_sets,
    pair_tolerance,
)
from repro.solver.interface import ConditionSolver


@pytest.fixture(scope="module")
def figure1_analysis():
    config = paper_figure1()
    solver = ConditionSolver(config.domain_map())
    analyzer = ReachabilityAnalyzer(config.database(), solver)
    analyzer.compute()
    return config, analyzer


class TestPairTolerance:
    def test_fully_protected_pair(self, figure1_analysis):
        config, analyzer = figure1_analysis
        # 1→5 survives every combination of the three protected failures
        assert pair_tolerance(analyzer, config.state_variables, 1, 5) == 3

    def test_unprotected_single_link(self, figure1_analysis):
        config, analyzer = figure1_analysis
        # 4→5 is unconditional: tolerant to everything
        assert pair_tolerance(analyzer, config.state_variables, 4, 5) == 3

    def test_fragile_pair(self, figure1_analysis):
        config, analyzer = figure1_analysis
        # 1→2 requires x̄=1: any budget that can fail (1,2) breaks it
        assert pair_tolerance(analyzer, config.state_variables, 1, 2) == 0

    def test_unreachable_pair(self, figure1_analysis):
        config, analyzer = figure1_analysis
        # 5 has no outgoing links
        assert pair_tolerance(analyzer, config.state_variables, 5, 1) == -1

    def test_tolerance_matches_bruteforce(self, figure1_analysis):
        """Cross-check against graph enumeration for every pair."""
        config, analyzer = figure1_analysis
        variables = list(config.state_variables)
        forwarding = config.forwarding_table()
        nodes = sorted(config.topology.nodes)

        def reachable(bits, src, dst):
            assignment = {
                v: Constant(b) for v, b in zip(variables, bits)
            }
            graph = nx.DiGraph()
            graph.add_nodes_from(nodes)
            for tup in forwarding:
                if tup.condition.evaluate(assignment):
                    graph.add_edge(tup.values[0].value, tup.values[1].value)
            return nx.has_path(graph, src, dst)

        for src, dst in [(1, 5), (1, 3), (2, 5), (3, 5), (1, 2)]:
            got = pair_tolerance(analyzer, variables, src, dst)
            truth = -1
            for k in range(len(variables) + 1):
                ok = all(
                    reachable(bits, src, dst)
                    for bits in itertools.product([0, 1], repeat=len(variables))
                    if bits.count(0) <= k
                )
                if ok:
                    truth = k
                else:
                    break
            assert got == truth, (src, dst)


class TestCriticalSets:
    def test_fragile_pair_single_link(self, figure1_analysis):
        config, analyzer = figure1_analysis
        sets = critical_sets(analyzer, config, 1, 2)
        assert frozenset({(1, 2)}) in sets

    def test_protected_pair_has_no_critical_set(self, figure1_analysis):
        config, analyzer = figure1_analysis
        assert critical_sets(analyzer, config, 1, 5) == []

    def test_minimality(self, figure1_analysis):
        config, analyzer = figure1_analysis
        sets = critical_sets(analyzer, config, 1, 3)
        for a in sets:
            for b in sets:
                if a is not b:
                    assert not a < b


class TestReport:
    def test_profile_monotone(self, figure1_analysis):
        config, _ = figure1_analysis
        report = analyze_resilience(config)
        profile = report.profile()
        counts = [n for _, n in profile]
        assert counts == sorted(counts, reverse=True)

    def test_survivors_at_zero_counts_reachable_pairs(self, figure1_analysis):
        config, _ = figure1_analysis
        report = analyze_resilience(config)
        # pairs reachable in the no-failure world
        assert report.survivors(0) >= report.survivors(3)
        assert report.survivors(3) >= 2  # (1,5) and (4,5) at least

    def test_weakest_pairs_nonempty(self, figure1_analysis):
        config, _ = figure1_analysis
        report = analyze_resilience(config, pairs=[(1, 2), (1, 5)])
        assert report.weakest_pairs() == [(1, 2)]

    def test_str_renders(self, figure1_analysis):
        config, _ = figure1_analysis
        report = analyze_resilience(config, pairs=[(1, 5)])
        assert "survivors" in str(report)
