"""Checkpoint/resume: a killed run must resume byte-for-byte.

The journal's contracts under test, bottom-up: durable-or-absent
appends (torn tails discarded), idempotent records, fingerprint-guarded
resume, the memo observer bridge — and the acceptance bar: a ``rib
analyze`` run hard-killed mid-checkpoint resumes to stdout identical to
an uninterrupted run, re-running zero completed units.
"""

from __future__ import annotations

import json

import pytest

from repro.ctable.condition import Comparison
from repro.ctable.terms import Constant, CVariable
from repro.network.enterprise import (
    SCHEMAS,
    EnterpriseModel,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.robustness.checkpoint import CheckpointJournal, fingerprint_of
from repro.robustness.errors import CheckpointError
from repro.solver import BOOL_DOMAIN, DomainMap
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable
from repro.verify.constraints import Constraint
from repro.verify.verifier import RelativeCompleteVerifier
from repro.workloads.ribgen import dump_rib

from .test_chaos_invariance import run_cli, stable_lines

FP = fingerprint_of("workload-under-test")


class TestJournalUnits:
    def test_record_get_roundtrip(self, tmp_path):
        journal = CheckpointJournal.open(str(tmp_path / "ck.jsonl"), FP)
        journal.record("table", {"unit": "reach"}, {"rows": 3})
        assert journal.get("table", {"unit": "reach"}) == {"rows": 3}
        assert journal.get("table", {"unit": "other"}) is None
        assert journal.recorded == 1

    def test_record_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.open(str(path), FP)
        journal.record("pattern", {"q": 1}, {"n": 1})
        journal.record("pattern", {"q": 1}, {"n": 1})
        journal.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one record, not two

    def test_reopen_replays_durable_records(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        journal = CheckpointJournal.open(path, FP)
        journal.record("verify", {"i": 0}, {"status": "SATISFIED"})
        journal.record("verify", {"i": 1}, {"status": "VIOLATED"})
        journal.close()
        resumed = CheckpointJournal.open(path, FP)
        assert resumed.replayed == 2
        assert resumed.recorded == 0
        assert resumed.get("verify", {"i": 1}) == {"status": "VIOLATED"}

    def test_fingerprint_mismatch_is_a_hard_error(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        CheckpointJournal.open(path, FP).close()
        with pytest.raises(CheckpointError, match="different workload"):
            CheckpointJournal.open(path, fingerprint_of("something else"))

    def test_garbage_file_is_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("not a journal\n")
        with pytest.raises(CheckpointError, match="bad header"):
            CheckpointJournal.open(str(path), FP)

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        """A record is either durable or absent — never half-replayed."""
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.open(str(path), FP)
        journal.record("table", {"unit": "reach"}, {"rows": 3})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "pattern", "key": "abc", "pay')  # died here
        resumed = CheckpointJournal.open(str(path), FP)
        assert resumed.replayed == 1
        resumed.record("pattern", {"q": 9}, {"n": 2})
        resumed.close()
        # The torn line is gone; every surviving line parses.
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)


class TestMemoBridge:
    def test_attach_streams_and_replays_definite_verdicts(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        x = CVariable("x")
        domains = DomainMap({x: BOOL_DOMAIN})
        condition = Comparison(x, "=", Constant(1))

        journal = CheckpointJournal.open(path, FP)
        memo = MemoTable()
        assert journal.attach(memo, domains) == 0
        memo.put(memo.sat_key(condition, domains), True)
        assert journal.recorded == 1
        journal.close()

        resumed = CheckpointJournal.open(path, FP)
        fresh = MemoTable()
        assert resumed.attach(fresh, domains) == 1
        assert fresh.peek(fresh.sat_key(condition, domains)) is True
        # Replayed entries are not re-journaled (resume stays minimal).
        assert resumed.recorded == 0
        resumed.close()


class TestVerifyResume:
    def scenario(self):
        model = EnterpriseModel.paper_state()
        solver = ConditionSolver(model.domain_map(), memo=MemoTable())
        verifier = RelativeCompleteVerifier(
            [Constraint("C_lb", policy_C_lb()), Constraint("C_s", policy_C_s())],
            solver,
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        targets = [Constraint("T1", constraint_T1()), Constraint("T2", constraint_T2())]
        return model, verifier, targets

    def test_resumed_run_reverifies_nothing(self, tmp_path):
        path = str(tmp_path / "verify.jsonl")
        model, verifier, targets = self.scenario()
        journal = CheckpointJournal.open(path, FP)
        first = verifier.verify_many(
            targets,
            update=listing4_update(),
            state=model.database(),
            checkpoint=journal,
        )
        assert journal.recorded == len(targets)
        journal.close()

        resumed = CheckpointJournal.open(path, FP)
        model2, verifier2, targets2 = self.scenario()
        second = verifier2.verify_many(
            targets2,
            update=listing4_update(),
            state=model2.database(),
            checkpoint=resumed,
        )
        assert resumed.recorded == 0  # zero re-verified units
        for a, b in zip(first, second):
            assert a.status == b.status
            assert a.decided_by == b.decided_by
            assert a.trail == b.trail


class TestCliKillResume:
    """ISSUE acceptance: kill mid-checkpoint, resume, identical stdout."""

    def test_analyze_killed_then_resumed_matches_uninterrupted(self, rib, tmp_path):
        routes, _ = rib
        rib_file = tmp_path / "rib.txt"
        rib_file.write_text(dump_rib(routes))
        base = ["rib", "analyze", str(rib_file), "--patterns"]

        uninterrupted = run_cli(base + ["--checkpoint", str(tmp_path / "ck0.jsonl")])
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        checkpoint = tmp_path / "ck.jsonl"
        killed = run_cli(
            base + ["--checkpoint", str(checkpoint)],
            env_extra={
                "FAURE_CHAOS": f"die-after-records:2:{tmp_path / 'die-sentinel'}"
            },
        )
        assert killed.returncode == 1  # hard-exited mid-run
        assert checkpoint.exists() and checkpoint.stat().st_size > 0

        resumed = run_cli(base + ["--checkpoint", str(checkpoint)])
        assert resumed.returncode == 0, resumed.stderr
        assert stable_lines(resumed.stdout) == stable_lines(uninterrupted.stdout)
        # The resume replayed the killed run's durable units…
        assert "-- checkpoint:" in resumed.stderr
        replayed = int(resumed.stderr.split("-- checkpoint: ")[1].split()[0])
        assert replayed >= 2
        # …and a third run replays everything, recording nothing new.
        again = run_cli(base + ["--checkpoint", str(checkpoint)])
        assert again.returncode == 0
        assert stable_lines(again.stdout) == stable_lines(uninterrupted.stdout)
        assert "0 recorded" in again.stderr
