"""The acceptance bar: chaos must not change a single byte of output.

A worker SIGKILLed mid-shard, a task hung past its timeout — after
recovery (respawn + deterministic retry, quarantine as the last
resort) every analysis surface must produce output identical to a
clean ``jobs=1`` run.  Supervision counters are the only permitted
difference, and they live in the governor event ledger / stderr, never
in the analysis results.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ctable import CTable, CTuple
from repro.ctable.condition import conjoin
from repro.engine.stats import EvalStats
from repro.network.enterprise import (
    SCHEMAS,
    EnterpriseModel,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.network.reachability import PatternQuery, ReachabilityAnalyzer
from repro.parallel.batch import prune_batched
from repro.parallel.supervisor import SupervisedExecutor
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable
from repro.verify.constraints import Constraint
from repro.verify.verifier import RelativeCompleteVerifier
from repro.workloads.failures import at_least_k_failures
from repro.workloads.ribgen import dump_rib

JOBS = 3

#: Failure accounting is *allowed* to differ between clean and chaotic
#: runs — it records the recovery work itself.  Everything else is not.
SUPERVISION_KEYS = frozenset(
    ("worker_crashes", "task_timeouts", "task_retries", "tasks_quarantined",
     "tasks_lost")
)

SRC = Path(__file__).resolve().parents[2] / "src"


def rendered(table: CTable) -> str:
    return table.pretty(max_rows=None)


def semantic_events(governor) -> dict:
    """Governor events minus the supervision ledger."""
    events = dataclasses.asdict(governor.events)
    return {k: v for k, v in events.items() if k not in SUPERVISION_KEYS}


def chaotic_executor(**kwargs) -> SupervisedExecutor:
    kwargs.setdefault("backoff_base", 0.001)
    kwargs.setdefault("task_retries", 2)
    return SupervisedExecutor(JOBS, **kwargs)


# -- batched pruning ----------------------------------------------------------


@pytest.fixture(scope="module")
def q8_table(rib):
    """The phase-3 c-table: R tuples with failure patterns conjoined."""
    routes, compiled = rib
    solver = ConditionSolver(compiled.domains, memo=MemoTable())
    analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
    r_table = analyzer.compute()
    table = CTable("Q8", r_table.schema)
    for tup in r_table:
        prefix = tup.values[0].value
        variables = list(compiled.variables_of(prefix))
        condition = tup.condition
        if len(variables) >= 2:
            condition = conjoin([condition, at_least_k_failures(variables, 1)])
        table.add(CTuple(tup.values, condition))
    return table, compiled.domains


def run_prune(table, domains, jobs=1, executor=None):
    from repro.robustness.governor import Governor

    solver = ConditionSolver(domains, governor=Governor().start(), memo=MemoTable())
    stats = EvalStats()
    out = prune_batched(table, solver, stats, jobs=jobs, executor=executor)
    return out, stats, solver


class TestPruneInvariance:
    def assert_identical(self, q8_table, executor):
        table, domains = q8_table
        s_out, s_stats, s_solver = run_prune(table, domains, jobs=1)
        p_out, p_stats, p_solver = run_prune(
            table, domains, jobs=JOBS, executor=executor
        )
        assert rendered(s_out) == rendered(p_out)
        assert s_stats.tuples_pruned == p_stats.tuples_pruned
        assert s_stats.unknown_kept == p_stats.unknown_kept
        assert semantic_events(s_solver.governor) == semantic_events(
            p_solver.governor
        )
        return p_solver, executor

    def test_sigkill_mid_shard(self, q8_table, chaos_env):
        chaos_env("kill:1:{s}")
        executor = chaotic_executor()
        p_solver, executor = self.assert_identical(q8_table, executor)
        assert executor.last_failures.worker_crashes == 1
        assert executor.last_failures.task_retries == 1
        # The recovery is *visible* in the governor's event ledger.
        assert p_solver.governor.events.worker_crashes == 1

    def test_hung_shard_times_out_and_retries(self, q8_table, chaos_env):
        chaos_env("hang:0:30:{s}")
        executor = chaotic_executor(task_timeout=1.0)
        self.assert_identical(q8_table, executor)
        assert executor.last_failures.task_timeouts == 1
        assert executor.last_failures.task_retries == 1

    def test_kill_and_hang_composed(self, q8_table, chaos_env):
        chaos_env("kill:2:{s}", "hang:0:30:{s}")
        executor = chaotic_executor(task_timeout=1.0)
        self.assert_identical(q8_table, executor)
        assert executor.last_failures.worker_crashes == 1
        assert executor.last_failures.task_timeouts == 1

    def test_unrecoverable_shard_quarantines_byte_identical(
        self, q8_table, chaos_env
    ):
        """kill-always exhausts retries; the inline re-run still matches."""
        chaos_env("kill-always:1")
        executor = chaotic_executor(task_retries=1)
        self.assert_identical(q8_table, executor)
        assert executor.last_failures.tasks_quarantined == 1


# -- pattern fan-out ----------------------------------------------------------


def pattern_queries(rib):
    routes, compiled = rib
    queries = []
    for route in routes:
        variables = list(compiled.variables_of(route.prefix))
        if len(variables) < 2:
            continue
        queries.append(
            PatternQuery(
                at_least_k_failures(variables, 1), name="T3", flow=route.prefix
            )
        )
    return queries


class TestPatternInvariance:
    def run(self, rib, jobs=1, executor=None):
        routes, compiled = rib
        solver = ConditionSolver(compiled.domains, memo=MemoTable())
        analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
        results = analyzer.under_patterns(
            pattern_queries(rib), jobs=jobs, executor=executor
        )
        return "\n".join(rendered(t) for t, _ in results), analyzer

    def test_sigkill_mid_query(self, rib, chaos_env):
        serial, s_analyzer = self.run(rib)
        chaos_env("kill:0:{s}")
        executor = chaotic_executor()
        chaotic, p_analyzer = self.run(rib, jobs=JOBS, executor=executor)
        assert serial == chaotic
        assert executor.last_failures.worker_crashes == 1
        assert s_analyzer.stats.tuples_generated == p_analyzer.stats.tuples_generated
        assert s_analyzer.stats.tuples_pruned == p_analyzer.stats.tuples_pruned

    def test_hang_mid_query(self, rib, chaos_env):
        serial, _ = self.run(rib)
        chaos_env("hang:1:30:{s}")
        executor = chaotic_executor(task_timeout=1.0)
        chaotic, _ = self.run(rib, jobs=JOBS, executor=executor)
        assert serial == chaotic
        assert executor.last_failures.task_timeouts == 1


# -- verification -------------------------------------------------------------


class TestVerifyInvariance:
    @pytest.fixture()
    def scenario(self):
        model = EnterpriseModel.paper_state()
        return {
            "model": model,
            "known": [
                Constraint("C_lb", policy_C_lb()),
                Constraint("C_s", policy_C_s()),
            ],
            "targets": [
                Constraint("T1", constraint_T1()),
                Constraint("T2", constraint_T2()),
            ],
            "update": listing4_update(),
            "state": model.database(),
        }

    def run(self, scenario, jobs=1, executor=None):
        solver = ConditionSolver(scenario["model"].domain_map(), memo=MemoTable())
        verifier = RelativeCompleteVerifier(
            scenario["known"],
            solver,
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        return verifier.verify_many(
            scenario["targets"],
            update=scenario["update"],
            state=scenario["state"],
            jobs=jobs,
            executor=executor,
        )

    def test_sigkilled_target_worker_same_verdicts(self, scenario, chaos_env):
        serial = self.run(scenario)
        chaos_env("kill:0:{s}")
        executor = SupervisedExecutor(2, backoff_base=0.001, task_retries=2)
        chaotic = self.run(scenario, jobs=2, executor=executor)
        assert executor.last_failures.worker_crashes == 1
        assert len(serial) == len(chaotic) == 2
        for s, p in zip(serial, chaotic):
            assert s.status == p.status
            assert s.decided_by == p.decided_by
            assert s.trail == p.trail


# -- the CLI, end to end ------------------------------------------------------


def stable_lines(output: str) -> str:
    """Everything but wall-clock timings (the only permitted variance)."""
    return "\n".join(
        line for line in output.splitlines() if "seconds" not in line
    )


def run_cli(args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("FAURE_CHAOS", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=240,
    )


class TestCliByteIdentity:
    """ISSUE acceptance: chaotic ``--jobs 4`` stdout == clean ``--jobs 1``."""

    def test_analyze_with_kill_and_hang_matches_serial(self, rib, tmp_path):
        routes, _ = rib
        rib_file = tmp_path / "rib.txt"
        rib_file.write_text(dump_rib(routes))

        clean = run_cli(
            ["rib", "analyze", str(rib_file), "--patterns", "--jobs", "1"]
        )
        assert clean.returncode == 0, clean.stderr

        chaos = (
            f"kill:0:{tmp_path / 'kill-sentinel'};"
            f"hang:1:30:{tmp_path / 'hang-sentinel'}"
        )
        chaotic = run_cli(
            [
                "rib", "analyze", str(rib_file), "--patterns",
                "--jobs", "4", "--task-timeout", "2", "--task-retries", "2",
            ],
            env_extra={"FAURE_CHAOS": chaos},
        )
        assert chaotic.returncode == 0, chaotic.stderr
        assert stable_lines(chaotic.stdout) == stable_lines(clean.stdout)
        # The recovery is reported — but on stderr, never stdout.
        assert "supervision" in chaotic.stderr
        assert "1 worker crash(es)" in chaotic.stderr
        assert "1 timeout(s)" in chaotic.stderr
        assert "supervision" not in chaotic.stdout
