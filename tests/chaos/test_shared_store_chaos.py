"""The shared verdict store under process-level chaos.

The store's crash-tolerance contract (repro.parallel.shared_memo):
concurrent ``O_APPEND`` writers interleave at record granularity, a
reader racing a writer sees every *complete* record and nothing else,
a SIGKILLed writer costs at most its own unfinished tail, and a
corrupt region is skipped — a lost cache hit, never a wrong answer or
a crash.  On top: the byte-identity bar with the store active, and
checkpoint/resume coexisting with the store on one memo's observers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

from repro.engine.stats import EvalStats
from repro.network.enterprise import (
    SCHEMAS,
    EnterpriseModel,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.parallel.batch import prune_batched
from repro.parallel.shared_memo import RECORD_SIZE, SharedVerdictStore
from repro.robustness.checkpoint import CheckpointJournal, fingerprint_of
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable
from repro.verify.constraints import Constraint
from repro.verify.verifier import RelativeCompleteVerifier

from .test_chaos_invariance import (
    JOBS,
    chaotic_executor,
    pattern_queries,
    q8_table,  # noqa: F401  (module-scoped fixture re-export)
    rendered,
)

_CTX = multiprocessing.get_context("fork")


def _key(writer: int, i: int) -> bytes:
    return f"w{writer:04d}r{i:08d}".encode().ljust(16, b"\0")


_FP = b"chaosfp1"


def _writer_proc(path: str, writer: int, count: int, delay: float) -> None:
    store = SharedVerdictStore.attach(path)
    try:
        for i in range(count):
            store.append(_key(writer, i), _FP, i % 2 == 0)
            if delay:
                time.sleep(delay)
    finally:
        store.close()


def _kill_proc(path: str, writer: int, count: int) -> None:
    """Append ``count`` records, then die without warning."""
    store = SharedVerdictStore.attach(path)
    for i in range(count):
        store.append(_key(writer, i), _FP, True)
    os.kill(os.getpid(), signal.SIGKILL)


class TestStoreUnderProcessChaos:
    def test_concurrent_writers_interleave_cleanly(self, tmp_path):
        """Many writers, one log: every record lands intact."""
        store = SharedVerdictStore.create(dir=tmp_path)
        writers, per_writer = 4, 200
        procs = [
            _CTX.Process(target=_writer_proc, args=(store.path, w, per_writer, 0))
            for w in range(writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        try:
            store.poll()
            assert store.skipped_records == 0
            for w in range(writers):
                for i in range(per_writer):
                    assert store.lookup(_key(w, i), _FP) is (i % 2 == 0)
            size = os.path.getsize(store.path)
            assert size == RECORD_SIZE * (1 + writers * per_writer)
        finally:
            store.close(unlink=True)

    def test_reader_races_a_live_writer(self, tmp_path):
        """Polling mid-write never surfaces a torn or phantom record."""
        store = SharedVerdictStore.create(dir=tmp_path)
        proc = _CTX.Process(
            target=_writer_proc, args=(store.path, 0, 150, 0.0005)
        )
        proc.start()
        try:
            seen, deadline = 0, time.monotonic() + 30
            while seen < 150 and time.monotonic() < deadline:
                seen += store.poll()
                assert store.skipped_records == 0
            assert seen == 150
            assert store.lookup(_key(0, 149), _FP) is False
        finally:
            proc.join(timeout=30)
            store.close(unlink=True)

    def test_sigkill_mid_append_leaves_log_readable(self, tmp_path):
        """A writer dying unannounced costs nothing already durable."""
        store = SharedVerdictStore.create(dir=tmp_path)
        proc = _CTX.Process(target=_kill_proc, args=(store.path, 7, 25))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == -signal.SIGKILL
        try:
            assert store.poll() == 25
            assert store.skipped_records == 0
            assert store.lookup(_key(7, 24), _FP) is True
            # The survivors keep appending and reading as if nothing
            # happened — the log has no writer registry to corrupt.
            store.append(_key(8, 0), _FP, False)
            reader = SharedVerdictStore.attach(store.path)
            try:
                assert reader.lookup(_key(8, 0), _FP) is False
                assert reader.lookup(_key(7, 0), _FP) is True
            finally:
                reader.close()
        finally:
            store.close(unlink=True)

    def test_corrupt_region_is_skipped_not_fatal(self, tmp_path):
        """Scribbled bytes (torn page, bad disk) cost hits, not answers."""
        store = SharedVerdictStore.create(dir=tmp_path)
        try:
            store.append(_key(0, 0), _FP, True)
            with open(store.path, "r+b") as fh:
                fh.seek(0, os.SEEK_END)
                fh.write(b"\xff" * (RECORD_SIZE * 3))
            store.append(_key(0, 1), _FP, False)
            reader = SharedVerdictStore.attach(store.path)
            try:
                reader.poll()
                assert reader.skipped_records == 3
                assert reader.lookup(_key(0, 0), _FP) is True
                assert reader.lookup(_key(0, 1), _FP) is False
            finally:
                reader.close()
        finally:
            store.close(unlink=True)


# -- byte-identity with the store actually in play ---------------------------


class TestChaosWithStoreActive:
    """The invariance bar again, now with store reads *enabled*.

    The other chaos suites run governed solvers, which stand the read
    side down by design.  Ungoverned runs are where sharing is live —
    a SIGKILLed worker's retry may now be answered from the log, and
    the output must still match ``jobs=1`` exactly (exactness of the
    decision procedures is what makes served verdicts invisible).
    """

    def run_prune(self, q8_table, jobs=1, executor=None):
        table, domains = q8_table
        solver = ConditionSolver(domains, memo=MemoTable())
        stats = EvalStats()
        out = prune_batched(table, solver, stats, jobs=jobs, executor=executor)
        return out, stats, solver

    def test_prune_sigkill_with_shared_reads(self, q8_table, chaos_env):
        s_out, s_stats, _ = self.run_prune(q8_table)
        chaos_env("kill:1:{s}")
        executor = chaotic_executor()
        assert executor.shared_memo
        p_out, p_stats, p_solver = self.run_prune(
            q8_table, jobs=JOBS, executor=executor
        )
        assert rendered(s_out) == rendered(p_out)
        assert s_stats.tuples_pruned == p_stats.tuples_pruned
        assert executor.last_failures.worker_crashes == 1
        session = getattr(p_solver.memo, "_store_session", None)
        assert session is not None and session.store.writes > 0

    def test_patterns_sigkill_with_shared_reads(self, rib, chaos_env):
        from repro.network.reachability import ReachabilityAnalyzer

        def run(jobs=1, executor=None):
            routes, compiled = rib
            solver = ConditionSolver(compiled.domains, memo=MemoTable())
            analyzer = ReachabilityAnalyzer(
                compiled.database(), solver, per_flow=True
            )
            results = analyzer.under_patterns(
                pattern_queries(rib), jobs=jobs, executor=executor
            )
            return "\n".join(rendered(t) for t, _ in results), analyzer

        serial, _ = run()
        chaos_env("kill:0:{s}")
        executor = chaotic_executor()
        chaotic, analyzer = run(jobs=JOBS, executor=executor)
        assert serial == chaotic
        assert executor.last_failures.worker_crashes == 1
        assert "shared_memo_hits" in analyzer.stats.extra
        session = getattr(analyzer.solver.memo, "_store_session", None)
        assert session is not None and session.store.writes > 0


# -- checkpoint/resume with the store on the same memo ------------------------


class TestCheckpointWithStore:
    def test_resume_replays_with_store_active(self, tmp_path):
        """Journal and store both observe one memo; resume replays all."""
        model = EnterpriseModel.paper_state()
        known = [
            Constraint("C_lb", policy_C_lb()),
            Constraint("C_s", policy_C_s()),
        ]
        targets = [
            Constraint("T1", constraint_T1()),
            Constraint("T2", constraint_T2()),
        ]
        path = str(tmp_path / "ck.jsonl")
        fp = fingerprint_of("store+checkpoint")

        def run(journal):
            solver = ConditionSolver(model.domain_map(), memo=MemoTable())
            verifier = RelativeCompleteVerifier(
                known,
                solver,
                schemas=SCHEMAS,
                column_domains=column_domains(),
            )
            verdicts = verifier.verify_many(
                targets,
                update=listing4_update(),
                state=model.database(),
                jobs=2,
                checkpoint=journal,
            )
            return [str(v) for v in verdicts], solver

        first = CheckpointJournal.open(path, fp)
        fresh, solver = run(first)
        first.close()
        # The store session and the journal coexisted on the memo.
        session = getattr(solver.memo, "_store_session", None)
        assert session is not None and not session.closed

        resumed_journal = CheckpointJournal.open(path, fp)
        assert resumed_journal.replayed >= len(targets)
        resumed, _ = run(resumed_journal)
        assert resumed_journal.recorded == 0  # nothing re-verified
        resumed_journal.close()
        assert resumed == fresh
