"""Unit tests of the supervised executor's failure machinery.

Worker deaths are real SIGKILLs (delivered by the worker loop's chaos
hook), timeouts are real wall-clock overruns — nothing is mocked except
the backoff clock in the determinism tests.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel.supervisor import (
    SupervisedExecutor,
    TaskLost,
    chaos_directives,
    fold_failures,
)
from repro.robustness.errors import WorkerLost
from repro.robustness.governor import Governor
from repro.engine.stats import EvalStats

from .conftest import (
    _GUARDED_STATE,
    double,
    failing_task,
    pid_task,
    slow_double,
    stateful_init,
    stateful_task,
)

TASKS = list(range(6))
EXPECT = [x * 2 for x in TASKS]


def make_executor(**kwargs) -> SupervisedExecutor:
    kwargs.setdefault("backoff_base", 0.001)
    return SupervisedExecutor(2, **kwargs)


class TestChaosProtocol:
    def test_parses_directives(self, monkeypatch):
        monkeypatch.setenv("FAURE_CHAOS", "kill:3:/tmp/s1; hang:1:5:/tmp/s2;")
        assert chaos_directives() == [
            ("kill", "3", "/tmp/s1"),
            ("hang", "1", "5", "/tmp/s2"),
        ]

    def test_empty_means_no_faults(self, monkeypatch):
        monkeypatch.delenv("FAURE_CHAOS", raising=False)
        assert chaos_directives() == []


class TestCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_task_retried(self, chaos_env):
        chaos_env("kill:2:{s}")
        executor = make_executor()
        assert executor.map(double, TASKS) == EXPECT
        failures = executor.last_failures
        assert failures.worker_crashes == 1
        assert failures.task_retries == 1
        assert failures.tasks_quarantined == 0
        assert failures.tasks_lost == 0

    def test_multiple_crashes_across_tasks(self, chaos_env):
        chaos_env("kill:0:{s}", "kill:4:{s}")
        executor = make_executor()
        assert executor.map(double, TASKS) == EXPECT
        assert executor.last_failures.worker_crashes == 2
        assert executor.last_failures.task_retries == 2

    def test_cumulative_ledger_spans_maps(self, chaos_env):
        chaos_env("kill:1:{s}")
        executor = make_executor()
        executor.map(double, TASKS)
        executor.map(double, TASKS)  # sentinel consumed: clean second map
        assert executor.last_failures.worker_crashes == 0
        assert executor.failures.worker_crashes == 1


class TestTimeouts:
    def test_hung_task_is_killed_and_retried(self, chaos_env):
        chaos_env("hang:3:30:{s}")
        executor = make_executor(task_timeout=0.5)
        assert executor.map(double, TASKS) == EXPECT
        assert executor.last_failures.task_timeouts == 1
        assert executor.last_failures.task_retries == 1

    def test_no_timeout_without_configuration(self, chaos_env):
        chaos_env("hang:3:0.2:{s}")  # brief hang, no timeout armed
        executor = make_executor()
        assert executor.map(double, TASKS) == EXPECT
        assert executor.last_failures.task_timeouts == 0


class TestWorkerLossPolicies:
    def test_inline_quarantine_is_default_and_completes(self, chaos_env):
        chaos_env("kill-always:2")
        executor = make_executor(task_retries=1)
        assert executor.map(double, TASKS) == EXPECT
        failures = executor.last_failures
        assert failures.tasks_quarantined == 1
        assert failures.tasks_lost == 0
        assert failures.task_retries == 1

    def test_quarantined_task_runs_in_parent(self, chaos_env):
        chaos_env("kill-always:0")
        executor = make_executor(task_retries=0)
        pids = executor.map(pid_task, [0, 1])
        assert pids[0] == os.getpid()  # quarantined: ran inline
        assert pids[1] != os.getpid()  # survived: ran in a worker

    def test_degrade_yields_task_lost_marker(self, chaos_env):
        chaos_env("kill-always:2")
        executor = make_executor(task_retries=1, on_worker_loss="degrade")
        results = executor.map(double, TASKS)
        assert isinstance(results[2], TaskLost)
        assert results[2].task_index == 2
        assert [r for i, r in enumerate(results) if i != 2] == [
            x * 2 for x in TASKS if x != 2
        ]
        assert executor.last_failures.tasks_lost == 1

    def test_fail_raises_worker_lost(self, chaos_env):
        chaos_env("kill-always:2")
        executor = make_executor(task_retries=1, on_worker_loss="fail")
        with pytest.raises(WorkerLost) as excinfo:
            executor.map(double, TASKS)
        assert excinfo.value.task_index == 2

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(2, on_worker_loss="panic")


class TestApplicationErrors:
    def test_app_exception_is_not_retried(self):
        """A worker *returning* an error is an answer, not a crash."""
        executor = make_executor()
        with pytest.raises(ValueError, match="bad input 0"):
            executor.map(failing_task, TASKS)
        assert executor.last_failures.task_retries == 0
        assert executor.last_failures.worker_crashes == 0

    def test_lowest_task_index_error_wins(self):
        # Tasks 0 and 3 both raise; the serial path would surface 0's.
        executor = make_executor()
        with pytest.raises(ValueError, match="bad input 0"):
            executor.map(failing_task, [0, 3, 1, 2])


class TestDeterministicBackoff:
    def run_with_fake_time(self, chaos_env, tmp_path, tag):
        sleeps = []
        clock = [0.0]

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        chaos_env(f"kill:0:{tmp_path}/{tag}-a", f"kill:3:{tmp_path}/{tag}-b")
        executor = make_executor(
            backoff_base=0.25, backoff_seed=7, sleep=fake_sleep
        )
        assert executor.map(double, TASKS) == EXPECT
        return sleeps

    def test_schedule_is_a_pure_function_of_seed_and_failures(
        self, chaos_env, tmp_path
    ):
        first = self.run_with_fake_time(chaos_env, tmp_path, "one")
        second = self.run_with_fake_time(chaos_env, tmp_path, "two")
        assert len(first) == 2  # one backoff per retried task
        assert first == second
        # Exponential base with seeded jitter in [0.5, 1.0).
        assert 0.125 <= first[0] < 0.25
        assert 0.25 <= first[1] < 0.5


class TestInlineStateGuard:
    def test_jobs1_initializer_state_does_not_leak(self):
        _GUARDED_STATE.clear()
        _GUARDED_STATE["tag"] = "parent"
        executor = SupervisedExecutor(1)
        out = executor.map(
            stateful_task, [1, 2], initializer=stateful_init, initargs=("inline",)
        )
        assert out == ["inline:1", "inline:2"]
        assert _GUARDED_STATE["tag"] == "parent"  # snapshot restored

    def test_quarantine_path_is_guarded_too(self, chaos_env):
        _GUARDED_STATE.clear()
        _GUARDED_STATE["tag"] = "parent"
        chaos_env("kill-always:0")
        executor = make_executor(task_retries=0)
        out = executor.map(
            stateful_task,
            [1, 2],
            initializer=stateful_init,
            initargs=("q",),
        )
        assert out == ["q:1", "q:2"]
        assert _GUARDED_STATE["tag"] == "parent"


class TestRefreshInitargs:
    def test_refresh_called_per_spawn_and_respawn(self, chaos_env):
        chaos_env("kill:1:{s}")
        calls = []

        def refresh():
            calls.append(len(calls))
            return ("refreshed",)

        executor = make_executor()
        out = executor.map(
            stateful_task,
            TASKS,
            initializer=stateful_init,
            initargs=("stale",),
            refresh_initargs=refresh,
        )
        assert out == [f"refreshed:{x}" for x in TASKS]
        # 2 initial spawns + at least 1 respawn after the kill.
        assert len(calls) >= 3


class TestFoldFailures:
    def test_folds_into_governor_and_stats(self, chaos_env):
        chaos_env("kill:0:{s}")
        executor = make_executor()
        executor.map(double, TASKS)
        governor = Governor()
        stats = EvalStats()
        fold_failures(executor, governor=governor, stats=stats)
        assert governor.events.worker_crashes == 1
        assert governor.events.task_retries == 1
        assert stats.extra["worker_crashes"] == 1

    def test_noop_for_clean_maps_and_plain_executors(self):
        executor = make_executor()
        executor.map(double, TASKS)
        governor = Governor()
        fold_failures(executor, governor=governor)
        fold_failures(object(), governor=governor)  # no ledger: ignored
        assert governor.events.worker_crashes == 0


class TestSlowPathStillOrders:
    def test_results_keep_task_order_under_contention(self):
        executor = SupervisedExecutor(3, backoff_base=0.001)
        tasks = list(range(12))
        assert executor.map(slow_double, tasks) == [x * 2 for x in tasks]
