"""Serve-daemon chaos: SIGKILL mid-ingest, overload shedding.

Both faults are driven through the production ``FAURE_CHAOS`` protocol:
``die-after-records:<n>:<sentinel>`` hard-exits the daemon the instant
its WAL makes the *n*-th update durable (the checkpoint journal's own
chaos hook — the serve WAL rides the same append path), and
``serve-hang-apply:<seconds>:<sentinel>`` stalls the ingest thread so
the bounded queue overflows deterministically.

The acceptance bar (mirrored by the CI ``serve-chaos`` job):

* a daemon killed mid-ingest restarts to query answers **byte-identical**
  to a never-killed daemon's over the same update stream, with client
  txid retries deduplicated across the crash;
* under overload, shed updates get an explicit ``OVERLOADED`` +
  ``retry_after`` response while queries and health keep answering, and
  the daemon keeps ingesting afterwards.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

from ..serve.conftest import PROGRAM_TEXT, seed_database_text

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The announcement stream both daemons see (txid, relation, values, cond).
UPDATES = [
    ("a1", "F", ["p1", "C", "D"], None),
    ("a2", "F", ["p2", "E", "G"], "$up == 1"),
    ("a3", "F", ["p1", "D", "A"], None),
]


def daemon_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("FAURE_CHAOS", None)
    env.update(extra)
    return env


@pytest.fixture
def workload(tmp_path):
    program = tmp_path / "prog.fl"
    program.write_text(PROGRAM_TEXT)
    db = tmp_path / "db.json"
    db.write_text(seed_database_text())
    return program, db


def start_daemon(workload, wal, *extra, env=None):
    program, db = workload
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--db",
            str(db),
            "--program-file",
            str(program),
            "--wal",
            str(wal),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env or daemon_env(),
        cwd=str(REPO_ROOT),
    )
    ready = json.loads(proc.stdout.readline())["serving"]
    return proc, ready


def rows_only(client: ServeClient, relation: str) -> str:
    """The restart-stable projection the CI smoke job diffs."""
    answer = client.query(relation)
    assert answer["ok"]
    keep = ("relation", "schema", "status", "rows", "total")
    return json.dumps({k: answer[k] for k in keep}, sort_keys=True)


def drive(client: ServeClient, updates):
    """Send updates, tolerating the daemon dying mid-request."""
    acked = []
    for txid, relation, values, condition in updates:
        try:
            response = client.update(relation, values, condition=condition, txid=txid)
        except (ConnectionError, OSError):
            break
        if not response.get("ok"):
            break
        acked.append(txid)
    return acked


def test_sigkill_mid_ingest_recovers_byte_identical(workload, tmp_path):
    # The reference: a daemon that is never killed.
    proc, ready = start_daemon(workload, tmp_path / "clean.wal")
    try:
        with ServeClient("127.0.0.1", ready["port"]) as client:
            assert drive(client, UPDATES) == ["a1", "a2", "a3"]
            expected_r = rows_only(client, "R")
            expected_f = rows_only(client, "F")
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)

    # The victim: hard-killed the moment update #2 becomes durable —
    # after the fsync, before the apply/ack, the worst possible instant.
    wal = tmp_path / "victim.wal"
    sentinel = tmp_path / "die.sentinel"
    proc, ready = start_daemon(
        workload,
        wal,
        env=daemon_env(FAURE_CHAOS=f"die-after-records:2:{sentinel}"),
    )
    with ServeClient("127.0.0.1", ready["port"]) as client:
        acked = drive(client, UPDATES)
    assert acked == ["a1"], "the daemon should die before acking update #2"
    assert proc.wait(timeout=30) != 0
    assert sentinel.exists()

    # Restart on the same WAL; the client retries its unacked updates.
    proc, ready = start_daemon(workload, wal)
    try:
        assert ready["replayed"] == 2, "the durable-but-unacked update replays"
        with ServeClient("127.0.0.1", ready["port"]) as client:
            retry = client.update("F", ["p2", "E", "G"], condition="$up == 1", txid="a2")
            assert retry["ok"] and retry["duplicate"] and retry["seq"] == 2
            assert client.update("F", ["p1", "D", "A"], txid="a3")["seq"] == 3
            assert rows_only(client, "R") == expected_r
            assert rows_only(client, "F") == expected_f
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)


def test_overload_sheds_explicitly_and_keeps_serving(workload, tmp_path):
    sentinel = tmp_path / "hang.sentinel"
    proc, ready = start_daemon(
        workload,
        tmp_path / "serve.wal",
        "--queue-limit",
        "1",
        "--retry-after",
        "0.5",
        env=daemon_env(FAURE_CHAOS=f"serve-hang-apply:2.5:{sentinel}"),
    )
    try:
        port = ready["port"]
        results = {}

        def send(name, values):
            with ServeClient("127.0.0.1", port) as c:
                results[name] = c.update("F", values, txid=name)

        # u1 hangs inside the ingest thread; u2 fills the size-1 queue;
        # u3 must be shed immediately with an explicit retryable answer.
        t1 = threading.Thread(target=send, args=("u1", ["p1", "C", "D"]))
        t1.start()
        deadline = time.monotonic() + 10
        while not sentinel.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sentinel.exists(), "the ingest hang never fired"
        t2 = threading.Thread(target=send, args=("u2", ["p1", "D", "E"]))
        t2.start()

        with ServeClient("127.0.0.1", port) as probe:
            # wait until u2 is visibly parked in the (size-1) queue
            while time.monotonic() < deadline:
                if probe.health()["queue_depth"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("update u2 never reached the ingest queue")
            shed = probe.update("F", ["p1", "E", "G"], txid="u3")
            assert shed["ok"] is False, "the overloaded daemon never shed"
            assert shed["code"] == "OVERLOADED" and shed["errno"] == 6
            assert shed["retry_after"] == 0.5
            assert shed["status"] == "OVERLOADED"

            # ... while reads keep answering from the current snapshot.
            assert probe.query("R")["ok"]
            health = probe.health()
            assert health["ok"] and health["server"]["shed"] >= 1

        t1.join(timeout=30)
        t2.join(timeout=30)
        assert results["u1"]["ok"] and results["u2"]["ok"]

        # After the stall clears, the shed client's retry succeeds.
        with ServeClient("127.0.0.1", port) as c:
            retried = c.update("F", ["p1", "E", "G"], txid="u3")
            assert retried["ok"] and not retried.get("duplicate")
            c.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)


def test_degraded_query_is_flagged_over_the_wire(workload, tmp_path):
    proc, ready = start_daemon(
        workload, tmp_path / "serve.wal", "--solver-budget", "0"
    )
    try:
        with ServeClient("127.0.0.1", ready["port"]) as client:
            answer = client.query("F", where="$up == 1")
            assert answer["ok"] and answer["status"] == "INCONCLUSIVE"
            assert any(row.get("unknown") for row in answer["rows"])
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)
