"""Shared machinery for the chaos suite.

Faults are driven through the production ``FAURE_CHAOS`` protocol (see
:func:`repro.parallel.supervisor.chaos_directives`): a directive names a
task index and a sentinel file, the supervised worker loop SIGKILLs or
hangs itself when it picks that task up, and the sentinel makes the
fault once-only so the retry succeeds.  Everything a worker process
must import lives at module level (the multiprocessing pickling
contract).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.network.forwarding import compile_forwarding
from repro.workloads.ribgen import RibConfig, generate_rib

#: Small enough that a chaos run (kill + timeout + retries) stays well
#: under the suite's SIGALRM budget, big enough to have multi-path
#: prefixes for pattern queries.
RIB_PREFIXES = 8


@pytest.fixture(scope="session")
def rib():
    """A small real RIB workload: (routes, compiled forwarding)."""
    routes = generate_rib(RibConfig(prefixes=RIB_PREFIXES, as_count=40, seed=20210610))
    return routes, compile_forwarding(routes)


@pytest.fixture
def chaos_env(tmp_path, monkeypatch):
    """Set ``FAURE_CHAOS`` from directive templates.

    Templates use ``{s}`` for a fresh sentinel path, e.g.
    ``chaos_env("kill:0:{s}", "hang:1:5:{s}")``.
    """

    def set_chaos(*templates: str) -> None:
        directives = []
        for i, template in enumerate(templates):
            directives.append(template.format(s=tmp_path / f"sentinel{i}"))
        monkeypatch.setenv("FAURE_CHAOS", ";".join(directives))

    yield set_chaos
    monkeypatch.delenv("FAURE_CHAOS", raising=False)


# -- picklable worker tasks ---------------------------------------------------


def double(x: int) -> int:
    return x * 2


def slow_double(x: int) -> int:
    time.sleep(0.05)
    return x * 2


def failing_task(x: int) -> int:
    """Deterministic application error on selected inputs."""
    if x % 3 == 0:
        raise ValueError(f"bad input {x}")
    return x * 2


#: Initializer state registry, mirroring repro.parallel.worker's.
_GUARDED_STATE = {}
INLINE_STATE_DICTS = (_GUARDED_STATE,)


def stateful_init(tag: str) -> None:
    _GUARDED_STATE["tag"] = tag


def stateful_task(x: int) -> str:
    return f"{_GUARDED_STATE['tag']}:{x}"


def pid_task(_x) -> int:
    """Identifies which process ran the task (parent vs worker)."""
    return os.getpid()
