"""Replication + compaction chaos: SIGKILL at the worst instants.

Three danger points, each driven through production ``FAURE_CHAOS``
hooks or a real SIGKILL:

* the **primary** dies mid-ingest (``die-after-records`` — after the
  fsync, before the ack) with a replica attached: the replica keeps
  serving its consistent prefix, the restarted primary replays, and
  the replica converges to answers byte-identical to a never-killed
  run's;
* a **compaction** dies between the snapshot fsync and segment
  retirement (``compact-die``): recovery finds snapshot *and* full
  log, replays only the suffix, and answers stay byte-identical;
* the **replica** is SIGKILLed mid-tail and restarted on its own WAL:
  its local recovery invariant plus the sequence-cursor resume
  converge it without operator help.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

from .test_serve_chaos import daemon_env, drive, rows_only, start_daemon, workload  # noqa: F401

REPO_ROOT = Path(__file__).resolve().parents[2]

#: An ingest stream exercising plain, conditional, removable, and
#: withdrawn facts — the full v2 mutation surface.
UPDATES = [
    ("a1", "F", ["p1", "C", "D"], None),
    ("a2", "F", ["p2", "E", "G"], "$up == 1"),
    ("a3", "F", ["p1", "D", "A"], None),
]


def start_replica(wal, primary_port, *extra, env=None):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--replica-of",
            f"127.0.0.1:{primary_port}",
            "--wal",
            str(wal),
            "--poll-interval",
            "0.05",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env or daemon_env(),
        cwd=str(REPO_ROOT),
    )
    ready = json.loads(proc.stdout.readline())["serving"]
    assert ready["role"] == "replica"
    return proc, ready


def wait_replica_at(port, seq, deadline=30.0):
    end = time.monotonic() + deadline
    with ServeClient("127.0.0.1", port) as client:
        while time.monotonic() < end:
            health = client.health()
            if health["seq"] >= seq:
                return health
            time.sleep(0.05)
    pytest.fail(f"replica on port {port} never reached seq {seq}")


def reference_answers(workload, tmp_path):
    """What a never-killed daemon answers over the full stream."""
    proc, ready = start_daemon(workload, tmp_path / "reference.wal")
    try:
        with ServeClient("127.0.0.1", ready["port"]) as client:
            assert drive(client, UPDATES) == ["a1", "a2", "a3"]
            removable = client.update("F", ["p3", "A", "C"], removable=True, txid="rm")
            client.withdraw(removable["guard"], txid="wd")
            answers = {rel: rows_only(client, rel) for rel in ("R", "F")}
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)
    return answers


def test_sigkill_primary_with_replica_attached(workload, tmp_path):
    expected = reference_answers(workload, tmp_path)

    wal = tmp_path / "primary.wal"
    sentinel = tmp_path / "die.sentinel"
    proc, ready = start_daemon(
        workload,
        wal,
        env=daemon_env(FAURE_CHAOS=f"die-after-records:2:{sentinel}"),
    )
    primary_port = ready["port"]
    rproc, rready = start_replica(tmp_path / "replica.wal", primary_port)
    try:
        with ServeClient("127.0.0.1", primary_port) as client:
            acked = drive(client, UPDATES)
        assert acked == ["a1"], "the primary should die before acking update #2"
        assert proc.wait(timeout=30) != 0

        # The replica survives the primary's death serving a consistent
        # prefix (seqs 1..2 — update #2 was durable before the kill, but
        # the replica may or may not have seen it; whatever it serves is
        # a prefix, and it keeps answering).
        with ServeClient("127.0.0.1", rready["port"]) as rclient:
            survived = rclient.query("R")
            assert survived["ok"] and survived["role"] == "replica"
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and rclient.health()["primary_up"]:
                time.sleep(0.05)
            assert rclient.health()["primary_up"] is False

        # Restart the primary on the same WAL and port; the client
        # retries its unacked tail, including the withdraw flow.
        proc2, ready2 = start_daemon(workload, wal, "--port", str(primary_port))
        assert ready2["replayed"] == 2
        with ServeClient("127.0.0.1", primary_port) as client:
            retry = client.update("F", ["p2", "E", "G"], condition="$up == 1", txid="a2")
            assert retry["duplicate"] and retry["seq"] == 2
            client.update("F", ["p1", "D", "A"], txid="a3")
            removable = client.update("F", ["p3", "A", "C"], removable=True, txid="rm")
            last = client.withdraw(removable["guard"], txid="wd")

        # The replica reconnects and converges; its answers are
        # byte-identical to the never-killed run's.
        wait_replica_at(rready["port"], last["seq"])
        with ServeClient("127.0.0.1", rready["port"]) as rclient:
            for rel in ("R", "F"):
                assert rows_only(rclient, rel) == expected[rel]
            health = rclient.health()
            assert health["lag_seqs"] == 0 and health["primary_up"] is True
        with ServeClient("127.0.0.1", primary_port) as client:
            for rel in ("R", "F"):
                assert rows_only(client, rel) == expected[rel]
            client.shutdown()
    finally:
        rproc.kill()
        rproc.wait(timeout=30)
        proc.kill()
        proc.wait(timeout=30)
        try:
            proc2.kill()
            proc2.wait(timeout=30)
        except NameError:
            pass


def test_compact_die_between_snapshot_and_retirement(workload, tmp_path):
    expected = reference_answers(workload, tmp_path)

    wal = tmp_path / "victim.wal"
    sentinel = tmp_path / "compact.sentinel"
    proc, ready = start_daemon(
        workload,
        wal,
        env=daemon_env(FAURE_CHAOS=f"compact-die:{sentinel}"),
    )
    with ServeClient("127.0.0.1", ready["port"]) as client:
        assert drive(client, UPDATES) == ["a1", "a2", "a3"]
        removable = client.update("F", ["p3", "A", "C"], removable=True, txid="rm")
        client.withdraw(removable["guard"], txid="wd")
        # the compaction dies between the snapshot fsync and the WAL
        # rewrite — the daemon hard-exits mid-admin-request
        with pytest.raises((ConnectionError, OSError)):
            client.admin("compact")
    assert proc.wait(timeout=30) != 0
    assert sentinel.exists()
    # worst-instant invariant: snapshot durable AND full log still present
    snapshots = [p for p in os.listdir(tmp_path) if ".snap." in p]
    assert snapshots, "the snapshot must be durable before the crash point"
    assert wal.stat().st_size > 0

    # Recovery: snapshot + overlapping log replays to identical answers.
    proc, ready = start_daemon(workload, wal)
    try:
        with ServeClient("127.0.0.1", ready["port"]) as client:
            for rel in ("R", "F"):
                assert rows_only(client, rel) == expected[rel]
            # and a clean compact on the recovered daemon finishes the job
            done = client.admin("compact")
            assert done["compacted"] and done["wal_entries"] == 0
            for rel in ("R", "F"):
                assert rows_only(client, rel) == expected[rel]
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)


def test_sigkill_replica_mid_tail_recovers_and_converges(workload, tmp_path):
    expected = reference_answers(workload, tmp_path)

    proc, ready = start_daemon(workload, tmp_path / "primary.wal")
    primary_port = ready["port"]
    replica_wal = tmp_path / "replica.wal"
    rproc, rready = start_replica(replica_wal, primary_port)
    try:
        with ServeClient("127.0.0.1", primary_port) as client:
            assert drive(client, UPDATES[:2]) == ["a1", "a2"]
        wait_replica_at(rready["port"], 2)
        rproc.kill()  # SIGKILL: no shutdown, no drain
        assert rproc.wait(timeout=30) != 0

        # primary keeps ingesting while the replica is gone
        with ServeClient("127.0.0.1", primary_port) as client:
            drive(client, UPDATES[2:])
            removable = client.update("F", ["p3", "A", "C"], removable=True, txid="rm")
            last = client.withdraw(removable["guard"], txid="wd")

        # restart on the same replica WAL: local replay + cursor resume
        rproc2, rready2 = start_replica(replica_wal, primary_port)
        wait_replica_at(rready2["port"], last["seq"])
        with ServeClient("127.0.0.1", rready2["port"]) as rclient:
            for rel in ("R", "F"):
                assert rows_only(rclient, rel) == expected[rel]
        rproc2.kill()
        rproc2.wait(timeout=30)
        with ServeClient("127.0.0.1", primary_port) as client:
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        rproc.kill()
        rproc.wait(timeout=30)
        proc.kill()
        proc.wait(timeout=30)
