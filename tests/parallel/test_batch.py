"""Batched pruning: grouping, dedup savings, and memo fold-back.

The contract under test (docs/PERFORMANCE.md): :func:`prune_batched`
produces the *same table* as asking the solver about every tuple
individually, while making one decision per canonical equivalence class
— and definite verdicts decided in worker processes land in the shared
memo exactly as if the parent had decided them.
"""

from repro.ctable import CTable
from repro.ctable.condition import And, Comparison, TRUE, FALSE
from repro.ctable.terms import Constant, CVariable
from repro.engine.stats import EvalStats
from repro.parallel.batch import group_classes, prune_batched
from repro.robustness.governor import Governor
from repro.robustness.verdict import Verdict
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable

from .conftest import boolean_domains, repeated_condition_table, rendered


def per_tuple_reference(table, domains):
    """The unbatched baseline: one fresh-solver verdict per tuple."""
    solver = ConditionSolver(domains, memo=MemoTable())
    out = CTable(table.name, table.schema)
    pruned = 0
    for tup in table:
        if solver.sat_verdict(tup.condition) is Verdict.UNSAT:
            pruned += 1
            continue
        out.add(tup)
    return out, pruned


class TestGroupClasses:
    def test_groups_by_canonical_form(self):
        table, domains = repeated_condition_table(tuples=40, variables=4)
        solver = ConditionSolver(domains, memo=MemoTable())
        classes, per_tuple = group_classes(table, solver)
        assert per_tuple == []
        # 4 variables x 3 forms, but the Or form canonicalizes onto a
        # distinct class of its own — the point is #classes << #tuples.
        assert len(classes) <= 12 < 40
        assert sum(len(members) for _, members in classes) == 40
        # Members listed in original order, first-appearance class order.
        flat = [i for _, members in classes for i in members]
        assert sorted(flat) == list(range(40))
        assert [members[0] for _, members in classes] == sorted(
            members[0] for _, members in classes
        )

    def test_trivial_conditions_group_too(self):
        table = CTable("T", ("a",))
        table.add([Constant(1)], TRUE)
        table.add([Constant(2)], TRUE)
        table.add([Constant(3)], FALSE)
        solver = ConditionSolver(boolean_domains(["x"]), memo=MemoTable())
        classes, per_tuple = group_classes(table, solver)
        assert len(classes) == 2 and per_tuple == []

    def test_oversized_conditions_go_per_tuple(self):
        x, y, z = (CVariable(n) for n in "xyz")
        big = And([
            Comparison(x, "=", Constant(1)),
            Comparison(y, "=", Constant(1)),
            Comparison(z, "=", Constant(1)),
        ])
        table = CTable("T", ("a",))
        table.add([Constant(1)], Comparison(x, "=", Constant(1)))
        table.add([Constant(2)], big)
        governor = Governor(max_condition_atoms=2, on_budget="degrade").start()
        solver = ConditionSolver(
            boolean_domains("xyz"), governor=governor, memo=MemoTable()
        )
        classes, per_tuple = group_classes(table, solver)
        assert len(classes) == 1
        assert per_tuple == [1]


class TestSerialBatchedPrune:
    def test_identical_to_per_tuple_prune(self):
        table, domains = repeated_condition_table()
        reference, ref_pruned = per_tuple_reference(table, domains)
        solver = ConditionSolver(domains, memo=MemoTable())
        stats = EvalStats()
        out = prune_batched(table, solver, stats, jobs=1)
        assert rendered(out) == rendered(reference)
        assert stats.tuples_pruned == ref_pruned

    def test_one_decision_per_class(self):
        """The dedup satellite: #decisions == #classes, not #tuples."""
        table, domains = repeated_condition_table(tuples=40, variables=4)
        solver = ConditionSolver(domains, memo=MemoTable())
        classes, _ = group_classes(table, solver)
        prune_batched(table, solver, EvalStats(), jobs=1)
        assert solver.stats.sat_calls == len(classes) < 40

    def test_unsat_classes_prune_every_member(self):
        table, domains = repeated_condition_table(tuples=36, variables=3)
        stats = EvalStats()
        out = prune_batched(
            table, ConditionSolver(domains, memo=MemoTable()), stats, jobs=1
        )
        # A third of the cycled forms are contradictions (x=1 AND x=0).
        assert stats.tuples_pruned == 12
        assert len(list(out)) == 24


class TestParallelBatchedPrune:
    def test_jobs_invariant_output(self):
        table, domains = repeated_condition_table()
        outputs, pruned = [], []
        for jobs in (1, 2, 4):
            stats = EvalStats()
            out = prune_batched(
                table, ConditionSolver(domains, memo=MemoTable()), stats, jobs=jobs
            )
            outputs.append(rendered(out))
            pruned.append(stats.tuples_pruned)
        assert outputs[0] == outputs[1] == outputs[2]
        assert pruned[0] == pruned[1] == pruned[2]

    def test_worker_verdicts_fold_into_parent_memo(self):
        table, domains = repeated_condition_table()
        memo = MemoTable()
        solver = ConditionSolver(domains, memo=memo)
        prune_batched(table, solver, EvalStats(), jobs=3)
        assert len(memo) > 0
        # A fresh solver over the folded memo answers everything from
        # the memo: zero new backend decisions.
        fresh = ConditionSolver(domains, memo=memo)
        prune_batched(table, fresh, EvalStats(), jobs=1)
        assert fresh.stats.enumeration_used == 0
        assert fresh.stats.dpll_used == 0

    def test_parallel_accounting_recorded(self):
        table, domains = repeated_condition_table()
        stats = EvalStats()
        prune_batched(
            table, ConditionSolver(domains, memo=MemoTable()), stats, jobs=3
        )
        assert stats.extra["parallel_shards"] >= 1
        assert stats.extra["parallel_wall_seconds"] >= 0.0

    def test_memoless_solver_still_jobs_invariant(self):
        table, domains = repeated_condition_table()
        a = prune_batched(table, ConditionSolver(domains, memo=None), EvalStats())
        b = prune_batched(
            table, ConditionSolver(domains, memo=None), EvalStats(), jobs=3
        )
        assert rendered(a) == rendered(b)
