"""Shared workloads for the parallel-pruning suite.

The invariance tests need a c-table that looks like what phase 3
actually sees: many tuples, heavy semantic repetition in the
conditions, and a sprinkle of genuinely distinct classes.  Both a
synthetic table (fast, exact class counts known) and the RIB
reachability workload (realistic, exercised end-to-end) are provided.
"""

import pytest

from repro.ctable import CTable
from repro.ctable.condition import And, Comparison, Or
from repro.ctable.terms import Constant, CVariable
from repro.network.forwarding import compile_forwarding
from repro.solver import BOOL_DOMAIN, DomainMap
from repro.workloads.ribgen import RibConfig, generate_rib

RIB_PREFIXES = 12


@pytest.fixture(scope="session")
def rib():
    """A small but real RIB workload: (routes, compiled forwarding)."""
    routes = generate_rib(
        RibConfig(prefixes=RIB_PREFIXES, as_count=60, seed=20210610)
    )
    return routes, compile_forwarding(routes)


def boolean_domains(names):
    return DomainMap({CVariable(n): BOOL_DOMAIN for n in names})


def repeated_condition_table(tuples: int = 40, variables: int = 4):
    """A c-table of ``tuples`` rows over ``variables`` boolean c-vars.

    Conditions cycle through ``3 * variables`` forms (SAT, UNSAT, and
    commuted duplicates that only canonicalization identifies), so the
    table has far fewer equivalence classes than rows — the shape the
    batched pruner exploits.  Returns ``(table, domains)``.
    """
    cvars = [CVariable(f"x{i}") for i in range(variables)]
    forms = []
    for v in cvars:
        up = Comparison(v, "=", Constant(1))
        down = Comparison(v, "=", Constant(0))
        forms.append(up)  # satisfiable
        forms.append(And([up, down]))  # contradictory
        forms.append(Or([down, up]))  # satisfiable, canonical dup of Or([up, down])
    table = CTable("W", ("a", "b"))
    for i in range(tuples):
        table.add([Constant(i), Constant(i % 7)], forms[i % len(forms)])
    return table, boolean_domains(v.name for v in cvars)


def rendered(table: CTable) -> str:
    return table.pretty(max_rows=None)
