"""The cross-worker shared verdict store, from record bytes up to jobs=N.

Bottom-up: record pack/unpack and corruption handling, the store's
append/poll/lookup protocol between two attached processes' views, the
memo observer-list and read-through wiring the store plugs into, the
parent-side session lifecycle, and finally the headline property —
``jobs ∈ {1, 2, 4}`` × shared-memo on/off × heavy fault injection all
render byte-identical answers.
"""

import dataclasses
import os

import pytest

from repro.engine.stats import EvalStats
from repro.network.reachability import ReachabilityAnalyzer
from repro.parallel.batch import prune_batched
from repro.parallel.shared_memo import (
    RECORD_SIZE,
    SharedMemoSession,
    SharedVerdictStore,
    StoreHandle,
    encode_memo_key,
    pack_record,
    reads_allowed,
    session_for,
    unpack_record,
)
from repro.parallel.supervisor import SupervisedExecutor
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable

from .conftest import repeated_condition_table, rendered

JOBS = 4


@pytest.fixture
def store(tmp_path):
    s = SharedVerdictStore.create(dir=tmp_path)
    yield s
    s.close(unlink=True)


class TestRecordFormat:
    def test_round_trip(self):
        record = pack_record(b"k" * 16, b"d" * 8, True)
        assert len(record) == RECORD_SIZE
        assert unpack_record(record) == (b"k" * 16, b"d" * 8, True)
        record = pack_record(b"q" * 16, b"e" * 8, False)
        assert unpack_record(record) == (b"q" * 16, b"e" * 8, False)

    def test_corrupt_checksum_rejected(self):
        record = bytearray(pack_record(b"k" * 16, b"d" * 8, True))
        record[3] ^= 0xFF
        assert unpack_record(bytes(record)) is None

    def test_zero_fill_rejected(self):
        # A zero-filled page CRCs "correctly" only if the stored CRC is
        # also zero — and even then the verdict byte 0 is invalid.
        assert unpack_record(b"\0" * RECORD_SIZE) is None

    def test_encode_covers_sat_and_implies(self):
        table, domains = repeated_condition_table()
        memo = MemoTable()
        conds = [t.condition for t in table][:2]
        a, b = (memo.canonical(c) for c in conds)
        sat = memo.sat_key(a, domains)
        implies = memo.implies_key(a, b, domains)
        for key in (sat, implies):
            encoded = encode_memo_key(key)
            assert encoded is not None
            assert len(encoded[0]) == 16 and len(encoded[1]) == 8
            # Deterministic: same key, same bytes.
            assert encode_memo_key(key) == encoded
        assert encode_memo_key(sat) != encode_memo_key(implies)
        assert encode_memo_key(("future-op", a)) is None


class TestStoreProtocol:
    def test_append_then_lookup_across_attachments(self, store):
        key = (b"k" * 16, b"d" * 8)
        store.append(key[0], key[1], True)
        reader = SharedVerdictStore.attach(store.path)
        try:
            assert reader.lookup(key[0], key[1]) is True
            assert reader.hits == 1
        finally:
            reader.close()

    def test_lookup_polls_for_new_records(self, store):
        reader = SharedVerdictStore.attach(store.path)
        try:
            assert reader.lookup(b"a" * 16, b"d" * 8) is None
            store.append(b"a" * 16, b"d" * 8, False)
            # The reader's next lookup polls the grown log.
            assert reader.lookup(b"a" * 16, b"d" * 8) is False
        finally:
            reader.close()

    def test_domain_fingerprint_mismatch_rejected(self, store):
        store.append(b"k" * 16, b"d" * 8, True)
        reader = SharedVerdictStore.attach(store.path)
        try:
            assert reader.lookup(b"k" * 16, b"X" * 8) is None
            assert reader.fingerprint_rejections == 1
            assert reader.hits == 0
        finally:
            reader.close()

    def test_reads_flag_disables_lookup(self, store):
        store.append(b"k" * 16, b"d" * 8, True)
        store.reads = False
        assert store.lookup(b"k" * 16, b"d" * 8) is None

    def test_append_deduplicates(self, store):
        for _ in range(3):
            store.append(b"k" * 16, b"d" * 8, True)
        assert store.writes == 1
        assert os.path.getsize(store.path) == RECORD_SIZE * 2  # header + 1

    def test_torn_record_skipped_then_valid_read(self, store):
        store.append(b"k" * 16, b"d" * 8, True)
        # A writer died mid-append: a full-size but garbage record.
        with open(store.path, "ab") as fh:
            fh.write(b"\xde\xad" * (RECORD_SIZE // 2))
        store.append(b"q" * 16, b"d" * 8, False)
        reader = SharedVerdictStore.attach(store.path)
        try:
            reader.poll()
            assert reader.skipped_records == 1
            assert reader.lookup(b"k" * 16, b"d" * 8) is True
            assert reader.lookup(b"q" * 16, b"d" * 8) is False
        finally:
            reader.close()

    def test_trailing_partial_record_left_for_next_poll(self, store):
        store.append(b"k" * 16, b"d" * 8, True)
        half = pack_record(b"q" * 16, b"d" * 8, False)[: RECORD_SIZE // 2]
        with open(store.path, "ab") as fh:
            fh.write(half)
        reader = SharedVerdictStore.attach(store.path)
        try:
            assert reader.poll() == 1  # the complete record only
            assert reader.skipped_records == 0
            # The "writer" finishes its append; the tail completes.
            with open(store.path, "ab") as fh:
                fh.write(pack_record(b"q" * 16, b"d" * 8, False)[RECORD_SIZE // 2 :])
            reader.poll()
            assert reader.lookup(b"q" * 16, b"d" * 8) is False
        finally:
            reader.close()

    def test_handle_attach_degrades_on_missing_log(self, store):
        handle = StoreHandle(store.path + ".gone", reads=True)
        assert handle.open() is None

    def test_only_creator_unlinks(self, store):
        attached = SharedVerdictStore.attach(store.path)
        attached.close(unlink=True)
        assert os.path.exists(store.path)


class TestMemoWiring:
    def test_observers_add_remove_idempotent(self):
        memo = MemoTable()
        seen = []
        cb = seen.append
        memo.add_observer(cb)
        memo.add_observer(cb)
        assert memo.observers == [cb]
        memo.remove_observer(cb)
        memo.remove_observer(cb)  # absent: ignored
        assert memo.observers == []

    def test_single_observer_property_back_compat(self):
        memo = MemoTable()
        a, b = (lambda k, v: None), (lambda k, v: None)
        assert memo.observer is None
        memo.add_observer(a)
        memo.add_observer(b)
        assert memo.observer is a
        memo.observer = b  # historical single-slot semantics
        assert memo.observers == [b]
        memo.observer = None
        assert memo.observers == []

    def test_multiple_observers_all_fire(self):
        memo = MemoTable()
        first, second = [], []
        memo.add_observer(lambda k, v: first.append((k, v)))
        memo.add_observer(lambda k, v: second.append((k, v)))
        memo.put(("sat", "c", ()), True)
        assert first == second == [(("sat", "c", ()), True)]

    def test_backing_hit_is_folded_and_observed(self):
        memo = MemoTable()
        observed = []
        memo.backing = lambda key: True
        memo.add_observer(lambda k, v: observed.append((k, v)))
        key = ("sat", "c", ())
        assert memo.get(key) is True
        assert memo.hits == 1 and memo.misses == 0
        assert observed == [(key, True)]
        # Now local: backing not needed again.
        memo.backing = lambda key: pytest.fail("should not be consulted")
        assert memo.get(key) is True

    def test_store_backing_through_memo(self, store):
        table, domains = repeated_condition_table()
        cond = next(iter(table)).condition
        writer_memo = MemoTable()
        writer_memo.add_observer(store.append_key)
        key = writer_memo.sat_key(writer_memo.canonical(cond), domains)
        writer_memo.put(key, True)
        assert store.writes == 1

        reader_memo = MemoTable()
        reader = SharedVerdictStore.attach(store.path)
        try:
            reader_memo.backing = reader.lookup_key
            # The reader canonicalizes independently; structural key
            # equality plus the repr-based encoding line the two up.
            rkey = reader_memo.sat_key(reader_memo.canonical(cond), domains)
            assert reader_memo.get(rkey) is True
            assert reader.hits == 1
        finally:
            reader.close()


class TestSession:
    def test_session_seeds_store_from_memo(self, tmp_path):
        table, domains = repeated_condition_table()
        memo = MemoTable()
        solver = ConditionSolver(domains, memo=memo)
        for tup in table:
            solver.is_satisfiable(tup.condition)
        assert len(memo._entries) > 0
        session = SharedMemoSession(memo)
        try:
            assert session.store.writes == len(
                [k for k in memo._entries if encode_memo_key(k) is not None]
            )
            # A fresh attachment can answer every seeded key.
            handle = session.handle(reads=True)
            attached = handle.open()
            try:
                for key, value in memo._entries.items():
                    assert attached.lookup_key(key) is value
            finally:
                attached.close()
        finally:
            session.close()

    def test_session_cached_per_memo_and_closed_by_clear(self):
        memo = MemoTable()
        executor = SupervisedExecutor(2)
        session = session_for(memo, executor)
        assert session is not None
        assert session_for(memo, executor) is session
        path = session.store.path
        memo.clear()
        assert session.closed
        assert not os.path.exists(path)
        assert getattr(memo, "_store_session", None) is None

    def test_no_session_without_memo_or_with_sharing_off(self):
        executor_on = SupervisedExecutor(2)
        executor_off = SupervisedExecutor(2, shared_memo=False)
        assert session_for(None, executor_on) is None
        memo = MemoTable()
        assert session_for(memo, executor_off) is None
        assert getattr(memo, "_store_session", None) is None

    def test_reads_allowed_only_ungoverned(self):
        assert reads_allowed(None)
        governor = Governor().start()
        assert not reads_allowed(governor)

    def test_log_not_leaked_on_plain_process_exit(self, tmp_path):
        """A run that never clears its memo must not litter the temp dir.

        The common CLI path ends with ``sys.exit``, not ``memo.clear()``
        — the creator's atexit hook owns the unlink there.
        """
        import subprocess
        import sys

        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.solver.memo import MemoTable\n"
                "from repro.parallel.shared_memo import SharedMemoSession\n"
                "session = SharedMemoSession(MemoTable())\n"
                "print(session.store.path)\n",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        path = out.stdout.strip()
        assert path and not os.path.exists(path)


# -- the headline equivalence matrix -----------------------------------------


def run_prune(table, domains, jobs, shared, plan=None, **governor_kwargs):
    governor = None
    if plan is not None or governor_kwargs:
        injector = FaultInjector(plan) if plan is not None else None
        governor = Governor(injector=injector, **governor_kwargs).start()
    solver = ConditionSolver(domains, governor=governor, memo=MemoTable())
    stats = EvalStats()
    executor = SupervisedExecutor(jobs, shared_memo=shared) if jobs > 1 else None
    out = prune_batched(table, solver, stats, jobs=jobs, executor=executor)
    return out, stats, solver


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("jobs", [2, JOBS])
    @pytest.mark.parametrize("shared", [True, False])
    def test_prune_identical_under_heavy_faults(self, jobs, shared):
        """jobs ∈ {1,2,4} × shared on/off × ≥30% injected faults."""
        table, domains = repeated_condition_table(tuples=60)
        plan = FaultPlan(timeout_every=3)  # every 3rd call: ≥30%
        s_out, s_stats, s_solver = run_prune(
            table, domains, 1, shared, plan=plan, on_budget="degrade"
        )
        p_out, p_stats, p_solver = run_prune(
            table, domains, jobs, shared, plan=plan, on_budget="degrade"
        )
        assert rendered(s_out) == rendered(p_out)
        assert s_stats.tuples_pruned == p_stats.tuples_pruned
        assert s_stats.unknown_kept == p_stats.unknown_kept > 0
        assert dataclasses.asdict(s_solver.governor.events) == dataclasses.asdict(
            p_solver.governor.events
        )
        assert (
            s_solver.governor.injector.calls == p_solver.governor.injector.calls
        )

    @pytest.mark.parametrize("jobs", [2, JOBS])
    @pytest.mark.parametrize("shared", [True, False])
    def test_prune_identical_ungoverned(self, jobs, shared):
        table, domains = repeated_condition_table(tuples=60)
        s_out, s_stats, _ = run_prune(table, domains, 1, shared)
        p_out, p_stats, _ = run_prune(table, domains, jobs, shared)
        assert rendered(s_out) == rendered(p_out)
        assert s_stats.tuples_pruned == p_stats.tuples_pruned

    @pytest.mark.parametrize("shared", [True, False])
    def test_patterns_identical_with_and_without_store(self, rib, shared):
        from .test_fanout import analyzer_for, pattern_queries

        serial = analyzer_for(rib)
        s_tables = [
            t.pretty(max_rows=None)
            for t, _ in serial.under_patterns(pattern_queries(rib), jobs=1)
        ]
        parallel = analyzer_for(rib)
        executor = SupervisedExecutor(JOBS, shared_memo=shared)
        p_tables = [
            t.pretty(max_rows=None)
            for t, _ in parallel.under_patterns(
                pattern_queries(rib), jobs=JOBS, executor=executor
            )
        ]
        assert s_tables == p_tables
        extra = parallel.stats.extra
        assert "shared_memo_hits" in extra
        if not shared:
            # Workers report zero deltas when no store is wired in.
            assert extra["shared_memo_hits"] == 0
            assert extra.get("shared_memo_writes", 0) == 0

    def test_store_accounting_surfaces_in_stats(self, rib):
        """A memo warmed by compute() then fanned out accounts writes."""
        from .test_fanout import pattern_queries

        routes, compiled = rib
        solver = ConditionSolver(compiled.domains, memo=MemoTable())
        analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
        analyzer.compute()
        list(analyzer.under_patterns(pattern_queries(rib), jobs=2))
        extra = analyzer.stats.extra
        assert extra["parallel_tasks"] > 0
        assert extra["ipc_bytes"] > 0
        assert "shared_memo_hits" in extra and "shared_memo_writes" in extra
        session = solver.memo._store_session
        assert session is not None and not session.closed
        solver.memo.clear()
        assert session.closed
