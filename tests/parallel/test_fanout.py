"""Query- and constraint-level fan-out: same answers at any ``jobs``.

Covers the two shard-executor surfaces above the pruner: the
reachability analyzer's per-prefix pattern queries (the q6/q7/q8 loops)
and the verifier's per-constraint ladder.
"""

import pytest

from repro.network.enterprise import (
    EnterpriseModel,
    SCHEMAS,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.network.reachability import PatternQuery, ReachabilityAnalyzer
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable
from repro.verify.constraints import Constraint
from repro.verify.verifier import RelativeCompleteVerifier
from repro.workloads.failures import at_least_k_failures, exactly_k_failures

JOBS = 4


def pattern_queries(rib):
    routes, compiled = rib
    queries = []
    for route in routes:
        variables = list(compiled.variables_of(route.prefix))
        if len(variables) < 2:
            continue
        queries.append(
            PatternQuery(
                exactly_k_failures(variables, len(variables) - 1),
                name="T1",
                flow=route.prefix,
            )
        )
        queries.append(
            PatternQuery(
                at_least_k_failures(variables, 1), name="T3", flow=route.prefix
            )
        )
    return queries


def analyzer_for(rib, plan=None, **governor_kwargs):
    routes, compiled = rib
    governor = None
    if plan is not None or governor_kwargs:
        injector = FaultInjector(plan) if plan is not None else None
        governor = Governor(injector=injector, **governor_kwargs).start()
    solver = ConditionSolver(compiled.domains, governor=governor, memo=MemoTable())
    return ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)


class TestUnderPatterns:
    def run(self, rib, jobs, plan=None, **governor_kwargs):
        analyzer = analyzer_for(rib, plan=plan, **governor_kwargs)
        results = analyzer.under_patterns(pattern_queries(rib), jobs=jobs)
        tables = "\n".join(t.pretty(max_rows=None) for t, _ in results)
        return tables, analyzer

    def test_jobs_invariant_tables(self, rib):
        serial, s_analyzer = self.run(rib, 1)
        parallel, p_analyzer = self.run(rib, JOBS)
        assert serial == parallel
        assert (
            s_analyzer.stats.tuples_generated == p_analyzer.stats.tuples_generated
        )
        assert s_analyzer.stats.tuples_pruned == p_analyzer.stats.tuples_pruned

    def test_parallel_accounting(self, rib):
        _, analyzer = self.run(rib, JOBS)
        n_queries = len(pattern_queries(rib))
        # Coarse sharding: a batch of queries per task message — two
        # shards per worker, never more shards than queries.
        assert (
            analyzer.stats.extra["parallel_shards"]
            == analyzer.stats.extra["parallel_tasks"]
            == min(n_queries, JOBS * 2)
        )
        assert analyzer.stats.extra["parallel_wall_seconds"] > 0.0
        assert analyzer.stats.extra["parallel_cpu_seconds"] > 0.0
        assert analyzer.stats.extra["ipc_bytes"] > 0

    def test_fault_injection_is_deterministic_per_query(self, rib):
        """Under injection, repeated parallel runs are byte-identical.

        Unlike batched pruning (where the parent precomputes each
        class's fault from its *global* call index, making ``jobs=N``
        equal to ``jobs=1`` even under faults), the query fan-out
        rebuilds a fresh injector per task: each query's schedule is a
        pure function of the query itself, so a degraded run is exactly
        reproducible — and degradation only ever *keeps* tuples, never
        invents or drops certain answers.
        """
        plan = FaultPlan(timeout_every=3)
        first, first_analyzer = self.run(rib, JOBS, plan=plan, on_budget="degrade")
        second, second_analyzer = self.run(rib, JOBS, plan=plan, on_budget="degrade")
        assert first == second
        assert (
            first_analyzer.stats.unknown_kept
            == second_analyzer.stats.unknown_kept
            > 0
        )
        assert (
            first_analyzer.solver.stats.unknown_verdicts
            == second_analyzer.solver.stats.unknown_verdicts
            > 0
        )

    def test_explicit_jobs_overrides_constructor_default(self, rib):
        routes, compiled = rib
        solver = ConditionSolver(compiled.domains, memo=MemoTable())
        analyzer = ReachabilityAnalyzer(
            compiled.database(), solver, per_flow=True, jobs=JOBS
        )
        queries = pattern_queries(rib)[:4]
        defaulted = analyzer.under_patterns(queries)
        explicit = analyzer.under_patterns(queries, jobs=1)
        assert [t.pretty(max_rows=None) for t, _ in defaulted] == [
            t.pretty(max_rows=None) for t, _ in explicit
        ]


class TestVerifyMany:
    @pytest.fixture()
    def scenario(self):
        model = EnterpriseModel.paper_state()
        return {
            "model": model,
            "known": [
                Constraint("C_lb", policy_C_lb()),
                Constraint("C_s", policy_C_s()),
            ],
            "targets": [
                Constraint("T1", constraint_T1()),
                Constraint("T2", constraint_T2()),
            ],
            "update": listing4_update(),
            "state": model.database(),
        }

    def run(self, scenario, jobs):
        solver = ConditionSolver(scenario["model"].domain_map(), memo=MemoTable())
        verifier = RelativeCompleteVerifier(
            scenario["known"],
            solver,
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        return verifier.verify_many(
            scenario["targets"],
            update=scenario["update"],
            state=scenario["state"],
            jobs=jobs,
        )

    def test_verdicts_jobs_invariant(self, scenario):
        serial = self.run(scenario, 1)
        parallel = self.run(scenario, JOBS)
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            assert s.status == p.status
            assert s.decided_by == p.decided_by
            assert s.trail == p.trail

    def test_single_target_stays_serial(self, scenario):
        verdicts = self.run(
            {**scenario, "targets": scenario["targets"][:1]}, JOBS
        )
        assert len(verdicts) == 1 and verdicts[0].ok
