"""``--jobs`` threading through the CLI surfaces."""

from repro.cli import main


class TestRibAnalyzeJobs:
    def test_jobs_output_matches_serial(self, tmp_path, capsys):
        rib_path = tmp_path / "rib.txt"
        assert (
            main(
                [
                    "rib",
                    "generate",
                    "--prefixes",
                    "6",
                    "--ases",
                    "30",
                    "-o",
                    str(rib_path),
                ]
            )
            == 0
        )
        capsys.readouterr()  # drop the generate message

        def counts(out):
            # Timings vary run to run; compare everything else.
            return [line for line in out.splitlines() if "seconds" not in line]

        assert main(["rib", "analyze", str(rib_path)]) == 0
        serial = counts(capsys.readouterr().out)
        assert main(["rib", "analyze", str(rib_path), "--jobs", "2"]) == 0
        parallel = counts(capsys.readouterr().out)
        assert serial == parallel and any("R tuples" in line for line in serial)


class TestVerifyJobs:
    def test_multiple_targets_fan_out(self, tmp_path, capsys):
        t1 = tmp_path / "T1.fl"
        t1.write_text("panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).")
        t2 = tmp_path / "T2.fl"
        t2.write_text("panic :- R(Mkt, CS, $q), not Fw(Mkt, CS).")
        known = tmp_path / "Cs.fl"
        known.write_text(
            """
            panic :- Vs(x, y, p).
            Vs($x, $y, $p) :- R($x, $y, $p), not Fw($x, $y).
            """
        )
        code = main(
            ["verify", "--target", str(t1), str(t2), "--known", str(known)]
        )
        assert code == 0
        serial = capsys.readouterr().out
        code = main(
            [
                "verify",
                "--target",
                str(t1),
                str(t2),
                "--known",
                str(known),
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == serial
        assert serial.count("holds") >= 2

    def test_one_failing_target_fails_the_run(self, tmp_path, capsys):
        good = tmp_path / "T1.fl"
        good.write_text("panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).")
        bad = tmp_path / "T2.fl"
        bad.write_text("panic :- R(Mkt, CS, $p), not Zz(Mkt, CS).")
        known = tmp_path / "Cs.fl"
        known.write_text(
            """
            panic :- Vs(x, y, p).
            Vs($x, $y, $p) :- R($x, $y, $p), not Fw($x, $y).
            """
        )
        code = main(
            [
                "verify",
                "--target",
                str(good),
                str(bad),
                "--known",
                str(known),
                "--jobs",
                "2",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "holds" in out and "unknown" in out
