"""``jobs=N`` must be observably identical to ``jobs=1`` — always.

The acceptance bar from the issue: identical pruned tables and verdicts
on the RIB workload, *including* under heavy (≥30%) fault injection and
an exhausted governor — where worker UNKNOWNs merge as kept tuples and
never enter the shared memo.  Sharding is a scheduling decision; it may
never change an answer, a counter, or which call a fault fires on.
"""

import dataclasses

import pytest

from repro.ctable import CTable, CTuple
from repro.ctable.condition import conjoin
from repro.engine.stats import EvalStats
from repro.network.reachability import ReachabilityAnalyzer
from repro.parallel.batch import prune_batched
from repro.robustness.errors import BudgetExceeded
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable
from repro.workloads.failures import at_least_k_failures

from .conftest import repeated_condition_table, rendered

JOBS = 4


@pytest.fixture(scope="module")
def rib_prune_table(rib):
    """An unpruned q8-shaped c-table over the real RIB reachability set.

    Conjoins the at-least-one-failure pattern onto every R tuple's
    condition, which is exactly the table phase 3 sees before the solver
    pass in the lazy pipeline.
    """
    routes, compiled = rib
    solver = ConditionSolver(compiled.domains, memo=MemoTable())
    analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
    r_table = analyzer.compute()
    table = CTable("Q8", r_table.schema)
    for tup in r_table:
        prefix = tup.values[0].value
        variables = list(compiled.variables_of(prefix))
        condition = tup.condition
        if len(variables) >= 2:
            condition = conjoin([condition, at_least_k_failures(variables, 1)])
        table.add(CTuple(tup.values, condition))
    assert len(list(table)) > 20
    return table, compiled.domains


def governed_solver(domains, plan=None, **governor_kwargs):
    injector = FaultInjector(plan) if plan is not None else None
    governor = Governor(injector=injector, **governor_kwargs).start()
    return ConditionSolver(domains, governor=governor, memo=MemoTable())


def run_prune(table, domains, jobs, plan=None, **governor_kwargs):
    solver = governed_solver(domains, plan=plan, **governor_kwargs)
    stats = EvalStats()
    out = prune_batched(table, solver, stats, jobs=jobs)
    return out, stats, solver


def assert_equivalent(table, domains, plan=None, **governor_kwargs):
    serial = run_prune(table, domains, 1, plan=plan, **governor_kwargs)
    parallel = run_prune(table, domains, JOBS, plan=plan, **governor_kwargs)
    s_out, s_stats, s_solver = serial
    p_out, p_stats, p_solver = parallel
    assert rendered(s_out) == rendered(p_out)
    assert s_stats.tuples_pruned == p_stats.tuples_pruned
    assert s_stats.unknown_kept == p_stats.unknown_kept
    assert dataclasses.asdict(s_solver.governor.events) == dataclasses.asdict(
        p_solver.governor.events
    )
    if s_solver.governor.injector is not None:
        assert s_solver.governor.injector.calls == p_solver.governor.injector.calls
        assert (
            s_solver.governor.injector.injected
            == p_solver.governor.injector.injected
        )
    return serial, parallel


class TestRibWorkload:
    def test_clean_run(self, rib_prune_table):
        table, domains = rib_prune_table
        (s_out, s_stats, _), _ = assert_equivalent(
            table, domains, on_budget="degrade"
        )
        assert s_stats.tuples_pruned > 0 or len(list(s_out)) > 0

    def test_heavy_fault_injection(self, rib_prune_table):
        """Every third call faults (≥30%); outputs stay jobs-invariant."""
        table, domains = rib_prune_table
        serial, _ = assert_equivalent(
            table,
            domains,
            plan=FaultPlan(timeout_every=3),
            on_budget="degrade",
        )
        _, s_stats, s_solver = serial
        assert s_solver.governor.events.injected_faults > 0
        assert s_stats.unknown_kept > 0

    def test_mixed_fault_kinds(self, rib_prune_table):
        table, domains = rib_prune_table
        assert_equivalent(
            table,
            domains,
            plan=FaultPlan(timeout_every=3, failure_every=4),
            on_budget="degrade",
        )

    def test_exhausted_deadline_keeps_everything_uncached(self, rib_prune_table):
        """Governor deadline gone mid-workload: kept-not-cached UNKNOWNs."""
        table, domains = rib_prune_table
        serial, parallel = assert_equivalent(
            table, domains, deadline_seconds=0.0, on_budget="degrade"
        )
        for out, stats, solver in (serial, parallel):
            # Nothing prunable without solver answers → everything kept...
            assert len(list(out)) == len(list(table))
            assert stats.unknown_kept > 0
            # ...and no UNKNOWN ever enters the shared memo.
            assert len(solver.memo) == 0

    def test_call_budget_exhausts_mid_run(self, rib_prune_table):
        """Budget covers some classes; the rest degrade identically."""
        table, domains = rib_prune_table
        serial, parallel = assert_equivalent(
            table, domains, solver_call_budget=5, on_budget="degrade"
        )
        _, s_stats, s_solver = serial
        assert s_stats.unknown_kept > 0
        assert s_solver.governor.events.budget_hits > 0
        # Only the in-budget definite verdicts were memoized.
        assert len(s_solver.memo) <= 5
        assert len(parallel[2].memo) == len(s_solver.memo)

    def test_budget_with_injection_composes(self, rib_prune_table):
        table, domains = rib_prune_table
        assert_equivalent(
            table,
            domains,
            plan=FaultPlan(timeout_every=3),
            solver_call_budget=6,
            on_budget="degrade",
        )

    def test_fail_mode_raises_identically(self, rib_prune_table):
        table, domains = rib_prune_table
        errors = []
        for jobs in (1, JOBS):
            solver = governed_solver(
                domains, plan=FaultPlan(timeout_every=3), on_budget="fail"
            )
            with pytest.raises(BudgetExceeded) as excinfo:
                prune_batched(table, solver, EvalStats(), jobs=jobs)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


class TestSyntheticWorkload:
    """Same contracts on the synthetic table (exact class counts known)."""

    def test_fault_injection_jobs_sweep(self):
        table, domains = repeated_condition_table(tuples=60, variables=5)
        outputs = []
        for jobs in (1, 2, 3, 4):
            out, stats, solver = run_prune(
                table,
                domains,
                jobs,
                plan=FaultPlan(timeout_every=3),
                on_budget="degrade",
            )
            outputs.append(
                (rendered(out), stats.unknown_kept, solver.governor.injector.calls)
            )
        assert len(set(outputs)) == 1

    def test_unknown_members_all_kept(self):
        """A degraded class keeps *every* member tuple, not just one.

        Contradictory conditions canonically collapse to FALSE without a
        solver call, so they prune even under an expired deadline; every
        remaining class degrades to UNKNOWN and keeps all its members.
        """
        table, domains = repeated_condition_table(tuples=40, variables=4)
        out, stats, solver = run_prune(
            table, domains, JOBS, deadline_seconds=0.0, on_budget="degrade"
        )
        kept = len(list(out))
        assert stats.unknown_kept == kept > 0
        assert stats.tuples_pruned == 40 - kept
        assert solver.stats.canonical_collapses > 0
        assert len(solver.memo) == 0
