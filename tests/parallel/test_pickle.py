"""Everything that crosses the process boundary must pickle faithfully.

The worker initializers ship a :class:`DomainMap`, conditions, whole
c-tables (the reachability database), and :class:`GovernorSpec`; results
come back as verdict names, stats dicts, and :class:`Verdict` objects.
The ``__slots__`` hierarchy pickles via ``SlotPickleMixin``, and the
``TRUE``/``FALSE`` singletons must survive as *the* singletons — the
engine tests conditions with ``is``.
"""

import pickle

from repro.ctable import CTable, CTuple, Database
from repro.ctable.condition import (
    And,
    Comparison,
    FALSE,
    LinearAtom,
    Not,
    Or,
    TRUE,
)
from repro.ctable.terms import Constant, CVariable, Variable
from repro.network.reachability import PatternQuery
from repro.robustness.faultinject import FaultPlan
from repro.robustness.governor import Governor
from repro.solver import BOOL_DOMAIN, DomainMap
from repro.parallel.spec import GovernorSpec


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_terms_roundtrip():
    for term in (Constant(3), Constant("A"), Variable("n1"), CVariable("x")):
        assert roundtrip(term) == term


def test_singletons_stay_singletons():
    assert roundtrip(TRUE) is TRUE
    assert roundtrip(FALSE) is FALSE
    # ... even nested inside a compound condition.
    cond = And([TRUE, Comparison(CVariable("x"), "=", Constant(1))])
    assert roundtrip(cond).children[0] is TRUE


def test_conditions_roundtrip():
    x, y = CVariable("x"), CVariable("y")
    conds = [
        Comparison(x, "=", Constant(1)),
        And([Comparison(x, "=", Constant(1)), Comparison(y, "!=", Constant(0))]),
        Or([Comparison(x, "<", y), Not(Comparison(y, ">=", Constant(2)))]),
        LinearAtom([x, y], "<=", 1),
    ]
    for cond in conds:
        back = roundtrip(cond)
        assert back == cond
        assert hash(back) == hash(cond)


def test_ctable_roundtrip():
    x = CVariable("x")
    table = CTable("T", ("a", "b"))
    table.add([Constant(1), Constant(2)], Comparison(x, "=", Constant(1)))
    table.add(CTuple((Constant(3), x), TRUE))
    back = roundtrip(table)
    assert back.name == table.name and back.schema == table.schema
    assert list(back) == list(table)
    # The dedup set must survive too: re-adding an existing tuple no-ops.
    assert not back.add([Constant(1), Constant(2)], Comparison(x, "=", Constant(1)))


def test_database_roundtrip():
    table = CTable("T", ("a",))
    table.add([Constant(1)])
    db = Database([table])
    assert list(roundtrip(db).table("T")) == list(table)


def test_pattern_query_roundtrip():
    q = PatternQuery(
        LinearAtom([CVariable("x"), CVariable("y")], "=", 1),
        name="T1",
        flow="10.0.0.0/24",
        source="A",
        dest="C",
    )
    assert roundtrip(q) == q


def test_governor_spec_roundtrip():
    governor = Governor(
        deadline_seconds=30.0,
        solver_call_budget=100,
        steps_per_call=5000,
        max_condition_atoms=64,
        on_budget="degrade",
        injector=None,
    )
    governor.start()
    spec = roundtrip(GovernorSpec.from_governor(governor))
    rebuilt = spec.build(None)
    assert rebuilt.solver_call_budget == 100
    assert rebuilt.steps_per_call == 5000
    assert rebuilt.max_condition_atoms == 64
    assert rebuilt.degrade


def test_domain_map_roundtrip():
    domains = DomainMap({CVariable("x"): BOOL_DOMAIN})
    back = roundtrip(domains)
    assert back.domain_of(CVariable("x")) == BOOL_DOMAIN


def test_fault_plan_roundtrip():
    plan = FaultPlan(timeout_every=3, failure_every=5, start_after=2)
    assert roundtrip(plan) == plan
