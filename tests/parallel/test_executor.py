"""Executor, governor-spec, and fault-directive plumbing.

These are the deterministic building blocks the batched pruner leans
on: results come back in task order whatever the pool does, governor
budgets survive the serialize/rebuild trip (including an already-blown
deadline), and the precomputed fault schedule matches what a live
:class:`FaultInjector` would have fired call-for-call.
"""

import os

import pytest

from repro.parallel.executor import ParallelExecutor
from repro.parallel.spec import GovernorSpec, ScheduledFaultInjector, fault_directive
from repro.robustness.errors import (
    BudgetExceeded,
    ConditionTooLarge,
    SolverFailure,
)
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor

_STATE = {"initialized": False}


def _init(value):
    _STATE["initialized"] = value


def _task(item):
    return (item * 2, os.getpid())


def _initialized_task(item):
    return _STATE["initialized"]


class TestParallelExecutor:
    def test_results_in_task_order(self):
        results = ParallelExecutor(3).map(_task, list(range(9)))
        assert [r[0] for r in results] == [i * 2 for i in range(9)]

    def test_single_job_runs_inline(self):
        results = ParallelExecutor(1).map(_task, [1, 2, 3])
        assert all(pid == os.getpid() for _, pid in results)

    def test_single_task_runs_inline_even_with_jobs(self):
        results = ParallelExecutor(4).map(_task, [5])
        assert results == [(10, os.getpid())]

    def test_inline_path_still_runs_initializer(self):
        _STATE["initialized"] = False
        results = ParallelExecutor(1).map(
            _initialized_task, [0], initializer=_init, initargs=(True,)
        )
        assert results == [True]

    def test_empty_tasks(self):
        assert ParallelExecutor(4).map(_task, []) == []


class TestFaultDirective:
    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(timeout_every=3),
            FaultPlan(failure_every=2, start_after=3),
            FaultPlan(timeout_every=2, failure_every=3, oversize_every=5),
        ],
    )
    def test_matches_live_injector(self, plan):
        """directive(i) == what call i of a live injector would fire."""
        live = FaultInjector(plan)
        governor = Governor(injector=live, on_budget="degrade")
        governor.start()
        for call in range(1, 31):
            fired_before = dict(live.injected)
            try:
                governor.begin_solver_call()
            except (BudgetExceeded, SolverFailure, ConditionTooLarge):
                pass  # the solver catches these and degrades; we just count
            fired = [k for k in live.injected if live.injected[k] > fired_before[k]]
            expected = fault_directive(plan, call)
            assert (fired[0] if fired else None) == expected, f"call {call}"

    def test_none_plan(self):
        assert fault_directive(None, 7) is None


class TestScheduledFaultInjector:
    def test_fires_schedule_in_order(self):
        injector = ScheduledFaultInjector(
            [None, ("timeout", 2), None, ("failure", 4)]
        )
        injector.on_solver_call()  # 1: clean
        with pytest.raises(BudgetExceeded):
            injector.on_solver_call()  # 2: timeout
        injector.on_solver_call()  # 3: clean
        with pytest.raises(SolverFailure):
            injector.on_solver_call()  # 4: failure
        assert injector.injected == {"timeout": 1, "failure": 1, "oversize": 0}

    def test_oversize(self):
        injector = ScheduledFaultInjector([("oversize", 1)])
        with pytest.raises(ConditionTooLarge):
            injector.on_solver_call()

    def test_message_carries_the_global_call_index(self):
        """Worker faults must read like the serial injector's faults."""
        injector = ScheduledFaultInjector([("timeout", 17)])
        with pytest.raises(BudgetExceeded, match=r"call #17"):
            injector.on_solver_call()

    def test_past_schedule_is_clean(self):
        injector = ScheduledFaultInjector([("timeout", 1)])
        with pytest.raises(BudgetExceeded):
            injector.on_solver_call()
        injector.on_solver_call()  # beyond the schedule: no fault
        assert injector.calls == 2


class TestGovernorSpec:
    def test_budgets_travel_verbatim(self):
        governor = Governor(
            solver_call_budget=10,
            steps_per_call=1234,
            max_condition_atoms=9,
            on_budget="fail",
        )
        governor.start()
        rebuilt = GovernorSpec.from_governor(governor).build(None)
        assert rebuilt.solver_call_budget == 10
        assert rebuilt.steps_per_call == 1234
        assert rebuilt.max_condition_atoms == 9
        assert not rebuilt.degrade

    def test_deadline_serializes_as_remaining_time(self):
        governor = Governor(deadline_seconds=1000.0)
        governor.start()
        spec = GovernorSpec.from_governor(governor)
        assert spec.deadline_remaining is not None
        assert 0 < spec.deadline_remaining <= 1000.0

    def test_expired_deadline_stays_expired(self):
        governor = Governor(deadline_seconds=0.0, on_budget="degrade")
        governor.start()
        rebuilt = GovernorSpec.from_governor(governor).build(None)
        rebuilt.ensure_started()
        with pytest.raises(BudgetExceeded):
            rebuilt.check_deadline()

    def test_none_governor(self):
        assert GovernorSpec.from_governor(None) is None
