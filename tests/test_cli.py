"""The command-line interface."""

import json

import pytest

from repro.cli import main, parse_update_spec
from repro.ctable import CTable, Database, cvar, eq
from repro.ctable.io import dump_database
from repro.faurelog.rewrite import Deletion, Insertion
from repro.ctable.terms import Constant
from repro.solver import BOOL_DOMAIN, DomainMap, FiniteDomain


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    t = db.create_table("F", ["a", "b"])
    t.add([1, 2], eq(cvar("x"), 1))
    t.add([2, 3])
    domains = DomainMap({cvar("x"): BOOL_DOMAIN})
    path = tmp_path / "db.json"
    path.write_text(dump_database(db, domains))
    return path


class TestUpdateSpec:
    def test_insertion(self):
        op = parse_update_spec("+Lb('R&D', GS)")
        assert isinstance(op, Insertion)
        assert op.predicate == "Lb"
        assert op.values == (Constant("R&D"), Constant("GS"))

    def test_deletion_with_wildcard(self):
        op = parse_update_spec("-Lb(_, CS)")
        assert isinstance(op, Deletion)
        assert op.pattern == (None, Constant("CS"))

    def test_numbers(self):
        op = parse_update_spec("+R(Mkt, CS, 7000)")
        assert op.values[-1] == Constant(7000)

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_update_spec("Lb(a, b)")
        with pytest.raises(ValueError):
            parse_update_spec("+Lb a b")
        with pytest.raises(ValueError):
            parse_update_spec("+Lb(_, b)")  # wildcard in insertion


class TestRibCommands:
    def test_generate_and_analyze(self, tmp_path, capsys):
        rib_path = tmp_path / "rib.txt"
        assert main(
            ["rib", "generate", "--prefixes", "5", "--ases", "30", "-o", str(rib_path)]
        ) == 0
        assert rib_path.exists()
        assert main(["rib", "analyze", str(rib_path)]) == 0
        out = capsys.readouterr().out
        assert "R tuples" in out

    def test_generate_to_stdout(self, capsys):
        assert main(["rib", "generate", "--prefixes", "3", "--ases", "30"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 3


class TestQueryCommand:
    def test_inline_program(self, db_file, capsys):
        code = main(
            [
                "query",
                "--db",
                str(db_file),
                "--program",
                "R(a,b) :- F(a,b). R(a,b) :- F(a,c), R(c,b).",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuples derived" in out
        assert "x̄ = 1" in out

    def test_program_file(self, db_file, tmp_path, capsys):
        prog = tmp_path / "prog.fl"
        prog.write_text("Hop(a) :- F(a, b).")
        assert main(["query", "--db", str(db_file), "--program-file", str(prog)]) == 0
        assert "Hop" in capsys.readouterr().out

    def test_output_filter(self, db_file, capsys):
        main(
            [
                "query",
                "--db",
                str(db_file),
                "--program",
                "A(a) :- F(a, b). B(b) :- F(a, b).",
                "--output",
                "A",
            ]
        )
        out = capsys.readouterr().out
        assert "A" in out.splitlines()[0]
        assert "\nB\n" not in out

    def test_bad_program_reports_error(self, db_file, capsys):
        code = main(["query", "--db", str(db_file), "--program", "broken((("])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_db_file(self, capsys):
        code = main(["query", "--db", "/nonexistent.json", "--program", "A(a) :- F(a)."])
        assert code == 2


class TestVerifyCommand:
    @pytest.fixture
    def constraint_files(self, tmp_path):
        target = tmp_path / "T1.fl"
        target.write_text("panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).")
        known = tmp_path / "Cs.fl"
        known.write_text(
            """
            panic :- Vs(x, y, p).
            Vs($x, $y, $p) :- R($x, $y, $p), not Fw($x, $y).
            """
        )
        return target, known

    def test_subsumed_exit_zero(self, constraint_files, capsys):
        target, known = constraint_files
        code = main(["verify", "--target", str(target), "--known", str(known)])
        assert code == 0
        assert "holds" in capsys.readouterr().out

    def test_unknown_exit_nonzero(self, constraint_files, capsys):
        target, _ = constraint_files
        code = main(["verify", "--target", str(target), "--known"])
        assert code == 1
        assert "unknown" in capsys.readouterr().out

    def test_with_update_spec(self, tmp_path, capsys):
        target = tmp_path / "T.fl"
        target.write_text("panic :- R($y), not Lb($y).")
        known = tmp_path / "K.fl"
        known.write_text("panic :- R($y), not Lb($y).")
        code = main(
            [
                "verify",
                "--target",
                str(target),
                "--known",
                str(known),
                "--update",
                "+Lb(GS)",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # decided either way, but it must run
        assert "category" in out


class TestExamplesCommand:
    def test_lists_all(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "quickstart.py" in out
        assert "interdomain_visibility.py" in out


class TestSqlCommand:
    def test_inline_statements(self, capsys):
        code = main(
            [
                "sql",
                "CREATE TABLE T (a); INSERT INTO T VALUES (1); SELECT * FROM T",
            ]
        )
        assert code == 0
        assert "condition" in capsys.readouterr().out

    def test_script_file_and_save(self, tmp_path, capsys):
        script = tmp_path / "s.sql"
        script.write_text(
            "CREATE TABLE T (a);"
            "INSERT INTO T VALUES ($x) CONDITION $x != 1;"
            "SELECT * FROM T"
        )
        out_file = tmp_path / "out.json"
        code = main(["sql", "--script", str(script), "--save", str(out_file)])
        assert code == 0
        assert out_file.exists()
        # reload through the query path
        code = main(
            ["query", "--db", str(out_file), "--program", "Out(a) :- T(a)."]
        )
        assert code == 0

    def test_load_existing_db(self, db_file, capsys):
        code = main(["sql", "--db", str(db_file), "SELECT * FROM F"])
        assert code == 0
        assert "x̄" in capsys.readouterr().out

    def test_bad_sql_reports_error(self, capsys):
        code = main(["sql", "SELEKT nothing"])
        assert code == 2
        assert "error" in capsys.readouterr().err
