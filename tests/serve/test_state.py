"""ServeState: durability ordering, recovery equivalence, degradation."""

from __future__ import annotations

import json

import pytest

from repro.ctable.condition import TRUE
from repro.ctable.io import load_database
from repro.faurelog.incremental import IncrementalEvaluator
from repro.faurelog.parser import parse_program
from repro.serve.protocol import ServeRequestError, parse_values, parse_where
from repro.serve.state import ServeBudgets, row_to_obj
from repro.serve.wal import UpdateEntry
from repro.solver.interface import ConditionSolver

from .conftest import PROGRAM_TEXT, NEGATION_PROGRAM_TEXT


def insert(relation, values, condition=None, txid=None, weaken=False):
    return UpdateEntry(
        kind="weaken" if weaken else "insert",
        relation=relation,
        values=tuple(values),
        condition=condition,
        txid=txid,
    )


#: A stream with unconditional, conditional, and weakening updates.
STREAM = [
    insert("F", ("p1", "C", "D")),
    insert("F", ("p2", "E", "G"), condition="$up == 1"),
    insert("F", ("p1", "D", "A")),
    insert("F", ("p2", "A", "E"), condition="$up == 0", weaken=True),
]


def rows_of(state, relation="R"):
    answer = state.query(relation)
    return json.dumps(answer["rows"], sort_keys=True)


def test_submit_applies_and_advances_epoch(make_state):
    state = make_state()
    before = state.epochs.current()
    result = state.submit(insert("F", ("p1", "C", "D")))
    assert result["ok"] and result["seq"] == 1
    assert result["derived"] >= 1  # at least C->D itself reaches R
    after = state.epochs.current()
    assert after.epoch == before.epoch + 1
    assert after.seq == 1
    # the pre-update snapshot object is untouched
    assert len(before.relation("R")) < len(after.relation("R"))


def test_rejected_updates_never_reach_the_wal(make_state):
    state = make_state()
    for entry, code in [
        (insert("R", ("p1", "A", "B")), "IDB_INSERT"),
        (insert("Nope", ("p1",)), "UNKNOWN_RELATION"),
        (insert("F", ("p1", "A")), "ARITY"),
    ]:
        with pytest.raises(ServeRequestError) as exc:
            state.submit(entry)
        assert exc.value.code == code
    assert len(state.wal) == 0
    assert state.counters["updates_rejected"] == 3
    # the resident state is not poisoned: a good update still lands
    assert state.submit(insert("F", ("p1", "C", "D")))["ok"]


def test_non_monotone_update_rejected_without_poisoning(make_state, db_text):
    db_obj = json.loads(db_text)
    db_obj["tables"].append({"name": "Acl", "schema": ["src", "dst"], "rows": []})
    state = make_state(
        wal_name="neg.wal",
        program_text=NEGATION_PROGRAM_TEXT,
        database_text=json.dumps(db_obj),
    )
    with pytest.raises(ServeRequestError) as exc:
        state.submit(insert("Acl", ("A", "B")))
    assert exc.value.code == "NON_MONOTONE"
    assert len(state.wal) == 0
    # F does not flow through negation, so it still grows fine
    assert state.submit(insert("F", ("p1", "C", "D")))["ok"]


def test_duplicate_txid_answers_original_sequence(make_state):
    state = make_state()
    first = state.submit(insert("F", ("p1", "C", "D"), txid="k1"))
    replayed = state.submit(insert("F", ("p1", "C", "D"), txid="k1"))
    assert replayed["duplicate"] and replayed["seq"] == first["seq"]
    assert len(state.wal) == 1
    assert state.counters["updates_duplicate"] == 1


def test_restart_recovers_byte_identical_answers(make_state):
    state = make_state(wal_name="shared.wal")
    for entry in STREAM:
        state.submit(entry)
    expected_r = rows_of(state, "R")
    expected_f = rows_of(state, "F")

    recovered = make_state(wal_name="shared.wal")  # same WAL: a restart
    assert rows_of(recovered, "R") == expected_r
    assert rows_of(recovered, "F") == expected_f
    assert recovered.wal.last_seq == state.wal.last_seq
    # ... and the recovered daemon keeps ingesting past the replayed log
    assert recovered.submit(insert("F", ("p1", "D", "C")))["seq"] == len(STREAM) + 1


def test_recovery_matches_from_scratch_evaluation(make_state, db_text):
    """The WAL replay invariant, checked against a hand-rolled rerun."""
    state = make_state()
    for entry in STREAM:
        state.submit(entry)

    database, domains = load_database(db_text)
    evaluator = IncrementalEvaluator(
        parse_program(PROGRAM_TEXT), database, solver=ConditionSolver(domains)
    )
    for entry in STREAM:
        condition = parse_where(entry.condition)
        evaluator.apply(
            entry.kind,
            entry.relation,
            parse_values(list(entry.values)),
            condition if condition is not None else TRUE,
        )
    expected = json.dumps(
        [row_to_obj(tup) for tup in evaluator.table("R")], sort_keys=True
    )
    assert rows_of(state, "R") == expected


def test_apply_blowup_recovers_via_rebuild(make_state, monkeypatch):
    state = make_state()
    state.submit(STREAM[0])
    calls = {"n": 0}

    def exploding_apply(*args, **kwargs):
        calls["n"] += 1
        raise RuntimeError("injected apply failure")

    monkeypatch.setattr(state.evaluator, "apply", exploding_apply)
    result = state.submit(STREAM[1])
    assert result["ok"] and result.get("recovered") is True
    assert calls["n"] == 1  # the rebuild used a fresh evaluator, not the mock
    assert state.counters["recoveries"] == 1
    # the update that blew up mid-apply is durable and applied
    assert state.wal.last_seq == 2
    snapshot = state.epochs.current()
    assert snapshot.seq == 2

    # recovered state equals a clean run over the same two updates
    clean = make_state(wal_name="clean.wal")
    clean.submit(STREAM[0])
    clean.submit(STREAM[1])
    assert rows_of(state, "R") == rows_of(clean, "R")


def test_mid_apply_queries_see_the_previous_epoch(make_state, monkeypatch):
    state = make_state()
    seen = {}

    original_insert = state.evaluator.insert

    def observing_insert(predicate, values, condition=TRUE):
        # a "concurrent" query while the update applies
        snapshot = state.epochs.current()
        seen["epoch"] = snapshot.epoch
        seen["rows"] = len(snapshot.relation("R"))
        return original_insert(predicate, values, condition)

    monkeypatch.setattr(state.evaluator, "insert", observing_insert)
    before = state.epochs.current()
    state.submit(insert("F", ("p1", "C", "D")))
    assert seen["epoch"] == before.epoch
    assert seen["rows"] == len(before.relation("R"))
    assert state.epochs.current().epoch == before.epoch + 1


def test_query_where_filter_prunes_unsat_rows(make_state):
    state = make_state()
    answer = state.query("F", where="$up == 1")
    flows = {row["values"][0]["const"] for row in answer["rows"]}
    assert answer["status"] == "OK"
    assert flows == {"p1", "p2"}  # p2's guard ($up == 1) is consistent
    answer = state.query("F", where="$up == 1 AND $up == 0")
    flows = {row["values"][0]["const"] for row in answer["rows"]}
    # contradictory filter: only unconditional rows survive... none do,
    # because conjoining with the filter is itself unsatisfiable
    assert flows == set()


def test_query_budget_exhaustion_degrades_to_inconclusive(make_state):
    state = make_state(budgets=ServeBudgets(solver_call_budget=0))
    answer = state.query("F", where="$up == 1")
    assert answer["status"] == "INCONCLUSIVE"
    undecided = [row for row in answer["rows"] if row.get("unknown")]
    assert undecided  # the rows it could not decide are flagged, not dropped
    assert state.counters["queries_inconclusive"] == 1


def test_query_limit_truncates_deterministically(make_state):
    state = make_state()
    full = state.query("F")
    limited = state.query("F", limit=1)
    assert limited["truncated"] is True
    assert limited["total"] == full["total"]
    assert limited["rows"] == full["rows"][:1]


def test_wal_fingerprint_guards_against_foreign_workloads(make_state, db_text):
    from repro.robustness.errors import CheckpointError

    make_state(wal_name="guarded.wal")
    other_db = db_text.replace("p1", "q9")
    with pytest.raises(CheckpointError, match="different workload"):
        make_state(wal_name="guarded.wal", database_text=other_db)
