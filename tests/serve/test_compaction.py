"""WAL compaction: snapshot folding, recovery fallback, bounded open cost."""

from __future__ import annotations

import json
import os

import pytest

from repro.robustness.errors import CheckpointError
from repro.serve.snapshots import (
    list_snapshots,
    load_latest_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.serve.wal import UpdateEntry

from .conftest import PROGRAM_TEXT


def insert(relation, values, condition=None, txid=None):
    return UpdateEntry(
        kind="insert",
        relation=relation,
        values=tuple(values),
        condition=condition,
        txid=txid,
    )


def rows_only(state, relation="R"):
    answer = state.query(relation)
    keep = ("relation", "schema", "status", "rows", "total")
    return json.dumps({k: answer[k] for k in keep}, sort_keys=True)


STREAM = [
    insert("F", ("p1", "C", "D"), txid="a1"),
    insert("F", ("p2", "E", "G"), condition="$up == 1", txid="a2"),
    insert("F", ("p1", "D", "A"), txid="a3"),
]


def test_compact_then_restart_is_byte_identical(make_state):
    live = make_state()
    for entry in STREAM:
        live.submit(entry)
    before = rows_only(live)
    result = live.compact()
    assert result["compacted"] and result["seq"] == len(STREAM)
    assert len(live.wal) == 0 and live.wal.base_seq == len(STREAM)
    # resident state is untouched by compaction itself
    assert rows_only(live) == before
    live.close()

    recovered = make_state()
    assert recovered.wal.last_seq == len(STREAM)
    assert rows_only(recovered) == before
    # a never-compacted twin over the same stream agrees too
    twin = make_state(wal_name="twin.wal")
    for entry in STREAM:
        twin.submit(
            UpdateEntry(
                kind=entry.kind,
                relation=entry.relation,
                values=entry.values,
                condition=entry.condition,
            )
        )
    assert rows_only(twin) == before


def test_compaction_is_noop_on_empty_suffix(make_state):
    state = make_state()
    state.submit(STREAM[0])
    assert state.compact()["compacted"]
    again = state.compact()
    assert not again["compacted"] and "empty" in again["reason"]


def test_sequences_continue_above_the_snapshot(make_state):
    state = make_state()
    state.submit(STREAM[0])
    state.submit(STREAM[1])
    state.compact()
    result = state.submit(STREAM[2])
    assert result["seq"] == 3  # compaction never rewinds the sequence space
    state.close()
    recovered = make_state()
    assert recovered.wal.last_seq == 3
    assert len(recovered.wal) == 1  # only the suffix is resident log


def test_txid_dedup_survives_compaction_and_restart(make_state):
    state = make_state()
    state.submit(STREAM[0])
    state.submit(STREAM[1])
    state.compact()
    state.close()
    recovered = make_state()
    # a retry of a txid folded into the snapshot: duplicate, original seq
    retry = recovered.submit(insert("F", ("p1", "C", "D"), txid="a1"))
    assert retry["duplicate"] and retry["seq"] == 1


def test_threshold_auto_compaction(make_state):
    state = make_state(compact_every=2)
    state.submit(STREAM[0])
    assert state.counters["compactions"] == 0
    state.submit(STREAM[1])
    assert state.counters["compactions"] == 1
    assert len(state.wal) == 0 and state.wal.base_seq == 2
    state.submit(STREAM[2])
    assert state.counters["compactions"] == 1  # suffix of 1 < threshold


def test_byte_threshold_auto_compaction(make_state):
    state = make_state(compact_bytes=1)  # every entry trips the threshold
    state.submit(STREAM[0])
    assert state.counters["compactions"] == 1
    assert len(state.wal) == 0


def test_torn_snapshot_falls_back_to_previous(make_state):
    state = make_state()
    state.submit(STREAM[0])
    state.compact()
    state.submit(STREAM[1])
    state.compact()
    good = rows_only(state)
    fingerprint = state.fingerprint
    wal_path = state.wal.path
    state.close()
    # older snapshots were retired by the second compact; fabricate a
    # newer, torn one — recovery must fall back, not crash
    older_obj, _ = load_latest_snapshot(wal_path, fingerprint)
    torn = snapshot_path(wal_path, 99)
    with open(torn, "w", encoding="utf-8") as handle:
        handle.write('{"magic": "faure-seed-snapshot-v1", "seq": 99')  # no close
    obj, path = load_latest_snapshot(wal_path, fingerprint)
    assert obj == older_obj and not path.endswith("0000000000000099")
    recovered = make_state()
    assert rows_only(recovered) == good
    os.remove(torn)


def test_foreign_fingerprint_snapshot_is_a_hard_error(tmp_path, make_state):
    state = make_state()
    state.submit(STREAM[0])
    state.compact()
    wal_path = state.wal.path
    obj, _ = load_latest_snapshot(wal_path, state.fingerprint)
    state.close()
    foreign = dict(obj, fingerprint="0" * 64, seq=int(obj["seq"]) + 1)
    write_snapshot(wal_path, foreign)
    with pytest.raises(CheckpointError, match="different workload"):
        make_state()
    os.remove(snapshot_path(wal_path, foreign["seq"]))


def test_older_snapshots_are_retired(make_state):
    state = make_state()
    state.submit(STREAM[0])
    state.compact()
    state.submit(STREAM[1])
    state.compact()
    snaps = list_snapshots(state.wal.path)
    assert [seq for seq, _ in snaps] == [2]


def test_open_replay_stays_flat_as_history_grows(make_state):
    """The open-time regression: compaction bounds replayed entries.

    Without snapshots, every restart replays the daemon's whole life;
    with ``compact_every=4`` the replayed suffix never exceeds the
    threshold no matter how long the history grows.
    """
    state = make_state(compact_every=4)
    for i in range(25):
        state.submit(insert("F", (f"p{i}", "X", "Y"), txid=f"k{i}"))
    assert state.wal.last_seq == 25
    assert len(state.wal) <= 4  # resident suffix bounded
    state.close()
    recovered = make_state(compact_every=4)
    # replay cost on open == suffix length, not history length
    assert len(recovered.wal) <= 4
    assert recovered.wal.last_seq == 25
    # and the dedup map still covers the entire history
    for i in range(25):
        assert recovered.wal.seen_txid(f"k{i}") == i + 1


def test_compaction_preserves_withdrawn_guards(make_state):
    state = make_state()
    first = state.submit(
        UpdateEntry(kind="insert", relation="F", values=("p3", "A", "B"), guard="")
    )
    guard = first["guard"]
    state.submit(
        UpdateEntry(kind="withdraw", relation="", values=(), guard=guard)
    )
    before = rows_only(state)
    state.compact()
    state.close()
    recovered = make_state()
    assert rows_only(recovered) == before
    assert recovered.guards[guard]["withdrawn"] is True
    # withdrawing again after restart+compaction is an idempotent duplicate
    again = recovered.submit(
        UpdateEntry(kind="withdraw", relation="", values=(), guard=guard)
    )
    assert again["duplicate"] and again["withdrawn"]
