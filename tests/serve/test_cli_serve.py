"""The ``serve`` subcommand end-to-end: real processes, real sockets."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

from .conftest import PROGRAM_TEXT, seed_database_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def daemon_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("FAURE_CHAOS", None)
    return env


@pytest.fixture
def workload(tmp_path):
    program = tmp_path / "prog.fl"
    program.write_text(PROGRAM_TEXT)
    db = tmp_path / "db.json"
    db.write_text(seed_database_text())
    return program, db, tmp_path / "wal.jsonl"


def start_daemon(workload, *extra, env=None):
    program, db, wal = workload
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--db",
            str(db),
            "--program-file",
            str(program),
            "--wal",
            str(wal),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env or daemon_env(),
        cwd=str(REPO_ROOT),
    )
    ready_line = proc.stdout.readline().decode()
    assert ready_line, proc.stderr.read().decode()
    ready = json.loads(ready_line)["serving"]
    return proc, ready


def rows_only(client: ServeClient, relation: str) -> str:
    """The restart-stable projection of a query (what the CI job diffs)."""
    answer = client.query(relation)
    assert answer["ok"]
    keep = ("relation", "schema", "status", "rows", "total")
    return json.dumps({k: answer[k] for k in keep}, sort_keys=True)


def test_serve_round_trip_and_graceful_shutdown(workload):
    proc, ready = start_daemon(workload)
    try:
        assert ready["replayed"] == 0 and ready["seq"] == 0
        with ServeClient("127.0.0.1", ready["port"]) as client:
            assert client.update("F", ["p1", "C", "D"], txid="u1")["seq"] == 1
            answer = client.query("R", where="$up == 1")
            assert answer["ok"] and answer["total"] >= 4
            assert client.shutdown()["shutdown"] is True
        assert proc.wait(timeout=30) == 0
        summary = proc.stderr.read().decode()
        assert "-- serve:" in summary and "1 update(s) applied" in summary
    finally:
        proc.kill()
        proc.wait(timeout=30)


def test_sigkill_then_restart_replays_byte_identical(workload):
    proc, ready = start_daemon(workload)
    with ServeClient("127.0.0.1", ready["port"]) as client:
        client.update("F", ["p1", "C", "D"], txid="a1")
        client.update("F", ["p2", "E", "G"], condition="$up == 1", txid="a2")
        expected = rows_only(client, "R")
    os.kill(proc.pid, signal.SIGKILL)
    assert proc.wait(timeout=30) == -signal.SIGKILL

    proc, ready = start_daemon(workload)
    try:
        assert ready["replayed"] == 2 and ready["seq"] == 2
        with ServeClient("127.0.0.1", ready["port"]) as client:
            assert rows_only(client, "R") == expected
            # an unacked retry from before the crash: same seq, no re-apply
            retry = client.update(
                "F", ["p2", "E", "G"], condition="$up == 1", txid="a2"
            )
            assert retry["duplicate"] and retry["seq"] == 2
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)


def test_client_cli_speaks_the_protocol(workload):
    proc, ready = start_daemon(workload)
    try:
        def client_cli(*args):
            return subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.serve.client",
                    "--port",
                    str(ready["port"]),
                    *args,
                ],
                capture_output=True,
                env=daemon_env(),
                cwd=str(REPO_ROOT),
            )

        good = client_cli("update", "F", "p1", "C", "D", "--txid", "k1")
        assert good.returncode == 0, good.stderr.decode()
        assert json.loads(good.stdout)["seq"] == 1

        rejected = client_cli("update", "R", "x", "y", "z")
        assert rejected.returncode == 2  # errno mirrors the CLI parse exit code
        assert json.loads(rejected.stdout)["code"] == "IDB_INSERT"

        queried = client_cli("query", "R", "--rows-only")
        assert queried.returncode == 0
        payload = json.loads(queried.stdout)
        assert payload["relation"] == "R" and "epoch" not in payload

        assert client_cli("shutdown").returncode == 0
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.wait(timeout=30)


def test_bind_failure_exits_with_serve_failure_code(workload):
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    try:
        program, db, wal = workload
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--db",
                str(db),
                "--program-file",
                str(program),
                "--wal",
                str(wal),
                "--port",
                str(port),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=daemon_env(),
            cwd=str(REPO_ROOT),
        )
        assert proc.wait(timeout=30) == 6
        assert b"serve failure" in proc.stderr.read()
    finally:
        blocker.close()
