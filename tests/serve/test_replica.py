"""Read replicas: bootstrap, tail convergence, staleness, failover."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.replica import ReplicaTailer, bootstrap_replica
from repro.serve.server import FaureServer


def rows_only(client, relation="R"):
    answer = client.query(relation)
    keep = ("relation", "schema", "status", "rows", "total")
    return json.dumps({k: answer[k] for k in keep}, sort_keys=True)


@pytest.fixture
def replica_pair(tmp_path, make_state):
    """A primary server plus an attached replica server, both in-process."""
    built = {}

    def build(**primary_state_kwargs):
        pstate = make_state(wal_name="primary.wal", **primary_state_kwargs)
        pserver = FaureServer(pstate)
        threading.Thread(target=pserver.serve_forever, daemon=True).start()
        phost, pport = pserver.address
        rstate = bootstrap_replica((phost, pport), str(tmp_path / "replica.wal"))
        tailer = ReplicaTailer(rstate, (phost, pport), poll_interval=0.02)
        rserver = FaureServer(
            rstate, role="replica", primary_addr=(phost, pport)
        )
        rserver.tailer = tailer
        tailer.start()
        threading.Thread(target=rserver.serve_forever, daemon=True).start()
        built.update(
            primary=pserver,
            replica=rserver,
            tailer=tailer,
            pclient=ServeClient(*pserver.address).connect(),
            rclient=ServeClient(*rserver.address).connect(),
        )
        return built

    yield build
    for key in ("pclient", "rclient"):
        if key in built:
            try:
                built[key].close()
            except OSError:
                pass
    if "tailer" in built:
        built["tailer"].stop()
    for key in ("replica", "primary"):
        if key in built:
            built[key].stop()


def test_replica_bootstraps_and_converges(replica_pair):
    pair = replica_pair()
    pclient, rclient, tailer = pair["pclient"], pair["rclient"], pair["tailer"]
    assert rows_only(rclient) == rows_only(pclient)  # bootstrap state agrees
    last = None
    for i in range(5):
        last = pclient.update("F", [f"n{i}", "A", "B"], txid=f"t{i}")
    assert tailer.wait_caught_up(last["seq"])
    assert rows_only(rclient) == rows_only(pclient)
    health = rclient.health()
    assert health["role"] == "replica" and health["lag_seqs"] == 0
    assert health["primary_up"] is True


def test_every_replica_response_carries_lag(replica_pair):
    pair = replica_pair()
    rclient = pair["rclient"]
    for response in (rclient.health(), rclient.query("R")):
        assert "lag_seqs" in response and "primary_up" in response
    bad = rclient.request({"op": "query", "relation": "NoSuch"})
    assert not bad["ok"] and "lag_seqs" in bad  # even errors carry the contract


def test_replica_rejects_ingest_with_redirect(replica_pair):
    pair = replica_pair()
    rclient = pair["rclient"]
    refused = rclient.update("F", ["x", "A", "B"])
    assert refused["code"] == "READ_ONLY" and refused["errno"] == 2
    assert refused["primary"]["port"] == pair["primary"].address[1]
    refused = rclient.request({"op": "withdraw", "guard": "__g1"})
    assert refused["code"] == "READ_ONLY"


def test_replica_serves_while_primary_down_and_client_fails_over(replica_pair):
    pair = replica_pair()
    pclient, rclient, tailer = pair["pclient"], pair["rclient"], pair["tailer"]
    last = pclient.update("F", ["p9", "A", "B"])
    assert tailer.wait_caught_up(last["seq"])
    frozen = rows_only(rclient)
    # primary goes away entirely
    pair["primary"].stop()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and tailer.primary_up:
        time.sleep(0.02)
    assert not tailer.primary_up
    # replica still answers, stale-but-consistent
    assert rows_only(rclient) == frozen
    health = rclient.health()
    assert health["primary_up"] is False
    # failover client: primary address dead, replica configured
    failover = ServeClient(
        *pair["primary"].address, replicas=[pair["replica"].address]
    )
    answer = failover.query("R")
    assert answer["ok"] and answer["stale"] is True
    assert answer["served_by"]["port"] == pair["replica"].address[1]
    health = failover.health()
    assert health["stale"] is True and health["role"] == "replica"
    # writes never fail over
    with pytest.raises((ConnectionError, OSError)):
        failover.update("F", ["x", "A", "B"])


def test_replica_rebootstraps_after_primary_compaction(replica_pair, tmp_path):
    pair = replica_pair()
    pclient, tailer = pair["pclient"], pair["tailer"]
    last = None
    for i in range(3):
        last = pclient.update("F", [f"m{i}", "A", "B"])
    assert tailer.wait_caught_up(last["seq"])
    # detach the tailer (simulate a slow/partitioned replica) …
    tailer.stop()
    tailer.join(timeout=10)
    for i in range(3, 6):
        last = pclient.update("F", [f"m{i}", "A", "B"])
    assert pclient.admin("compact")["compacted"]
    # … and a fresh replica whose cursor is below the horizon
    rstate = pair["replica"].state
    tailer2 = ReplicaTailer(
        rstate, pair["primary"].address, poll_interval=0.02
    )
    pair["replica"].tailer = tailer2
    pair["tailer"] = tailer2
    tailer2.start()
    assert tailer2.wait_caught_up(last["seq"], deadline=10)
    assert tailer2.rebootstraps >= 1
    assert rows_only(pair["rclient"]) == rows_only(pclient)


def test_tail_compacted_error_and_cursor_semantics(replica_pair):
    pair = replica_pair()
    pclient = pair["pclient"]
    for i in range(3):
        pclient.update("F", [f"q{i}", "A", "B"])
    pclient.admin("compact")
    # a cursor below the horizon gets the typed COMPACTED refusal
    stale_tail = pclient.request({"op": "tail", "after_seq": 0})
    assert stale_tail["code"] == "COMPACTED" and stale_tail["base_seq"] == 3
    # at the horizon is fine (empty batch)
    ok_tail = pclient.request({"op": "tail", "after_seq": 3})
    assert ok_tail["ok"] and ok_tail["entries"] == []
    assert ok_tail["last_seq"] == 3


def test_withdraw_replicates(replica_pair):
    pair = replica_pair()
    pclient, rclient, tailer = pair["pclient"], pair["rclient"], pair["tailer"]
    inserted = pclient.update("F", ["p7", "A", "B"], removable=True)
    withdrawn = pclient.withdraw(inserted["guard"])
    assert tailer.wait_caught_up(withdrawn["seq"])
    assert rows_only(rclient) == rows_only(pclient)
    assert pair["replica"].state.guards[inserted["guard"]]["withdrawn"] is True


def test_replica_restart_without_primary(replica_pair, tmp_path):
    """A replica restart with the primary dead recovers from local state."""
    pair = replica_pair()
    pclient, tailer = pair["pclient"], pair["tailer"]
    last = pclient.update("F", ["p8", "A", "B"])
    assert tailer.wait_caught_up(last["seq"])
    expected = rows_only(pair["rclient"])
    # force a local snapshot so the dead-primary bootstrap has a base
    pair["rclient"].admin("snapshot")
    tailer.stop()
    pair["replica"].stop()
    pair["primary"].stop()
    time.sleep(0.2)
    rebuilt = bootstrap_replica(
        pair["primary"].address, str(tmp_path / "replica.wal"), timeout=1.0
    )
    server = FaureServer(rebuilt, role="replica", primary_addr=pair["primary"].address)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServeClient(*server.address).connect()
    try:
        assert rows_only(client) == expected
        assert client.health()["primary_up"] is False
    finally:
        client.close()
        server.stop()
