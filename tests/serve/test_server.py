"""FaureServer: the line protocol end-to-end, shedding, failure modes."""

from __future__ import annotations

import json
import threading
import time

from repro.serve.server import FaureServer
from repro.serve.state import ServeState


def test_update_query_health_over_the_wire(server_factory):
    server, client = server_factory()
    before = client.health()
    # seed R: p1 A->B, B->C, A->C and the conditional p2 A->E
    assert before["ok"] and before["relations"]["R"] == 4

    landed = client.update("F", ["p1", "C", "D"], txid="t1")
    assert landed["ok"] and landed["seq"] == 1

    replayed = client.update("F", ["p1", "C", "D"], txid="t1")
    assert replayed["duplicate"] and replayed["seq"] == 1

    answer = client.query("R", limit=2)
    assert answer["ok"] and answer["truncated"] and len(answer["rows"]) == 2
    assert answer["epoch"] == landed["epoch"]

    after = client.health()
    assert after["wal_entries"] == 1
    assert after["counters"]["updates_duplicate"] == 1
    assert after["server"]["requests"] == 5
    assert after["queue_limit"] == 64


def test_malformed_lines_answered_not_fatal(server_factory):
    server, client = server_factory()
    for bad, fragment in [
        ({"op": "nonsense"}, "unknown op"),
        ({"op": "query"}, "relation"),
        ({"op": "query", "relation": "R", "limit": -1}, "limit"),
        ({"op": "query", "relation": "Missing"}, "Missing"),
        ({"op": "update", "relation": "F", "values": ["((bad"]}, "bad value"),
        ({"op": "update", "relation": "R", "values": ["x", "y", "z"]}, "derived"),
    ]:
        response = client.request(bad)
        assert response["ok"] is False
        assert fragment in response["error"]
        assert response["errno"] == 2
    # raw non-JSON bytes on the same connection
    client._sock.sendall(b"this is not json\n")
    response = json.loads(client._file.readline())
    assert response["code"] == "MALFORMED"
    # two protocol-layer rejects: the unknown op and the non-JSON line
    assert server.counters["protocol_errors"] == 2
    # the daemon is still healthy and still ingests
    assert client.update("F", ["p1", "C", "D"])["ok"]
    assert server.state.counters["updates_applied"] == 1


def test_overload_sheds_with_retry_after(server_factory, tmp_path, monkeypatch):
    sentinel = tmp_path / "hang.sentinel"
    monkeypatch.setenv("FAURE_CHAOS", f"serve-hang-apply:2.0:{sentinel}")
    server, client = server_factory(queue_limit=1, shed_retry_after=0.25)

    responses = {}

    def push(name, values):
        responses[name] = server.dispatch(
            json.dumps(
                {"op": "update", "relation": "F", "values": values}
            ).encode()
        )[0]

    # u1 is picked up by the ingest thread and hangs in the chaos hook;
    # u2 parks in the (size-1) queue; u3 must be shed synchronously.
    t1 = threading.Thread(target=push, args=("u1", ["p1", "C", "D"]))
    t1.start()
    deadline = time.monotonic() + 10
    while not sentinel.exists() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert sentinel.exists(), "chaos hang never fired"
    t2 = threading.Thread(target=push, args=("u2", ["p1", "D", "E"]))
    t2.start()
    while server._queue.qsize() < 1 and time.monotonic() < deadline:
        time.sleep(0.01)

    push("u3", ["p1", "E", "G"])
    shed = responses["u3"]
    assert shed["ok"] is False and shed["code"] == "OVERLOADED"
    assert shed["errno"] == 6 and shed["retry_after"] == 0.25
    assert shed["status"] == "OVERLOADED"
    assert server.counters["shed"] == 1

    # while the ingest is saturated, reads still answer from the snapshot
    assert client.query("R")["total"] == 4
    assert client.health()["ok"]

    t1.join(timeout=30)
    t2.join(timeout=30)
    assert responses["u1"]["ok"] and responses["u2"]["ok"]
    assert server.state.wal.last_seq == 2  # the shed update never landed


def test_shutdown_refuses_new_updates_but_drains_queued(server_factory):
    server, client = server_factory()
    client.update("F", ["p1", "C", "D"])
    goodbye = client.shutdown()
    assert goodbye == {"ok": True, "shutdown": True}
    refused = server._update({"relation": "F", "values": ["p1", "D", "E"]})
    assert refused["code"] == "OVERLOADED" and "shutting down" in refused["error"]


def test_infrastructure_failure_exits_with_code_6(make_state, monkeypatch):
    state = make_state()
    server = FaureServer(state, queue_limit=4)
    outcome = {}

    def run():
        outcome["exit"] = server.serve_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()

    def broken_submit(entry):
        raise OSError("disk gone")

    monkeypatch.setattr(state, "submit", broken_submit)
    response = server._update({"relation": "F", "values": ["p1", "C", "D"]})
    assert response["code"] == "INTERNAL"
    assert "disk gone" in response["error"]
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert outcome["exit"] == 6
    assert isinstance(server.fatal, OSError)


def test_graceful_stop_exits_zero(make_state):
    state = make_state()
    server = FaureServer(state)
    outcome = {}

    def run():
        outcome["exit"] = server.serve_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    server.stop()
    thread.join(timeout=30)
    assert outcome["exit"] == 0
