"""WriteAheadLog: sequencing, replay, fingerprint guard, torn tails."""

from __future__ import annotations

import json

import pytest

from repro.robustness.errors import CheckpointError
from repro.serve.wal import UpdateEntry, WriteAheadLog, wal_fingerprint

FP = wal_fingerprint("prog", "db")


def entry(relation="F", values=("p1", "A", "B"), **kw) -> UpdateEntry:
    return UpdateEntry(kind="insert", relation=relation, values=tuple(values), **kw)


def test_append_assigns_monotone_sequence(tmp_path):
    wal = WriteAheadLog.open(str(tmp_path / "w.jsonl"), FP)
    first = wal.append(entry())
    second = wal.append(entry(values=("p1", "B", "C")))
    assert (first.seq, second.seq) == (1, 2)
    assert wal.last_seq == 2
    assert [e.seq for e in wal.entries()] == [1, 2]
    wal.close()


def test_reopen_replays_in_order_and_continues_sequence(tmp_path):
    path = str(tmp_path / "w.jsonl")
    wal = WriteAheadLog.open(path, FP)
    wal.append(entry())
    wal.append(entry(values=("p1", "B", "C"), condition="$up == 1"))
    wal.close()

    reopened = WriteAheadLog.open(path, FP)
    entries = reopened.entries()
    assert [e.seq for e in entries] == [1, 2]
    assert entries[1].condition == "$up == 1"
    assert reopened.append(entry(values=("p1", "C", "D"))).seq == 3
    reopened.close()


def test_fingerprint_mismatch_refuses_replay(tmp_path):
    path = str(tmp_path / "w.jsonl")
    WriteAheadLog.open(path, FP).close()
    with pytest.raises(CheckpointError, match="different workload"):
        WriteAheadLog.open(path, wal_fingerprint("prog", "OTHER db"))


def test_torn_tail_is_truncated_and_sequence_resumes(tmp_path):
    path = str(tmp_path / "w.jsonl")
    wal = WriteAheadLog.open(path, FP)
    wal.append(entry())
    wal.append(entry(values=("p1", "B", "C")))
    wal.close()
    # Simulate a crash mid-append: a half-written final record.
    with open(path, "a") as handle:
        handle.write('{"kind":"update","key":"000')

    recovered = WriteAheadLog.open(path, FP)
    assert [e.seq for e in recovered.entries()] == [1, 2]
    assert recovered.append(entry(values=("p1", "C", "D"))).seq == 3
    recovered.close()
    # The torn bytes are gone from disk and every line parses again.
    with open(path) as handle:
        for line in handle:
            json.loads(line)


def test_txid_map_survives_reopen(tmp_path):
    path = str(tmp_path / "w.jsonl")
    wal = WriteAheadLog.open(path, FP)
    sequenced = wal.append(entry(txid="announce-1"))
    assert wal.seen_txid("announce-1") == sequenced.seq
    assert wal.seen_txid("announce-2") is None
    wal.close()

    reopened = WriteAheadLog.open(path, FP)
    assert reopened.seen_txid("announce-1") == sequenced.seq
    with pytest.raises(ValueError, match="already durable"):
        reopened.append(entry(txid="announce-1"))
    reopened.close()


def test_wire_form_round_trips(tmp_path):
    original = UpdateEntry(
        kind="weaken",
        relation="F",
        values=("p2", "A", "E"),
        condition="$up == 0",
        txid="t9",
        seq=7,
    )
    assert UpdateEntry.from_obj(original.to_obj()) == original
