"""Guard-variable withdrawal: the paper's encoding of deletion.

A removable fact's condition is conjoined with a fresh boolean guard
(``__g<seq> == 1``); withdrawal assigns the guard 0 through the same
WAL'd apply path as any insert.  The acceptance bar: after a withdraw,
answers are exactly what a from-scratch evaluation *without* the
withdrawn fact produces — and that equivalence survives restarts.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import ServeRequestError, validate_update, validate_withdraw
from repro.serve.wal import UpdateEntry

from .conftest import PROGRAM_TEXT


def removable(relation, values, condition=None, txid=None):
    return UpdateEntry(
        kind="insert",
        relation=relation,
        values=tuple(values),
        condition=condition,
        txid=txid,
        guard="",
    )


def withdraw(guard, txid=None):
    return UpdateEntry(
        kind="withdraw", relation="", values=(), txid=txid, guard=guard
    )


def rows_only(state, relation="R", where=None):
    answer = state.query(relation, where=where)
    keep = ("relation", "schema", "status", "rows", "total")
    return json.dumps({k: answer[k] for k in keep}, sort_keys=True)


def test_removable_insert_returns_a_guard(make_state):
    state = make_state()
    result = state.submit(removable("F", ("p1", "C", "D")))
    assert result["ok"] and result["guard"] == "__g1"
    assert state.guards["__g1"] == {
        "relation": "F",
        "seq": 1,
        "withdrawn": False,
        "withdraw_seq": None,
    }


def test_guard_names_embed_the_sequence(make_state):
    state = make_state()
    state.submit(removable("F", ("p1", "C", "D")))
    state.submit(
        UpdateEntry(kind="insert", relation="F", values=("p1", "D", "E"))
    )
    third = state.submit(removable("F", ("p1", "E", "G")))
    assert third["guard"] == "__g3"


def test_withdraw_equals_never_inserted(make_state):
    state = make_state()
    result = state.submit(removable("F", ("p2", "E", "G")))
    assert state.query("R", where="$up == 1")["total"] > 0
    state.submit(withdraw(result["guard"]))
    baseline = make_state(wal_name="baseline.wal")  # never saw the fact
    for relation in ("R", "F"):
        assert rows_only(state, relation) == rows_only(baseline, relation)
    # and under a where filter exercising the solver path
    assert rows_only(state, "R", where="$up == 1") == rows_only(
        baseline, "R", where="$up == 1"
    )


def test_withdraw_only_drops_the_guarded_fact(make_state):
    state = make_state()
    keep = state.submit(removable("F", ("p1", "C", "D")))
    drop = state.submit(removable("F", ("p1", "D", "E")))
    state.submit(withdraw(drop["guard"]))
    twin = make_state(wal_name="twin.wal")
    twin.submit(removable("F", ("p1", "C", "D")))
    assert rows_only(state) == rows_only(twin)
    assert not state.guards[keep["guard"]]["withdrawn"]


def test_withdraw_survives_restart_byte_identical(make_state):
    state = make_state()
    result = state.submit(removable("F", ("p2", "E", "G")))
    state.submit(withdraw(result["guard"]))
    before = rows_only(state)
    state.close()
    recovered = make_state()
    assert rows_only(recovered) == before
    assert recovered.guards[result["guard"]]["withdrawn"] is True


def test_withdraw_is_idempotent(make_state):
    state = make_state()
    result = state.submit(removable("F", ("p1", "C", "D")))
    first = state.submit(withdraw(result["guard"]))
    assert first["withdrawn"] and "duplicate" not in first
    second = state.submit(withdraw(result["guard"]))
    assert second["duplicate"] and second["seq"] == first["seq"]
    # idempotent at the WAL level too: only one withdraw entry durable
    kinds = [e.kind for e in state.wal.entries()]
    assert kinds.count("withdraw") == 1


def test_unknown_guard_is_rejected_before_the_wal(make_state):
    state = make_state()
    durable_before = len(state.wal)
    with pytest.raises(ServeRequestError) as exc:
        state.submit(withdraw("__g99"))
    assert exc.value.code == "UNKNOWN_GUARD" and exc.value.errno == 2
    assert len(state.wal) == durable_before
    assert state.counters["updates_rejected"] == 1


def test_withdrawn_fact_invisible_to_unconditional_query(make_state):
    """The guard substitution constant-folds: no residual guard atoms."""
    state = make_state()
    result = state.submit(removable("F", ("p1", "C", "D")))
    state.submit(withdraw(result["guard"]))
    answer = state.query("F")
    assert all(
        result["guard"] not in json.dumps(row) for row in answer["rows"]
    )
    values = [[v["const"] for v in row["values"]] for row in answer["rows"]]
    assert ["p1", "C", "D"] not in values


def test_surviving_removable_fact_keeps_its_guard_atom(make_state):
    """Until withdrawn, the guard rides the condition (visible partiality)."""
    state = make_state()
    result = state.submit(removable("F", ("p1", "C", "D")))
    answer = state.query("F")
    assert any(result["guard"] in json.dumps(row) for row in answer["rows"])


def test_removable_with_condition_conjoins_guard(make_state):
    state = make_state()
    result = state.submit(removable("F", ("p2", "E", "G"), condition="$up == 1"))
    state.submit(withdraw(result["guard"]))
    baseline = make_state(wal_name="baseline.wal")
    assert rows_only(state) == rows_only(baseline)


def test_wire_validation_round_trip():
    entry = validate_update(
        {
            "op": "update",
            "relation": "F",
            "values": ["p1", "A", "B"],
            "removable": True,
        }
    )
    assert entry.guard == ""  # wants a guard; name minted at sequencing
    entry = validate_withdraw({"op": "withdraw", "guard": "__g7", "txid": "t"})
    assert entry.kind == "withdraw" and entry.guard == "__g7"
    with pytest.raises(ServeRequestError, match="guard"):
        validate_withdraw({"op": "withdraw"})
    with pytest.raises(ServeRequestError, match="removable"):
        validate_update(
            {
                "op": "update",
                "relation": "F",
                "values": ["p1", "A", "B"],
                "condition": "$up == 1",
                "weaken": True,
                "removable": True,
            }
        )


def test_withdraw_txid_dedup(make_state):
    state = make_state()
    result = state.submit(removable("F", ("p1", "C", "D")))
    first = state.submit(withdraw(result["guard"], txid="w1"))
    retry = state.submit(withdraw(result["guard"], txid="w1"))
    assert retry["duplicate"] and retry["seq"] == first["seq"]
