"""Protocol version/feature negotiation against old-style peers.

A v1 daemon (PR 6) speaks update/query/health/shutdown only, and its
health response carries no ``features``.  A v2 client must turn every
v2-only request against such a peer into a *typed*
:class:`ServeRequestError` (code ``UNSUPPORTED``, errno 2) — locally,
before any bytes the peer would mishandle are sent; never a hang,
never a raw traceback.
"""

from __future__ import annotations

import json
import socketserver
import threading

import pytest

from repro.serve.client import ServeClient
from repro.serve.protocol import FEATURES, PROTOCOL_VERSION, ServeRequestError, encode


class _OldStyleHandler(socketserver.StreamRequestHandler):
    """What a PR-6 daemon looks like on the wire: v1 ops, no features."""

    def handle(self) -> None:
        while True:
            line = self.rfile.readline(1 << 20)
            if not line or not line.strip():
                return
            try:
                obj = json.loads(line)
            except ValueError:
                obj = {}
            op = obj.get("op")
            if op == "health":
                response = {"ok": True, "epoch": 1, "seq": 0, "relations": {}}
            elif op in ("update", "query", "shutdown"):
                response = {"ok": True, "status": "OK", "rows": []}
            else:
                # v1 decode_request: unknown op -> MALFORMED
                response = {
                    "ok": False,
                    "code": "MALFORMED",
                    "errno": 2,
                    "error": f"unknown op {op!r}",
                }
            self.wfile.write(encode(response))
            self.wfile.flush()


@pytest.fixture
def old_peer():
    server = socketserver.ThreadingTCPServer(("127.0.0.1", 0), _OldStyleHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield str(host), int(port)
    server.shutdown()
    server.server_close()


def test_v2_server_advertises_protocol_and_features(server_factory):
    _server, client = server_factory()
    health = client.health()
    assert health["protocol"] == PROTOCOL_VERSION == 2
    assert set(FEATURES) <= set(health["features"])
    assert health["role"] == "primary"


@pytest.mark.parametrize(
    "invoke",
    [
        lambda c: c.withdraw("__g1"),
        lambda c: c.tail(after_seq=0),
        lambda c: c.snapshot_fetch(),
        lambda c: c.admin("status"),
        lambda c: c.update("F", ["p1", "A", "B"], removable=True),
    ],
    ids=["withdraw", "tail", "snapshot", "admin", "removable-update"],
)
def test_v2_ops_against_old_peer_raise_typed_error(old_peer, invoke):
    host, port = old_peer
    with ServeClient(host, port, timeout=5.0) as client:
        with pytest.raises(ServeRequestError) as exc:
            invoke(client)
    assert exc.value.code == "UNSUPPORTED" and exc.value.errno == 2
    assert "upgrade" in str(exc.value)


def test_v1_ops_still_work_against_old_peer(old_peer):
    host, port = old_peer
    with ServeClient(host, port, timeout=5.0) as client:
        assert client.health()["ok"]
        assert client.query("R")["ok"]
        assert client.update("F", ["p1", "A", "B"])["ok"]


def test_feature_probe_is_cached(old_peer):
    host, port = old_peer
    with ServeClient(host, port, timeout=5.0) as client:
        assert client.features() == ()
        with pytest.raises(ServeRequestError):
            client.withdraw("__g1")
        with pytest.raises(ServeRequestError):
            client.tail()
        assert client.features() == ()  # still the one cached probe


def test_cli_withdraw_against_old_peer_exits_with_errno(old_peer, capsys):
    from repro.serve.client import main

    host, port = old_peer
    code = main(["--host", host, "--port", str(port), "withdraw", "__g1"])
    assert code == 2
    response = json.loads(capsys.readouterr().out.strip())
    assert response["code"] == "UNSUPPORTED" and not response["ok"]


def test_old_server_answers_unknown_ops_with_malformed(old_peer):
    """The wire-level backstop even without client gating: typed error."""
    host, port = old_peer
    with ServeClient(host, port, timeout=5.0) as client:
        response = client.request({"op": "tail", "after_seq": 0})
    assert response == {
        "ok": False,
        "code": "MALFORMED",
        "errno": 2,
        "error": "unknown op 'tail'",
    }
