"""Wire protocol: shape checks, error taxonomy, validation-before-log."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    ServeRequestError,
    decode_request,
    encode,
    error_response,
    validate_update,
)


def test_decode_rejects_non_json():
    with pytest.raises(ServeRequestError) as exc:
        decode_request(b"not json at all")
    assert exc.value.code == "MALFORMED"
    assert exc.value.errno == 2


def test_decode_rejects_non_object_and_unknown_op():
    with pytest.raises(ServeRequestError):
        decode_request(b"[1, 2]")
    with pytest.raises(ServeRequestError, match="unknown op"):
        decode_request(b'{"op": "explode"}')


def test_decode_rejects_oversized_line():
    line = b'{"op": "health", "pad": "' + b"x" * (1 << 20) + b'"}'
    with pytest.raises(ServeRequestError, match="line size"):
        decode_request(line)


def test_encode_is_deterministic():
    assert encode({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'


@pytest.mark.parametrize(
    "obj, fragment",
    [
        ({}, "relation"),
        ({"relation": "F"}, "values"),
        ({"relation": "F", "values": []}, "values"),
        ({"relation": "F", "values": [42]}, "bad value"),
        ({"relation": "F", "values": ["((("]}, "bad value"),
        ({"relation": "F", "values": ["A"], "condition": "$x =="}, "bad condition"),
        ({"relation": "F", "values": ["A"], "txid": 7}, "txid"),
        ({"relation": "F", "values": ["A"], "weaken": "yes"}, "weaken"),
        ({"relation": "F", "values": ["A"], "weaken": True}, "condition"),
    ],
)
def test_validate_update_rejects_malformed(obj, fragment):
    with pytest.raises(ServeRequestError, match=fragment) as exc:
        validate_update(obj)
    assert exc.value.errno == 2


def test_validate_update_builds_wire_entry():
    entry = validate_update(
        {
            "relation": "F",
            "values": ["p1", "A", "B"],
            "condition": "$up == 1",
            "txid": "k",
            "weaken": True,
        }
    )
    assert entry.kind == "weaken"
    assert entry.values == ("p1", "A", "B")
    assert entry.condition == "$up == 1"
    assert entry.seq == 0  # the WAL assigns sequence numbers, not the wire


def test_error_response_carries_exit_code_style_errno():
    shed = error_response("OVERLOADED", "queue full", retry_after=0.25)
    assert shed == {
        "ok": False,
        "code": "OVERLOADED",
        "errno": 6,
        "error": "queue full",
        "retry_after": 0.25,
    }
    assert error_response("BUDGET", "out of steps")["errno"] == 3
    assert json.loads(encode(shed).decode())["errno"] == 6
