"""Shared serve-mode fixtures: a tiny reachability workload + daemon.

The workload: per-flow reachability over a forwarding EDB ``F`` whose
seed rows include one conditional edge guarded by the boolean
c-variable ``$up`` — enough to exercise condition-carrying updates,
where-filtered queries, and solver-budget degradation without making
the suite slow.
"""

from __future__ import annotations

import pytest

from repro.ctable.io import dump_database
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.ctable.condition import eq
from repro.serve.state import ServeBudgets, ServeState
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded

#: The maintained program: q4/q5 per-flow reachability.
PROGRAM_TEXT = (
    "R(f, x, y) :- F(f, x, y).\n"
    "R(f, x, z) :- R(f, x, y), F(f, y, z).\n"
)

#: A program with negation downstream of F (non-monotone growth).
NEGATION_PROGRAM_TEXT = (
    "Blocked(f, x, y) :- F(f, x, y), not Acl(x, y).\n"
)


def seed_database_text() -> str:
    db = Database()
    f = db.create_table("F", ["flow", "src", "dst"])
    f.add(["p1", "A", "B"])
    f.add(["p1", "B", "C"])
    f.add(["p2", "A", "E"], eq(CVariable("up"), 1))
    domains = DomainMap(
        {CVariable("up"): BOOL_DOMAIN}, default=Unbounded("any")
    )
    return dump_database(db, domains)


@pytest.fixture
def db_text() -> str:
    return seed_database_text()


@pytest.fixture
def make_state(tmp_path, db_text):
    """Factory for ServeStates sharing one WAL path (restart simulation)."""
    states = []

    def build(
        wal_name: str = "serve.wal",
        program_text: str = PROGRAM_TEXT,
        database_text: str = None,
        budgets: ServeBudgets = None,
        **state_kwargs,
    ) -> ServeState:
        state = ServeState(
            program_text,
            database_text if database_text is not None else db_text,
            str(tmp_path / wal_name),
            budgets=budgets,
            **state_kwargs,
        )
        states.append(state)
        return state

    yield build
    for state in states:
        state.close()


@pytest.fixture
def server_factory(make_state):
    """In-process daemon + connected client, torn down after the test."""
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.server import FaureServer

    servers = []

    def build(state=None, **server_kwargs):
        if state is None:
            state = make_state()
        server = FaureServer(state, **server_kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.address
        client = ServeClient(host, port, timeout=30.0).connect()
        servers.append((server, thread, client))
        return server, client

    yield build
    for server, thread, client in servers:
        try:
            client.close()
        except OSError:
            pass
        server.stop()
        thread.join(timeout=30)
