"""Epoch manager and snapshot immutability."""

from __future__ import annotations

import pytest

from repro.ctable.table import Database
from repro.serve.epochs import EpochManager, Snapshot


def _db():
    db = Database()
    table = db.create_table("F", ["src", "dst"])
    table.add(["A", "B"])
    return db


def test_snapshot_is_isolated_from_later_mutation():
    db = _db()
    snapshot = Snapshot.capture(db, epoch=1, seq=0)
    db.table("F").add(["B", "C"])  # the next epoch applying
    assert len(snapshot.relation("F")) == 1  # the reader's view is frozen
    assert len(db.table("F")) == 2
    fresh = Snapshot.capture(db, epoch=2, seq=1)
    assert len(fresh.relation("F")) == 2


def test_snapshot_unknown_relation():
    snapshot = Snapshot.capture(_db(), epoch=1, seq=0)
    with pytest.raises(KeyError, match="no relation 'R'"):
        snapshot.relation("R")
    assert snapshot.names() == ("F",)


def test_manager_requires_monotone_epochs():
    manager = EpochManager()
    with pytest.raises(RuntimeError, match="no snapshot"):
        manager.current()
    manager.publish(Snapshot.capture(_db(), epoch=1, seq=0))
    assert manager.current().epoch == 1
    with pytest.raises(ValueError, match="must advance"):
        manager.publish(Snapshot.capture(_db(), epoch=1, seq=1))
    manager.publish(Snapshot.capture(_db(), epoch=5, seq=1))
    assert manager.current().epoch == 5
