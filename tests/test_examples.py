"""Every bundled example must run clean (examples are executable docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "rib_reachability.py":
        args.append("20")  # keep the default-size run out of unit tests
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=240
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_directory_is_covered():
    """The CLI's examples listing mentions every script on disk."""
    from repro.cli import main

    import io
    import contextlib

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        main(["examples"])
    listed = buffer.getvalue()
    for script in EXAMPLES:
        assert script.name in listed, f"{script.name} missing from CLI listing"
