"""Goal-directed evaluation by specialization."""

import pytest

from repro.ctable.condition import eq
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.engine.stats import EvalStats
from repro.faurelog.ast import Atom, ProgramError
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.faurelog.specialize import solve_goal, specialize
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded
from repro.solver.interface import ConditionSolver
from repro.ctable.terms import Variable

REACH = parse_program(
    """
    R(f, a, b) :- F(f, a, b).
    R(f, a, b) :- F(f, a, c), R(f, c, b).
    """
)

X = CVariable("x")


@pytest.fixture
def db():
    database = Database()
    f = database.create_table("F", ["flow", "n1", "n2"])
    f.add(["p0", 1, 2])
    f.add(["p0", 2, 3], eq(X, 1))
    f.add(["p1", 1, 2])
    f.add(["p1", 2, 4])
    return database


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN}, default=Unbounded()))


class TestSpecialize:
    def test_constant_pushed_into_edb_atoms(self):
        specialized, goal = specialize(REACH, Atom("R", ["p0", Variable("a"), Variable("b")]))
        texts = [str(r) for r in specialized]
        assert all("p0" in t for t in texts)
        assert goal.predicate != "R"

    def test_recursive_call_specialized_once(self):
        specialized, _ = specialize(REACH, Atom("R", ["p0", Variable("a"), Variable("b")]))
        # two rules, not an infinite expansion
        assert len(specialized) == 2

    def test_unbound_goal_is_identity_shape(self):
        specialized, goal = specialize(
            REACH, Atom("R", [Variable("f"), Variable("a"), Variable("b")])
        )
        assert goal.predicate == "R"
        assert len(specialized) == 2

    def test_goal_on_edb_rejected(self):
        with pytest.raises(ProgramError):
            specialize(REACH, Atom("F", ["p0", Variable("a"), Variable("b")]))

    def test_head_constant_conflict_drops_rule(self):
        program = parse_program(
            """
            H(Mkt, $p) :- A($p).
            H(GS, $p) :- B($p).
            """
        )
        specialized, _ = specialize(program, Atom("H", ["Mkt", Variable("p")]))
        assert len(specialized) == 1
        assert "A" in {l.predicate for r in specialized for l in r.literals()}


class TestSolveGoal:
    def test_matches_bottom_up(self, db, solver):
        full = evaluate(REACH, db, solver=solver).table("R")
        expected = {
            (t.values, t.condition)
            for t in full
            if t.values[0] == Constant("p0")
        }
        goal_table = solve_goal(
            REACH, db, Atom("R", ["p0", Variable("a"), Variable("b")]), solver=solver
        )
        got = {(t.values, t.condition) for t in goal_table}
        assert {v for v, _ in got} == {v for v, _ in expected}

    def test_point_goal_selected(self, db, solver):
        goal_table = solve_goal(REACH, db, Atom("R", ["p0", 1, 3]), solver=solver)
        assert len(goal_table) == 1
        (tup,) = goal_table.tuples()
        assert solver.equivalent(tup.condition, eq(X, 1))

    def test_unreachable_goal_empty(self, db, solver):
        goal_table = solve_goal(REACH, db, Atom("R", ["p0", 3, 1]), solver=solver)
        assert len(goal_table) == 0

    def test_flows_isolated(self, db, solver):
        goal_table = solve_goal(
            REACH, db, Atom("R", ["p1", Variable("a"), Variable("b")]), solver=solver
        )
        assert all(t.values[0] == Constant("p1") for t in goal_table)
        pairs = {(t.values[1].value, t.values[2].value) for t in goal_table}
        assert pairs == {(1, 2), (2, 4), (1, 4)}

    def test_fewer_tuples_than_bottom_up(self, db, solver):
        stats_goal = EvalStats()
        solve_goal(
            REACH,
            db,
            Atom("R", ["p0", Variable("a"), Variable("b")]),
            solver=solver,
            stats=stats_goal,
        )
        stats_full = EvalStats()
        evaluate(REACH, db, solver=solver, stats=stats_full)
        assert stats_goal.tuples_generated < stats_full.tuples_generated

    def test_negation_dependency_fully_computed(self, solver):
        database = Database()
        node = database.create_table("Node", ["n"])
        node.add([1])
        node.add([2])
        broken = database.create_table("Broken", ["n"])
        broken.add([2])
        program = parse_program(
            """
            Bad(n) :- Broken(n).
            Good(n) :- Node(n), not Bad(n).
            """
        )
        table = solve_goal(program, database, Atom("Good", [1]), solver=solver)
        assert len(table) == 1
        empty = solve_goal(program, database, Atom("Good", [2]), solver=solver)
        assert len(empty) == 0
