"""The fauré-log textual syntax."""

import pytest

from repro.ctable.condition import Comparison, LinearAtom, TRUE, ne
from repro.ctable.terms import Constant, CVariable, Variable
from repro.faurelog.ast import Literal
from repro.faurelog.parser import ParseError, parse_program


class TestBasicRules:
    def test_simple_rule(self):
        p = parse_program("R(n1, n2) :- F(n1, n2).")
        (rule,) = p.rules
        assert rule.head.predicate == "R"
        assert rule.head.terms == (Variable("n1"), Variable("n2"))

    def test_fact(self):
        p = parse_program("Lb('R&D', GS).")
        (rule,) = p.rules
        assert rule.is_fact
        assert rule.head.terms == (Constant("R&D"), Constant("GS"))

    def test_label(self):
        p = parse_program("q5: R(a, b) :- F(a, b).")
        assert p.rules[0].label == "q5"

    def test_multiple_rules_and_comments(self):
        p = parse_program(
            """
            % all-pairs reachability
            q4: R(n1, n2) :- F(n1, n2).
            q5: R(n1, n2) :- F(n1, n3), R(n3, n2).  % recursion
            """
        )
        assert len(p) == 2
        assert p.rules[1].label == "q5"

    def test_zero_ary_head(self):
        p = parse_program("panic :- R(Mkt, CS, $p).")
        assert p.rules[0].head.arity == 0


class TestBodyItems:
    def test_negation_spellings(self):
        for spelling in ["not Fw(Mkt, CS)", "¬Fw(Mkt, CS)", "!Fw(Mkt, CS)"]:
            p = parse_program(f"panic :- R(Mkt, CS, $p), {spelling}.")
            negs = list(p.rules[0].negative_literals())
            assert len(negs) == 1
            assert negs[0].predicate == "Fw"

    def test_comparisons_in_body(self):
        p = parse_program("V($x) :- R($x), $x != Mkt, $x != 'R&D'.")
        cmps = list(p.rules[0].comparisons())
        assert len(cmps) == 2
        assert all(isinstance(c, Comparison) for c in cmps)

    def test_linear_atom_in_body(self):
        p = parse_program("T(n) :- R(n), $x + $y + $z = 1.")
        (cmp_,) = p.rules[0].comparisons()
        assert isinstance(cmp_, LinearAtom)

    def test_constants_kinds(self):
        p = parse_program("H(x) :- B(x, 7000, '1.2.3.4', [A B C], Mkt).")
        terms = list(p.rules[0].literals())[0].atom.terms
        assert terms[1] == Constant(7000)
        assert terms[2] == Constant("1.2.3.4")
        assert terms[3] == Constant(("A", "B", "C"))
        assert terms[4] == Constant("Mkt")

    def test_address_without_quotes(self):
        p = parse_program("H(x) :- B(x, 1.2.3.4).")
        terms = list(p.rules[0].literals())[0].atom.terms
        assert terms[1] == Constant("1.2.3.4")


class TestAnnotations:
    def test_condition_variable_annotation(self):
        p = parse_program("R(f, n1, n2)[phi] :- F(f, n1, n2)[phi].")
        lit = list(p.rules[0].literals())[0]
        assert lit.condition_var == "phi"
        assert lit.annotation is TRUE

    def test_filter_annotation(self):
        p = parse_program("Lb2($x, $y) :- Lb1($x, $y)[$x != Mkt].")
        lit = list(p.rules[0].literals())[0]
        assert lit.annotation == ne(CVariable("x"), "Mkt")

    def test_mixed_annotation(self):
        p = parse_program("T(n)[phi AND $x = 1] :- R(n)[phi, $x = 1].")
        lit = list(p.rules[0].literals())[0]
        assert lit.condition_var == "phi"
        assert lit.annotation is not TRUE
        assert p.rules[0].head_annotation is not None


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("R(a) :- F(a)")

    def test_unsafe_rule_surfaces(self):
        from repro.faurelog.ast import ProgramError

        with pytest.raises(ProgramError):
            parse_program("H(v) :- B(w).")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_program("== what.")


class TestPaperListings:
    def test_listing2_parses(self):
        text = """
        q4: R(f, n1, n2) :- F(f, n1, n2).
        q5: R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).
        q6: T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.
        q7: T2(f, 2, 5) :- T1(f, 2, 5), $y = 0.
        q8: T3(f, 1, n2) :- R(f, 1, n2), $y + $z < 2.
        """
        p = parse_program(text)
        assert len(p) == 5
        assert p.idb_predicates() == frozenset({"R", "T1", "T2", "T3"})

    def test_listing3_parses(self):
        text = """
        q9: panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).
        q10: panic :- R('R&D', $y, 7000), not Lb('R&D', $y).
        q11: panic :- Vt(x, y, p).
        q13: Vt($x, CS, $p) :- R($x, CS, $p), $x != Mkt, $x != 'R&D'.
        q14: Vt($x, CS, $p) :- R($x, CS, $p), not Lb($x, CS).
        q15: Vt($x, CS, $p) :- R($x, CS, $p), $p != 7000.
        """
        p = parse_program(text)
        assert len(p) == 6

    def test_listing4_parses(self):
        text = """
        q19: Lb1('R&D', GS).
        q20: Lb1($x, $y) :- Lb($x, $y).
        q21: Lb2($x, $y) :- Lb1($x, $y)[$x != Mkt].
        q22: Lb2($x, $y) :- Lb1($x, $y)[$y != CS].
        q24: panic :- R('R&D', $y, 7000), not Lb2('R&D', $y).
        """
        p = parse_program(text)
        assert len(p) == 5
