"""The c-valuation: unification, derivations, negation conditions."""

import pytest

from repro.ctable.condition import Comparison, FALSE, TRUE, conjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable, Variable
from repro.engine.storage import IndexedTable, Storage
from repro.faurelog.ast import Atom, Literal, ProgramError, Rule
from repro.faurelog.parser import parse_program
from repro.faurelog.valuation import (
    build_head,
    derive,
    negation_condition,
    unify_value,
)

X, Y = CVariable("x"), CVariable("y")
V = Variable("v")


class TestUnifyValue:
    def test_identical(self):
        assert unify_value(Constant(1), Constant(1)) is TRUE
        assert unify_value(X, X) is TRUE

    def test_distinct_constants(self):
        assert unify_value(Constant(1), Constant(2)) is None

    def test_constant_vs_cvariable(self):
        cond = unify_value(Constant(1), X)
        assert cond == eq(X, 1)

    def test_two_cvariables(self):
        cond = unify_value(X, Y)
        assert cond == eq(X, Y)


def derivations(rule_text, database):
    program = parse_program(rule_text)
    (rule,) = program.rules
    return list(derive(rule, Storage(database))), rule


class TestDerive:
    @pytest.fixture
    def db(self):
        database = Database()
        f = database.create_table("F", ["a", "b"])
        f.add([1, 2], eq(X, 1))
        f.add([1, 3], eq(X, 0))
        f.add([Y, 4])
        return database

    def test_plain_match(self, db):
        ds, rule = derivations("H(a, b) :- F(a, b).", db)
        assert len(ds) == 3
        for bindings, cond in ds:
            assert Variable("a") in bindings

    def test_constant_pattern_filters(self, db):
        ds, _ = derivations("H(b) :- F(1, b).", db)
        # rows (1,2), (1,3) match outright; (ȳ,4) matches under ȳ=1
        assert len(ds) == 3
        symbolic = [cond for _, cond in ds if eq(Y, 1) in list(cond.atoms())]
        assert symbolic

    def test_conditions_conjoin(self, db):
        ds, rule = derivations("H(b) :- F(1, b).", db)
        for bindings, cond in ds:
            if bindings[Variable("b")] == Constant(2):
                assert cond == eq(X, 1)

    def test_join_shares_bindings(self, db):
        db.create_table("G", ["b", "c"]).add([2, "k"])
        ds, _ = derivations("H(a, c) :- F(a, b), G(b, c).", db)
        # F rows with b=2: (1,2) directly; (ȳ,4) needs 4=2 → dead
        assert len(ds) == 1
        bindings, cond = ds[0]
        assert bindings[Variable("c")] == Constant("k")

    def test_comparison_prunes_early(self, db):
        ds, _ = derivations("H(a, b) :- F(a, b), b != 4.", db)
        values = {bindings[Variable("b")].value for bindings, _ in ds}
        assert values == {2, 3}

    def test_cvariable_binds_in_atom_position(self, db):
        ds, _ = derivations("H($w) :- F($w, 4).", db)
        (d,) = ds
        bindings, cond = d
        assert bindings[CVariable("w")] == Y

    def test_comparison_on_bound_cvariable_substituted(self, db):
        ds, _ = derivations("H($w, b) :- F($w, b), $w != 1.", db)
        # row (1,2): $w=1 → 1!=1 false → dropped; row (1,3) same;
        # row (ȳ,4): condition ȳ != 1
        assert len(ds) == 1
        _, cond = ds[0]
        assert ne(Y, 1) in list(cond.atoms())

    def test_global_cvariable_passes_through(self, db):
        ds, _ = derivations("H(a, b) :- F(a, b), $g = 1.", db)
        for _, cond in ds:
            assert eq(CVariable("g"), 1) in list(cond.atoms())

    def test_annotation_filters(self, db):
        ds, _ = derivations("H(a, b) :- F(a, b)[a != 1].", db)
        # rows with a=1 dead; (ȳ,4) gets condition ȳ != 1
        assert len(ds) == 1

    def test_repeated_variable_in_atom(self, db):
        db.create_table("E", ["p", "q"]).add([5, 5])
        db.table("E").add([6, 7])
        ds, _ = derivations("H(p) :- E(p, p).", db)
        assert len(ds) == 1

    def test_head_construction(self, db):
        ds, rule = derivations("H(b, a) :- F(a, b).", db)
        heads = {build_head(rule, b) for b, _ in ds}
        assert (Constant(2), Constant(1)) in heads
        assert (Constant(4), Y) in heads


class TestNegation:
    def test_negation_over_empty_is_true(self):
        db = Database()
        db.create_table("Fw", ["a", "b"])
        lit = Literal(Atom("Fw", ["Mkt", "CS"]), negated=True)
        cond = negation_condition(lit, IndexedTable(db.table("Fw")), {})
        assert cond is TRUE

    def test_negation_over_missing_table_is_true(self):
        lit = Literal(Atom("Fw", ["Mkt", "CS"]), negated=True)
        assert negation_condition(lit, None, {}) is TRUE

    def test_negation_certain_match_is_false(self):
        db = Database()
        db.create_table("Fw", ["a", "b"]).add(["Mkt", "CS"])
        lit = Literal(Atom("Fw", ["Mkt", "CS"]), negated=True)
        cond = negation_condition(lit, IndexedTable(db.table("Fw")), {})
        assert cond is FALSE

    def test_negation_conditional_match(self):
        db = Database()
        db.create_table("Fw", ["a", "b"]).add([X, "CS"], ne(X, "Mkt"))
        lit = Literal(Atom("Fw", ["Mkt", "CS"]), negated=True)
        cond = negation_condition(lit, IndexedTable(db.table("Fw")), {})
        # ¬(x̄=Mkt ∧ x̄≠Mkt) = TRUE after folding... the matcher keeps it
        # symbolic: condition must at least be satisfiable-as-true
        assert cond is not FALSE

    def test_negation_unbound_variable_rejected(self):
        db = Database()
        db.create_table("Fw", ["a"])
        lit = Literal(Atom("Fw", [V]), negated=True)
        with pytest.raises(ProgramError):
            negation_condition(lit, IndexedTable(db.table("Fw")), {})

    def test_negation_through_derive(self):
        db = Database()
        r = db.create_table("R", ["a"])
        r.add(["Mkt"])
        r.add(["R&D"])
        db.create_table("Fw", ["a"]).add(["Mkt"])
        ds = list(
            derive(parse_program("panic :- R(a), not Fw(a).").rules[0], Storage(db))
        )
        live = [(b, c) for b, c in ds if c is not FALSE]
        assert len(live) == 1
        assert live[0][0][Variable("a")] == Constant("R&D")
