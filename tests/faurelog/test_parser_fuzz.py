"""Parser robustness: arbitrary input never crashes with a foreign error.

The contract: :func:`parse_program` either returns a Program or raises
``ParseError`` / ``ProgramError`` — never an ``IndexError`` or an
infinite loop.  Random garbage, truncations of valid programs, and
near-miss mutations all go through.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.faurelog.ast import Program, ProgramError
from repro.faurelog.parser import ParseError, parse_program

VALID = """
q4: R(f, n1, n2) :- F(f, n1, n2).
q5: R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).
q9: panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).
q21: Lb2($x, $y) :- Lb1($x, $y)[$x != Mkt].
q6: T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.
"""


def try_parse(text: str):
    try:
        out = parse_program(text)
        assert isinstance(out, Program)
    except (ParseError, ProgramError):
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=120))
def test_arbitrary_text(text):
    try_parse(text)


@settings(max_examples=150, deadline=None)
@given(
    st.text(
        alphabet=":-(),.$[]%!=<>+ \nabcXYZ0139'\"",
        max_size=120,
    )
)
def test_syntax_shaped_garbage(text):
    try_parse(text)


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=len(VALID)))
def test_truncations_of_valid_program(cut):
    try_parse(VALID[:cut])


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=0, max_value=len(VALID) - 1),
    st.sampled_from(list(".,()[]$:-=!")),
)
def test_single_character_mutations(position, replacement):
    mutated = VALID[:position] + replacement + VALID[position + 1:]
    try_parse(mutated)
