"""Certain/possible answer classification."""

import pytest

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable
from repro.ctable.terms import Constant, CVariable
from repro.faurelog.answers import AnswerSet, classify_answers
from repro.solver.domains import BOOL_DOMAIN, DomainMap
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN}))


def table_with(*rows):
    t = CTable("T", ["a"])
    for value, cond in rows:
        t.add([value], cond)
    return t


class TestClassify:
    def test_unconditional_is_certain(self, solver):
        answers = classify_answers(table_with((1, TRUE)), solver)
        assert answers.certain == [(Constant(1),)]
        assert not answers.possible

    def test_valid_condition_is_certain(self, solver):
        cond = disjoin([eq(X, 0), eq(X, 1)])
        answers = classify_answers(table_with((1, cond)), solver)
        assert answers.certain == [(Constant(1),)]

    def test_satisfiable_condition_is_possible(self, solver):
        answers = classify_answers(table_with((1, eq(X, 1))), solver)
        assert not answers.certain
        assert len(answers.possible) == 1
        row, cond = answers.possible[0]
        assert solver.model_count(cond) == 1

    def test_split_rows_aggregate_to_certain(self, solver):
        # the same data part derived under x=0 and under x=1: certain
        answers = classify_answers(
            table_with((1, eq(X, 0)), (1, eq(X, 1))), solver
        )
        assert answers.certain == [(Constant(1),)]

    def test_spurious_rows_dropped(self, solver):
        answers = classify_answers(
            table_with((1, conjoin([eq(X, 0), eq(X, 1)]))), solver
        )
        assert not answers.certain and not answers.possible

    def test_mixed(self, solver):
        answers = classify_answers(
            table_with((1, TRUE), (2, eq(Y, 1)), (3, eq(X, 0))), solver
        )
        assert answers.certain == [(Constant(1),)]
        assert {row[0].value for row, _ in answers.possible} == {2, 3}
        assert answers.summary() == "1 certain, 2 possible"
        assert len(answers.all_rows) == 3

    def test_reachability_use_case(self, solver):
        """Reachable in 3 of 4 worlds: possible, quantified."""
        cond = disjoin([eq(X, 1), eq(Y, 1)])
        answers = classify_answers(table_with(("dst", cond)), solver)
        (_, got) = answers.possible[0]
        assert solver.model_count(got) == 3
