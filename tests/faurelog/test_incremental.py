"""Incremental maintenance under EDB growth."""

import pytest

from repro.ctable.condition import TRUE, disjoin, eq
from repro.ctable.table import Database
from repro.ctable.terms import Constant, CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.evaluation import evaluate
from repro.faurelog.incremental import IncrementalEvaluator
from repro.faurelog.parser import parse_program
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")

TC = parse_program(
    """
    T(a, b) :- E(a, b).
    T(a, b) :- E(a, c), T(c, b).
    """
)


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN}, default=Unbounded()))


def fresh_db(*edges):
    db = Database()
    e = db.create_table("E", ["a", "b"])
    for edge in edges:
        if len(edge) == 3:
            e.add([edge[0], edge[1]], edge[2])
        else:
            e.add(list(edge))
    return db


def data_parts(table):
    return {t.data_key() for t in table}


class TestInsert:
    def test_matches_full_reevaluation(self, solver):
        db = fresh_db((1, 2), (2, 3))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        inc.insert("E", [3, 4])
        inc.insert("E", [0, 1])
        fresh = evaluate(TC, fresh_db((1, 2), (2, 3), (3, 4), (0, 1)), solver=solver)
        assert data_parts(inc.table("T")) == data_parts(fresh.table("T"))

    def test_returns_new_derivation_count(self, solver):
        db = fresh_db((1, 2))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        # edge (2,3): derives (2,3) and (1,3)
        assert inc.insert("E", [2, 3]) == 2

    def test_duplicate_insert_noop(self, solver):
        db = fresh_db((1, 2))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        assert inc.insert("E", [1, 2]) == 0

    def test_conditional_insert_propagates_condition(self, solver):
        db = fresh_db((1, 2))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        inc.insert("E", [2, 3], eq(X, 1))
        rows = {
            t.data_key(): t.condition
            for t in inc.table("T")
            if t.values == (Constant(1), Constant(3))
        }
        (cond,) = rows.values()
        assert solver.equivalent(cond, eq(X, 1))

    def test_weaken_covers_more_worlds(self, solver):
        db = fresh_db((1, 2, eq(X, 1)))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        inc.weaken("E", [1, 2], eq(X, 0))
        conds = [
            t.condition
            for t in inc.table("T")
            if t.values == (Constant(1), Constant(2))
        ]
        assert solver.is_valid(disjoin(conds))

    def test_cycle_completion_terminates(self, solver):
        db = fresh_db((1, 2), (2, 3))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        inc.insert("E", [3, 1])  # closes the cycle
        fresh = evaluate(TC, fresh_db((1, 2), (2, 3), (3, 1)), solver=solver)
        assert data_parts(inc.table("T")) == data_parts(fresh.table("T"))
        assert len(data_parts(inc.table("T"))) == 9

    def test_caller_database_kept_in_sync(self, solver):
        db = fresh_db((1, 2))
        inc = IncrementalEvaluator(TC, db, solver=solver)
        inc.insert("E", [2, 3])
        assert len(db.table("E")) == 2


class TestGuards:
    def test_insert_into_idb_rejected(self, solver):
        inc = IncrementalEvaluator(TC, fresh_db((1, 2)), solver=solver)
        with pytest.raises(ProgramError):
            inc.insert("T", [9, 9])

    def test_negation_downstream_rejected(self, solver):
        program = parse_program(
            """
            Good(a) :- Node(a), not Bad(a).
            Bad(a) :- Broken(a).
            """
        )
        db = Database()
        db.create_table("Node", ["a"]).add([1])
        db.create_table("Broken", ["a"])
        inc = IncrementalEvaluator(program, db, solver=solver)
        with pytest.raises(ProgramError):
            inc.insert("Broken", [1])
        # growth that does NOT flow through negation is fine
        assert inc.insert("Node", [2]) >= 1

    def test_unrelated_relation_untouched(self, solver):
        db = fresh_db((1, 2))
        db.create_table("Other", ["k"])
        inc = IncrementalEvaluator(TC, db, solver=solver)
        assert inc.insert("Other", [5]) == 0
