"""Random program generation → format → parse is the identity."""

from hypothesis import given, settings, strategies as st

from repro.ctable.condition import Comparison, LinearAtom, TRUE
from repro.ctable.terms import Constant, CVariable, Variable
from repro.faurelog.ast import Atom, Literal, Program, Rule
from repro.faurelog.parser import parse_program
from repro.faurelog.printer import format_program

VARS = [Variable("x"), Variable("y"), Variable("z")]
CVARS = [CVariable("a"), CVariable("b")]
CONSTS = [Constant("Mkt"), Constant(7000), Constant("1.2.3.4"),
          Constant(("A", "B")), Constant("lower case")]


def terms():
    return st.one_of(
        st.sampled_from(VARS), st.sampled_from(CVARS), st.sampled_from(CONSTS)
    )


def body_atoms():
    return st.builds(
        Atom,
        st.sampled_from(["E", "F", "G"]),
        st.lists(terms(), min_size=1, max_size=3),
    )


def comparisons():
    cvar_cmp = st.builds(
        lambda a, op, b: Comparison(a, op, b).constant_fold(),
        st.sampled_from(CVARS),
        st.sampled_from(["=", "!=", "<", ">="]),
        st.sampled_from([Constant(1), Constant("Mkt"), CVARS[0]]),
    )
    linear = st.builds(
        lambda vs, k: LinearAtom(list(vs), "=", k),
        st.lists(st.sampled_from(CVARS), min_size=1, max_size=2, unique=True),
        st.integers(min_value=0, max_value=3),
    )
    return st.one_of(cvar_cmp, linear).filter(lambda c: c is not TRUE)


@st.composite
def rules(draw):
    positives = draw(st.lists(body_atoms(), min_size=1, max_size=3))
    body = [Literal(a) for a in positives]
    # negated literal over bound symbols only (safety)
    bound = {
        t for a in positives for t in a.terms if isinstance(t, (Variable, CVariable))
    }
    if draw(st.booleans()) and bound:
        neg_terms = draw(
            st.lists(
                st.sampled_from(sorted(bound, key=str) + CONSTS),
                min_size=1,
                max_size=2,
            )
        )
        body.append(Literal(Atom("N", neg_terms), negated=True))
    body.extend(draw(st.lists(comparisons(), max_size=2)))
    # head over bound variables / constants
    head_pool = sorted(
        (t for t in bound if isinstance(t, (Variable, CVariable))), key=str
    ) + CONSTS
    head_terms = draw(st.lists(st.sampled_from(head_pool), max_size=3))
    label = draw(st.sampled_from([None, "q1", "rule_a"]))
    return Rule(Atom("Out", head_terms), body, label=label)


@settings(max_examples=200, deadline=None)
@given(st.lists(rules(), min_size=1, max_size=4))
def test_program_roundtrip(rule_list):
    # Arity consistency: rename Out per arity to avoid clashes.
    renamed = []
    for rule in rule_list:
        head = Atom(f"Out{rule.head.arity}", rule.head.terms)
        body = []
        for item in rule.body:
            if isinstance(item, Literal):
                atom = Atom(
                    f"{item.atom.predicate}{item.atom.arity}", item.atom.terms
                )
                body.append(Literal(atom, negated=item.negated,
                                    condition_var=item.condition_var,
                                    annotation=item.annotation))
            else:
                body.append(item)
        renamed.append(Rule(head, body, label=rule.label))
    program = Program(renamed)
    text = format_program(program)
    assert parse_program(text) == program, text
