"""IncrementalEvaluator edge cases the serve daemon leans on.

The daemon replays its WAL through :meth:`IncrementalEvaluator.apply`,
so these invariants — weaken ≡ from-scratch on worlds, non-monotone
growth rejected *without* state change, duplicate application idempotent
— are exactly what makes crash recovery byte-identical and retry-safe.
"""

import pytest

from repro.ctable.condition import TRUE, disjoin, eq
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.evaluation import evaluate
from repro.faurelog.incremental import IncrementalEvaluator
from repro.faurelog.parser import parse_program
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")

TC = parse_program(
    """
    T(a, b) :- E(a, b).
    T(a, b) :- E(a, c), T(c, b).
    """
)


@pytest.fixture
def solver():
    return ConditionSolver(
        DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN}, default=Unbounded())
    )


def fresh_db(*edges):
    db = Database()
    e = db.create_table("E", ["a", "b"])
    for edge in edges:
        if len(edge) == 3:
            e.add([edge[0], edge[1]], edge[2])
        else:
            e.add(list(edge))
    return db


def worlds_by_key(table):
    """data key -> disjunction of every condition it appears under."""
    per = {}
    for tup in table:
        per.setdefault(tup.data_key(), []).append(tup.condition)
    return {key: disjoin(conds) for key, conds in per.items()}


def assert_world_equivalent(solver, left_table, right_table):
    left, right = worlds_by_key(left_table), worlds_by_key(right_table)
    assert left.keys() == right.keys()
    for key in left:
        assert solver.equivalent(left[key], right[key]), key


class TestWeakenEquivalence:
    def test_weaken_matches_from_scratch_on_worlds(self, solver):
        """Widening via weaken() ≡ evaluating a db seeded with both rows."""
        inc = IncrementalEvaluator(
            TC, fresh_db((1, 2, eq(X, 1)), (2, 3)), solver=solver
        )
        inc.weaken("E", [1, 2], eq(X, 0))

        scratch = evaluate(
            TC,
            fresh_db((1, 2, eq(X, 1)), (2, 3), (1, 2, eq(X, 0))),
            solver=solver,
        )
        assert_world_equivalent(solver, inc.table("T"), scratch.table("T"))

    def test_weaken_to_unconditional_covers_all_worlds(self, solver):
        inc = IncrementalEvaluator(TC, fresh_db((1, 2, eq(X, 1))), solver=solver)
        inc.weaken("E", [1, 2], TRUE)
        worlds = worlds_by_key(inc.table("T"))
        assert solver.is_valid(worlds[next(iter(worlds))])

    def test_weaken_through_apply_dispatcher(self, solver):
        """The WAL replay path (apply) and the direct call coincide."""
        direct = IncrementalEvaluator(TC, fresh_db((1, 2, eq(X, 1))), solver=solver)
        direct.weaken("E", [1, 2], eq(X, 0))
        replayed = IncrementalEvaluator(
            TC, fresh_db((1, 2, eq(X, 1))), solver=solver
        )
        replayed.apply("weaken", "E", [1, 2], eq(X, 0))
        assert_world_equivalent(solver, direct.table("T"), replayed.table("T"))


class TestMonotonicityGuard:
    def test_transitive_negation_downstream_rejected(self, solver):
        """Growth flowing through an *intermediate* IDB into negation."""
        program = parse_program(
            """
            Bad(a) :- Broken(a).
            Worse(a) :- Bad(a).
            Good(a) :- Node(a), not Worse(a).
            """
        )
        db = Database()
        db.create_table("Node", ["a"]).add([1])
        db.create_table("Broken", ["a"])
        inc = IncrementalEvaluator(program, db, solver=solver)
        with pytest.raises(ProgramError, match="negation"):
            inc.insert("Broken", [1])

    def test_rejection_leaves_state_untouched(self, solver):
        program = parse_program(
            """
            Good(a) :- Node(a), not Bad(a).
            Bad(a) :- Broken(a).
            """
        )
        db = Database()
        db.create_table("Node", ["a"]).add([1])
        db.create_table("Broken", ["a"])
        inc = IncrementalEvaluator(program, db, solver=solver)
        before = {name: len(inc.table(name)) for name in inc.relations()}
        with pytest.raises(ProgramError):
            inc.insert("Broken", [1])
        with pytest.raises(ProgramError):
            inc.check_insertable("Broken")
        after = {name: len(inc.table(name)) for name in inc.relations()}
        assert after == before  # a reject is a no-op, not a half-apply
        # check_insertable alone (the daemon's admission probe) is read-only
        inc.check_insertable("Node")
        assert {name: len(inc.table(name)) for name in inc.relations()} == before

    def test_unknown_apply_kind_rejected(self, solver):
        inc = IncrementalEvaluator(TC, fresh_db((1, 2)), solver=solver)
        with pytest.raises(ProgramError, match="unknown maintenance"):
            inc.apply("retract", "E", [1, 2])


class TestDuplicateIdempotence:
    def test_duplicate_insert_changes_nothing(self, solver):
        inc = IncrementalEvaluator(TC, fresh_db((1, 2), (2, 3)), solver=solver)
        inc.insert("E", [3, 4])
        sizes = {name: len(inc.table(name)) for name in inc.relations()}
        assert inc.insert("E", [3, 4]) == 0
        assert {name: len(inc.table(name)) for name in inc.relations()} == sizes

    def test_duplicate_conditional_insert_changes_nothing(self, solver):
        inc = IncrementalEvaluator(TC, fresh_db((1, 2)), solver=solver)
        inc.insert("E", [2, 3], eq(X, 1))
        sizes = {name: len(inc.table(name)) for name in inc.relations()}
        assert inc.insert("E", [2, 3], eq(X, 1)) == 0
        assert {name: len(inc.table(name)) for name in inc.relations()} == sizes

    def test_subsumed_condition_derives_nothing_new(self, solver):
        """An insert whose worlds are already covered is a no-op on T."""
        inc = IncrementalEvaluator(TC, fresh_db((1, 2)), solver=solver)
        t_before = len(inc.table("T"))
        assert inc.insert("E", [1, 2], eq(X, 1)) == 0
        assert len(inc.table("T")) == t_before
