"""Update rewrite: program transformation and database materialization."""

import pytest

from repro.ctable.condition import TRUE, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.faurelog.rewrite import Deletion, Insertion, apply_update, rewrite_constraint
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded
from repro.solver.interface import ConditionSolver

X = CVariable("x")


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN}, default=Unbounded()))


@pytest.fixture
def lb_db():
    db = Database()
    lb = db.create_table("Lb", ["subnet", "server"])
    lb.add(["Mkt", "CS"])
    lb.add(["R&D", "CS"])
    return db


class TestRewriteConstraint:
    def test_insertion_generates_copy_and_fact(self):
        c = parse_program("panic :- R($y), not Lb($y).")
        out = rewrite_constraint(c, [Insertion("Lb", ("GS",))])
        preds = out.idb_predicates()
        assert "Lb__u1" in preds
        rules = out.rules_for("Lb__u1")
        assert any(r.is_fact for r in rules)
        assert any(not r.is_fact for r in rules)

    def test_deletion_generates_keep_rules(self):
        c = parse_program("panic :- R($y), not Lb($y, $z).")
        out = rewrite_constraint(c, [Deletion("Lb", ("Mkt", "CS"))])
        keeps = out.rules_for("Lb__u1")
        assert len(keeps) == 2  # one per constrained column

    def test_deletion_wildcards_skip_columns(self):
        c = parse_program("panic :- R($y), not Lb($y, $z).")
        out = rewrite_constraint(c, [Deletion("Lb", (None, "CS"))])
        keeps = out.rules_for("Lb__u1")
        assert len(keeps) == 1

    def test_constraint_references_redirected(self):
        c = parse_program("panic :- R($y), not Lb($y).")
        out = rewrite_constraint(
            c, [Insertion("Lb", ("GS",)), Deletion("Lb", ("CS",))]
        )
        panic_rule = out.rules_for("panic")[0]
        negs = list(panic_rule.negative_literals())
        assert negs[0].predicate == "Lb__u2"

    def test_untouched_predicates_unchanged(self):
        c = parse_program("panic :- R($y), not Lb($y).")
        out = rewrite_constraint(c, [Insertion("Fw", ("GS",))])
        panic_rule = out.rules_for("panic")[0]
        assert list(panic_rule.negative_literals())[0].predicate == "Lb"

    def test_update_of_idb_rejected(self):
        c = parse_program("panic :- V($y). V($y) :- R($y).")
        with pytest.raises(ProgramError):
            rewrite_constraint(c, [Insertion("V", ("k",))])

    def test_rewrite_semantics_on_concrete_state(self, lb_db, solver):
        """C' on the old state == C on the updated state."""
        lb_db.create_table("R", ["server"]).add(["GS"])
        c = parse_program("panic :- R($y), not Lb('R&D', $y).")
        update = [Insertion("Lb", ("R&D", "GS"))]
        rewritten = rewrite_constraint(c, update)
        before = evaluate(rewritten, lb_db, solver=solver)
        after_db = apply_update(lb_db, update)
        after = evaluate(c, after_db, solver=solver)
        assert bool(len(before.table("panic"))) == bool(len(after.table("panic")))
        assert len(after.table("panic")) == 0  # GS now balanced


class TestApplyUpdate:
    def test_insertion_appends(self, lb_db):
        out = apply_update(lb_db, [Insertion("Lb", ("R&D", "GS"))])
        assert len(out.table("Lb")) == 3
        assert len(lb_db.table("Lb")) == 2  # original untouched

    def test_certain_deletion_removes(self, lb_db):
        out = apply_update(lb_db, [Deletion("Lb", ("Mkt", "CS"))])
        rows = {tuple(v.value for v in t.values) for t in out.table("Lb")}
        assert rows == {("R&D", "CS")}

    def test_wildcard_deletion(self, lb_db):
        out = apply_update(lb_db, [Deletion("Lb", (None, "CS"))])
        assert len(out.table("Lb")) == 0

    def test_conditional_deletion_of_cvariable_row(self, solver):
        db = Database()
        lb = db.create_table("Lb", ["subnet"])
        lb.add([X])  # unknown subnet
        out = apply_update(db, [Deletion("Lb", ("Mkt",))])
        (tup,) = out.table("Lb").tuples()
        # the row survives exactly when x̄ ≠ Mkt
        assert solver.equivalent(tup.condition, ne(X, "Mkt"))

    def test_conditional_row_certain_match_dropped(self):
        db = Database()
        lb = db.create_table("Lb", ["subnet"])
        lb.add(["Mkt"], eq(X, 1))
        out = apply_update(db, [Deletion("Lb", ("Mkt",))])
        assert len(out.table("Lb")) == 0

    def test_arity_validation(self, lb_db):
        with pytest.raises(ProgramError):
            apply_update(lb_db, [Insertion("Lb", ("only-one",))])
        with pytest.raises(ProgramError):
            apply_update(lb_db, [Deletion("Lb", ("a", "b", "c"))])

    def test_sequence_order_matters(self, lb_db):
        update = [
            Deletion("Lb", ("R&D", "GS")),
            Insertion("Lb", ("R&D", "GS")),
        ]
        out = apply_update(lb_db, update)
        rows = {tuple(v.value for v in t.values) for t in out.table("Lb")}
        assert ("R&D", "GS") in rows  # delete-then-insert keeps it

    def test_str_representations(self):
        assert str(Insertion("Lb", ("a",))) == "+Lb(a)"
        assert str(Deletion("Lb", (None, "b"))) == "-Lb(_, b)"
