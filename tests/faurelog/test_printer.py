"""Pretty-printer: format → parse must be the identity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import Comparison, LinearAtom, TRUE, conjoin, disjoin, eq, ne
from repro.ctable.terms import Constant, CVariable, Variable
from repro.faurelog.ast import Atom, Literal, Program, Rule
from repro.faurelog.parser import parse_program
from repro.faurelog.printer import (
    format_condition,
    format_program,
    format_rule,
    format_term,
)
from repro.ctable.parse import TokenStream, parse_condition, parse_term, tokenize


class TestFormatTerm:
    def test_cvariable(self):
        assert format_term(CVariable("x")) == "$x"

    def test_variable(self):
        assert format_term(Variable("n1")) == "n1"

    def test_bare_constant(self):
        assert format_term(Constant("Mkt")) == "Mkt"

    def test_lowercase_constant_quoted(self):
        assert format_term(Constant("mkt")) == "'mkt'"

    def test_address_quoted(self):
        # addresses re-parse as addr constants either way; quoting is safe
        out = format_term(Constant("1.2.3.4"))
        stream = TokenStream(tokenize(out), out)
        assert parse_term(stream) == Constant("1.2.3.4")

    def test_keywordish_quoted(self):
        assert format_term(Constant("And")) == "'And'"

    def test_numbers(self):
        assert format_term(Constant(7000)) == "7000"
        assert format_term(Constant(2.5)) == "2.5"

    def test_path(self):
        assert format_term(Constant(("A", "B", "C"))) == "[A B C]"

    def test_quote_escaping(self):
        out = format_term(Constant("it's"))
        stream = TokenStream(tokenize(out), out)
        assert parse_term(stream) == Constant("it's")


class TestConditionRoundtrip:
    @pytest.mark.parametrize(
        "cond",
        [
            eq(CVariable("x"), 1),
            ne(CVariable("x"), "Mkt"),
            conjoin([eq(CVariable("x"), 1), ne(CVariable("y"), 0)]),
            disjoin([eq(CVariable("x"), 1), eq(CVariable("x"), 2)]),
            LinearAtom([CVariable("x"), CVariable("y")], "=", 1),
            LinearAtom({CVariable("x"): 2}, "<=", 3),
        ],
    )
    def test_roundtrip(self, cond):
        text = format_condition(cond)
        assert parse_condition(text) == cond


PAPER_PROGRAMS = [
    """
    q4: R(f, n1, n2) :- F(f, n1, n2).
    q5: R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).
    q6: T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.
    """,
    """
    q9: panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).
    q13: Vt($x, CS, $p) :- R($x, CS, $p), $x != Mkt, $x != 'R&D'.
    """,
    """
    q19: Lb1('R&D', GS).
    q21: Lb2($x, $y) :- Lb1($x, $y)[$x != Mkt].
    """,
]


class TestProgramRoundtrip:
    @pytest.mark.parametrize("text", PAPER_PROGRAMS)
    def test_paper_listings_roundtrip(self, text):
        program = parse_program(text)
        assert parse_program(format_program(program)) == program

    def test_labels_preserved(self):
        program = parse_program("q4: R(a, b) :- F(a, b).")
        out = format_program(program)
        assert out.startswith("q4:")
        assert parse_program(out).rules[0].label == "q4"

    def test_negation_and_annotation(self):
        program = parse_program(
            "panic :- R($x)[phi, $x != Mkt], not Fw($x)."
        )
        reparsed = parse_program(format_program(program))
        assert reparsed == program


def terms():
    constants = st.one_of(
        st.integers(min_value=-5, max_value=9999),
        st.sampled_from(["Mkt", "CS", "r&d", "1.2.3.4", "hello world", "A"]),
        st.tuples(st.sampled_from(["A", "B", "C"])),
    ).map(Constant)
    return st.one_of(
        constants,
        st.sampled_from([CVariable("x"), CVariable("y")]),
        st.sampled_from([Variable("u"), Variable("v")]),
    )


@settings(max_examples=150, deadline=None)
@given(terms())
def test_term_roundtrip_property(term):
    text = format_term(term)
    stream = TokenStream(tokenize(text), text)
    assert parse_term(stream) == term
