"""Paper §3: Table 2 and queries q1–q3, verified against the text.

q1 (pure datalog on PATH):   q1(PATH) = {⟨3⟩}
q2 (fauré-log on PATH'):     {⟨3⟩[x̄=[ABC]], ⟨4⟩[x̄=[ADEC]]}
q3 (implicit pattern match): q3(PATH') = {⟨3⟩}
"""

import pytest

from repro.ctable.condition import TRUE, eq
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.ctable.worlds import iter_worlds
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import GroundEvaluator

XP, YD = CVariable("xp"), CVariable("yd")
ABC = ("A", "B", "C")
ADEC = ("A", "D", "E", "C")
ABE = ("A", "B", "E")


@pytest.fixture
def regular_path_db():
    """PATH = {P, C} with the regular P of Table 2."""
    p = CTable("P", ["dest", "path"])
    p.add(["1.2.3.4", ABC])
    p.add(["1.2.3.5", ABE])
    p.add(["1.2.3.6", ADEC])
    c = CTable("C", ["path", "cost"])
    c.add([ABC, 3])
    c.add([ADEC, 4])
    c.add([ABE, 3])
    return Database([p, c])


def answers(result_db, name="ans"):
    return {
        tuple(v.value for v in t.values): t.condition
        for t in result_db.table(name)
    }


class TestQ1OnRegularDatabase:
    def test_q1(self, regular_path_db, string_solver):
        out = evaluate(
            parse_program("ans(z) :- P('1.2.3.4', y), C(y, z)."),
            regular_path_db,
            solver=string_solver,
        )
        assert answers(out) == {(3,): TRUE}


class TestQ2Q3OnCTable:
    def test_q2_explicit_equality(self, path_database, string_solver):
        out = evaluate(
            parse_program("ans(z) :- P(x, y), C(y, z), x = '1.2.3.4'."),
            path_database,
            solver=string_solver,
        )
        got = answers(out)
        assert set(got) == {(3,), (4,)}
        assert string_solver.implies(got[(3,)], eq(XP, ABC))
        assert string_solver.implies(got[(4,)], eq(XP, ADEC))

    def test_q2_implicit_form_equivalent(self, path_database, string_solver):
        out = evaluate(
            parse_program("ans(z) :- P('1.2.3.4', y), C(y, z)."),
            path_database,
            solver=string_solver,
        )
        assert set(answers(out)) == {(3,), (4,)}

    def test_q3_pattern_matches_cvariable(self, path_database, string_solver):
        out = evaluate(
            parse_program("ans(z) :- P('1.2.3.5', y), C(y, z)."),
            path_database,
            solver=string_solver,
        )
        got = answers(out)
        assert set(got) == {(3,)}
        # the condition records ȳd = 1.2.3.5 (consistent with ȳd ≠ 1.2.3.4)
        assert string_solver.is_satisfiable(got[(3,)])

    def test_q3_contradictory_pattern_pruned(self, path_database, string_solver):
        # dest = 1.2.3.4 cannot match the ȳd row (ȳd ≠ 1.2.3.4)
        out = evaluate(
            parse_program("ans(z) :- P('1.2.3.4', y), C(y, z), y = [A B E]."),
            path_database,
            solver=string_solver,
        )
        assert len(out.table("ans")) == 0


class TestLossLessOnTable2:
    def test_query_agrees_with_every_world(self, path_database, path_domains):
        """The loss-less property on the paper's own example.

        Evaluating q3 on the c-table equals evaluating it separately in
        each possible world of PATH'.
        """
        from repro.solver.interface import ConditionSolver

        solver = ConditionSolver(path_domains)
        program = parse_program("ans(z) :- P('1.2.3.5', y), C(y, z).")
        out = evaluate(program, path_database, solver=solver)
        ctable_answers = {
            tuple(v.value for v in t.values): t.condition
            for t in out.table("ans")
        }
        for assignment, world in iter_worlds(path_database, path_domains):
            ground = GroundEvaluator(world)
            derived = ground.run(program)
            world_rows = {
                tuple(c.value for c in row) for row in derived.get("ans", set())
            }
            faure_rows = {
                row
                for row, cond in ctable_answers.items()
                if cond.evaluate(assignment)
            }
            assert world_rows == faure_rows, assignment
