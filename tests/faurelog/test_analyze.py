"""Program linting."""

import pytest

from repro.faurelog.analyze import Lint, lint_program
from repro.faurelog.parser import parse_program


def messages(findings, severity=None):
    return [
        f.message for f in findings if severity is None or f.severity == severity
    ]


class TestSingletonVariables:
    def test_singleton_flagged(self):
        program = parse_program("Out(x) :- A(x), B(y).")
        findings = lint_program(program)
        assert any("y occurs only once" in m for m in messages(findings))

    def test_repeated_variable_clean(self):
        program = parse_program("Out(x) :- A(x), B(x).")
        findings = lint_program(program)
        assert not any("occurs only once" in m for m in messages(findings))

    def test_comparison_counts_as_use(self):
        program = parse_program("Out(x) :- A(x), B(y), y != 1.")
        findings = lint_program(program)
        assert not any("y occurs" in m for m in messages(findings))


class TestUndefinedPredicates:
    def test_typo_caught_with_edb_declared(self):
        program = parse_program("panic :- Rech(Mkt, CS).")  # typo for Reach
        findings = lint_program(program, edb=["Reach"])
        assert any("Rech" in m for m in messages(findings, "error"))

    def test_no_edb_declaration_no_errors(self):
        program = parse_program("panic :- Whatever(Mkt).")
        findings = lint_program(program)
        assert not messages(findings, "error")


class TestUnusedPredicates:
    def test_orphan_flagged(self):
        program = parse_program(
            """
            panic :- V(x).
            V($a) :- R($a).
            Orphan($a) :- R($a).
            """
        )
        findings = lint_program(program, outputs=["panic"])
        assert any("Orphan" in m for m in messages(findings))

    def test_transitively_used_clean(self):
        program = parse_program(
            """
            panic :- V(x).
            V($a) :- W($a).
            W($a) :- R($a).
            """
        )
        findings = lint_program(program, outputs=["panic"])
        assert not any("never used" in m for m in messages(findings))

    def test_default_outputs_are_unconsumed_heads(self):
        program = parse_program(
            """
            Top(x) :- Mid(x).
            Mid(x) :- R(x).
            """
        )
        findings = lint_program(program)
        assert not any("never used" in m for m in messages(findings))


class TestDuplicatesAndDegenerate:
    def test_duplicate_rule(self):
        program = parse_program(
            """
            a: Out(x) :- A(x).
            b: Out(x) :- A(x).
            """
        )
        findings = lint_program(program)
        assert any("duplicates" in m for m in messages(findings))

    def test_always_false_comparison(self):
        program = parse_program("Out(x) :- A(x), 1 = 2.")
        findings = lint_program(program)
        assert any("never fire" in m for m in messages(findings))

    def test_always_true_comparison(self):
        program = parse_program("Out(x) :- A(x), 1 = 1.")
        findings = lint_program(program)
        assert any("always true" in m for m in messages(findings))


class TestCleanPaperPrograms:
    def test_listing3_lints_clean(self):
        from repro.network.enterprise import policy_C_lb, policy_C_s

        for prog in (policy_C_lb(), policy_C_s()):
            findings = lint_program(
                prog, edb=["R", "Lb", "Fw"], outputs=["panic"]
            )
            errors = messages(findings, "error")
            assert not errors

    def test_str_rendering(self):
        lint = Lint("warning", "msg", "q1")
        assert str(lint) == "warning [q1]: msg"
