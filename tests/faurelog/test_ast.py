"""fauré-log AST: structure and safety checks."""

import pytest

from repro.ctable.condition import TRUE, eq, ne
from repro.ctable.terms import Constant, CVariable, Variable
from repro.faurelog.ast import Atom, Literal, Program, ProgramError, Rule

X = CVariable("x")
V, W = Variable("v"), Variable("w")


class TestAtom:
    def test_terms_coerced(self):
        a = Atom("R", ["Mkt", 1, V])
        assert a.terms == (Constant("Mkt"), Constant(1), V)
        assert a.arity == 3

    def test_zero_ary(self):
        assert Atom("panic").arity == 0

    def test_variable_sets(self):
        a = Atom("R", [V, X, "c"])
        assert a.variables() == frozenset({V})
        assert a.cvariables() == frozenset({X})

    def test_str(self):
        assert str(Atom("R", [V, "c"])) == "R(v, c)"
        assert str(Atom("panic")) == "panic"


class TestLiteral:
    def test_defaults(self):
        lit = Literal(Atom("R", [V]))
        assert not lit.negated
        assert lit.annotation is TRUE
        assert lit.condition_var is None

    def test_str_with_annotation(self):
        lit = Literal(Atom("R", [X]), annotation=ne(X, "Mkt"))
        assert "[" in str(lit)

    def test_negated_str(self):
        assert str(Literal(Atom("R", [V]), negated=True)).startswith("not ")


class TestRuleSafety:
    def test_fact(self):
        r = Rule(Atom("R", ["a"]))
        assert r.is_fact

    def test_safe_rule(self):
        r = Rule(Atom("H", [V]), [Literal(Atom("B", [V]))])
        assert list(r.positive_literals())

    def test_unsafe_head_variable(self):
        with pytest.raises(ProgramError):
            Rule(Atom("H", [V]), [Literal(Atom("B", [W]))])

    def test_head_cvariable_allowed_unbound(self):
        # c-variables are global unknowns; a fact may introduce one
        Rule(Atom("H", [X]))

    def test_negated_only_variable_unsafe(self):
        with pytest.raises(ProgramError):
            Rule(
                Atom("H", [V]),
                [Literal(Atom("B", [V])), Literal(Atom("C", [W]), negated=True)],
            )

    def test_comparison_variable_unsafe(self):
        with pytest.raises(ProgramError):
            Rule(Atom("panic"), [eq(V, 1)])

    def test_comparison_cvariable_safe(self):
        # unbound c-variables in comparisons are global references
        Rule(Atom("panic"), [Literal(Atom("B", ["k"])), eq(X, 1)])

    def test_bindable_cvariables(self):
        r = Rule(
            Atom("H", [X]),
            [Literal(Atom("B", [X])), Literal(Atom("C", [CVariable("y")]), negated=True)],
        )
        assert r.bindable_cvariables() == frozenset({X})

    def test_str_roundtrip_shape(self):
        r = Rule(Atom("H", [V]), [Literal(Atom("B", [V])), ne(X, 1)], label="q1")
        s = str(r)
        assert s.startswith("q1: H(v) :- B(v)")
        assert s.endswith(".")


class TestProgram:
    def test_idb_edb_partition(self):
        p = Program(
            [
                Rule(Atom("H", [V]), [Literal(Atom("B", [V]))]),
                Rule(Atom("G", [V]), [Literal(Atom("H", [V]))]),
            ]
        )
        assert p.idb_predicates() == frozenset({"H", "G"})
        assert p.edb_predicates() == frozenset({"B"})

    def test_arity_clash_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [
                    Rule(Atom("H", [V]), [Literal(Atom("B", [V]))]),
                    Rule(Atom("H", [V, V]), [Literal(Atom("B", [V]))]),
                ]
            )

    def test_rules_for(self):
        r1 = Rule(Atom("H", [V]), [Literal(Atom("B", [V]))])
        r2 = Rule(Atom("H", ["k"]))
        p = Program([r1, r2])
        assert p.rules_for("H") == [r1, r2]
        assert p.rules_for("B") == []

    def test_arity_of(self):
        p = Program([Rule(Atom("H", [V]), [Literal(Atom("B", [V, V]))])])
        assert p.arity_of("H") == 1
        assert p.arity_of("B") == 2
        assert p.arity_of("zz") is None

    def test_extended(self):
        p = Program([Rule(Atom("H", ["k"]))])
        q = p.extended([Rule(Atom("G", ["j"]))])
        assert len(q) == 2 and len(p) == 1
