"""Constraint equivalence via mutual containment."""

import pytest

from repro.faurelog.containment import equivalent_constraints
from repro.faurelog.parser import parse_program
from repro.solver.domains import DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap(default=Unbounded("any")))


class TestEquivalence:
    def test_alpha_renaming(self, solver):
        a = parse_program("panic :- R($x), $x != Mkt.")
        b = parse_program("panic :- R($other), $other != Mkt.")
        assert equivalent_constraints(a, b, solver)

    def test_intermediate_predicate_irrelevant(self, solver):
        a = parse_program("panic :- R($x), not Fw($x).")
        b = parse_program(
            """
            panic :- V(x).
            V($x) :- R($x), not Fw($x).
            """
        )
        assert equivalent_constraints(a, b, solver)

    def test_strict_subset_not_equivalent(self, solver):
        a = parse_program("panic :- R($x).")
        b = parse_program("panic :- R($x), $x != Mkt.")
        assert not equivalent_constraints(a, b, solver)
        assert not equivalent_constraints(b, a, solver)

    def test_union_order_irrelevant(self, solver):
        a = parse_program(
            """
            panic :- R($x), $x = Mkt.
            panic :- S($y).
            """
        )
        b = parse_program(
            """
            panic :- S($y).
            panic :- R($x), $x = Mkt.
            """
        )
        assert equivalent_constraints(a, b, solver)

    def test_domain_sensitive_equivalence(self):
        # over {Mkt, R&D}: "x != Mkt" and "x = R&D" coincide
        solver = ConditionSolver(DomainMap(default=Unbounded("any")))
        a = parse_program("panic :- R($x), $x != Mkt.")
        b = parse_program("panic :- R($x), $x = 'R&D'.")
        coldoms = {"subnet": FiniteDomain(["Mkt", "R&D"])}
        schemas = {"R": ["subnet"]}
        assert equivalent_constraints(
            a, b, solver, schemas=schemas, column_domains=coldoms
        )
        # without the domain restriction they differ
        assert not equivalent_constraints(a, b, solver, schemas=schemas)
