"""Containment by reduction to evaluation: unfolding, freezing, deciding."""

import pytest

from repro.ctable.condition import TRUE, eq, ne
from repro.ctable.terms import Constant, CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.containment import contains, freeze, unfold
from repro.faurelog.parser import parse_program
from repro.solver.domains import DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap(default=Unbounded("any")))


class TestUnfold:
    def test_single_rule_passthrough(self):
        p = parse_program("panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).")
        (cq,) = unfold(p)
        assert len(cq.positives) == 1
        assert len(cq.negatives) == 1
        assert cq.comparisons == ()

    def test_intermediate_predicate_inlined(self):
        p = parse_program(
            """
            panic :- V(x, y).
            V($a, $b) :- R($a, $b), $a != Mkt.
            """
        )
        (cq,) = unfold(p)
        assert {l.predicate for l in cq.positives} == {"R"}
        assert len(cq.comparisons) == 1

    def test_union_of_rules_gives_disjuncts(self):
        p = parse_program(
            """
            panic :- V(x).
            V($a) :- R($a), $a != Mkt.
            V($a) :- S($a).
            """
        )
        cqs = unfold(p)
        assert len(cqs) == 2
        assert {cq.positives[0].predicate for cq in cqs} == {"R", "S"}

    def test_head_constant_unification(self):
        p = parse_program(
            """
            panic :- V(Mkt, y).
            V(CS, $b) :- R($b).
            V(Mkt, $b) :- S($b).
            """
        )
        cqs = unfold(p)
        # the CS rule cannot unify with the Mkt call
        assert len(cqs) == 1
        assert cqs[0].positives[0].predicate == "S"

    def test_annotations_become_comparisons(self):
        p = parse_program("panic :- R($a)[$a != Mkt].")
        (cq,) = unfold(p)
        assert len(cq.comparisons) == 1

    def test_recursive_program_rejected(self):
        p = parse_program(
            """
            panic :- T(a, b).
            T(a, b) :- E(a, b).
            T(a, b) :- E(a, c), T(c, b).
            """
        )
        with pytest.raises(ProgramError):
            unfold(p)

    def test_negated_idb_demorgan(self):
        # ¬Upd(k): Upd has two rules → falsify both
        p = parse_program(
            """
            panic :- R($k), not Upd($k).
            Upd($a) :- Lb($a), $a != Mkt.
            Upd(GS).
            """
        )
        cqs = unfold(p)
        # choices: {¬Lb, a=Mkt} × {k≠GS}  → 2 disjuncts
        assert len(cqs) == 2
        for cq in cqs:
            # every disjunct carries the k != GS residual comparison
            assert any("GS" in str(c) for c in cq.comparisons)

    def test_negated_idb_with_existential_rejected(self):
        p = parse_program(
            """
            panic :- R($k), not Upd($k).
            Upd($a) :- Lb($a, $other).
            """
        )
        with pytest.raises(ProgramError):
            unfold(p)

    def test_negation_of_always_matching_fact_kills_branch(self):
        p = parse_program(
            """
            panic :- R($k), not Upd($k).
            Upd($a) :- Src($a).
            Upd($a) :- True0($a).
            """
        )
        # make one rule a catch-all fact with a variable head? Not
        # expressible; instead a rule with empty residual via constants:
        p2 = parse_program(
            """
            panic :- R(GS), not Upd(GS).
            Upd(GS).
            """
        )
        assert unfold(p2) == []


class TestFreeze:
    def test_positive_literals_become_facts(self):
        p = parse_program("panic :- R(Mkt, $y), S($y).")
        (cq,) = unfold(p)
        frozen = freeze(cq, [])
        assert len(frozen.database.table("R")) == 1
        assert len(frozen.database.table("S")) == 1
        # shared variable frozen consistently
        r_row = frozen.database.table("R").tuples()[0]
        s_row = frozen.database.table("S").tuples()[0]
        assert r_row.values[1] == s_row.values[0]

    def test_comparisons_into_theta(self):
        p = parse_program("panic :- R($y), $y != Mkt.")
        (cq,) = unfold(p)
        frozen = freeze(cq, [])
        assert frozen.theta is not TRUE

    def test_generic_rows_only_with_budget(self):
        p = parse_program("panic :- R($y).")
        (cq,) = unfold(p)
        plain = freeze(cq, [], generic_rows=0)
        assert len(plain.database.table("R")) == 1
        rich = freeze(cq, [], generic_rows=2)
        assert len(rich.database.table("R")) == 3
        assert len(rich.generic_flags) == 2

    def test_container_edb_tables_created(self):
        target = parse_program("panic :- R($y).")
        container = parse_program("panic :- R($y), not Lb($y).")
        (cq,) = unfold(target)
        frozen = freeze(cq, [container], generic_rows=0)
        assert "Lb" in frozen.database

    def test_column_domains_attach(self):
        p = parse_program("panic :- R($y).")
        (cq,) = unfold(p)
        frozen = freeze(
            cq,
            [],
            schemas={"R": ["server"]},
            column_domains={"server": FiniteDomain(["CS", "GS"])},
            generic_rows=1,
        )
        assert len(frozen.var_domains) >= 2  # frozen var + generic column var


class TestContains:
    def test_identical_programs(self, solver):
        p = parse_program("panic :- R(Mkt, $p), not Fw(Mkt).")
        q = parse_program("panic :- R(Mkt, $p), not Fw(Mkt).")
        assert contains(p, [q], solver).contained

    def test_specialization_contained_in_generalization(self, solver):
        special = parse_program("panic :- R(Mkt, CS).")
        general = parse_program("panic :- R($x, $y).")
        assert contains(special, [general], solver).contained

    def test_generalization_not_contained_in_specialization(self, solver):
        special = parse_program("panic :- R(Mkt, CS).")
        general = parse_program("panic :- R($x, $y).")
        assert not contains(general, [special], solver).contained

    def test_union_covers_disjuncts(self, solver):
        q = parse_program(
            """
            panic :- R($x), $x != Mkt.
            panic :- R(Mkt).
            """
        )
        p = parse_program("panic :- R($x).")
        assert contains(q, [p], solver).contained

    def test_comparison_strengthening(self, solver):
        strong = parse_program("panic :- R($p), $p != 80, $p != 344.")
        weak = parse_program("panic :- R($p), $p != 80.")
        assert contains(strong, [weak], solver).contained
        assert not contains(weak, [strong], solver).contained

    def test_negation_dependence_blocks_containment(self, solver):
        # containee has no ¬Lb guarantee; container needs it
        q = parse_program("panic :- R($x).")
        p = parse_program("panic :- R($x), not Lb($x).")
        assert not contains(q, [p], solver).contained

    def test_negation_in_containee_satisfies_container(self, solver):
        q = parse_program("panic :- R($x), not Lb($x).")
        p = parse_program("panic :- R($x), not Lb($x).")
        assert contains(q, [p], solver).contained

    def test_vacuous_disjunct_trivially_covered(self, solver):
        q = parse_program("panic :- R($x), $x = Mkt, $x != Mkt.")
        p = parse_program("panic :- S($y).")
        result = contains(q, [p], solver)
        assert result.contained
        assert result.per_disjunct[0][1]

    def test_multiple_containers_union(self, solver):
        q = parse_program(
            """
            panic :- R($x), $x = Mkt.
            panic :- R($x), $x != Mkt.
            """
        )
        p1 = parse_program("panic :- R($x), $x = Mkt.")
        p2 = parse_program("panic :- R($x), $x != Mkt.")
        assert contains(q, [p1, p2], solver).contained
        assert not contains(q, [p1], solver).contained
