"""Stratified fixpoint evaluation over c-tables."""

import pytest

from repro.ctable.condition import FALSE, TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.engine.stats import EvalStats
from repro.faurelog.ast import ProgramError
from repro.faurelog.evaluation import FaureEvaluator, evaluate
from repro.faurelog.parser import parse_program
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN}, default=Unbounded()))


class TestBasics:
    def test_nonrecursive_join(self, solver):
        db = Database()
        db.create_table("A", ["k"]).add([1])
        db.create_table("B", ["k", "v"]).add([1, "p"])
        out = evaluate(parse_program("H(v) :- A(k), B(k, v)."), db, solver=solver)
        assert [t.values for t in out.table("H")] == [(Constant("p"),)]

    def test_facts_materialize(self, solver):
        out = evaluate(parse_program("F(1, 2). F(2, 3)."), Database(), solver=solver)
        assert len(out.table("F")) == 2

    def test_idb_chaining(self, solver):
        db = Database()
        db.create_table("E", ["a", "b"]).add([1, 2])
        prog = parse_program(
            """
            P(a, b) :- E(a, b).
            Q(b) :- P(1, b).
            """
        )
        out = evaluate(prog, db, solver=solver)
        assert len(out.table("Q")) == 1

    def test_empty_idb_present(self, solver):
        db = Database()
        db.create_table("E", ["a"])
        out = evaluate(parse_program("H(a) :- E(a)."), db, solver=solver)
        assert "H" in out
        assert len(out.table("H")) == 0

    def test_idb_shadowing_edb_rejected(self, solver):
        db = Database()
        db.create_table("H", ["a"]).add([1])
        with pytest.raises(ProgramError):
            evaluate(parse_program("H(a) :- H(a)."), db, solver=solver)

    def test_source_database_untouched(self, solver):
        db = Database()
        db.create_table("E", ["a"]).add([1])
        evaluate(parse_program("H(a) :- E(a)."), db, solver=solver)
        assert set(db.names()) == {"E"}


class TestRecursion:
    def test_transitive_closure_regular(self, solver):
        db = Database()
        e = db.create_table("E", ["a", "b"])
        for pair in [(1, 2), (2, 3), (3, 4)]:
            e.add(list(pair))
        prog = parse_program(
            """
            T(a, b) :- E(a, b).
            T(a, b) :- E(a, c), T(c, b).
            """
        )
        out = evaluate(prog, db, solver=solver)
        pairs = {(t.values[0].value, t.values[1].value) for t in out.table("T")}
        assert pairs == {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}

    def test_cycle_terminates(self, solver):
        db = Database()
        e = db.create_table("E", ["a", "b"])
        e.add([1, 2])
        e.add([2, 1])
        prog = parse_program(
            """
            T(a, b) :- E(a, b).
            T(a, b) :- E(a, c), T(c, b).
            """
        )
        out = evaluate(prog, db, solver=solver)
        assert len(out.table("T")) == 4  # (1,2),(2,1),(1,1),(2,2)

    def test_conditional_cycle_terminates(self, solver):
        # conditions on a cycle: dedup-by-implication must stop the loop
        db = Database()
        e = db.create_table("E", ["a", "b"])
        e.add([1, 2], eq(X, 1))
        e.add([2, 1], eq(Y, 1))
        prog = parse_program(
            """
            T(a, b) :- E(a, b).
            T(a, b) :- E(a, c), T(c, b).
            """
        )
        out = evaluate(prog, db, solver=solver)
        conds_12 = [
            t.condition
            for t in out.table("T")
            if t.values == (Constant(1), Constant(2))
        ]
        combined = disjoin(conds_12)
        assert solver.equivalent(combined, eq(X, 1))

    def test_max_iterations_guard(self, solver):
        db = Database()
        e = db.create_table("E", ["a", "b"])
        for i in range(30):
            e.add([i, i + 1])
        prog = parse_program(
            """
            T(a, b) :- E(a, b).
            T(a, b) :- E(a, c), T(c, b).
            """
        )
        with pytest.raises(ProgramError):
            evaluate(prog, db, solver=solver, max_iterations=3)


class TestConditions:
    def test_conditions_propagate_through_join(self, solver):
        db = Database()
        db.create_table("A", ["k"]).add([1], eq(X, 1))
        db.create_table("B", ["k"]).add([1], eq(Y, 1))
        out = evaluate(parse_program("H(k) :- A(k), B(k)."), db, solver=solver)
        (tup,) = out.table("H").tuples()
        assert solver.equivalent(tup.condition, conjoin([eq(X, 1), eq(Y, 1)]))

    def test_contradictions_pruned(self, solver):
        db = Database()
        db.create_table("A", ["k"]).add([1], eq(X, 1))
        db.create_table("B", ["k"]).add([1], eq(X, 0))
        out = evaluate(parse_program("H(k) :- A(k), B(k)."), db, solver=solver)
        assert len(out.table("H")) == 0

    def test_prune_disabled_keeps_contradictions(self, solver):
        db = Database()
        db.create_table("A", ["k"]).add([1], eq(X, 1))
        db.create_table("B", ["k"]).add([1], eq(X, 0))
        out = evaluate(
            parse_program("H(k) :- A(k), B(k)."), db, solver=solver, prune=False
        )
        assert len(out.table("H")) == 1

    def test_subsumed_condition_not_duplicated(self, solver):
        db = Database()
        a = db.create_table("A", ["k"])
        a.add([1], TRUE)
        a.add([1], eq(X, 1))  # implied by the unconditional row
        out = evaluate(parse_program("H(k) :- A(k)."), db, solver=solver)
        assert len(out.table("H")) == 1

    def test_dedup_is_order_sensitive_but_semantics_stable(self, solver):
        # The dedup skips implied newcomers; a more general condition
        # arriving later is still recorded (no retro-minimization), and
        # the disjunction of recorded conditions is unchanged.
        db = Database()
        a = db.create_table("A", ["k"])
        a.add([1], eq(X, 1))
        a.add([1], TRUE)
        out = evaluate(parse_program("H(k) :- A(k)."), db, solver=solver)
        conds = [t.condition for t in out.table("H")]
        assert solver.equivalent(disjoin(conds), TRUE)


class TestNegationEvaluation:
    def test_stratified_negation(self, solver):
        db = Database()
        node = db.create_table("Node", ["a"])
        node.add([1])
        node.add([2])
        db.create_table("Broken", ["a"]).add([2])
        prog = parse_program(
            """
            Bad(a) :- Broken(a).
            Good(a) :- Node(a), not Bad(a).
            """
        )
        out = evaluate(prog, db, solver=solver)
        goods = [t.values[0].value for t in out.table("Good")]
        assert goods == [1]

    def test_negation_produces_condition(self, solver):
        db = Database()
        r = db.create_table("R", ["a"])
        r.add(["Mkt"])
        fw = db.create_table("Fw", ["a"])
        fw.add([X])  # firewall on an unknown subnet
        prog = parse_program("panic :- R(a), not Fw(a).")
        out = evaluate(prog, db, solver=solver)
        (tup,) = out.table("panic").tuples()
        assert solver.equivalent(tup.condition, ne(X, "Mkt"))

    def test_stats_populated(self, solver):
        db = Database()
        db.create_table("E", ["a", "b"]).add([1, 2])
        stats = EvalStats()
        evaluate(
            parse_program("T(a,b) :- E(a,b). T(a,b) :- E(a,c), T(c,b)."),
            db,
            solver=solver,
            stats=stats,
        )
        assert stats.tuples_generated == 1
        assert stats.iterations >= 2
        assert stats.sql_seconds >= 0
