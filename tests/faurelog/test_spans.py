"""Source positions: spans on AST nodes, positioned parse errors."""

import pytest

from repro.ctable.parse import ParseError, Span, line_col
from repro.faurelog.parser import parse_program, parse_rule
from repro.ctable.parse import TokenStream, tokenize


class TestLineCol:
    def test_first_char(self):
        assert line_col("abc", 0) == (1, 1)

    def test_after_newline(self):
        assert line_col("ab\ncd", 3) == (2, 1)
        assert line_col("ab\ncd", 4) == (2, 2)

    def test_end_of_text(self):
        assert line_col("ab\ncd", 5) == (2, 3)


class TestSpan:
    def test_from_offsets(self):
        span = Span.from_offsets("ab\ncdef", 3, 7)
        assert (span.line, span.col) == (2, 1)
        assert (span.end_line, span.end_col) == (2, 5)

    def test_str_is_line_col(self):
        assert str(Span(3, 7, 3, 10)) == "3:7"

    def test_merge(self):
        merged = Span.merge(Span(1, 5, 1, 9), Span(2, 1, 2, 4))
        assert (merged.line, merged.col) == (1, 5)
        assert (merged.end_line, merged.end_col) == (2, 4)


class TestAstSpans:
    def test_atom_spans(self):
        program = parse_program("q1: Out(x) :- A(x), B(x).")
        rule = program.rules[0]
        assert rule.head.span is not None
        assert (rule.head.span.line, rule.head.span.col) == (1, 5)
        literals = list(rule.literals())
        assert (literals[0].span.line, literals[0].span.col) == (1, 15)
        assert (literals[1].span.line, literals[1].span.col) == (1, 21)

    def test_negated_literal_span_covers_not(self):
        program = parse_program("q1: Out(x) :- A(x), B(x), not C(x).")
        negated = [l for l in program.rules[0].literals() if l.negated]
        assert negated[0].span.col == 27  # the 'not' keyword

    def test_rule_span_and_body_spans_align(self):
        text = "q1: Out($x) :- A($x), $x < 5."
        rule = parse_program(text).rules[0]
        assert rule.span is not None and rule.span.col == 1
        assert len(rule.body_spans) == len(rule.body)
        # the bare comparison's span points into the rule text
        comparison_span = rule.body_spans[-1]
        assert comparison_span is not None and comparison_span.col == 23

    def test_multiline_positions(self):
        text = "q1: Out(x) :- A(x).\nq2: Out2(y) :- B(y).\n"
        program = parse_program(text)
        assert program.rules[0].span.line == 1
        assert program.rules[1].span.line == 2

    def test_spans_do_not_affect_equality(self):
        with_spans = parse_program("q1: Out(x) :- A(x).").rules[0]
        stream = TokenStream(tokenize("q1: Out(x) :- A(x)."), "q1: Out(x) :- A(x).")
        other = parse_rule(stream)
        assert with_spans == other
        assert hash(with_spans.head) == hash(other.head)


class TestParseErrorPositions:
    def test_error_carries_line_col(self):
        try:
            parse_program("q1: Out(x) :- A(x).\nq2: Bad( :- B(y).\n")
        except ParseError as exc:
            assert exc.line == 2
            assert "line 2" in str(exc)
        else:
            pytest.fail("expected ParseError")

    def test_error_on_first_line(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_program("q1: Out( :- A(x).")

    def test_lexer_error_positioned(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_program("q1: Out(x) :- A(x) & B(x).")


class TestRelaxedParsing:
    def test_unsafe_program_parses_relaxed(self):
        text = "q1: Out(x, y) :- A(x)."
        program = parse_program(text, check_safety=False)
        violations = program.rules[0].safety_violations()
        kinds = [v[0] for v in violations]
        assert "head" in kinds

    def test_arity_clash_collected_not_raised(self):
        text = "q1: Out(x) :- A(x, y), A(x, y, y)."
        program = parse_program(text, check_safety=False, check_arities=False)
        clashes = program.arity_clashes()
        assert clashes and clashes[0][0].predicate == "A"

    def test_strict_mode_unchanged(self):
        from repro.faurelog.ast import ProgramError

        with pytest.raises(ProgramError):
            parse_program("q1: Out(x, y) :- A(x).")
