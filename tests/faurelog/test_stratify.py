"""Stratification and dependency analysis."""

import pytest

from repro.faurelog.ast import ProgramError
from repro.faurelog.parser import parse_program
from repro.faurelog.stratify import dependency_graph, is_recursive, stratify


class TestDependencyGraph:
    def test_edges_and_negativity(self):
        p = parse_program(
            """
            H(a) :- B(a).
            G(a) :- H(a), not K(a).
            """
        )
        g = dependency_graph(p)
        assert g.has_edge("B", "H")
        assert not g["B"]["H"]["negative"]
        assert g["K"]["G"]["negative"]

    def test_negative_edge_sticks(self):
        p = parse_program(
            """
            H(a) :- B(a).
            H(a) :- C(a), not B(a).
            """
        )
        g = dependency_graph(p)
        assert g["B"]["H"]["negative"]


class TestStratify:
    def test_single_stratum_recursion(self):
        p = parse_program(
            """
            R(a, b) :- F(a, b).
            R(a, b) :- F(a, c), R(c, b).
            """
        )
        strata = stratify(p)
        assert strata == [frozenset({"R"})]

    def test_negation_forces_lower_stratum(self):
        p = parse_program(
            """
            Good(a) :- Node(a), not Bad(a).
            Bad(a) :- Broken(a).
            """
        )
        strata = stratify(p)
        assert strata.index(frozenset({"Bad"})) < strata.index(frozenset({"Good"}))

    def test_unstratifiable_rejected(self):
        p = parse_program(
            """
            P(a) :- N(a), not Q(a).
            Q(a) :- N(a), not P(a).
            """
        )
        with pytest.raises(ProgramError):
            stratify(p)

    def test_mutual_recursion_one_stratum(self):
        p = parse_program(
            """
            E(a, b) :- L(a, b).
            O(a, b) :- L(a, c), E(c, b).
            E(a, b) :- L(a, c), O(c, b).
            """
        )
        strata = stratify(p)
        assert frozenset({"E", "O"}) in strata

    def test_edb_not_in_strata(self):
        p = parse_program("H(a) :- B(a).")
        strata = stratify(p)
        assert all("B" not in s for s in strata)


class TestNegationInRecursion:
    def test_self_negation_rejected(self):
        p = parse_program("P(a) :- N(a), not P(a).")
        with pytest.raises(ProgramError):
            stratify(p)

    def test_negation_through_long_cycle_rejected(self):
        p = parse_program(
            """
            A(x) :- N(x), not C(x).
            B(x) :- A(x).
            C(x) :- B(x).
            """
        )
        with pytest.raises(ProgramError):
            stratify(p)

    def test_negative_edge_outside_cycle_accepted(self):
        # A and B are mutually recursive; the negation targets a lower
        # stratum, so the program is fine.
        p = parse_program(
            """
            A(x) :- N(x), B(x), not D(x).
            B(x) :- A(x).
            D(x) :- N(x).
            """
        )
        strata = stratify(p)
        assert strata.index(frozenset({"D"})) < strata.index(frozenset({"A", "B"}))


class TestMultiSccGraphs:
    PROGRAM = """
        E(a, b) :- L(a, b).
        E(a, b) :- L(a, c), E(c, b).
        F(a, b) :- M(a, b).
        F(a, b) :- M(a, c), F(c, b).
        Top(a, b) :- E(a, b), not F(a, b).
        """

    def test_independent_sccs_stratify(self):
        p = parse_program(self.PROGRAM)
        strata = stratify(p)
        assert frozenset({"E"}) in strata and frozenset({"F"}) in strata
        assert strata.index(frozenset({"F"})) < strata.index(frozenset({"Top"}))

    def test_scc_structure(self):
        import networkx as nx

        p = parse_program(self.PROGRAM)
        g = dependency_graph(p)
        sccs = [s for s in nx.strongly_connected_components(g) if len(s) > 1 or
                any(g.has_edge(n, n) for n in s)]
        assert {frozenset(s) for s in sccs} == {frozenset({"E"}), frozenset({"F"})}

    def test_negation_between_sccs_is_fine(self):
        p = parse_program(self.PROGRAM)
        strata = stratify(p)  # must not raise
        assert any("Top" in s for s in strata)


class TestSelfLoops:
    def test_self_loop_edge_recorded(self):
        p = parse_program("R(a, b) :- R(a, c), S(c, b).")
        g = dependency_graph(p)
        assert g.has_edge("R", "R")
        assert not g["R"]["R"]["negative"]

    def test_positive_self_loop_stratifies(self):
        p = parse_program("R(a, b) :- R(a, c), S(c, b).")
        assert frozenset({"R"}) in stratify(p)

    def test_self_loop_is_recursive(self):
        p = parse_program("R(a, b) :- R(a, c), S(c, b).")
        assert is_recursive(p)

    def test_negative_self_loop_rejected(self):
        p = parse_program("P(a) :- N(a), not P(a).")
        g = dependency_graph(p)
        assert g.has_edge("P", "P") and g["P"]["P"]["negative"]
        with pytest.raises(ProgramError):
            stratify(p)


class TestIsRecursive:
    def test_nonrecursive(self):
        p = parse_program("H(a) :- B(a). G(a) :- H(a).")
        assert not is_recursive(p)

    def test_self_recursive(self):
        p = parse_program("R(a, b) :- F(a, b). R(a, b) :- F(a, c), R(c, b).")
        assert is_recursive(p)

    def test_mutually_recursive(self):
        p = parse_program(
            """
            A(x) :- B0(x).
            A(x) :- C0(x), B(x).
            B(x) :- C0(x), A(x).
            """
        )
        assert is_recursive(p)
