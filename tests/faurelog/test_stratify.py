"""Stratification and dependency analysis."""

import pytest

from repro.faurelog.ast import ProgramError
from repro.faurelog.parser import parse_program
from repro.faurelog.stratify import dependency_graph, is_recursive, stratify


class TestDependencyGraph:
    def test_edges_and_negativity(self):
        p = parse_program(
            """
            H(a) :- B(a).
            G(a) :- H(a), not K(a).
            """
        )
        g = dependency_graph(p)
        assert g.has_edge("B", "H")
        assert not g["B"]["H"]["negative"]
        assert g["K"]["G"]["negative"]

    def test_negative_edge_sticks(self):
        p = parse_program(
            """
            H(a) :- B(a).
            H(a) :- C(a), not B(a).
            """
        )
        g = dependency_graph(p)
        assert g["B"]["H"]["negative"]


class TestStratify:
    def test_single_stratum_recursion(self):
        p = parse_program(
            """
            R(a, b) :- F(a, b).
            R(a, b) :- F(a, c), R(c, b).
            """
        )
        strata = stratify(p)
        assert strata == [frozenset({"R"})]

    def test_negation_forces_lower_stratum(self):
        p = parse_program(
            """
            Good(a) :- Node(a), not Bad(a).
            Bad(a) :- Broken(a).
            """
        )
        strata = stratify(p)
        assert strata.index(frozenset({"Bad"})) < strata.index(frozenset({"Good"}))

    def test_unstratifiable_rejected(self):
        p = parse_program(
            """
            P(a) :- N(a), not Q(a).
            Q(a) :- N(a), not P(a).
            """
        )
        with pytest.raises(ProgramError):
            stratify(p)

    def test_mutual_recursion_one_stratum(self):
        p = parse_program(
            """
            E(a, b) :- L(a, b).
            O(a, b) :- L(a, c), E(c, b).
            E(a, b) :- L(a, c), O(c, b).
            """
        )
        strata = stratify(p)
        assert frozenset({"E", "O"}) in strata

    def test_edb_not_in_strata(self):
        p = parse_program("H(a) :- B(a).")
        strata = stratify(p)
        assert all("B" not in s for s in strata)


class TestIsRecursive:
    def test_nonrecursive(self):
        p = parse_program("H(a) :- B(a). G(a) :- H(a).")
        assert not is_recursive(p)

    def test_self_recursive(self):
        p = parse_program("R(a, b) :- F(a, b). R(a, b) :- F(a, c), R(c, b).")
        assert is_recursive(p)

    def test_mutually_recursive(self):
        p = parse_program(
            """
            A(x) :- B0(x).
            A(x) :- C0(x), B(x).
            B(x) :- C0(x), A(x).
            """
        )
        assert is_recursive(p)
