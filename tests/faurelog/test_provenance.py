"""Provenance recording in the evaluator."""

import pytest

from repro.ctable.table import Database
from repro.ctable.terms import Constant
from repro.faurelog.evaluation import FaureEvaluator
from repro.faurelog.parser import parse_program
from repro.solver.domains import DomainMap, Unbounded
from repro.solver.interface import ConditionSolver


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap(default=Unbounded()))


@pytest.fixture
def db():
    database = Database()
    e = database.create_table("E", ["a", "b"])
    e.add([1, 2])
    e.add([2, 3])
    return database


PROGRAM = parse_program(
    """
    base: T(a, b) :- E(a, b).
    step: T(a, b) :- E(a, c), T(c, b).
    """
)


class TestProvenance:
    def test_disabled_by_default(self, db, solver):
        evaluator = FaureEvaluator(db, solver=solver)
        evaluator.evaluate(PROGRAM)
        assert evaluator.provenance == []

    def test_labels_recorded(self, db, solver):
        evaluator = FaureEvaluator(db, solver=solver, record_provenance=True)
        evaluator.evaluate(PROGRAM)
        by_rule = {}
        for predicate, values, condition, label in evaluator.provenance:
            by_rule.setdefault(label, []).append(values)
        assert len(by_rule["base"]) == 2
        assert (Constant(1), Constant(3)) in by_rule["step"]

    def test_every_derived_tuple_has_an_entry(self, db, solver):
        evaluator = FaureEvaluator(db, solver=solver, record_provenance=True)
        result = evaluator.evaluate(PROGRAM)
        assert len(evaluator.provenance) == len(result.table("T"))

    def test_order_is_derivation_order(self, db, solver):
        evaluator = FaureEvaluator(db, solver=solver, record_provenance=True)
        evaluator.evaluate(PROGRAM)
        labels = [label for _, _, _, label in evaluator.provenance]
        # all base-rule derivations precede the recursive ones
        assert labels.index("step") > labels.index("base")
