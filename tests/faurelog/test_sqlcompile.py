"""The fauré-log → SQL compilation path (the paper's §6 architecture)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.evaluation import evaluate
from repro.faurelog.parser import parse_program
from repro.faurelog.sqlcompile import SqlProgramEvaluator, compile_rule
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")
DOMAINS = DomainMap({X: FiniteDomain([0, 1]), Y: FiniteDomain([0, 1, 2])})


@pytest.fixture
def solver():
    return ConditionSolver(DOMAINS)


@pytest.fixture
def db():
    database = Database()
    e = database.create_table("E", ["a", "b"])
    e.add([1, 2])
    e.add([2, 3], eq(X, 1))
    e.add([Y, 4])
    a = database.create_table("A", ["k"])
    a.add([2])
    a.add([4])
    return database


def data_and_worlds(table, solver):
    """Semantic fingerprint: per data part, the satisfying world set."""
    from repro.solver.enumerate import iter_models
    from repro.ctable.condition import disjoin as dj

    grouped = {}
    for tup in table:
        grouped.setdefault(tup.data_key(), []).append(tup.condition)
    out = {}
    for key, conds in grouped.items():
        combined = dj(conds)
        cvars = sorted(set().union(*[c.cvariables() for c in conds]) | {X, Y},
                       key=lambda v: v.name)
        worlds = frozenset(
            tuple(sorted((v.name, m[v].value) for v in cvars))
            for m in iter_models(combined, DOMAINS, variables=cvars)
        )
        out[key] = worlds
    return out


PROGRAMS = [
    "Out(a, b) :- E(a, b).",
    "Out(b) :- E(1, b).",
    "Out(a, b) :- E(a, b), A(b).",
    "Out(a, b) :- E(a, b), a != 1.",
    "Out(a, c) :- E(a, b), E(b, c).",
    "Out($u, $v) :- E($u, $v), $u != 2.",
    "Out(a, b) :- E(a, b). Out(a, b) :- E(a, c), Out(c, b).",
    "Out(k, k) :- A(k).",
    "Mid(b) :- E(1, b). Out(c) :- Mid(b), E(b, c).",
    # stratified negation through the AntiJoin operator
    "Out(a, b) :- E(a, b), not A(b).",
    "Out(a) :- A(a), not E(a, 4).",
    "Out(a) :- A(a), not Mid(a). Mid(b) :- E(1, b).",
]


@pytest.mark.parametrize("text", PROGRAMS)
def test_sql_path_matches_native(db, solver, text):
    program = parse_program(text)
    native = evaluate(program, db, solver=solver).table("Out")
    sql_result = SqlProgramEvaluator(db, solver=solver).evaluate(program).table("Out")
    assert data_and_worlds(sql_result, solver) == data_and_worlds(native, solver)


class TestCompileRule:
    def test_plan_is_explainable(self, db):
        from repro.engine.explain import explain

        program = parse_program("Out(a, c) :- E(a, b), E(b, c), a != 3.")
        plan = compile_rule(program.rules[0], db)
        text = explain(plan, db)
        assert "Scan E" in text and "SelectWhere" in text and "Project" in text

    def test_negation_compiles_to_antijoin(self, db):
        from repro.engine.explain import explain

        program = parse_program("Out(a) :- A(a), not E(a, a).")
        plan = compile_rule(program.rules[0], db)
        assert "AntiJoin" in explain(plan, db)

    def test_annotated_negation_rejected(self, db):
        program = parse_program("Out(a) :- A(a), not E(a, a)[a != 1].")
        with pytest.raises(ProgramError):
            compile_rule(program.rules[0], db)

    def test_fact_rejected(self, db):
        program = parse_program("Out(1).")
        with pytest.raises(ProgramError):
            compile_rule(program.rules[0], db)


class TestProgramEvaluator:
    def test_facts_materialize(self, db, solver):
        program = parse_program("Out(9, 9). Out(a, b) :- E(a, b).")
        result = SqlProgramEvaluator(db, solver=solver).evaluate(program)
        assert (Constant(9), Constant(9)) in result.table("Out").data_parts()

    def test_global_cvariable_in_head(self, db, solver):
        program = parse_program("Out(k, $g) :- A(k).")
        result = SqlProgramEvaluator(db, solver=solver).evaluate(program)
        assert all(t.values[1] == CVariable("g") for t in result.table("Out"))

    def test_shadowing_rejected(self, db, solver):
        program = parse_program("E(a, b) :- A(a), A(b).")
        with pytest.raises(ProgramError):
            SqlProgramEvaluator(db, solver=solver).evaluate(program)

    def test_max_iterations(self, db, solver):
        program = parse_program(
            "Out(a, b) :- E(a, b). Out(a, b) :- E(a, c), Out(c, b)."
        )
        with pytest.raises(ProgramError):
            SqlProgramEvaluator(db, solver=solver, max_iterations=1).evaluate(program)

    def test_stats_collected(self, db, solver):
        program = parse_program("Out(a, b) :- E(a, b).")
        evaluator = SqlProgramEvaluator(db, solver=solver)
        evaluator.evaluate(program)
        assert evaluator.stats.tuples_generated >= 3
