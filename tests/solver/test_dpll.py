"""Branch-and-check satisfiability over compound conditions."""

import pytest

from repro.ctable.condition import (
    And,
    FALSE,
    LinearAtom,
    Not,
    Or,
    TRUE,
    conjoin,
    disjoin,
    eq,
    lt,
    ne,
)
from repro.ctable.terms import CVariable
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded
from repro.solver.dpll import is_satisfiable_dpll, iter_branches, to_nnf

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")
UNB = DomainMap(default=Unbounded("any"))


class TestNnf:
    def test_negation_pushed_to_atoms(self):
        cond = Not(conjoin([eq(X, 1), eq(Y, 0)]))
        nnf = to_nnf(cond)
        assert isinstance(nnf, Or)
        assert all(not isinstance(c, Not) for c in nnf.children)

    def test_double_negation(self):
        cond = Not(Not(eq(X, 1)))
        assert to_nnf(cond) == eq(X, 1)

    def test_nested(self):
        cond = Not(disjoin([eq(X, 1), Not(eq(Y, 1))]))
        nnf = to_nnf(cond)
        assert nnf == conjoin([ne(X, 1), eq(Y, 1)])


class TestBranches:
    def test_atom_single_branch(self):
        assert list(iter_branches(eq(X, 1))) == [[eq(X, 1)]]

    def test_or_branches(self):
        branches = list(iter_branches(disjoin([eq(X, 1), eq(X, 0)])))
        assert len(branches) == 2

    def test_and_product(self):
        cond = conjoin([disjoin([eq(X, 1), eq(X, 0)]), disjoin([eq(Y, 1), eq(Y, 0)])])
        assert len(list(iter_branches(cond))) == 4

    def test_true_false(self):
        assert list(iter_branches(TRUE)) == [[]]
        assert list(iter_branches(FALSE)) == []


class TestSatisfiability:
    def test_simple_sat(self):
        assert is_satisfiable_dpll(eq(X, 1), UNB)

    def test_conjunction_contradiction(self):
        assert not is_satisfiable_dpll(conjoin([eq(X, 1), eq(X, 2)]), UNB)

    def test_disjunction_rescues(self):
        cond = conjoin([disjoin([eq(X, 1), eq(X, 2)]), ne(X, 1)])
        assert is_satisfiable_dpll(cond, UNB)

    def test_all_branches_dead(self):
        cond = conjoin(
            [disjoin([eq(X, 1), eq(X, 2)]), ne(X, 1), ne(X, 2)]
        )
        assert not is_satisfiable_dpll(cond, UNB)

    def test_negated_compound(self):
        cond = conjoin([Not(disjoin([eq(X, 1), eq(X, 2)])), eq(X, 1)])
        assert not is_satisfiable_dpll(cond, UNB)

    def test_finite_domain_exactness(self):
        # x != 0 and x != 1 over {0,1}: needs the exact confirmation pass
        domains = DomainMap({X: BOOL_DOMAIN})
        assert not is_satisfiable_dpll(conjoin([ne(X, 0), ne(X, 1)]), domains)

    def test_finite_domain_clique(self):
        # three pairwise-distinct variables over a 2-value domain
        domains = DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN})
        cond = conjoin([ne(X, Y), ne(Y, Z), ne(X, Z)])
        assert not is_satisfiable_dpll(cond, domains)

    def test_mixed_finite_unbounded(self):
        domains = DomainMap({X: BOOL_DOMAIN})  # y unbounded
        cond = conjoin([disjoin([eq(X, 0), eq(X, 1)]), lt(Y, 10)])
        assert is_satisfiable_dpll(cond, domains)

    def test_linear_in_branches(self):
        domains = DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN})
        cond = conjoin(
            [LinearAtom([X, Y, Z], "=", 1), disjoin([eq(X, 1), eq(Y, 1)]), eq(Z, 1)]
        )
        assert not is_satisfiable_dpll(cond, domains)
