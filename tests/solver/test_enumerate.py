"""Exact finite-domain model enumeration."""

import pytest

from repro.ctable.condition import FALSE, LinearAtom, TRUE, conjoin, disjoin, eq, ne
from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded
from repro.solver.enumerate import count_models, find_model, is_satisfiable_enum, iter_models

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")
BOOLS = DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN})


class TestIterModels:
    def test_simple_equality(self):
        models = list(iter_models(eq(X, 1), BOOLS))
        assert models == [{X: Constant(1)}]

    def test_linear_sum(self):
        models = list(iter_models(LinearAtom([X, Y, Z], "=", 1), BOOLS))
        assert len(models) == 3
        for m in models:
            assert sum(v.value for v in m.values()) == 1

    def test_disjunction(self):
        cond = disjoin([eq(X, 0), eq(Y, 0)])
        assert count_models(cond, BOOLS) == 3  # of 4

    def test_explicit_variable_set_widens(self):
        models = list(iter_models(eq(X, 1), BOOLS, variables=[X, Y]))
        assert len(models) == 2  # y free

    def test_unsat(self):
        cond = conjoin([eq(X, 1), eq(X, 0)])
        assert list(iter_models(cond, BOOLS)) == []

    def test_unbounded_variable_rejected(self):
        domains = DomainMap({X: BOOL_DOMAIN})
        with pytest.raises(ValueError):
            list(iter_models(eq(Y, 1), domains))

    def test_models_are_total(self):
        for m in iter_models(LinearAtom([X, Y], "<=", 1), BOOLS):
            assert set(m) == {X, Y}


class TestHelpers:
    def test_find_model_returns_satisfying(self):
        m = find_model(conjoin([ne(X, 0), eq(Y, 0)]), BOOLS)
        assert m[X] == Constant(1) and m[Y] == Constant(0)

    def test_find_model_none(self):
        assert find_model(conjoin([eq(X, 1), eq(X, 0)]), BOOLS) is None

    def test_count_matches_manual(self):
        # x = y over bools: 2 models
        assert count_models(eq(X, Y), BOOLS) == 2

    def test_satisfiable_shortcuts(self):
        assert is_satisfiable_enum(TRUE, BOOLS)
        assert not is_satisfiable_enum(FALSE, BOOLS)

    def test_larger_domain(self):
        domains = DomainMap({X: FiniteDomain(list(range(10)))})
        assert count_models(conjoin([ne(X, 3), ne(X, 7)]), domains) == 8
