"""Canonicalizer properties and hash-consing.

The load-bearing claims of :mod:`repro.solver.canonical`:

* **equivalence** — ``canonical(c)`` has the same models as ``c``;
* **idempotence** — canonicalizing a canonical form is the identity;
* **permutation invariance** — reordering ∧/∨ children (at any depth)
  yields the identical canonical form;
* **interning** — equal canonical forms are the *same object*, and the
  governor's size ceiling fires before anything reaches the table.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import (
    And,
    Comparison,
    FALSE,
    LinearAtom,
    Not,
    Or,
    TRUE,
    conjoin,
    disjoin,
    eq,
    ne,
)
from repro.ctable.terms import Constant, CVariable
from repro.robustness.errors import ConditionTooLarge
from repro.robustness.governor import Governor
from repro.solver.canonical import InternTable, canonicalize
from repro.solver.domains import DomainMap, IntRange, Unbounded
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")
DOMAINS = DomainMap({v: IntRange(0, 3) for v in (X, Y, Z)})


def _solver():
    # memo=None: the solver must not consult the machinery under test.
    return ConditionSolver(DOMAINS, memo=None)


class TestRewrites:
    """Pinned examples of the individual normalization rules."""

    def test_interval_tightening_to_equality(self):
        assert canonicalize(conjoin([eq(X, 2), Comparison(X, ">=", Constant(1))])) == eq(X, 2)
        got = canonicalize(
            conjoin([Comparison(X, ">=", Constant(2)), Comparison(X, "<=", Constant(2))])
        )
        assert got == eq(X, 2)

    def test_contradictory_literals_collapse(self):
        assert canonicalize(conjoin([eq(X, 1), eq(X, 2)])) is FALSE
        assert canonicalize(conjoin([eq(X, 1), ne(X, 1)])) is FALSE
        assert canonicalize(
            conjoin([Comparison(X, ">", Constant(2)), Comparison(X, "<", Constant(1))])
        ) is FALSE

    def test_tautological_disjunction_collapses(self):
        assert canonicalize(disjoin([ne(X, 1), ne(X, 2)])) is TRUE
        assert canonicalize(disjoin([eq(X, 1), ne(X, 1)])) is TRUE
        assert canonicalize(
            disjoin([Comparison(X, "<=", Constant(2)), Comparison(X, ">", Constant(1))])
        ) is TRUE

    def test_punctured_line_becomes_disequality(self):
        got = canonicalize(
            disjoin([Comparison(X, "<", Constant(2)), Comparison(X, ">", Constant(2))])
        )
        assert got == ne(X, 2)

    def test_subsumed_bound_dropped(self):
        got = canonicalize(
            conjoin([Comparison(X, ">=", Constant(1)), Comparison(X, ">", Constant(2))])
        )
        assert got == Comparison(X, ">", Constant(2))

    def test_strict_bound_absorbs_disequality(self):
        # x ≥ 1 ∧ x ≠ 1  →  x > 1
        got = canonicalize(conjoin([Comparison(X, ">=", Constant(1)), ne(X, 1)]))
        assert got == Comparison(X, ">", Constant(1))

    def test_complementary_atoms(self):
        assert canonicalize(conjoin([eq(X, 1), Not(eq(X, 1))])) is FALSE
        assert canonicalize(disjoin([eq(X, 1), Not(eq(X, 1))])) is TRUE

    def test_negation_pushed_into_atoms(self):
        got = canonicalize(Not(conjoin([eq(X, 1), eq(Y, 2)])))
        assert got == canonicalize(disjoin([ne(X, 1), ne(Y, 2)]))

    def test_absorption(self):
        a, b = eq(X, 1), eq(Y, 2)
        assert canonicalize(conjoin([a, disjoin([a, b])])) == a
        assert canonicalize(disjoin([a, conjoin([a, b])])) == a

    def test_constant_folding(self):
        assert canonicalize(Comparison(Constant(1), "<", Constant(2))) is TRUE
        assert canonicalize(LinearAtom([], "=", 1)) is FALSE

    def test_var_var_orientation(self):
        assert canonicalize(Comparison(Y, ">", X)) == canonicalize(Comparison(X, "<", Y))

    def test_incomparable_constants_keep_order_atoms(self):
        # Mixed str/int constants: order reasoning must not fire, but
        # equality logic still does.
        cond = conjoin([Comparison(X, ">", Constant("a")), eq(X, 1), eq(X, 2)])
        assert canonicalize(cond) is FALSE
        kept = canonicalize(conjoin([Comparison(X, ">", Constant("a")), ne(X, 1)]))
        assert Comparison(X, ">", Constant("a")) in kept.children


class TestInterning:
    def test_equal_forms_share_identity(self):
        table = InternTable()
        a = canonicalize(conjoin([eq(X, 2), Comparison(X, ">=", Constant(1))]), intern=table)
        b = canonicalize(eq(X, 2), intern=table)
        assert a is b

    def test_nested_nodes_interned(self):
        table = InternTable()
        a = canonicalize(conjoin([eq(X, 1), eq(Y, 2)]), intern=table)
        b = canonicalize(conjoin([eq(Y, 2), eq(X, 1)]), intern=table)
        assert a is b

    def test_bounded_eviction(self):
        table = InternTable(max_entries=2)
        for i in range(5):
            canonicalize(eq(X, i), intern=table)
        assert len(table) <= 2
        assert table.evictions >= 3

    def test_singletons_pass_through(self):
        table = InternTable()
        assert table.intern(TRUE) is TRUE
        assert table.intern(FALSE) is FALSE
        assert len(table) == 0

    def test_size_ceiling_fires_before_interning(self):
        governor = Governor(max_condition_atoms=2, on_budget="fail")
        governor.start()
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, governor=governor, memo=memo)
        big = conjoin([eq(X, 1), eq(Y, 2), ne(Z, 0)])
        with pytest.raises(ConditionTooLarge):
            solver.sat_verdict(big)
        assert len(memo.interner) == 0
        assert len(memo) == 0


# -- property-based ----------------------------------------------------------


def conditions():
    var_const = st.builds(
        lambda v, op, c: Comparison(v, op, Constant(c)),
        st.sampled_from([X, Y, Z]),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.integers(min_value=0, max_value=3),
    )
    var_var = st.builds(
        lambda i, op: Comparison([X, Y, Z][i], op, [Y, Z, X][i]),
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["=", "!=", "<", ">"]),
    )
    linear = st.builds(
        lambda vs, b: LinearAtom(list(vs), "<=", b),
        st.lists(st.sampled_from([X, Y, Z]), min_size=1, max_size=2, unique=True),
        st.integers(min_value=0, max_value=4),
    )
    atoms = st.one_of(var_const, var_var, linear)
    return st.recursive(
        atoms,
        lambda sub: st.one_of(
            st.builds(lambda cs: conjoin(cs), st.lists(sub, min_size=1, max_size=3)),
            st.builds(lambda cs: disjoin(cs), st.lists(sub, min_size=1, max_size=3)),
            st.builds(Not, sub),
        ),
        max_leaves=8,
    )


@settings(max_examples=150, deadline=None)
@given(conditions())
def test_canonical_is_equivalent(cond):
    assert _solver().equivalent(cond, canonicalize(cond))


@settings(max_examples=150, deadline=None)
@given(conditions())
def test_canonical_is_idempotent(cond):
    canon = canonicalize(cond)
    assert canonicalize(canon) == canon


def _shuffle(cond, rng):
    if isinstance(cond, (And, Or)):
        children = [_shuffle(c, rng) for c in cond.children]
        rng.shuffle(children)
        return And(children) if isinstance(cond, And) else Or(children)
    if isinstance(cond, Not):
        return Not(_shuffle(cond.child, rng))
    return cond


@settings(max_examples=150, deadline=None)
@given(conditions(), st.integers(min_value=0, max_value=10_000))
def test_canonical_is_permutation_invariant(cond, seed):
    shuffled = _shuffle(cond, random.Random(seed))
    assert canonicalize(shuffled) == canonicalize(cond)


@settings(max_examples=80, deadline=None)
@given(conditions())
def test_interned_equals_plain(cond):
    assert canonicalize(cond, intern=InternTable()) == canonicalize(cond)
