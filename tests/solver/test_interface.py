"""The ConditionSolver façade."""

import pytest

from repro.ctable.condition import (
    FALSE,
    LinearAtom,
    TRUE,
    conjoin,
    disjoin,
    eq,
    lt,
    ne,
)
from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")


@pytest.fixture
def bools():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN}))


@pytest.fixture
def unbounded():
    return ConditionSolver(DomainMap(default=Unbounded("any")))


class TestSat:
    def test_true_false(self, bools):
        assert bools.is_satisfiable(TRUE)
        assert not bools.is_satisfiable(FALSE)

    def test_enumeration_route(self):
        # fast_path=False: this test pins the *backend* routing.
        bools = ConditionSolver(
            DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN}),
            fast_path=False,
        )
        assert bools.is_satisfiable(LinearAtom([X, Y, Z], "=", 2))
        assert not bools.is_satisfiable(LinearAtom([X, Y, Z], "=", 5))
        assert bools.stats.enumeration_used > 0
        assert bools.stats.dpll_used == 0

    def test_fast_path_route(self, bools):
        # The same decisions with the fast path on: no backend at all.
        assert bools.is_satisfiable(LinearAtom([X, Y, Z], "=", 2))
        assert not bools.is_satisfiable(LinearAtom([X, Y, Z], "=", 5))
        assert bools.stats.fast_path_hits == 2
        assert bools.stats.enumeration_used == 0
        assert bools.stats.dpll_used == 0
        assert bools.stats.decisions == 2

    def test_dpll_route(self):
        unbounded = ConditionSolver(
            DomainMap(default=Unbounded("any")), fast_path=False
        )
        assert unbounded.is_satisfiable(eq(X, "a"))
        assert unbounded.stats.dpll_used > 0

    def test_cache(self, bools):
        cond = eq(X, 1)
        bools.is_satisfiable(cond)
        before = bools.stats.cache_hits
        bools.is_satisfiable(cond)
        assert bools.stats.cache_hits == before + 1

    def test_enumeration_limit_falls_back_to_dpll(self):
        domains = DomainMap({X: FiniteDomain(list(range(100))), Y: FiniteDomain(list(range(100)))})
        solver = ConditionSolver(domains, enumeration_limit=10, fast_path=False)
        assert solver.is_satisfiable(eq(X, Y))
        assert solver.stats.dpll_used == 1


class TestValidityImplication:
    def test_is_valid(self, bools):
        assert bools.is_valid(disjoin([eq(X, 0), eq(X, 1)]))
        assert not bools.is_valid(eq(X, 1))

    def test_implies_basic(self, bools):
        assert bools.implies(conjoin([eq(X, 1), eq(Y, 0)]), eq(X, 1))
        assert not bools.implies(eq(X, 1), eq(Y, 0))

    def test_implies_with_linear(self, bools):
        # x=1 ∧ y=0 ∧ z=0 implies x+y+z=1
        ante = conjoin([eq(X, 1), eq(Y, 0), eq(Z, 0)])
        assert bools.implies(ante, LinearAtom([X, Y, Z], "=", 1))

    def test_implies_trivia(self, bools):
        assert bools.implies(FALSE, eq(X, 1))
        assert bools.implies(eq(X, 1), TRUE)
        assert bools.implies(eq(X, 1), eq(X, 1))

    def test_equivalent(self, bools):
        a = ne(X, 0)
        b = eq(X, 1)
        assert bools.equivalent(a, b)  # over {0,1}
        assert not bools.equivalent(a, eq(Y, 1))


class TestModels:
    def test_models_enumeration(self, bools):
        models = list(bools.models(LinearAtom([X, Y], "=", 1)))
        assert len(models) == 2

    def test_model_count(self, bools):
        assert bools.model_count(disjoin([eq(X, 1), eq(Y, 1)])) == 3

    def test_model_none_for_unsat(self, bools):
        assert bools.model(conjoin([eq(X, 1), eq(X, 0)])) is None

    def test_model_variable_free(self, bools):
        assert bools.model(TRUE) == {}
        assert bools.model(FALSE) is None

    def test_model_unbounded_raises_when_sat(self, unbounded):
        with pytest.raises(ValueError):
            unbounded.model(eq(X, "k"))


class TestSimplify:
    def test_prune_unsat_to_false(self, bools):
        assert bools.prune(conjoin([eq(X, 1), eq(X, 0)])) is FALSE

    def test_prune_valid_to_true(self, bools):
        assert bools.prune(disjoin([eq(X, 0), eq(X, 1)])) is TRUE

    def test_simplify_drops_redundant_conjunct(self, bools):
        cond = conjoin([eq(X, 1), ne(X, 0)])  # second implied by first
        out = bools.simplify(cond)
        assert out == eq(X, 1) or out == ne(X, 0)

    def test_simplify_preserves_semantics(self, bools):
        cond = conjoin([LinearAtom([X, Y, Z], "=", 1), eq(X, 1)])
        out = bools.simplify(cond)
        assert bools.equivalent(cond, out)


class TestStats:
    def test_time_accounted(self, bools):
        bools.is_satisfiable(LinearAtom([X, Y, Z], "=", 1))
        assert bools.stats.time_seconds >= 0
        assert bools.stats.sat_calls >= 1

    def test_reset(self, bools):
        bools.is_satisfiable(eq(X, 1))
        bools.stats.reset()
        assert bools.stats.sat_calls == 0

    def test_with_domains_creates_sibling(self, bools):
        other = bools.with_domains(DomainMap(default=Unbounded()))
        assert other is not bools
        assert other.enumeration_limit == bools.enumeration_limit
