"""Semantic condition minimization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctable.condition import (
    And,
    Comparison,
    LinearAtom,
    Or,
    FALSE,
    TRUE,
    conjoin,
    disjoin,
    eq,
    ne,
)
from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver
from repro.solver.minimize import MinimizeError, minimize

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")
BOOLS = DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN})


class TestMinimize:
    def test_unsat_to_false(self):
        assert minimize(conjoin([eq(X, 1), eq(X, 0)]), BOOLS) is FALSE

    def test_valid_to_true(self):
        assert minimize(disjoin([eq(X, 0), eq(X, 1)]), BOOLS) is TRUE

    def test_irrelevant_variable_dropped(self):
        # (x=1 ∧ y=0) ∨ (x=1 ∧ y=1)  ≡  x=1
        cond = disjoin(
            [conjoin([eq(X, 1), eq(Y, 0)]), conjoin([eq(X, 1), eq(Y, 1)])]
        )
        assert minimize(cond, BOOLS) == eq(X, 1)

    def test_nested_redundancy_flattened(self):
        cond = conjoin([eq(X, 1), disjoin([eq(X, 1), eq(Y, 0)])])
        assert minimize(cond, BOOLS) == eq(X, 1)

    def test_linear_atom_expanded_compactly(self):
        cond = LinearAtom([X, Y], "=", 2)  # both must be 1
        out = minimize(cond, BOOLS)
        solver = ConditionSolver(BOOLS)
        assert solver.equivalent(out, conjoin([eq(X, 1), eq(Y, 1)]))

    def test_subsumed_cube_dropped(self):
        cond = disjoin([eq(X, 1), conjoin([eq(X, 1), eq(Y, 1)])])
        assert minimize(cond, BOOLS) == eq(X, 1)

    def test_over_limit_returns_input(self):
        domains = DomainMap({v: FiniteDomain(list(range(10))) for v in (X, Y, Z)})
        cond = conjoin([ne(X, 1), ne(Y, 2), ne(Z, 3)])
        assert minimize(cond, domains, model_limit=10) is cond

    def test_unbounded_rejected(self):
        with pytest.raises(MinimizeError):
            minimize(eq(X, "k"), DomainMap(default=Unbounded()))

    def test_condition_without_variables_passthrough(self):
        assert minimize(TRUE, BOOLS) is TRUE
        assert minimize(FALSE, BOOLS) is FALSE


def conditions():
    atoms = st.one_of(
        st.builds(
            lambda v, op, c: Comparison(v, op, Constant(c)).constant_fold(),
            st.sampled_from([X, Y, Z]),
            st.sampled_from(["=", "!="]),
            st.sampled_from([0, 1]),
        ),
        st.builds(
            lambda vs, b: LinearAtom(list(vs), "=", b),
            st.lists(st.sampled_from([X, Y, Z]), min_size=1, max_size=3, unique=True),
            st.integers(min_value=0, max_value=3),
        ),
    )
    return st.recursive(
        atoms,
        lambda sub: st.one_of(
            st.builds(lambda cs: conjoin(cs), st.lists(sub, min_size=1, max_size=3)),
            st.builds(lambda cs: disjoin(cs), st.lists(sub, min_size=1, max_size=3)),
            st.builds(lambda c: c.negate(), sub),
        ),
        max_leaves=6,
    )


@settings(max_examples=120, deadline=None)
@given(conditions())
def test_minimize_preserves_semantics(cond):
    solver = ConditionSolver(BOOLS)
    out = minimize(cond, BOOLS)
    assert solver.equivalent(cond, out)


@settings(max_examples=60, deadline=None)
@given(conditions())
def test_minimize_never_grows_model_count(cond):
    solver = ConditionSolver(BOOLS)
    out = minimize(cond, BOOLS)
    cvars = sorted(cond.cvariables() | out.cvariables(), key=lambda v: v.name)
    if not cvars:
        return
    from repro.solver.enumerate import count_models

    assert count_models(out, BOOLS, variables=cvars) == count_models(
        cond, BOOLS, variables=cvars
    )


# -- round-trip invariants ---------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(conditions())
def test_minimize_idempotent(cond):
    """Minimization is a function of the model set, so it is a fixpoint."""
    out = minimize(cond, BOOLS)
    assert minimize(out, BOOLS) == out


@settings(max_examples=60, deadline=None)
@given(conditions())
def test_prune_leaves_minimized_alone(cond):
    """An exact minimizer already did prune's job: TRUE/FALSE collapse
    happened, and anything else is satisfiable-but-not-valid."""
    solver = ConditionSolver(BOOLS, memo=None)
    out = minimize(cond, BOOLS)
    assert solver.prune(out) == out


@settings(max_examples=60, deadline=None)
@given(conditions())
def test_simplify_round_trip_preserves_equivalence(cond):
    solver = ConditionSolver(BOOLS, memo=None)
    simplified = solver.simplify(cond)
    assert solver.equivalent(simplified, cond)
    # ... and minimizing the simplified form meets minimize(cond): both
    # are the canonical cube synthesis of the same model set.
    assert minimize(simplified, BOOLS) == minimize(cond, BOOLS)


@settings(max_examples=60, deadline=None)
@given(conditions())
def test_canonicalize_commutes_with_minimize_semantics(cond):
    from repro.solver.canonical import canonicalize

    solver = ConditionSolver(BOOLS, memo=None)
    assert solver.equivalent(minimize(canonicalize(cond), BOOLS), minimize(cond, BOOLS))
