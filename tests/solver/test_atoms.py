"""Property-based tests for the interval/atom semi-decision procedure.

:mod:`repro.solver.atoms` may answer ``None`` whenever it likes, but a
``True``/``False`` is a claim of proof.  Hypothesis hunts for inputs
where a claim disagrees with the exact enumeration backend, plus the
algebraic invariants the procedure leans on: permutation-invariance of
equality chains, satisfiability-preservation of interval splits, and
the mutual exclusion of ``prove_unsat`` / ``prove_valid``.
"""

from hypothesis import given, settings, strategies as st

from repro.ctable.condition import (
    TRUE,
    Comparison,
    Condition,
    LinearAtom,
    conjoin,
    disjoin,
    eq,
)
from repro.ctable.terms import Constant, CVariable
from repro.solver.atoms import fast_implies, fast_sat, prove_unsat, prove_valid
from repro.solver.domains import DomainMap, FiniteDomain, IntRange
from repro.solver.enumerate import is_satisfiable_enum

VARS = [CVariable(f"v{i}") for i in range(4)]
VALUES = [0, 1, 2]
DOMAINS = DomainMap({v: FiniteDomain(VALUES) for v in VARS})


def atoms() -> st.SearchStrategy[Condition]:
    comparison = st.builds(
        Comparison,
        st.sampled_from(VARS),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.one_of(
            st.sampled_from(VARS),
            st.sampled_from([Constant(v) for v in VALUES + [-1, 3]]),
        ),
    )
    linear = st.builds(
        lambda vs, op, bound: LinearAtom(list(vs), op, bound),
        st.lists(st.sampled_from(VARS), min_size=1, max_size=3, unique=True),
        st.sampled_from(["=", "!=", "<=", ">="]),
        st.integers(min_value=-1, max_value=7),
    )
    return st.one_of(comparison, linear)


def conditions(depth: int = 2) -> st.SearchStrategy[Condition]:
    if depth == 0:
        return atoms()
    sub = conditions(depth - 1)
    return st.one_of(
        atoms(),
        st.builds(conjoin, st.lists(sub, min_size=1, max_size=3)),
        st.builds(disjoin, st.lists(sub, min_size=1, max_size=3)),
    )


@settings(max_examples=150, deadline=None)
@given(conditions())
def test_fast_sat_sound_vs_enumeration(cond):
    fast = fast_sat(cond, DOMAINS)
    if fast is not None:
        assert fast == is_satisfiable_enum(cond, DOMAINS)


@settings(max_examples=100, deadline=None)
@given(conditions(), conditions())
def test_fast_implies_sound_vs_enumeration(antecedent, consequent):
    fast = fast_implies(antecedent, consequent, DOMAINS)
    if fast is not None:
        # a ⊨ b  ⟺  a ∧ ¬b is unsatisfiable.
        refutation = conjoin([antecedent, consequent.negate()])
        assert fast == (not is_satisfiable_enum(refutation, DOMAINS))


@settings(max_examples=100, deadline=None)
@given(
    st.permutations(
        [eq(VARS[0], VARS[1]), eq(VARS[1], VARS[2]), eq(VARS[2], VARS[3])]
    ),
    st.lists(atoms(), min_size=0, max_size=3),
)
def test_equality_chain_union_order_independent(chain, extra):
    """Union-find must not care which order the chain arrives in."""
    reference = fast_sat(conjoin(list(chain) + extra), DOMAINS)
    reordered = fast_sat(conjoin(extra + list(reversed(chain))), DOMAINS)
    if reference is not None and reordered is not None:
        assert reference == reordered


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=8),
    st.lists(atoms(), min_size=0, max_size=2),
)
def test_interval_split_preserves_satisfiability(a, b, c, extra):
    """``lo ≤ v ≤ hi`` ⟺ split at any interior point — same verdict."""
    lo, mid, hi = sorted((a, b, c))
    v = VARS[0]
    domains = DomainMap({v: IntRange(0, 8)})
    for var in VARS[1:]:
        domains.declare(var, FiniteDomain(VALUES))
    whole = conjoin(
        [Comparison(v, ">=", Constant(lo)), Comparison(v, "<=", Constant(hi))] + extra
    )
    split = disjoin(
        [
            conjoin(
                [
                    Comparison(v, ">=", Constant(lo)),
                    Comparison(v, "<", Constant(mid)),
                ]
                + extra
            ),
            conjoin(
                [
                    Comparison(v, ">=", Constant(mid)),
                    Comparison(v, "<=", Constant(hi)),
                ]
                + extra
            ),
        ]
    )
    assert is_satisfiable_enum(whole, domains) == is_satisfiable_enum(split, domains)
    fast_whole = fast_sat(whole, domains)
    fast_split = fast_sat(split, domains)
    for fast in (fast_whole, fast_split):
        if fast is not None:
            assert fast == is_satisfiable_enum(whole, domains)


@settings(max_examples=150, deadline=None)
@given(conditions())
def test_prove_unsat_prove_valid_mutually_exclusive(cond):
    unsat, valid = prove_unsat(cond), prove_valid(cond)
    assert not (unsat and valid)
    # Domain-free claims must hold over the finite test domains too.
    if unsat:
        assert not is_satisfiable_enum(cond, DOMAINS)
    if valid:
        assert not is_satisfiable_enum(cond.negate(), DOMAINS)


def test_prove_valid_trivial():
    assert prove_valid(TRUE)
    assert prove_unsat(TRUE.negate())
