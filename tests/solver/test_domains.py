"""Domain declarations."""

import pytest

from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import (
    BOOL_DOMAIN,
    DomainMap,
    FiniteDomain,
    IntRange,
    Unbounded,
)

X, Y = CVariable("x"), CVariable("y")


class TestFiniteDomain:
    def test_values_and_size(self):
        d = FiniteDomain([1, 2, 3])
        assert d.size() == 3
        assert d.is_finite
        assert Constant(2) in d.values()

    def test_dedup(self):
        assert FiniteDomain([1, 1, 2]).size() == 2

    def test_contains(self):
        d = FiniteDomain(["a", "b"])
        assert d.contains("a")
        assert d.contains(Constant("b"))
        assert not d.contains("c")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FiniteDomain([])

    def test_bool_domain(self):
        assert BOOL_DOMAIN.size() == 2
        assert BOOL_DOMAIN.contains(0) and BOOL_DOMAIN.contains(1)


class TestIntRange:
    def test_basic(self):
        d = IntRange(1, 3)
        assert d.size() == 3
        assert d.contains(2)
        assert not d.contains(0)
        assert not d.contains(2.5)
        assert [v.value for v in d.values()] == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IntRange(3, 1)


class TestUnbounded:
    def test_everything_goes(self):
        d = Unbounded("string")
        assert not d.is_finite
        assert d.contains("anything")
        assert d.size() is None
        with pytest.raises(ValueError):
            d.values()


class TestDomainMap:
    def test_declare_and_lookup(self):
        m = DomainMap()
        m.declare(X, BOOL_DOMAIN)
        assert m.domain_of(X) is BOOL_DOMAIN
        assert X in m

    def test_declare_by_name_and_iterable(self):
        m = DomainMap()
        m.declare("x", [1, 2])
        assert m.domain_of(X) == FiniteDomain([1, 2])

    def test_default_unbounded(self):
        m = DomainMap()
        assert not m.domain_of(Y).is_finite

    def test_custom_default(self):
        m = DomainMap(default=BOOL_DOMAIN)
        assert m.domain_of(Y) is BOOL_DOMAIN

    def test_all_finite_and_size(self):
        m = DomainMap({X: BOOL_DOMAIN, Y: FiniteDomain([1, 2, 3])})
        assert m.all_finite([X, Y])
        assert m.enumeration_size([X, Y]) == 6

    def test_enumeration_size_none_when_unbounded(self):
        m = DomainMap({X: BOOL_DOMAIN})
        assert m.enumeration_size([X, Y]) is None

    def test_copy_independent(self):
        m = DomainMap({X: BOOL_DOMAIN})
        c = m.copy()
        c.declare(Y, BOOL_DOMAIN)
        assert Y not in m and Y in c

    def test_merged_with(self):
        a = DomainMap({X: BOOL_DOMAIN})
        b = DomainMap({X: FiniteDomain([5]), Y: BOOL_DOMAIN})
        merged = a.merged_with(b)
        assert merged.domain_of(X) == FiniteDomain([5])
        assert Y in merged


class TestFingerprint:
    """The memo-key signature: share exactly when sharing is sound."""

    def test_agreeing_maps_share(self):
        a = DomainMap({X: BOOL_DOMAIN, Y: FiniteDomain([1, 2])})
        b = DomainMap({Y: FiniteDomain([2, 1]), X: FiniteDomain([0, 1])})
        assert a.fingerprint([X, Y]) == b.fingerprint([X, Y])

    def test_differing_domain_splits(self):
        a = DomainMap({X: BOOL_DOMAIN})
        b = DomainMap({X: IntRange(0, 1)})
        # FiniteDomain([0,1]) and IntRange(0,1) denote the same values but
        # are distinct Domain objects; distinct fingerprints only cost a
        # recomputation, never soundness.
        assert a.fingerprint([X]) != b.fingerprint([X])

    def test_default_applies_to_undeclared(self):
        strings = DomainMap(default=Unbounded("string"))
        ints = DomainMap(default=Unbounded("int"))
        assert strings.fingerprint([X]) != ints.fingerprint([X])
        assert strings.fingerprint([X]) == DomainMap(default=Unbounded("string")).fingerprint([X])

    def test_order_and_duplicate_invariant(self):
        m = DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN})
        assert m.fingerprint([X, Y]) == m.fingerprint([Y, X, X])

    def test_hashable(self):
        m = DomainMap({X: BOOL_DOMAIN})
        assert hash(m.fingerprint([X, Y])) == hash(m.fingerprint([Y, X]))

    def test_irrelevant_declarations_ignored(self):
        a = DomainMap({X: BOOL_DOMAIN})
        b = DomainMap({X: BOOL_DOMAIN, Y: FiniteDomain([9])})
        assert a.fingerprint([X]) == b.fingerprint([X])

    def test_empty_variable_set(self):
        assert DomainMap().fingerprint([]) == ()
