"""Property-based solver tests: the two backends must agree.

Random conditions over finite domains are decided both by exact
enumeration and by the DPLL(T) driver; any disagreement is a solver bug.
Implication is cross-checked against its model-theoretic definition.
"""

from hypothesis import given, settings, strategies as st

from repro.ctable.condition import (
    Comparison,
    Condition,
    LinearAtom,
    conjoin,
    disjoin,
)
from repro.ctable.terms import Constant, CVariable
from repro.solver.domains import DomainMap, FiniteDomain
from repro.solver.dpll import is_satisfiable_dpll
from repro.solver.enumerate import is_satisfiable_enum, iter_models
from repro.solver.interface import ConditionSolver

VARS = [CVariable(f"v{i}") for i in range(4)]
VALUES = [0, 1, 2]
DOMAINS = DomainMap({v: FiniteDomain(VALUES) for v in VARS})


def atoms() -> st.SearchStrategy[Condition]:
    comparison = st.builds(
        lambda a, op, b: Comparison(a, op, b).constant_fold(),
        st.sampled_from(VARS),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.one_of(st.sampled_from(VARS), st.sampled_from([Constant(v) for v in VALUES])),
    )
    linear = st.builds(
        lambda vs, op, bound: LinearAtom(list(vs), op, bound),
        st.lists(st.sampled_from(VARS), min_size=1, max_size=3, unique=True),
        st.sampled_from(["=", "<=", ">="]),
        st.integers(min_value=-1, max_value=7),
    )
    return st.one_of(comparison, linear)


def conditions(depth: int = 2) -> st.SearchStrategy[Condition]:
    if depth == 0:
        return atoms()
    sub = conditions(depth - 1)
    return st.one_of(
        atoms(),
        st.builds(lambda cs: conjoin(cs), st.lists(sub, min_size=1, max_size=3)),
        st.builds(lambda cs: disjoin(cs), st.lists(sub, min_size=1, max_size=3)),
        st.builds(lambda c: c.negate(), sub),
    )


@settings(max_examples=120, deadline=None)
@given(conditions())
def test_enumeration_and_dpll_agree(cond):
    assert is_satisfiable_enum(cond, DOMAINS) == is_satisfiable_dpll(cond, DOMAINS)


@settings(max_examples=80, deadline=None)
@given(conditions(), conditions())
def test_implies_matches_model_semantics(a, b):
    solver = ConditionSolver(DOMAINS)
    claimed = solver.implies(a, b)
    cvars = sorted(a.cvariables() | b.cvariables(), key=lambda v: v.name)
    truth = all(
        b.evaluate(m) for m in iter_models(a, DOMAINS, variables=cvars)
    )
    assert claimed == truth


@settings(max_examples=80, deadline=None)
@given(conditions())
def test_negation_involutive_semantics(cond):
    solver = ConditionSolver(DOMAINS)
    assert solver.equivalent(cond, cond.negate().negate())


@settings(max_examples=80, deadline=None)
@given(conditions())
def test_condition_and_negation_partition_worlds(cond):
    cvars = sorted(cond.cvariables(), key=lambda v: v.name)
    models = sum(1 for _ in iter_models(cond, DOMAINS, variables=cvars))
    anti = sum(1 for _ in iter_models(cond.negate(), DOMAINS, variables=cvars))
    assert models + anti == len(VALUES) ** len(cvars)


@settings(max_examples=60, deadline=None)
@given(conditions())
def test_simplify_preserves_equivalence(cond):
    solver = ConditionSolver(DOMAINS)
    assert solver.equivalent(cond, solver.simplify(cond))
