"""Shared verdict memoization: sharing, keying, and soundness contracts."""

import pytest

from repro.ctable.condition import Comparison, conjoin, disjoin, eq, ne
from repro.ctable.terms import Constant, CVariable
from repro.robustness.faultinject import FaultInjector, FaultPlan
from repro.robustness.governor import Governor
from repro.robustness.verdict import Trivalent, Verdict
from repro.solver.domains import DomainMap, IntRange, Unbounded
from repro.solver.interface import SHARED_MEMO, ConditionSolver
from repro.solver.memo import MemoTable, reset_shared_memo, shared_memo

X, Y = CVariable("x"), CVariable("y")
DOMAINS = DomainMap({X: IntRange(0, 9), Y: IntRange(0, 9)})


class TestSharing:
    def test_cross_instance_sat_sharing(self):
        memo = MemoTable()
        first = ConditionSolver(DOMAINS, memo=memo)
        assert first.sat_verdict(eq(X, 5)) is Verdict.SAT
        paid = first.stats.decisions
        assert paid == 1

        second = ConditionSolver(DOMAINS, memo=memo)
        assert second.sat_verdict(eq(X, 5)) is Verdict.SAT
        assert second.stats.decisions == 0
        assert second.stats.memo_hits == 1

    def test_semantically_equal_conditions_share(self):
        memo = MemoTable()
        first = ConditionSolver(DOMAINS, memo=memo)
        first.sat_verdict(conjoin([eq(X, 5), Comparison(X, ">=", Constant(3))]))
        second = ConditionSolver(DOMAINS, memo=memo)
        assert second.sat_verdict(eq(X, 5)) is Verdict.SAT
        assert second.stats.decisions == 0

    def test_implies_memoized_on_canonical_pair(self):
        # fast_path=False: this test pins the canonical-pair memo route
        # (with the fast path on, tier 0 answers before the memo).
        memo = MemoTable()
        a = Comparison(X, ">=", Constant(3))
        b = Comparison(X, ">=", Constant(1))
        first = ConditionSolver(DOMAINS, memo=memo, fast_path=False)
        assert first.implies_verdict(a, b) is Trivalent.TRUE
        second = ConditionSolver(DOMAINS, memo=memo, fast_path=False)
        assert second.implies_verdict(a, b) is Trivalent.TRUE
        assert second.stats.decisions == 0
        assert second.stats.memo_hits >= 1

    def test_equivalent_pair_settled_without_solver(self):
        # fast_path=False: this test pins the canonical-equality route
        # (with the fast path on, tier 0 answers first and counts a hit).
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, memo=memo, fast_path=False)
        a = conjoin([eq(X, 5), Comparison(X, ">=", Constant(3))])
        assert solver.implies_verdict(a, eq(X, 5)) is Trivalent.TRUE
        assert solver.stats.decisions == 0

    def test_default_is_process_wide_table(self):
        reset_shared_memo()
        a = ConditionSolver(DOMAINS)
        b = ConditionSolver(DOMAINS)
        assert a.memo is b.memo is shared_memo()

    def test_with_domains_propagates_memo(self):
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, memo=memo)
        sibling = solver.with_domains(DomainMap({X: IntRange(0, 1)}))
        assert sibling.memo is memo
        off = ConditionSolver(DOMAINS, memo=None)
        assert off.with_domains(DOMAINS).memo is None


class TestKeying:
    def test_different_domains_never_share(self):
        memo = MemoTable()
        wide = ConditionSolver(DOMAINS, memo=memo)
        assert wide.sat_verdict(eq(X, 5)) is Verdict.SAT
        narrow = ConditionSolver(DomainMap({X: IntRange(0, 1)}), memo=memo)
        assert narrow.sat_verdict(eq(X, 5)) is Verdict.UNSAT
        assert narrow.stats.memo_hits == 0

    def test_fingerprint_covers_default_domain(self):
        memo = MemoTable()
        strings = ConditionSolver(DomainMap(default=Unbounded("string")), memo=memo)
        ints = ConditionSolver(DomainMap(default=Unbounded("int")), memo=memo)
        assert strings.sat_verdict(eq(X, 5)) is Verdict.SAT
        # Different default domain → different fingerprint → no reuse.
        assert ints.sat_verdict(eq(X, 5)) is Verdict.SAT
        assert ints.stats.memo_hits == 0

    def test_irrelevant_declarations_do_not_split_keys(self):
        memo = MemoTable()
        a = ConditionSolver(DOMAINS, memo=memo)
        assert a.sat_verdict(eq(X, 5)) is Verdict.SAT
        extended = DOMAINS.copy()
        extended.declare(CVariable("unrelated"), IntRange(0, 1))
        b = ConditionSolver(extended, memo=memo)
        assert b.sat_verdict(eq(X, 5)) is Verdict.SAT
        assert b.stats.memo_hits == 1


class TestContracts:
    def test_unknown_never_cached(self):
        injector = FaultInjector(FaultPlan(timeout_every=1))
        governor = Governor(on_budget="degrade", injector=injector)
        governor.start()
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, governor=governor, memo=memo)
        assert solver.sat_verdict(eq(X, 5)) is Verdict.UNKNOWN
        assert len(memo) == 0
        # A later, un-faulted solver gets a definite answer.
        healthy = ConditionSolver(DOMAINS, memo=memo)
        assert healthy.sat_verdict(eq(X, 5)) is Verdict.SAT
        assert healthy.stats.memo_hits == 0

    def test_put_rejects_non_boolean(self):
        memo = MemoTable()
        with pytest.raises(TypeError):
            memo.put(("sat", eq(X, 1), ()), None)

    def test_memo_none_disables_everything(self):
        solver = ConditionSolver(DOMAINS, memo=None)
        assert solver.memo is None
        assert solver.canonical(eq(X, 5)) is not None
        cond = conjoin([eq(X, 5), Comparison(X, ">=", Constant(3))])
        # canonical() is the identity when memoization is off.
        assert solver.canonical(cond) is cond
        assert solver.sat_verdict(cond) is Verdict.SAT
        assert solver.stats.memo_hits == 0
        assert solver.stats.memo_misses == 0

    def test_canonical_collapse_counts_no_decision(self):
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, memo=memo)
        assert solver.sat_verdict(conjoin([eq(X, 1), eq(X, 2)])) is Verdict.UNSAT
        assert solver.stats.canonical_collapses == 1
        assert solver.stats.decisions == 0

    def test_lru_eviction_bounded(self):
        memo = MemoTable(max_entries=4)
        solver = ConditionSolver(DOMAINS, memo=memo)
        for i in range(10):
            solver.sat_verdict(eq(X, i))
        assert len(memo) <= 4
        assert memo.evictions >= 6

    def test_counters_snapshot(self):
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, memo=memo)
        solver.sat_verdict(eq(X, 5))
        got = memo.counters()
        assert got["memo_entries"] == 1
        assert got["interned"] >= 1
        assert set(got) == {
            "memo_entries", "memo_hits", "memo_misses",
            "memo_evictions", "interned", "intern_hits",
        }

    def test_clear_resets_everything(self):
        memo = MemoTable()
        solver = ConditionSolver(DOMAINS, memo=memo)
        solver.sat_verdict(eq(X, 5))
        memo.clear()
        assert len(memo) == 0
        assert len(memo.interner) == 0
        assert memo.counters()["memo_hits"] == 0


class TestSurfacing:
    def test_eval_stats_extra_carries_memo_deltas(self):
        from repro.ctable.table import CTable
        from repro.engine.pipeline import solver_prune

        memo = MemoTable()
        warm = ConditionSolver(DOMAINS, memo=memo)
        warm.sat_verdict(ne(X, 3))
        table = CTable("T", ["a"])
        table.add([1], ne(X, 3))
        solver = ConditionSolver(DOMAINS, memo=memo)
        from repro.engine.stats import EvalStats

        stats = EvalStats()
        solver_prune(table, solver, stats)
        assert stats.extra.get("memo_hits") == 1

    def test_explain_appends_memo_line(self):
        from repro.ctable.table import CTable, Database
        from repro.engine.algebra import Scan
        from repro.engine.explain import explain

        db = Database([CTable("T", ["a"])])
        solver = ConditionSolver(DOMAINS, memo=MemoTable())
        text = explain(Scan("T"), db, solver=solver)
        assert "[memo]" in text
        without = explain(Scan("T"), db, solver=ConditionSolver(DOMAINS, memo=None))
        assert "[memo]" not in without
