"""Conjunction-level theory solver."""

import pytest

from repro.ctable.condition import Comparison, FALSE, LinearAtom, TRUE, eq, ge, gt, le, lt, ne
from repro.ctable.terms import Constant, CVariable, Variable
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, IntRange, Unbounded
from repro.solver.theory import SAT, UNSAT, UnsupportedCondition, check_conjunction

X, Y, Z = CVariable("x"), CVariable("y"), CVariable("z")
UNB = DomainMap(default=Unbounded("any"))
BOOLS = DomainMap({X: BOOL_DOMAIN, Y: BOOL_DOMAIN, Z: BOOL_DOMAIN})


class TestEquality:
    def test_consistent_chain(self):
        assert check_conjunction([eq(X, Y), eq(Y, Z)], UNB) == SAT

    def test_constant_conflict_through_chain(self):
        atoms = [eq(X, 1), eq(X, Y), eq(Y, 2)]
        assert check_conjunction(atoms, UNB) == UNSAT

    def test_equal_constants_fine(self):
        assert check_conjunction([eq(X, 1), eq(Y, 1), eq(X, Y)], UNB) == SAT

    def test_disequality_violated_by_merge(self):
        assert check_conjunction([eq(X, Y), ne(X, Y)], UNB) == UNSAT

    def test_disequality_to_different_constants(self):
        assert check_conjunction([eq(X, 1), ne(X, 2)], UNB) == SAT

    def test_disequality_same_constant(self):
        assert check_conjunction([eq(X, 1), ne(X, 1)], UNB) == UNSAT

    def test_false_atom_short_circuits(self):
        assert check_conjunction([FALSE], UNB) == UNSAT
        assert check_conjunction([TRUE], UNB) == SAT

    def test_program_variable_rejected(self):
        with pytest.raises(UnsupportedCondition):
            check_conjunction([Comparison(Variable("v"), "=", Constant(1))], UNB)


class TestDomains:
    def test_pinned_constant_outside_domain(self):
        assert check_conjunction([eq(X, 7)], BOOLS) == UNSAT

    def test_pinned_constant_inside_domain(self):
        assert check_conjunction([eq(X, 1)], BOOLS) == SAT

    def test_domain_intersection_empty(self):
        domains = DomainMap({X: FiniteDomain([1, 2]), Y: FiniteDomain([3, 4])})
        assert check_conjunction([eq(X, Y)], domains) == UNSAT

    def test_domain_intersection_nonempty(self):
        domains = DomainMap({X: FiniteDomain([1, 2]), Y: FiniteDomain([2, 3])})
        assert check_conjunction([eq(X, Y)], domains) == SAT


class TestOrdering:
    def test_strict_cycle(self):
        assert check_conjunction([lt(X, Y), lt(Y, X)], UNB) == UNSAT

    def test_mixed_cycle_with_strict_edge(self):
        assert check_conjunction([le(X, Y), le(Y, Z), lt(Z, X)], UNB) == UNSAT

    def test_nonstrict_cycle_ok(self):
        assert check_conjunction([le(X, Y), le(Y, X)], UNB) == SAT

    def test_chain_sat(self):
        assert check_conjunction([lt(X, Y), lt(Y, Z)], UNB) == SAT

    def test_bounds_conflict(self):
        assert check_conjunction([gt(X, 5), lt(X, 3)], UNB) == UNSAT

    def test_bounds_through_variable(self):
        # x < y, y < 3, x > 5  →  unsat
        atoms = [lt(X, Y), lt(Y, 3), gt(X, 5)]
        assert check_conjunction(atoms, UNB) == UNSAT

    def test_constant_ordering_folds(self):
        # (2 < 1) never constructed — constant_fold handles; ordering of
        # pinned classes:
        atoms = [eq(X, 2), eq(Y, 1), lt(X, Y)]
        assert check_conjunction(atoms, UNB) == UNSAT

    def test_string_ordering_constants(self):
        atoms = [eq(X, "a"), eq(Y, "b"), lt(X, Y)]
        assert check_conjunction(atoms, UNB) == SAT

    def test_ordering_within_finite_domain(self):
        atoms = [lt(X, Y)]
        assert check_conjunction(atoms, BOOLS) == SAT
        atoms = [lt(X, Y), lt(Y, Z)]  # needs 3 distinct values in {0,1}
        assert check_conjunction(atoms, BOOLS) == UNSAT


class TestLinear:
    def test_sum_feasible(self):
        assert check_conjunction([LinearAtom([X, Y, Z], "=", 1)], BOOLS) == SAT

    def test_sum_over_max(self):
        assert check_conjunction([LinearAtom([X, Y], "=", 3)], BOOLS) == UNSAT

    def test_sum_under_min(self):
        assert check_conjunction([LinearAtom([X, Y], "=", -1)], BOOLS) == UNSAT

    def test_sum_with_pinned_values(self):
        atoms = [eq(X, 0), eq(Y, 0), LinearAtom([X, Y, Z], "=", 2)]
        assert check_conjunction(atoms, BOOLS) == UNSAT

    def test_negative_coefficients(self):
        atom = LinearAtom({X: 1, Y: -1}, ">", 0)
        assert check_conjunction([atom], BOOLS) == SAT
        assert check_conjunction([atom, eq(X, 0)], BOOLS) == UNSAT

    def test_inequality_directions(self):
        assert check_conjunction([LinearAtom([X], "<", 0)], BOOLS) == UNSAT
        assert check_conjunction([LinearAtom([X], ">=", 1)], BOOLS) == SAT
        assert check_conjunction([LinearAtom([X], ">", 1)], BOOLS) == UNSAT
        assert check_conjunction([LinearAtom([X], "<=", 0)], BOOLS) == SAT
