"""Indexed storage."""

import pytest

from repro.ctable.condition import eq
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.engine.storage import ColumnIndex, IndexedTable, Storage

X = CVariable("x")


@pytest.fixture
def table():
    t = CTable("T", ["a", "b"])
    t.add([1, "p"])
    t.add([2, "q"])
    t.add([X, "r"], eq(X, 1))
    return t


class TestColumnIndex:
    def test_probe_returns_constants_and_wildcards(self, table):
        idx = ColumnIndex()
        for tup in table:
            idx.insert(tup.values[0], tup)
        hits = list(idx.probe(Constant(1)))
        assert len(hits) == 2  # the 1-row and the x̄ wildcard
        assert len(idx) == 3

    def test_probe_missing_constant_still_returns_wildcards(self, table):
        idx = ColumnIndex()
        for tup in table:
            idx.insert(tup.values[0], tup)
        hits = list(idx.probe(Constant(99)))
        assert len(hits) == 1


class TestIndexedTable:
    def test_lazy_index_built_on_probe(self, table):
        wrapped = IndexedTable(table)
        hits = list(wrapped.candidates([Constant(2), None]))
        assert len(hits) == 2  # (2,q) + wildcard

    def test_index_maintained_on_insert(self, table):
        wrapped = IndexedTable(table)
        list(wrapped.candidates([Constant(1), None]))  # build index
        wrapped.add([1, "new"])
        hits = list(wrapped.candidates([Constant(1), None]))
        data = {tuple(v.value if not isinstance(v, CVariable) else "?" for v in t.values) for t in hits}
        assert (1, "new") in data

    def test_full_scan_without_constants(self, table):
        wrapped = IndexedTable(table)
        assert len(list(wrapped.candidates([None, None]))) == 3

    def test_most_selective_column_chosen(self, table):
        wrapped = IndexedTable(table)
        hits = list(wrapped.candidates([Constant(1), Constant("zzz")]))
        # b="zzz" has no matches: selective index returns nothing
        assert len(hits) == 0

    def test_duplicate_insert_not_double_indexed(self, table):
        wrapped = IndexedTable(table)
        wrapped.index_on(0)
        assert not wrapped.add([1, "p"])  # duplicate
        hits = list(wrapped.candidates([Constant(1), None]))
        assert len([h for h in hits if h.values[1] == Constant("p")]) == 1


class TestStorage:
    def test_wraps_database_tables(self, table):
        storage = Storage(Database([table]))
        assert "T" in storage
        assert storage.indexed("T").name == "T"

    def test_create_table(self):
        storage = Storage()
        wrapped = storage.create_table("N", ["a"])
        wrapped.add([1])
        assert len(storage.db.table("N")) == 1

    def test_invalidate_rebuilds(self, table):
        storage = Storage(Database([table]))
        first = storage.indexed("T")
        storage.invalidate("T")
        second = storage.indexed("T")
        assert first is not second

    def test_rewrap_after_table_replacement(self, table):
        db = Database([table])
        storage = Storage(db)
        storage.indexed("T")
        replacement = CTable("T", ["a", "b"])
        replacement.add([9, "z"])
        db.replace_table(replacement)
        assert len(list(storage.indexed("T"))) == 1
