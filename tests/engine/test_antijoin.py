"""The AntiJoin operator (NOT EXISTS with c-table complement)."""

import pytest

from repro.ctable.condition import FALSE, TRUE, conjoin, eq, ne
from repro.ctable.table import Database
from repro.ctable.terms import Constant, CVariable
from repro.engine.algebra import AntiJoin, Rename, Scan, evaluate_plan
from repro.ctable.worlds import instantiate_table, iter_assignments
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain
from repro.solver.interface import ConditionSolver

X = CVariable("x")


@pytest.fixture
def db():
    database = Database()
    left = database.create_table("L", ["k", "v"])
    left.add([1, "a"])
    left.add([2, "b"])
    left.add([3, "c"])
    right = database.create_table("Rt", ["k2"])
    right.add([1])
    right.add([2], eq(X, 1))
    return database


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN}))


class TestAntiJoin:
    def test_certain_match_removed(self, db, solver):
        plan = AntiJoin(Scan("L"), Scan("Rt"), on=[("k", "k2")])
        out = evaluate_plan(plan, db, solver=solver)
        keys = {t.values[0].value for t in out}
        assert 1 not in keys
        assert 3 in keys

    def test_conditional_match_constrains(self, db, solver):
        plan = AntiJoin(Scan("L"), Scan("Rt"), on=[("k", "k2")])
        out = evaluate_plan(plan, db, solver=solver)
        (row2,) = [t for t in out if t.values[0] == Constant(2)]
        assert solver.equivalent(row2.condition, ne(X, 1))

    def test_empty_right_keeps_everything(self, solver):
        database = Database()
        database.create_table("L", ["k"]).add([1])
        database.create_table("Rt", ["k2"])
        plan = AntiJoin(Scan("L"), Scan("Rt"), on=[("k", "k2")])
        out = evaluate_plan(plan, database, solver=solver)
        assert len(out) == 1
        assert out.tuples()[0].condition is TRUE

    def test_no_join_keys_means_right_nonempty_kills(self, db, solver):
        # on=[]: "no right tuple exists at all"
        plan = AntiJoin(Scan("L"), Scan("Rt"), on=[])
        out = evaluate_plan(plan, db, solver=solver)
        # right has an unconditional tuple: left survives nowhere... except
        # worlds don't matter for the certain tuple: everything dies
        assert len(out) == 0

    def test_world_level_semantics(self, db, solver):
        plan = AntiJoin(Scan("L"), Scan("Rt"), on=[("k", "k2")])
        out = evaluate_plan(plan, db, solver=solver)
        for assignment in iter_assignments([X], solver.domains):
            left_rows = instantiate_table(db.table("L"), assignment)
            right_keys = {
                row[0] for row in instantiate_table(db.table("Rt"), assignment)
            }
            expected = {row for row in left_rows if row[0] not in right_keys}
            got = instantiate_table(out, assignment)
            assert got == expected, assignment
