"""SQL DELETE / UPDATE with c-table split semantics."""

import pytest

from repro.ctable.condition import TRUE, conjoin, eq, ne
from repro.ctable.terms import Constant, CVariable
from repro.engine.sql import SqlEngine, SqlError
from repro.solver.domains import DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver

X = CVariable("x")


@pytest.fixture
def engine():
    domains = DomainMap(default=Unbounded("any"))
    domains.declare("x", FiniteDomain([1, 2, 3]))
    eng = SqlEngine(solver=ConditionSolver(domains))
    eng.execute("CREATE TABLE T (a, b)")
    eng.execute("INSERT INTO T VALUES (1, 'p')")
    eng.execute("INSERT INTO T VALUES (2, 'q')")
    eng.execute("INSERT INTO T VALUES ($x, 'r')")
    return eng


def rows(engine, name="T"):
    return {
        (tuple(str(v) for v in t.values), str(t.condition))
        for t in engine.db.table(name)
    }


class TestDelete:
    def test_certain_match_removed(self, engine):
        engine.execute("DELETE FROM T WHERE a = 2")
        remaining = {t.values for t in engine.db.table("T")}
        assert (Constant(2), Constant("q")) not in remaining
        assert len(engine.db.table("T")) == 2

    def test_conditional_match_constrains(self, engine):
        engine.execute("DELETE FROM T WHERE a = 2")
        (cvar_row,) = [t for t in engine.db.table("T") if t.values[0] == X]
        solver = engine.solver
        assert solver.equivalent(cvar_row.condition, ne(X, 2))

    def test_delete_all_without_where(self, engine):
        engine.execute("DELETE FROM T")
        assert len(engine.db.table("T")) == 0

    def test_no_match_noop(self, engine):
        engine.execute("DELETE FROM T WHERE b = 'zzz'")
        assert len(engine.db.table("T")) == 3

    def test_unknown_table(self, engine):
        with pytest.raises(KeyError):
            engine.execute("DELETE FROM missing")

    def test_trailing_garbage(self, engine):
        with pytest.raises(SqlError):
            engine.execute("DELETE FROM T WHERE a = 1 nonsense")


class TestUpdate:
    def test_certain_update(self, engine):
        engine.execute("UPDATE T SET b = 'z' WHERE a = 1")
        updated = [t for t in engine.db.table("T") if t.values[0] == Constant(1)]
        assert updated[0].values[1] == Constant("z")

    def test_conditional_update_splits_row(self, engine):
        engine.execute("UPDATE T SET b = 'z' WHERE a = 1")
        cvar_rows = [t for t in engine.db.table("T") if t.values[0] == X]
        assert len(cvar_rows) == 2  # updated copy + surviving original
        conds = {str(t.values[1]): t.condition for t in cvar_rows}
        solver = engine.solver
        assert solver.equivalent(conds["z"], eq(X, 1))
        assert solver.equivalent(conds["r"], ne(X, 1))

    def test_update_without_where_rewrites_all(self, engine):
        engine.execute("UPDATE T SET b = 'w'")
        assert all(t.values[1] == Constant("w") for t in engine.db.table("T"))

    def test_multi_column_set(self, engine):
        engine.execute("UPDATE T SET a = 9, b = 'n' WHERE a = 2")
        updated = [t for t in engine.db.table("T") if t.values[0] == Constant(9)]
        assert updated and updated[0].values[1] == Constant("n")

    def test_set_cvariable_value(self, engine):
        engine.execute("UPDATE T SET b = $y WHERE a = 1")
        updated = [t for t in engine.db.table("T") if t.values[0] == Constant(1)]
        assert updated[0].values[1] == CVariable("y")

    def test_unknown_column(self, engine):
        with pytest.raises(KeyError):
            engine.execute("UPDATE T SET zzz = 1")

    def test_worlds_preserved(self, engine):
        """Per-world, UPDATE behaves like classical row update."""
        from repro.ctable.worlds import instantiate_table, iter_assignments

        before = engine.db.table("T").copy("before")
        engine.execute("UPDATE T SET b = 'z' WHERE a = 1")
        after = engine.db.table("T")
        for assignment in iter_assignments([X], engine.solver.domains):
            old_rows = instantiate_table(before, assignment)
            new_rows = instantiate_table(after, assignment)
            expected = {
                (row[0], Constant("z")) if row[0] == Constant(1) else row
                for row in old_rows
            }
            assert new_rows == expected, assignment
