"""The mini-SQL front-end over c-tables."""

import pytest

from repro.ctable.condition import Or, TRUE
from repro.ctable.terms import Constant, CVariable
from repro.engine.sql import SqlEngine, SqlError
from repro.solver.domains import DomainMap, Unbounded
from repro.solver.interface import ConditionSolver


@pytest.fixture
def engine():
    eng = SqlEngine(solver=ConditionSolver(DomainMap(default=Unbounded("any"))))
    eng.execute("CREATE TABLE P (dest, path)")
    eng.execute(
        "INSERT INTO P VALUES ('1.2.3.4', $xp) "
        "CONDITION $xp = [A B C] OR $xp = [A D E C]"
    )
    eng.execute("INSERT INTO P VALUES ($yd, [A B E]) CONDITION $yd != '1.2.3.4'")
    eng.execute("INSERT INTO P VALUES ('1.2.3.6', [A D E C])")
    eng.execute("CREATE TABLE C (path, cost)")
    eng.execute("INSERT INTO C VALUES ([A B C], 3)")
    eng.execute("INSERT INTO C VALUES ([A D E C], 4)")
    eng.execute("INSERT INTO C VALUES ([A B E], 3)")
    return eng


class TestDdlDml:
    def test_create_duplicate_rejected(self, engine):
        with pytest.raises(SqlError):
            engine.execute("CREATE TABLE P (a)")

    def test_drop(self, engine):
        engine.execute("DROP TABLE C")
        assert "C" not in engine.db

    def test_insert_unknown_table(self, engine):
        with pytest.raises(KeyError):
            engine.execute("INSERT INTO nope VALUES (1)")

    def test_insert_condition_stored(self, engine):
        rows = engine.db.table("P").tuples()
        assert isinstance(rows[0].condition, Or)
        assert rows[2].condition is TRUE

    def test_unsupported_statement(self, engine):
        with pytest.raises(SqlError):
            engine.execute("GRANT ALL ON P")


class TestSelect:
    def test_paper_q2(self, engine):
        out = engine.execute(
            "SELECT C.cost FROM P, C WHERE P.dest = '1.2.3.4' AND P.path = C.path"
        )
        costs = sorted(t.values[0].value for t in out)
        assert costs == [3, 4]
        assert all(t.condition is not TRUE for t in out)

    def test_paper_q3_pattern_matching(self, engine):
        out = engine.execute(
            "SELECT C.cost FROM P, C WHERE P.dest = '1.2.3.5' AND P.path = C.path"
        )
        assert [t.values[0].value for t in out] == [3]

    def test_star_select(self, engine):
        out = engine.execute("SELECT * FROM C")
        assert out.schema == ("path", "cost")
        assert len(out) == 3

    def test_alias_and_as(self, engine):
        out = engine.execute("SELECT p1.dest AS d FROM P p1 WHERE p1.dest = '1.2.3.6'")
        assert out.schema == ("d",)
        # the certain row, plus the ȳd row matching conditionally
        assert len(out) == 2
        assert any(t.values[0] == Constant("1.2.3.6") and t.condition is TRUE for t in out)

    def test_unqualified_column(self, engine):
        out = engine.execute("SELECT cost FROM C WHERE cost = 3")
        # set semantics: the two cost-3 rows merge after projection
        assert len(out) == 1
        assert out.tuples()[0].values[0] == Constant(3)

    def test_ambiguous_column_rejected(self, engine):
        engine.execute("CREATE TABLE D (cost)")
        engine.execute("INSERT INTO D VALUES (3)")
        with pytest.raises(SqlError):
            engine.execute("SELECT cost FROM C, D")

    def test_into_stores_result(self, engine):
        engine.execute("SELECT C.cost FROM C WHERE C.cost = 3 INTO Res")
        assert "Res" in engine.db
        assert len(engine.db.table("Res")) == 1  # merged duplicates

    def test_where_with_or(self, engine):
        out = engine.execute(
            "SELECT C.cost FROM C WHERE C.cost = 3 OR C.cost = 4"
        )
        assert len(out) == 2  # 3 merges (two paths cost 3)

    def test_where_cvariable_literal(self, engine):
        out = engine.execute("SELECT P.dest FROM P WHERE P.dest = $q")
        # every row matches conditionally on the free c-variable $q
        assert len(out) >= 1

    def test_unknown_column(self, engine):
        with pytest.raises(SqlError):
            engine.execute("SELECT nope FROM C")

    def test_unknown_table(self, engine):
        with pytest.raises(SqlError):
            engine.execute("SELECT * FROM missing")

    def test_trailing_garbage(self, engine):
        with pytest.raises(SqlError):
            engine.execute("SELECT * FROM C garbage trailing here")


class TestScript:
    def test_script_runs_statements_and_returns_last_select(self, engine):
        out = engine.script(
            """
            CREATE TABLE S (v);
            INSERT INTO S VALUES (1);
            INSERT INTO S VALUES (2);
            SELECT S.v FROM S WHERE S.v = 2
            """
        )
        assert len(out) == 1

    def test_stats_accumulate(self, engine):
        engine.stats.reset()
        engine.execute("SELECT * FROM C")
        assert engine.stats.tuples_generated > 0


class TestIntoOverwrite:
    def test_into_replaces_existing_result(self, engine):
        engine.execute("SELECT C.cost FROM C WHERE C.cost = 3 INTO Res")
        engine.execute("SELECT C.cost FROM C WHERE C.cost = 4 INTO Res")
        rows = [t.values[0].value for t in engine.db.table("Res")]
        assert rows == [4]
