"""The three-phase pipeline: lazy vs eager solver pruning."""

import pytest

from repro.ctable.condition import conjoin, eq, ne
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.engine.algebra import ColumnRef, Pred, Scan, Selection
from repro.engine.pipeline import run_eager, run_lazy, solver_prune
from repro.engine.stats import EvalStats
from repro.solver.domains import BOOL_DOMAIN, DomainMap
from repro.solver.interface import ConditionSolver

X = CVariable("x")


@pytest.fixture
def db():
    database = Database()
    t = database.create_table("T", ["a"])
    t.add([1], eq(X, 1))
    t.add([2], conjoin([eq(X, 1), eq(X, 0)]))  # contradictory
    t.add([3])
    return database


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap({X: BOOL_DOMAIN}))


class TestSolverPrune:
    def test_drops_unsat(self, db, solver):
        stats = EvalStats()
        out = solver_prune(db.table("T"), solver, stats)
        assert len(out) == 2
        assert stats.tuples_pruned == 1
        assert stats.solver_seconds >= 0


class TestStrategies:
    def test_lazy_equals_eager_result(self, db, solver):
        plan = Selection(Scan("T"), [Pred(ColumnRef("a"), "!=", 99)])
        lazy, _ = run_lazy(plan, db, solver)
        eager, _ = run_eager(plan, db, solver)
        assert lazy.data_parts() == eager.data_parts()
        assert len(lazy) == len(eager) == 2

    def test_lazy_stats_split(self, db, solver):
        plan = Scan("T")
        _, stats = run_lazy(plan, db, solver)
        assert stats.solver_seconds > 0  # final prune pass
        assert stats.tuples_pruned == 1

    def test_eager_prunes_inside_operators(self, db, solver):
        plan = Selection(Scan("T"), [Pred(ColumnRef("a"), "=", 2)])
        out, stats = run_eager(plan, db, solver)
        assert len(out) == 0
        assert stats.tuples_pruned >= 1
