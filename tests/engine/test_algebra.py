"""Extended relational algebra over c-tables."""

import pytest

from repro.ctable.condition import And, Or, TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable, Database
from repro.ctable.terms import Constant, CVariable
from repro.engine.algebra import (
    ColumnRef,
    ConditionSelection,
    Distinct,
    Join,
    Pred,
    Product,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
    evaluate_plan,
    resolve_condition,
)
from repro.engine.stats import EvalStats
from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")


@pytest.fixture
def db():
    database = Database()
    t = database.create_table("T", ["a", "b"])
    t.add([1, "p"])
    t.add([2, "q"], eq(X, 1))
    t.add([X, "r"])
    u = database.create_table("U", ["b", "c"])
    u.add(["p", 10])
    u.add(["q", 20])
    u.add([Y, 30], ne(Y, "p"))
    return database


@pytest.fixture
def solver():
    return ConditionSolver(DomainMap(default=Unbounded("any")))


class TestScanRename:
    def test_scan(self, db):
        out = evaluate_plan(Scan("T"), db)
        assert len(out) == 3
        assert out.schema == ("a", "b")

    def test_rename(self, db):
        out = evaluate_plan(Rename(Scan("T"), {"a": "x"}), db)
        assert out.schema == ("x", "b")


class TestSelection:
    def test_constant_match_filters(self, db):
        out = evaluate_plan(Selection(Scan("T"), [Pred(ColumnRef("a"), "=", 1)]), db)
        # row (1,p) matches outright; row (x̄,r) matches conditionally
        data = {tuple(v for v in t.values) for t in out}
        assert (Constant(1), Constant("p")) in data
        assert any(X in t.values for t in out)
        assert len(out) == 2

    def test_selection_on_cvariable_conjoins(self, db):
        out = evaluate_plan(Selection(Scan("T"), [Pred(ColumnRef("a"), "=", 5)]), db)
        (tup,) = out.tuples()
        assert tup.values[0] == X
        assert tup.condition == eq(X, 5)

    def test_pred_via_col_on_both_sides(self, db):
        out = evaluate_plan(
            Selection(Scan("T"), [Pred(ColumnRef("a"), "!=", ColumnRef("a"))]), db
        )
        assert len(out) == 0

    def test_pruning_drops_contradictions(self, db, solver):
        plan = Selection(
            Scan("T"),
            [Pred(ColumnRef("a"), "=", 1), Pred(ColumnRef("a"), "=", 2)],
        )
        out = evaluate_plan(plan, db, solver=solver)
        assert len(out) == 0


class TestConditionSelection:
    def test_boolean_where(self, db):
        template = disjoin([eq(ColumnRef("a"), 1), eq(ColumnRef("b"), "q")])
        out = evaluate_plan(ConditionSelection(Scan("T"), template), db)
        assert len(out) == 3  # (1,p), (2,q) and (x̄, r) conditionally

    def test_resolve_condition_substitutes(self):
        template = conjoin([eq(ColumnRef("a"), 1), ne(ColumnRef("b"), "z")])
        out = resolve_condition(template, ["a", "b"], [Constant(1), Constant("w")])
        assert out is TRUE

    def test_resolve_condition_unknown_column(self):
        with pytest.raises(KeyError):
            resolve_condition(eq(ColumnRef("zz"), 1), ["a"], [Constant(1)])


class TestProjectionDistinct:
    def test_projection_keeps_conditions(self, db):
        out = evaluate_plan(Projection(Scan("T"), ["b"]), db)
        assert out.schema == ("b",)
        assert len(out) == 3

    def test_projection_merges_same_data(self, db):
        database = Database()
        t = database.create_table("V", ["a", "b"])
        t.add([1, 2], eq(X, 1))
        t.add([1, 3], eq(X, 0))
        out = evaluate_plan(Projection(Scan("V"), ["a"]), database)
        (tup,) = out.tuples()
        assert isinstance(tup.condition, Or)

    def test_distinct(self, db):
        database = Database()
        t = database.create_table("V", ["a"])
        t.add([1], eq(X, 1))
        t.add([1], eq(X, 0))
        out = evaluate_plan(Distinct(Scan("V")), database)
        assert len(out) == 1


class TestJoinProduct:
    def test_product_arity(self, db):
        out = evaluate_plan(Product(Rename(Scan("T"), {"b": "tb"}), Scan("U")), db)
        assert out.schema == ("a", "tb", "b", "c")
        assert len(out) == 9

    def test_product_name_clash(self, db):
        with pytest.raises(ValueError):
            evaluate_plan(Product(Scan("T"), Scan("U")), db)

    def test_join_on_constants(self, db):
        out = evaluate_plan(Join(Scan("T"), Scan("U"), on=[("b", "b")]), db)
        # (1,p)-(p,10): certain; (2,q)-(q,20): cond x=1;
        # plus symbolic matches through ȳ and via T's c-var rows
        data = {(t.values[0], t.values[-1]) for t in out}
        assert (Constant(1), Constant(10)) in data
        assert (Constant(2), Constant(20)) in data

    def test_join_condition_composition(self, solver):
        database = Database()
        a = database.create_table("A", ["k"])
        a.add([X], eq(X, 1))
        b = database.create_table("B", ["k"])
        b.add([1])
        b.add([2])
        out = evaluate_plan(
            Join(Scan("A"), Scan("B"), on=[("k", "k")]), database, solver=solver
        )
        # x̄ joins 1 (consistent with x=1) but joining 2 contradicts
        assert len(out) == 1
        (tup,) = out.tuples()
        assert solver.implies(tup.condition, eq(X, 1))

    def test_join_project_right(self, db):
        out = evaluate_plan(
            Join(Scan("T"), Scan("U"), on=[("b", "b")], project_right=[]), db
        )
        assert out.schema == ("a", "b")


class TestUnion:
    def test_union_merges(self, db):
        out = evaluate_plan(Union([Scan("T"), Scan("T")]), db)
        assert len(out) == 3  # exact duplicates collapse

    def test_union_arity_mismatch(self, db):
        with pytest.raises(ValueError):
            evaluate_plan(Union([Scan("T"), Projection(Scan("U"), ["b"])]), db)


class TestStats:
    def test_sql_and_solver_buckets(self, db, solver):
        stats = EvalStats()
        evaluate_plan(
            Selection(Scan("T"), [Pred(ColumnRef("a"), "=", 1)]),
            db,
            solver=solver,
            stats=stats,
        )
        assert stats.sql_seconds >= 0
        assert stats.tuples_generated > 0
