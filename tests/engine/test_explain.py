"""Plan explanation."""

import pytest

from repro.ctable.table import Database
from repro.engine.algebra import (
    ColumnRef,
    ConditionSelection,
    Distinct,
    Join,
    Pred,
    Product,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
)
from repro.engine.explain import explain
from repro.ctable.condition import eq


@pytest.fixture
def db():
    database = Database()
    t = database.create_table("T", ["a", "b"])
    t.add([1, 2])
    t.add([3, 4])
    database.create_table("U", ["b", "c"])
    return database


class TestExplain:
    def test_scan_shows_cardinality(self, db):
        out = explain(Scan("T"), db)
        assert "Scan T" in out and "[2 rows]" in out

    def test_alias_rendered(self, db):
        out = explain(Scan("T", alias="t1"), db)
        assert "as t1" in out

    def test_tree_indentation(self, db):
        plan = Projection(
            Selection(Scan("T"), [Pred(ColumnRef("a"), "=", 1)]), ["b"]
        )
        out = explain(plan, db)
        lines = out.splitlines()
        assert lines[0].startswith("-> Project")
        assert lines[1].startswith("  -> Select")
        assert lines[2].startswith("    -> Scan")

    def test_join_and_product(self, db):
        plan = Join(Scan("T"), Scan("U"), on=[("b", "b")])
        out = explain(plan, db)
        assert "HashJoin [on b=b]" in out
        plan2 = Product(Scan("T"), Rename(Scan("U"), {"b": "b2"}))
        assert "Product" in explain(plan2, db)

    def test_condition_selection(self, db):
        plan = ConditionSelection(Scan("T"), eq(ColumnRef("a"), 1))
        assert "SelectWhere" in explain(plan, db)

    def test_union_distinct(self, db):
        plan = Distinct(Union([Scan("T"), Scan("T")]))
        out = explain(plan, db)
        assert "Distinct" in out and "Union [2 inputs]" in out

    def test_schemas_shown(self, db):
        out = explain(Projection(Scan("T"), ["a"]), db)
        assert "(a)" in out.splitlines()[0]

    def test_antijoin_rendered_with_children(self, db):
        from repro.engine.algebra import AntiJoin

        plan = AntiJoin(Scan("T"), Scan("U"), on=[("b", "b")])
        out = explain(plan, db)
        assert "AntiJoin [on b=b]" in out
        assert out.count("Scan") == 2
