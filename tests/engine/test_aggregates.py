"""Counting over c-tables."""

import pytest

from repro.ctable.condition import TRUE, conjoin, disjoin, eq, ne
from repro.ctable.table import CTable
from repro.ctable.terms import Constant, CVariable
from repro.engine.aggregates import certain_count, count_bounds, possible_count
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver

X, Y = CVariable("x"), CVariable("y")


@pytest.fixture
def solver():
    return ConditionSolver(
        DomainMap({X: BOOL_DOMAIN, Y: FiniteDomain(["a", "b"])})
    )


class TestApproximations:
    def test_regular_table(self, solver):
        t = CTable("T", ["a"])
        t.add([1])
        t.add([2])
        assert certain_count(t, solver) == 2
        assert possible_count(t, solver) == 2
        assert count_bounds(t, solver) == (2, 2)

    def test_conditional_row(self, solver):
        t = CTable("T", ["a"])
        t.add([1])
        t.add([2], eq(X, 1))
        assert certain_count(t, solver) == 1
        assert possible_count(t, solver) == 2
        assert count_bounds(t, solver) == (1, 2)

    def test_complementary_conditions_certain_in_disjunction(self, solver):
        t = CTable("T", ["a"])
        t.add([1], eq(X, 0))
        t.add([1], eq(X, 1))
        assert certain_count(t, solver) == 1
        assert count_bounds(t, solver) == (1, 1)

    def test_cvariable_data_part_not_counted_certain(self, solver):
        t = CTable("T", ["a"])
        t.add([Y])
        t.add(["a"])
        # in the world y="a" the rows coincide: only one distinct row
        assert certain_count(t, solver) == 1
        assert count_bounds(t, solver) == (1, 2)

    def test_exclusive_rows_never_coexist(self, solver):
        t = CTable("T", ["a"])
        t.add([1], eq(X, 0))
        t.add([2], eq(X, 1))
        assert count_bounds(t, solver) == (1, 1)

    def test_unsat_rows_ignored(self, solver):
        t = CTable("T", ["a"])
        t.add([1], conjoin([eq(X, 0), eq(X, 1)]))
        assert possible_count(t, solver) == 0
        assert count_bounds(t, solver) == (0, 0)

    def test_fallback_on_unbounded(self):
        solver = ConditionSolver(DomainMap(default=Unbounded("any")))
        z = CVariable("z")
        t = CTable("T", ["a"])
        t.add([1])
        t.add([2], eq(z, "k"))
        lo, hi = count_bounds(t, solver)
        assert (lo, hi) == (1, 2)

    def test_empty_table(self, solver):
        t = CTable("T", ["a"])
        assert count_bounds(t, solver) == (0, 0)
