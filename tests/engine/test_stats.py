"""Timing instrumentation."""

import time

from repro.engine.stats import EvalStats, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            time.sleep(0.01)
        first = watch.seconds
        with watch.measure():
            time.sleep(0.01)
        assert watch.seconds > first >= 0.005

    def test_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.seconds == 0.0


class TestEvalStats:
    def test_add_merges(self):
        a = EvalStats(sql_seconds=1.0, solver_seconds=0.5, tuples_generated=10)
        b = EvalStats(sql_seconds=2.0, solver_seconds=0.5, tuples_pruned=3, iterations=2)
        b.extra["x"] = 1.0
        a.add(b)
        assert a.sql_seconds == 3.0
        assert a.solver_seconds == 1.0
        assert a.tuples_generated == 10
        assert a.tuples_pruned == 3
        assert a.iterations == 2
        assert a.extra["x"] == 1.0

    def test_total(self):
        s = EvalStats(sql_seconds=1.0, solver_seconds=2.0)
        assert s.total_seconds == 3.0

    def test_row_shape(self):
        row = EvalStats(sql_seconds=0.12345).row()
        assert set(row) == {"sql", "solver", "tuples", "pruned", "unknown"}
        assert row["sql"] == 0.1234 or row["sql"] == 0.1235

    def test_reset(self):
        s = EvalStats(sql_seconds=1.0, tuples_generated=5)
        s.extra["k"] = 2.0
        s.reset()
        assert s.sql_seconds == 0.0
        assert s.tuples_generated == 0
        assert not s.extra
