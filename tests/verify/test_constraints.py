"""Constraints as panic queries: direct (state-level) checking."""

import pytest

from repro.ctable.condition import eq, ne
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.network.enterprise import EnterpriseModel
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import CheckResult, Constraint, Status


@pytest.fixture
def t1():
    return Constraint.from_text(
        "T1", "panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).",
        description="Mkt→CS traffic must be firewalled",
    )


class TestDirectCheck:
    def test_holds_on_compliant_state(self, t1):
        model = EnterpriseModel.paper_state()
        result = t1.check(model.database(), ConditionSolver(model.domain_map()))
        assert result.status is Status.HOLDS
        assert result.ok

    def test_violated_when_firewall_missing(self, t1):
        model = EnterpriseModel().allow("Mkt", "CS", 7000)  # no firewall
        result = t1.check(model.database(), ConditionSolver(model.domain_map()))
        assert result.status is Status.VIOLATED

    def test_conditional_on_partial_state(self, t1):
        who = CVariable("who")
        model = (
            EnterpriseModel()
            .allow("Mkt", "CS", 7000)
            .firewall(who, "CS")  # firewall deployed on an unknown subnet
        )
        result = t1.check(model.database(), ConditionSolver(model.domain_map()))
        assert result.status is Status.CONDITIONAL
        solver = ConditionSolver(model.domain_map())
        # violated exactly in worlds where the firewall is NOT on Mkt
        assert solver.equivalent(result.violation_condition, ne(who, "Mkt"))

    def test_holds_when_no_matching_traffic(self, t1):
        model = EnterpriseModel().allow("R&D", "GS", 80)
        result = t1.check(model.database(), ConditionSolver(model.domain_map()))
        assert result.status is Status.HOLDS

    def test_from_text_parses(self, t1):
        assert t1.name == "T1"
        assert "panic" in t1.program.idb_predicates()
        assert t1.description

    def test_str_of_results(self):
        assert str(CheckResult(Status.HOLDS)) == "holds"
        cond_result = CheckResult(Status.CONDITIONAL, eq(CVariable("x"), 1))
        assert "conditional" in str(cond_result)
        assert "x" in str(cond_result)
