"""Runtime constraint monitoring."""

import pytest

from repro.ctable.condition import eq
from repro.ctable.table import Database
from repro.ctable.terms import CVariable
from repro.faurelog.ast import ProgramError
from repro.faurelog.parser import parse_program
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain, Unbounded
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import Constraint, Status
from repro.verify.monitor import Alarm, ConstraintMonitor

X = CVariable("x")


@pytest.fixture
def setup():
    db = Database()
    db.create_table("R", ["subnet", "server"])
    fw = db.create_table("Fw", ["subnet", "server"])
    fw.add(["R&D", "CS"])
    fw.add(["Mkt", "GS"], eq(X, 1))  # firewall present only if x̄=1
    t1 = Constraint.from_text(
        "T1", "panic :- R(Mkt, $y), not Fw(Mkt, $y)."
    )
    t2 = Constraint.from_text(
        "T2", "panic :- R('R&D', GS)."
    )
    solver = ConditionSolver(DomainMap({X: BOOL_DOMAIN}, default=Unbounded()))
    return db, solver, t1, t2


class TestMonitor:
    def test_initially_clean(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1, t2], db, solver)
        assert all(s is Status.HOLDS for s in monitor.status().values())

    def test_violating_fact_raises_alarm(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1, t2], db, solver)
        alarms = monitor.insert("R", ["Mkt", "CS"])
        assert len(alarms) == 1
        (alarm,) = alarms
        assert alarm.constraint == "T1"
        assert alarm.status is Status.VIOLATED

    def test_conditional_alarm_on_partial_state(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1], db, solver)
        # Mkt→GS traffic: violated only in worlds where x̄ = 0
        alarms = monitor.insert("R", ["Mkt", "GS"])
        (alarm,) = alarms
        assert alarm.status is Status.CONDITIONAL
        assert solver.equivalent(alarm.condition, eq(X, 0))

    def test_harmless_fact_silent(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1, t2], db, solver)
        assert monitor.insert("R", ["R&D", "CS"]) == []

    def test_multiple_constraints_can_fire(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1, t2], db, solver)
        alarms = monitor.insert("R", ["R&D", "GS"])
        names = {a.constraint for a in alarms}
        assert names == {"T2"}
        alarms2 = monitor.insert("R", ["Mkt", "CS"])
        assert {a.constraint for a in alarms2} == {"T1"}

    def test_status_reflects_history(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1, t2], db, solver)
        monitor.insert("R", ["Mkt", "CS"])
        status = monitor.status()
        assert status["T1"] is Status.VIOLATED
        assert status["T2"] is Status.HOLDS

    def test_negative_dependency_rejected(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1], db, solver)
        with pytest.raises(ProgramError):
            monitor.insert("Fw", ["Mkt", "CS"])  # repairs are not monotone

    def test_alarm_str(self, setup):
        db, solver, t1, t2 = setup
        monitor = ConstraintMonitor([t1], db, solver)
        (alarm,) = monitor.insert("R", ["Mkt", "GS"])
        assert "T1" in str(alarm) and "conditional" in str(alarm)
