"""Multi-step update-plan verification."""

import pytest

from repro.faurelog.parser import parse_program
from repro.faurelog.rewrite import Deletion, Insertion
from repro.network.enterprise import (
    EnterpriseModel,
    SCHEMAS,
    column_domains,
    constraint_T2,
    policy_C_lb,
    policy_C_s,
)
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import Constraint, Status
from repro.verify.plans import check_plan


@pytest.fixture
def setup():
    model = EnterpriseModel.paper_state()
    return {
        "state": model.database(),
        "solver": ConditionSolver(model.domain_map()),
        "t2": Constraint("T2", constraint_T2()),
        "known": [
            Constraint("C_lb", policy_C_lb()),
            Constraint("C_s", policy_C_s()),
        ],
    }


class TestCheckPlan:
    def test_safe_plan(self, setup):
        # insert first, delete second: load balancing never transiently lost
        plan = [
            Insertion("Lb", ("R&D", "GS")),
            Deletion("Lb", ("Mkt", "CS")),
        ]
        report = check_plan(
            setup["t2"],
            plan,
            known=setup["known"],
            solver=setup["solver"],
            state=setup["state"],
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        assert report.safe
        assert len(report.steps) == 2
        assert report.first_unsafe_step is None

    def test_unsafe_intermediate_state_caught(self, setup):
        # deleting the R&D–GS balancer first transiently violates T2
        plan = [
            Deletion("Lb", ("R&D", "GS")),
            Insertion("Lb", ("R&D", "GS")),
        ]
        report = check_plan(
            setup["t2"],
            plan,
            known=[],  # force direct checking
            solver=setup["solver"],
            state=setup["state"],
        )
        assert not report.safe
        first = report.first_unsafe_step
        assert first is not None and first.step == 0
        # the final state is fine again
        assert report.steps[1].status is Status.HOLDS

    def test_subsumption_used_when_available(self, setup):
        plan = [Insertion("Lb", ("R&D", "GS"))]
        report = check_plan(
            setup["t2"],
            plan,
            known=setup["known"],
            solver=setup["solver"],
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        # T2-after-an-insertion-only update is subsumed (it only helps)
        assert report.steps[0].by_subsumption
        assert report.safe

    def test_unknown_without_state(self, setup):
        plan = [Deletion("Lb", ("R&D", "GS"))]
        report = check_plan(
            setup["t2"],
            plan,
            known=setup["known"],
            solver=setup["solver"],
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        assert report.steps[0].status is Status.UNKNOWN
        assert not report.safe  # unknown is not safe

    def test_requires_solver(self, setup):
        with pytest.raises(ValueError):
            check_plan(setup["t2"], [], solver=None)

    def test_report_renders(self, setup):
        plan = [Insertion("Lb", ("R&D", "GS"))]
        report = check_plan(
            setup["t2"],
            plan,
            known=setup["known"],
            solver=setup["solver"],
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        text = str(report)
        assert "step 0" in text and "+Lb" in text
