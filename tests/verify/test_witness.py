"""Counterexample extraction."""

import pytest

from repro.ctable.terms import Constant, CVariable
from repro.network.enterprise import EnterpriseModel
from repro.solver.domains import DomainMap, Unbounded
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import Constraint, Status
from repro.verify.witness import extract_compliant_world, extract_witness

T1_TEXT = "panic :- R(Mkt, CS, $p), not Fw(Mkt, CS)."


@pytest.fixture
def conditional_setup():
    """A partial state where T1 holds iff the unknown firewall is on Mkt."""
    who = CVariable("who")
    model = EnterpriseModel().allow("Mkt", "CS", 7000).firewall(who, "CS")
    db = model.database()
    solver = ConditionSolver(model.domain_map())
    return Constraint("T1", __import__("repro.faurelog.parser", fromlist=["parse_program"]).parse_program(T1_TEXT)), db, solver, who


class TestExtractWitness:
    def test_violating_world_found(self, conditional_setup):
        constraint, db, solver, who = conditional_setup
        witness = extract_witness(constraint, db, solver)
        assert witness is not None
        assert witness.violated
        # in the violating world the firewall is NOT on Mkt
        assert witness.assignment[who] != Constant("Mkt")
        assert ("Mkt",) not in {
            tuple(v.value for v in row) for row in witness.state["Fw"]
        } or True

    def test_compliant_world_found(self, conditional_setup):
        constraint, db, solver, who = conditional_setup
        witness = extract_compliant_world(constraint, db, solver)
        assert witness is not None
        assert not witness.violated
        assert witness.assignment[who] == Constant("Mkt")

    def test_no_witness_when_holds(self):
        model = EnterpriseModel.paper_state()
        solver = ConditionSolver(model.domain_map())
        from repro.faurelog.parser import parse_program

        constraint = Constraint("T1", parse_program(T1_TEXT))
        assert extract_witness(constraint, model.database(), solver) is None

    def test_no_compliant_world_when_always_violated(self):
        model = EnterpriseModel().allow("Mkt", "CS", 7000)  # never firewalled
        solver = ConditionSolver(model.domain_map())
        from repro.faurelog.parser import parse_program

        constraint = Constraint("T1", parse_program(T1_TEXT))
        assert extract_compliant_world(constraint, model.database(), solver) is None
        witness = extract_witness(constraint, model.database(), solver)
        assert witness is not None and witness.violated

    def test_describe_readable(self, conditional_setup):
        constraint, db, solver, who = conditional_setup
        witness = extract_witness(constraint, db, solver)
        text = witness.describe()
        assert "world:" in text and "VIOLATED" in text

    def test_reuses_prior_check_result(self, conditional_setup):
        constraint, db, solver, who = conditional_setup
        result = constraint.check(db, solver)
        assert result.status is Status.CONDITIONAL
        witness = extract_witness(constraint, db, solver, result=result)
        assert witness is not None

    def test_unbounded_domains_rejected(self):
        from repro.faurelog.parser import parse_program

        who = CVariable("who")
        model = EnterpriseModel().allow(who, "CS", 7000)
        db = model.database()
        solver = ConditionSolver(DomainMap(default=Unbounded("any")))
        constraint = Constraint("T1", parse_program(T1_TEXT))
        with pytest.raises(ValueError):
            extract_witness(constraint, db, solver)
