"""§5 end-to-end: the paper's verification narrative, verbatim.

* T1 is subsumed by {C_lb, C_s} (category (i) succeeds);
* T2 is not (category (i) answers "unknown");
* with the Listing 4 update folded in, T2′ is subsumed (category (ii));
* all of it cross-checked against direct state-level evaluation and the
  possible-worlds baseline.
"""

import pytest

from repro.faurelog.rewrite import apply_update
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import sweep_constraint
from repro.verify.constraints import Constraint, Status
from repro.verify.subsumption import SubsumptionVerdict, check_subsumption
from repro.verify.updates import check_after_update_directly, check_with_update
from repro.verify.verifier import Level, RelativeCompleteVerifier


@pytest.fixture
def setup(enterprise):
    return {
        "t1": Constraint("T1", enterprise["T1"]),
        "t2": Constraint("T2", enterprise["T2"]),
        "known": [
            Constraint("C_lb", enterprise["C_lb"]),
            Constraint("C_s", enterprise["C_s"]),
        ],
        **enterprise,
    }


class TestCategoryOne:
    def test_t1_subsumed(self, setup):
        result = check_subsumption(
            setup["t1"],
            setup["known"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        assert result.verdict is SubsumptionVerdict.SUBSUMED

    def test_t2_unknown(self, setup):
        result = check_subsumption(
            setup["t2"],
            setup["known"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        assert result.verdict is SubsumptionVerdict.UNKNOWN

    def test_t1_subsumed_by_cs_alone(self, setup):
        result = check_subsumption(
            setup["t1"],
            [setup["known"][1]],  # C_s only
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        assert result.verdict is SubsumptionVerdict.SUBSUMED

    def test_t1_not_subsumed_by_clb_alone(self, setup):
        result = check_subsumption(
            setup["t1"],
            [setup["known"][0]],  # C_lb only
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        assert result.verdict is SubsumptionVerdict.UNKNOWN


class TestCategoryTwo:
    def test_t2_with_update_subsumed(self, setup):
        result = check_with_update(
            setup["t2"],
            setup["known"],
            setup["update"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        assert result.verdict is SubsumptionVerdict.SUBSUMED

    def test_column_domains_are_load_bearing(self, setup):
        """Without the finite server domain T2' is undecidable."""
        result = check_with_update(
            setup["t2"],
            setup["known"],
            setup["update"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=None,
        )
        assert result.verdict is SubsumptionVerdict.UNKNOWN


class TestVerifierLadder:
    def test_t1_decided_at_level_one(self, setup):
        verifier = RelativeCompleteVerifier(
            setup["known"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        verdict = verifier.verify(setup["t1"])
        assert verdict.ok
        assert verdict.decided_by is Level.CONSTRAINTS

    def test_t2_climbs_to_level_two(self, setup):
        verifier = RelativeCompleteVerifier(
            setup["known"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        verdict = verifier.verify(setup["t2"], update=setup["update"])
        assert verdict.ok
        assert verdict.decided_by is Level.UPDATE
        assert len(verdict.trail) == 2

    def test_t2_without_update_stays_unknown(self, setup):
        verifier = RelativeCompleteVerifier(
            setup["known"],
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        verdict = verifier.verify(setup["t2"])
        assert verdict.status is Status.UNKNOWN
        assert verdict.decided_by is None

    def test_t2_with_state_decided_at_level_three(self, setup):
        verifier = RelativeCompleteVerifier(
            [],  # no known constraints at all
            setup["solver"],
            schemas=setup["schemas"],
            column_domains=setup["column_domains"],
        )
        verdict = verifier.verify(
            setup["t2"], update=setup["update"], state=setup["database"]
        )
        assert verdict.decided_by is Level.STATE
        assert verdict.status is Status.HOLDS


class TestGroundTruthAgreement:
    def test_direct_check_after_update(self, setup):
        result = check_after_update_directly(
            setup["t2"], setup["database"], setup["update"], setup["solver"]
        )
        assert result.status is Status.HOLDS

    def test_baseline_sweep_agrees(self, setup):
        updated = apply_update(setup["database"], setup["update"])
        sweep = sweep_constraint(
            setup["t2"].program, updated, setup["solver"].domains
        )
        assert sweep.holds_everywhere

    def test_policies_hold_after_update_as_assumed(self, setup):
        """§5 assumes C_lb, C_s hold after the update — our state obliges."""
        updated = apply_update(setup["database"], setup["update"])
        for constraint in setup["known"]:
            result = constraint.check(updated, setup["solver"])
            assert result.status is Status.HOLDS, constraint.name
