"""The complete-approach baseline: ground evaluation + world sweeps."""

import pytest

from repro.ctable.condition import eq, ne
from repro.ctable.table import Database
from repro.ctable.terms import Constant, CVariable
from repro.faurelog.parser import parse_program
from repro.solver.domains import BOOL_DOMAIN, DomainMap, FiniteDomain
from repro.verify.baseline import GroundEvaluator, sweep_constraint, sweep_query

X = CVariable("x")


def rows(*tuples):
    return {tuple(Constant(v) for v in row) for row in tuples}


class TestGroundEvaluator:
    def test_join(self):
        ev = GroundEvaluator({"A": rows((1,)), "B": rows((1, "p"), (2, "q"))})
        out = ev.run(parse_program("H(v) :- A(k), B(k, v)."))
        assert out["H"] == rows(("p",))

    def test_recursion(self):
        ev = GroundEvaluator({"E": rows((1, 2), (2, 3))})
        out = ev.run(parse_program("T(a,b) :- E(a,b). T(a,b) :- E(a,c), T(c,b)."))
        assert out["T"] == rows((1, 2), (2, 3), (1, 3))

    def test_negation(self):
        ev = GroundEvaluator({"N": rows((1,), (2,)), "Bad": rows((2,))})
        out = ev.run(parse_program("G(a) :- N(a), not Bad(a)."))
        assert out["G"] == rows((1,))

    def test_comparisons_ground(self):
        ev = GroundEvaluator({"N": rows((1,), (2,), (3,))})
        out = ev.run(parse_program("G($a) :- N($a), $a != 2."))
        assert out["G"] == rows((1,), (3,))

    def test_zero_ary_panic(self):
        ev = GroundEvaluator({"R": rows(("Mkt",)), "Fw": rows()})
        out = ev.run(parse_program("panic :- R(a), not Fw(a)."))
        assert out["panic"] == {()}


class TestSweeps:
    @pytest.fixture
    def partial_db(self):
        db = Database()
        r = db.create_table("R", ["s"])
        r.add(["Mkt"])
        fw = db.create_table("Fw", ["s"])
        fw.add(["Mkt"], eq(X, 1))  # firewall present only when x̄ = 1
        return db

    def test_sweep_constraint_counts_violations(self, partial_db):
        domains = DomainMap({X: BOOL_DOMAIN})
        sweep = sweep_constraint(
            parse_program("panic :- R(a), not Fw(a)."), partial_db, domains
        )
        assert sweep.worlds == 2
        assert sweep.violating_worlds == 1
        assert not sweep.holds_everywhere
        assert not sweep.violated_everywhere

    def test_sweep_records_worlds(self, partial_db):
        domains = DomainMap({X: BOOL_DOMAIN})
        sweep = sweep_constraint(
            parse_program("panic :- R(a), not Fw(a)."),
            partial_db,
            domains,
            record_worlds=True,
        )
        verdicts = {a[X].value: v for a, v in sweep.per_world}
        assert verdicts == {0: True, 1: False}

    def test_sweep_query_counts_rows(self, partial_db):
        domains = DomainMap({X: BOOL_DOMAIN})
        counts = sweep_query(
            parse_program("Ans(a) :- Fw(a)."), partial_db, domains, "Ans"
        )
        assert counts == {(Constant("Mkt"),): 1}

    def test_all_worlds_hold(self):
        db = Database()
        db.create_table("R", ["s"])  # no traffic: nothing to violate
        db.create_table("Fw", ["s"])
        sweep = sweep_constraint(
            parse_program("panic :- R(a), not Fw(a)."), db, DomainMap()
        )
        assert sweep.worlds == 1
        assert sweep.holds_everywhere
