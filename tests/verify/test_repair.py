"""Repair suggestions."""

import pytest

from repro.ctable.terms import Constant, CVariable
from repro.faurelog.rewrite import Deletion, Insertion, apply_update
from repro.network.enterprise import EnterpriseModel
from repro.solver.interface import ConditionSolver
from repro.verify.constraints import Constraint, Status
from repro.verify.repair import Repair, suggest_repairs

T1_TEXT = "panic :- R(Mkt, CS, $p), not Fw(Mkt, CS)."


def make(model):
    db = model.database()
    solver = ConditionSolver(model.domain_map())
    from repro.faurelog.parser import parse_program

    return Constraint("T1", parse_program(T1_TEXT)), db, solver


class TestSuggestRepairs:
    def test_no_repairs_when_holding(self):
        constraint, db, solver = make(EnterpriseModel.paper_state())
        assert suggest_repairs(constraint, db, solver) == []

    def test_insert_and_delete_both_offered(self):
        model = EnterpriseModel().allow("Mkt", "CS", 7000)
        constraint, db, solver = make(model)
        repairs = suggest_repairs(constraint, db, solver)
        ops = {type(r.operation).__name__ for r in repairs}
        assert ops == {"Insertion", "Deletion"}
        assert all(r.effect == "full" for r in repairs)

    def test_insertion_targets_the_missing_firewall(self):
        model = EnterpriseModel().allow("Mkt", "CS", 7000)
        constraint, db, solver = make(model)
        inserts = [
            r.operation
            for r in suggest_repairs(constraint, db, solver)
            if isinstance(r.operation, Insertion)
        ]
        assert any(
            op.predicate == "Fw"
            and op.values == (Constant("Mkt"), Constant("CS"))
            for op in inserts
        )

    def test_repairs_are_validated(self):
        model = EnterpriseModel().allow("Mkt", "CS", 7000)
        constraint, db, solver = make(model)
        for repair in suggest_repairs(constraint, db, solver):
            patched = apply_update(db, [repair.operation])
            assert constraint.check(patched, solver).status is Status.HOLDS

    def test_multiple_violations_no_single_deletion_fix(self):
        model = (
            EnterpriseModel()
            .allow("Mkt", "CS", 7000)
            .allow("Mkt", "CS", 80)
        )
        constraint, db, solver = make(model)
        repairs = suggest_repairs(constraint, db, solver)
        # inserting the firewall fixes both; deleting one R row cannot
        full_ops = [r.operation for r in repairs if r.effect == "full"]
        assert any(isinstance(op, Insertion) for op in full_ops)
        deletion_fulls = [op for op in full_ops if isinstance(op, Deletion)]
        # deletions with the concrete port are only partial... unless the
        # pattern matches both rows; accept either but validate claims
        for r in repairs:
            patched = apply_update(db, [r.operation])
            after = constraint.check(patched, solver)
            if r.effect == "full":
                assert after.status is Status.HOLDS

    def test_partial_repair_on_partial_state(self):
        who = CVariable("who")
        model = (
            EnterpriseModel()
            .allow("Mkt", "CS", 7000)
            .firewall(who, "GS")  # useless firewall somewhere
        )
        constraint, db, solver = make(model)
        repairs = suggest_repairs(constraint, db, solver)
        assert repairs
        assert any(r.effect == "full" for r in repairs)

    def test_str_rendering(self):
        model = EnterpriseModel().allow("Mkt", "CS", 7000)
        constraint, db, solver = make(model)
        (first, *_) = suggest_repairs(constraint, db, solver)
        assert "[full]" in str(first) or "[partial]" in str(first)
