#!/usr/bin/env python3
"""Loss-less modeling (§4): reachability under link failures, once for all.

Reproduces Figure 1 + Table 3: a 5-node fast-reroute configuration whose
protected links carry {0,1} state variables x̄, ȳ, z̄.  ONE c-table F
describes the forwarding behaviour of all 2³ = 8 failure combinations;
one recursive fauré-log query computes reachability in all of them at
once; and failure *patterns* (Listing 2's q6–q8) are just conditions over
the link-state variables.

Run:  python examples/fast_reroute.py
"""

from repro import ConditionSolver, ReachabilityAnalyzer, cvar, eq, paper_figure1
from repro.ctable.condition import conjoin
from repro.workloads.failures import (
    at_least_k_failures,
    exactly_k_failures,
    must_include_failure,
)


def main() -> None:
    config = paper_figure1()
    solver = ConditionSolver(config.domain_map())

    print("Fast-reroute forwarding c-table (all failure behaviours at once):\n")
    print(config.forwarding_table().pretty())

    analyzer = ReachabilityAnalyzer(config.database(), solver)
    reach = analyzer.compute()
    print(f"\nq4/q5 — all-pairs reachability: {len(reach)} conditional facts")

    print("\nUnder which failure combinations does 1 reach 5?")
    from repro.ctable.terms import Constant

    for tup in reach:
        if tup.values == (Constant(1), Constant(5)):
            print(f"  {tup.condition}")

    links = config.state_variables

    # q6: reachability when exactly two links failed
    t1, stats = analyzer.exactly_k_up(links, 1)
    print(f"\nq6 — reachability under 2-link failures: {len(t1)} facts "
          f"(sql {stats.sql_seconds:.4f}s, solver {stats.solver_seconds:.4f}s)")

    # q7: 2→5 under 2-link failures, one of which must be link ȳ = (2,3)
    pattern = must_include_failure(exactly_k_failures(links, 2), cvar("y"))
    t2, _ = analyzer.under_pattern(pattern, source=2, dest=5)
    print(f"q7 — 2→5 reachability, (2,3) down plus one more: {len(t2)} facts")
    for tup in t2:
        print(f"  {tup.condition}")

    # q8: reachability from 1 with at least one failure among ȳ, z̄
    t3, _ = analyzer.under_pattern(
        at_least_k_failures([cvar("y"), cvar("z")], 1), source=1
    )
    print(f"q8 — from node 1 with ≥1 failure among y,z: {len(t3)} facts")

    # concrete probe: the world where the primary (1,2) is down
    world = config.world_of([(1, 2)])
    print(f"\nConcrete world check — (1,2) failed: "
          f"1 reaches 5? {analyzer.holds_in_world(1, 5, world)}")

    # resilience: how many failures can each pair absorb?
    from repro.network.resilience import analyze_resilience, critical_sets

    report = analyze_resilience(config, solver=solver)
    print(f"\n{report}")
    print(f"weakest pairs: {report.weakest_pairs()}")
    print(f"critical failure sets disconnecting 1→3: "
          f"{[sorted(s) for s in critical_sets(analyzer, config, 1, 3)]}")


if __name__ == "__main__":
    main()
