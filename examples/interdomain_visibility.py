#!/usr/bin/env python3
"""Limited visibility across domains (§1's second motivation).

An operator at AS1 announces a prefix and wants to know where it can
propagate.  Policies inside the operator's own cone are known; external
ASes' export policies are not — each invisible adjacency becomes a {0,1}
c-variable, and one fauré-log evaluation answers, per AS:

* *certain*: the announcement arrives whatever the foreign policies are;
* *possible*: it arrives under some policies (with an actionable
  example assignment);
* *never*: no policy combination delivers it.

Run:  python examples/interdomain_visibility.py
"""

from repro.network.interdomain import ExportPolicy, InterdomainNetwork


def main() -> None:
    net = InterdomainNetwork()

    # The operator's own cone: AS1 exports to its providers AS2 and AS3.
    net.add_link("AS1", "AS2", ExportPolicy.EXPORTS)
    net.add_link("AS1", "AS3", ExportPolicy.EXPORTS)

    # AS2 is a cooperating peer: its policy toward AS4 is visible.
    net.add_link("AS2", "AS4", ExportPolicy.EXPORTS)

    # AS3's behaviour is invisible; AS4 filters toward AS6 (known).
    net.add_link("AS3", "AS5", ExportPolicy.UNKNOWN)
    net.add_link("AS4", "AS6", ExportPolicy.BLOCKS)

    # Two invisible ways into AS7: via AS5 or via AS6.
    net.add_link("AS5", "AS7", ExportPolicy.UNKNOWN)
    net.add_link("AS6", "AS7", ExportPolicy.UNKNOWN)
    net.add_link("AS4", "AS7", ExportPolicy.UNKNOWN)

    analysis = net.analyze("AS1")

    print("Prefix announced by AS1 — propagation under unknown policies:\n")
    for asn, verdict in sorted(analysis.classification().items()):
        condition = analysis.reachability_condition(asn)
        print(f"  {asn}: {verdict:<8}  [{condition}]")

    print("\nActionable example — policies that deliver the route to AS7:")
    needed = analysis.required_policies("AS7")
    if needed is None:
        print("  impossible under any foreign policy")
    else:
        for var, value in sorted(needed.items(), key=lambda kv: kv[0].name):
            verb = "must export" if value == 1 else "may filter"
            print(f"  {var.name}: {verb}")


if __name__ == "__main__":
    main()
