#!/usr/bin/env python3
"""Quickstart: c-tables, fauré-log, and the paper's Table 2 in 5 minutes.

Builds the PATH' database of the paper's §3 — a routing table where one
destination's path is *unknown* (one of two candidates) and another row
applies to every destination except 1.2.3.4 — then runs the paper's
queries q2 and q3 over it, with both the fauré-log and the mini-SQL
front-ends.

Run:  python examples/quickstart.py
"""

from repro import (
    ConditionSolver,
    CTable,
    Database,
    DomainMap,
    SqlEngine,
    Unbounded,
    cvar,
    disjoin,
    eq,
    evaluate,
    ne,
    parse_program,
)

ABC = ("A", "B", "C")
ADEC = ("A", "D", "E", "C")
ABE = ("A", "B", "E")


def build_database() -> Database:
    """PATH' = {P^i, C}: the paper's Table 2, partial information included."""
    xp = cvar("xp")  # the unknown path of 1.2.3.4   (x̄ in the paper)
    yd = cvar("yd")  # "any destination but 1.2.3.4" (ȳ in the paper)

    p = CTable("P", ["dest", "path"])
    p.add(["1.2.3.4", xp], disjoin([eq(xp, ABC), eq(xp, ADEC)]))
    p.add([yd, ABE], ne(yd, "1.2.3.4"))
    p.add(["1.2.3.6", ADEC])

    c = CTable("C", ["path", "cost"])
    c.add([ABC, 3])
    c.add([ADEC, 4])
    c.add([ABE, 3])
    return Database([p, c])


def main() -> None:
    db = build_database()
    solver = ConditionSolver(DomainMap(default=Unbounded("string")))

    print("The partial routing table (a c-table):\n")
    print(db.table("P").pretty())

    # --- q2: what does reaching 1.2.3.4 cost?  (answer is conditional) ---
    q2 = parse_program("ans(z) :- P('1.2.3.4', y), C(y, z).")
    result = evaluate(q2, db, solver=solver)
    print("\nq2 — cost of reaching 1.2.3.4 (unknown path):")
    for tup in result.table("ans"):
        print(f"  cost {tup.values[0]}  when  {tup.condition}")

    # --- q3: implicit pattern matching against the c-variable row ---
    q3 = parse_program("ans(z) :- P('1.2.3.5', y), C(y, z).")
    result = evaluate(q3, db, solver=solver)
    print("\nq3 — cost of reaching 1.2.3.5 (matches the ȳd row):")
    for tup in result.table("ans"):
        print(f"  cost {tup.values[0]}  when  {tup.condition}")

    # --- the same q2 through the SQL front-end (the paper's PostgreSQL) ---
    engine = SqlEngine(db, solver=solver)
    sql_result = engine.execute(
        "SELECT C.cost FROM P, C WHERE P.dest = '1.2.3.4' AND P.path = C.path"
    )
    print("\nSame q2 via mini-SQL:")
    print(sql_result.pretty())


if __name__ == "__main__":
    main()
