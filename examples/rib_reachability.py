#!/usr/bin/env python3
"""The §6 evaluation pipeline on a synthetic BGP RIB.

Generates a route-views-like RIB (per prefix: one primary AS path and
ranked backups), compiles it into the per-flow forwarding c-table of
Listing 2, runs the paper's q4–q8 analyses, and prints a Table 4-style
row: SQL time, solver ("Z3") time, and tuple counts.

Run:  python examples/rib_reachability.py [#prefixes]
"""

import sys

from repro import ConditionSolver, ReachabilityAnalyzer, RibConfig, generate_rib
from repro.network.forwarding import compile_forwarding
from repro.workloads.failures import at_least_k_failures, exactly_k_failures


def main() -> None:
    prefixes = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    print(f"Generating synthetic RIB with {prefixes} prefixes ...")
    routes = generate_rib(RibConfig(prefixes=prefixes, as_count=120, seed=20210610))
    avg_paths = sum(len(r.paths) for r in routes) / len(routes)
    print(f"  {len(routes)} prefixes, {avg_paths:.1f} paths/prefix on average")

    compiled = compile_forwarding(routes)
    print(f"  forwarding c-table F: {len(compiled.table)} conditional entries")

    solver = ConditionSolver(compiled.domains)
    analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)

    print("\nq4/q5 — all-pairs reachability (recursive fauré-log) ...")
    reach = analyzer.compute()
    stats = analyzer.stats
    print(
        f"  R: {len(reach)} tuples   "
        f"sql {stats.sql_seconds:.2f}s   solver {stats.solver_seconds:.2f}s"
    )

    # Failure patterns per prefix, à la q6/q8 (each prefix has its own
    # path-state variables).
    sample = routes[0]
    variables = list(compiled.variables_of(sample.prefix))

    q6, s6 = analyzer.under_pattern(
        exactly_k_failures(variables, len(variables) - 1), flow=sample.prefix
    )
    print(
        f"\nq6-style — prefix {sample.prefix} under exactly 1 path failure: "
        f"{len(q6)} tuples (sql {s6.sql_seconds:.3f}s, solver {s6.solver_seconds:.3f}s)"
    )

    q7, s7 = analyzer.under_pattern(
        exactly_k_failures(variables, len(variables) - 1),
        flow=sample.prefix,
        source=sample.paths[0][0],
        dest=sample.paths[0][-1],
    )
    print(
        f"q7-style — endpoint-pinned nested query: {len(q7)} tuples "
        f"(sql {s7.sql_seconds:.3f}s, solver {s7.solver_seconds:.3f}s)"
    )

    q8, s8 = analyzer.under_pattern(
        at_least_k_failures(variables, 1), flow=sample.prefix
    )
    print(
        f"q8-style — ≥1 failure: {len(q8)} tuples "
        f"(sql {s8.sql_seconds:.3f}s, solver {s8.solver_seconds:.3f}s)"
    )

    print("\nTable 4-style summary row:")
    print("  #prefix | q4-q5 sql | #R tuples")
    print(f"  {prefixes:7d} | {stats.sql_seconds:9.2f} | {len(reach)}")


if __name__ == "__main__":
    main()
