#!/usr/bin/env python3
"""Relative-complete verification (§5): the multi-team enterprise.

Two frontend subnets (Mkt, R&D), two servers (CS, GS), a security team
owning firewalls, a TE team owning load balancers, and a verification
team that must certify two constraints after a network change — with
only partial visibility:

* **Level 1 — constraints only.**  T1 is subsumed by the teams' own
  policies (C_lb, C_s), so it holds without seeing any network state.
  T2 is not subsumed: the verifier honestly answers *unknown*.
* **Level 2 — plus the update.**  Folding the update (add R&D–GS load
  balancing, drop Mkt–CS) into T2 yields T2′, which *is* subsumed: T2 is
  certified, still without any state.
* **Level 3 — plus the full state.**  Direct (possibly conditional)
  evaluation, shown for comparison along with the complete-approach
  baseline that enumerates possible worlds.

Run:  python examples/multi_team_verification.py
"""

from repro import ConditionSolver, Constraint, RelativeCompleteVerifier
from repro.network.enterprise import (
    EnterpriseModel,
    SCHEMAS,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from repro.faurelog.rewrite import apply_update
from repro.verify.baseline import sweep_constraint


def main() -> None:
    model = EnterpriseModel.paper_state()
    solver = ConditionSolver(model.domain_map())

    t1 = Constraint("T1", constraint_T1(), "Mkt→CS traffic must be firewalled")
    t2 = Constraint("T2", constraint_T2(), "R&D traffic must be load-balanced")
    known = [
        Constraint("C_lb", policy_C_lb(), "TE team's load-balancing policy"),
        Constraint("C_s", policy_C_s(), "security team's firewall policy"),
    ]
    update = listing4_update()

    verifier = RelativeCompleteVerifier(
        known, solver, schemas=SCHEMAS, column_domains=column_domains()
    )

    print("=== Level 1: constraint definitions only ===")
    verdict = verifier.verify(t1)
    print(f"T1: {verdict}")
    verdict = verifier.verify(t2)
    print(f"T2: {verdict}   <- more information needed\n")

    print("=== Level 2: the update becomes visible ===")
    print(f"update: {', '.join(str(op) for op in update)}")
    verdict = verifier.verify(t2, update=update)
    print(f"T2: {verdict}")
    for step in verdict.trail:
        print(f"   {step}")

    print("\n=== Level 3 (for comparison): the full state ===")
    state = model.database()
    direct = verifier.verify(t2, update=update, state=state)
    print(f"T2 via direct evaluation: {direct}")

    print("\n=== The complete-approach baseline ===")
    updated = apply_update(state, update)
    sweep = sweep_constraint(t2.program, updated, solver.domains)
    print(
        f"possible-worlds sweep: {sweep.worlds} worlds enumerated, "
        f"{sweep.violating_worlds} violating"
    )
    print(
        "\nNote: levels 1–2 never touched the network state — the paper's "
        "point: verification that scales with *constraints*, not state."
    )

    print("\n=== Bonus: a partial state and its counterexample ===")
    from repro import cvar
    from repro.network.enterprise import EnterpriseModel as EM
    from repro.verify.witness import extract_witness

    who = cvar("who")  # the unknown subnet a firewall was deployed on
    partial = EM().allow("Mkt", "CS", 7000).firewall(who, "CS")
    partial_solver = ConditionSolver(partial.domain_map())
    result = t1.check(partial.database(), partial_solver)
    print(f"T1 on a partial state: {result}")
    witness = extract_witness(t1, partial.database(), partial_solver, result)
    if witness is not None:
        print(witness.describe())


if __name__ == "__main__":
    main()
