#!/usr/bin/env python3
"""Checking a multi-step change plan (the §5 setting, extended).

The TE team wants to move load balancing from (Mkt, CS) to (R&D, GS).
There are two natural orderings — and one of them transiently breaks T2
("R&D traffic must be load balanced") at an intermediate step even
though both end in the same compliant state.  The plan checker verifies
the constraint after *every* prefix of the plan, preferring the
state-free subsumption test and falling back to direct evaluation.

Run:  python examples/update_plan.py
"""

from repro import ConditionSolver, Constraint
from repro.faurelog.rewrite import Deletion, Insertion
from repro.network.enterprise import (
    EnterpriseModel,
    SCHEMAS,
    column_domains,
    constraint_T2,
    policy_C_lb,
    policy_C_s,
)
from repro.verify.plans import check_plan


def main() -> None:
    model = EnterpriseModel.paper_state()
    state = model.database()
    solver = ConditionSolver(model.domain_map())
    t2 = Constraint("T2", constraint_T2(), "R&D traffic must be load balanced")
    known = [
        Constraint("C_lb", policy_C_lb()),
        Constraint("C_s", policy_C_s()),
    ]

    plans = {
        "insert-then-delete (make before break)": [
            Insertion("Lb", ("R&D", "GS")),
            Deletion("Lb", ("Mkt", "CS")),
        ],
        "risky reshuffle (break before make)": [
            Deletion("Lb", ("R&D", "GS")),
            Insertion("Lb", ("R&D", "GS")),
            Deletion("Lb", ("Mkt", "CS")),
        ],
    }

    for name, plan in plans.items():
        print(f"=== plan: {name} ===")
        report = check_plan(
            t2,
            plan,
            known=known,
            solver=solver,
            state=state,
            schemas=SCHEMAS,
            column_domains=column_domains(),
        )
        print(report)
        if not report.safe:
            bad = report.first_unsafe_step
            print(f"  -> first problem at step {bad.step}: {bad.operation}")
        print()


if __name__ == "__main__":
    main()
