#!/usr/bin/env python3
"""Continuous constraint monitoring over a stream of network events.

The verification team leaves a monitor running.  As reachability facts
stream in (flow discoveries, config pushes), each constraint's panic
query is maintained *incrementally* — no recomputation — and alarms
carry the exact condition of the violation, which over a partial state
distinguishes "violated, full stop" from "violated only if the unknown
firewall isn't where we hope".

Run:  python examples/streaming_monitor.py
"""

from repro import ConditionSolver, Constraint, Database, DomainMap, cvar, eq
from repro.solver import BOOL_DOMAIN, Unbounded
from repro.verify.monitor import ConstraintMonitor

EVENTS = [
    ("R", ["R&D", "CS"], None),   # fine: R&D→CS is firewalled
    ("R", ["Mkt", "GS"], None),   # conditional: firewall there only if x̄=1
    ("R", ["Mkt", "CS"], None),   # hard violation: no firewall at all
]


def main() -> None:
    x = cvar("x")
    db = Database()
    db.create_table("R", ["subnet", "server"])
    fw = db.create_table("Fw", ["subnet", "server"])
    fw.add(["R&D", "CS"])
    fw.add(["Mkt", "GS"], eq(x, 1))  # deployment status unknown

    t1 = Constraint.from_text(
        "T1", "panic :- R(Mkt, $y), not Fw(Mkt, $y).",
        "all Mkt traffic must be firewalled",
    )
    solver = ConditionSolver(DomainMap({x: BOOL_DOMAIN}, default=Unbounded()))
    monitor = ConstraintMonitor([t1], db, solver)

    print("monitor armed; streaming events:\n")
    for predicate, values, condition in EVENTS:
        print(f"event: +{predicate}({', '.join(map(str, values))})")
        alarms = monitor.insert(predicate, values, condition)
        if not alarms:
            print("   ok\n")
            continue
        for alarm in alarms:
            print(f"   ALARM {alarm}")
            print(f"   ({alarm.new_derivations} new panic derivation(s))\n")

    print("final status:", {k: v.value for k, v in monitor.status().items()})

    # the violation is real — ask for repairs
    from repro.verify.repair import suggest_repairs

    final_db = Database()
    r = final_db.create_table("R", ["subnet", "server"])
    for _, values, _ in EVENTS:
        r.add(values)
    fw2 = final_db.create_table("Fw", ["subnet", "server"])
    fw2.add(["R&D", "CS"])
    fw2.add(["Mkt", "GS"], eq(x, 1))
    print("\nsuggested repairs:")
    for repair in suggest_repairs(t1, final_db, solver):
        print(f"  {repair}")


if __name__ == "__main__":
    main()
