#!/usr/bin/env python3
"""Driving the c-table engine through its SQL face (§6's implementation).

The paper implements fauré-log by rewriting onto PostgreSQL; this example
plays a small interactive-style session against our engine, highlighting
the two places the implementation deviates from vanilla SQL:

1. INSERTed rows may carry c-variables and conditions;
2. every SELECT result carries a condition column, and contradictory
   tuples are removed by the solver (the paper's Z3 step).

Run:  python examples/sql_session.py
"""

from repro import ConditionSolver, DomainMap, FiniteDomain, SqlEngine, cvar

SESSION = [
    "CREATE TABLE Fib (prefix, nexthop)",
    # A certain route and two uncertain ones: the next hop of 10.1/16 is
    # unknown ($n), and the 10.2/16 entry exists only if link l̄ is up.
    "INSERT INTO Fib VALUES ('10.0.0.0/16', 'A')",
    "INSERT INTO Fib VALUES ('10.1.0.0/16', $n)",
    "INSERT INTO Fib VALUES ('10.2.0.0/16', 'B') CONDITION $l = 1",
    "CREATE TABLE Peer (router, asn)",
    "INSERT INTO Peer VALUES ('A', 65001)",
    "INSERT INTO Peer VALUES ('B', 65002)",
    "INSERT INTO Peer VALUES ('C', 65003)",
    # Which ASes might carry traffic for each prefix?
    "SELECT Fib.prefix, Peer.asn FROM Fib, Peer WHERE Fib.nexthop = Peer.router",
    # Restrict to the worlds where the unknown next hop is not A:
    "SELECT Fib.prefix, Peer.asn FROM Fib, Peer "
    "WHERE Fib.nexthop = Peer.router AND Fib.nexthop != 'A'",
]


def main() -> None:
    domains = DomainMap()
    domains.declare("n", FiniteDomain(["A", "B", "C"]))
    domains.declare("l", FiniteDomain([0, 1]))
    engine = SqlEngine(solver=ConditionSolver(domains))

    for statement in SESSION:
        print(f"sql> {statement}")
        result = engine.execute(statement)
        if result is not None:
            print(result.pretty())
            print()

    stats = engine.stats
    print(
        f"-- session stats: {stats.tuples_generated} tuples generated, "
        f"{stats.tuples_pruned} pruned as contradictory "
        f"(sql {stats.sql_seconds:.4f}s, solver {stats.solver_seconds:.4f}s)"
    )


if __name__ == "__main__":
    main()
