#!/usr/bin/env python3
"""Auditing an ACL you can only partially see.

The security team's ACL contains a deny rule whose subnet field the
auditing team cannot read (an unknown — a c-variable), plus visible
permit rules with port ranges.  The audit answers, per flow of interest:

* *always permitted* — whatever the hidden field is;
* *never permitted* — blocked in every completion;
* *conditional* — with the exact condition on the hidden field, so the
  auditor knows precisely which question to ask the security team.

Run:  python examples/acl_audit.py
"""

from repro import ConditionSolver, DomainMap, FiniteDomain, IntRange, cvar
from repro.network.acl import ANY, Acl

FLOWS = [
    ("Mkt", "CS", 7000),
    ("Mkt", "CS", 22),
    ("R&D", "GS", 8080),
    ("R&D", "CS", 7000),
    ("Guest", "CS", 7000),
]


def main() -> None:
    hidden = cvar("hidden_subnet")  # the field we cannot read

    acl = (
        Acl(default="deny")
        .deny(hidden, "CS", ANY)          # rule 1: hidden subnet barred from CS
        .deny(ANY, ANY, (0, 1023))        # rule 2: no well-known ports
        .permit(ANY, "CS", 7000)          # rule 3: application port to CS
        .permit("R&D", ANY, (7000, 9000)) # rule 4: R&D's dev range
    )

    domains = DomainMap()
    domains.declare(hidden, FiniteDomain(["Mkt", "R&D", "Guest"]))
    solver = ConditionSolver(domains)

    print("ACL audit with one unreadable field (hidden_subnet):\n")
    for src, dst, port in FLOWS:
        verdict = acl.permits(src, dst, port, solver)
        condition = acl.decision_condition(src, dst, port)
        if verdict == "conditional":
            simplified = solver.simplify(condition)
            print(f"  {src:>6} -> {dst:<3} :{port:<5} {verdict:<12} iff {simplified}")
        else:
            print(f"  {src:>6} -> {dst:<3} :{port:<5} {verdict}")

    print("\nCompiled permitted-flows c-table (solver-pruned):")
    table = acl.permitted_table(FLOWS)
    from repro.engine.pipeline import solver_prune

    print(solver_prune(table, solver).pretty())


if __name__ == "__main__":
    main()
