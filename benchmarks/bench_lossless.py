"""Loss-less modeling vs the complete approach (§4's implicit claim).

The paper's motivation: enumerating the data planes of an uncertain
network blows up exponentially in the number of uncertainty events, while
one c-table evaluation handles them all.  This bench measures both sides
on growing fast-reroute configurations:

* **fauré**: one recursive fauré-log evaluation over the c-table;
* **baseline**: instantiate each of the 2^k failure worlds and run a
  conventional (ground datalog) reachability query in each.

Expected shape: baseline time doubles per added protected link; fauré
grows polynomially with the (linearly growing) c-table.

Run: ``pytest benchmarks/bench_lossless.py --benchmark-only``
or   ``python benchmarks/bench_lossless.py``.
"""

import itertools

import pytest

from repro.ctable.worlds import instantiate_database, iter_assignments
from repro.network.frr import FrrConfig
from repro.network.reachability import ReachabilityAnalyzer, reachability_program
from repro.solver.interface import ConditionSolver
from repro.verify.baseline import GroundEvaluator

#: Number of protected links (the uncertainty knob): 2^k worlds.
LINK_COUNTS = [2, 4, 6, 8, 10]


def parallel_frr(protected_links: int) -> FrrConfig:
    """``k`` independent protected segments (local uncertainty).

    Each segment i is its own little Figure-1 gadget: source s_i with a
    protected primary to t_i and a detour through d_i.  Failures are
    *local* — exactly the structure of the RIB workload, where each
    prefix carries its own path-state variables — so every derived
    condition mentions one link variable, while the complete approach
    still faces the global 2^k world product.
    """
    config = FrrConfig()
    for i in range(protected_links):
        src, dst, detour = f"s{i}", f"t{i}", f"d{i}"
        config.protect(src, dst, backups=[detour], state_var=f"p{i}")
        config.add_link(detour, dst)
    return config


# Backwards-compatible alias used by the ablation bench: the *chain*
# topology (end-to-end reachability depends on every link) is fauré's
# adversarial case and lives in bench_ablation.
def chain_frr(protected_links: int) -> FrrConfig:
    """A chain of protected hops — conditions accumulate every variable."""
    config = FrrConfig()
    for i in range(protected_links):
        detour = f"d{i}"
        config.protect(i, i + 1, backups=[detour], state_var=f"p{i}")
        config.add_link(detour, i + 1)
    return config


def run_faure(config: FrrConfig) -> int:
    solver = ConditionSolver(config.domain_map())
    analyzer = ReachabilityAnalyzer(config.database(), solver)
    return len(analyzer.compute())


def run_baseline(config: FrrConfig) -> int:
    program = reachability_program()
    db = config.database()
    domains = config.domain_map()
    cvars = sorted(db.cvariables(), key=lambda v: v.name)
    total = 0
    for assignment in iter_assignments(cvars, domains):
        ground = GroundEvaluator(instantiate_database(db, assignment))
        total += len(ground.run(program)["R"])
    return total


@pytest.mark.parametrize("links", LINK_COUNTS)
def test_faure_single_evaluation(benchmark, links):
    config = parallel_frr(links)
    tuples = benchmark.pedantic(lambda: run_faure(config), rounds=1, iterations=1)
    benchmark.extra_info["protected_links"] = links
    benchmark.extra_info["worlds_covered"] = 2 ** links
    benchmark.extra_info["tuples"] = tuples


@pytest.mark.parametrize("links", LINK_COUNTS)
def test_baseline_world_enumeration(benchmark, links):
    config = parallel_frr(links)
    total = benchmark.pedantic(lambda: run_baseline(config), rounds=1, iterations=1)
    benchmark.extra_info["protected_links"] = links
    benchmark.extra_info["worlds_enumerated"] = 2 ** links
    benchmark.extra_info["ground_tuples_total"] = total


def main() -> None:
    import time

    print("Loss-less modeling: one c-table evaluation vs 2^k world enumeration")
    print(f"{'links':>6} {'worlds':>7} {'faure (s)':>10} {'baseline (s)':>13} {'speedup':>8}")
    for links in LINK_COUNTS:
        config = parallel_frr(links)
        t0 = time.perf_counter()
        run_faure(config)
        faure = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_baseline(config)
        base = time.perf_counter() - t0
        print(
            f"{links:>6} {2**links:>7} {faure:>10.3f} {base:>13.3f} "
            f"{base / max(faure, 1e-9):>8.1f}x"
        )


if __name__ == "__main__":
    main()
