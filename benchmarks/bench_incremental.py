"""Incremental maintenance vs recompute-from-scratch (§7 context).

A stream of new route announcements arrives (new F edges for existing
flows).  Two ways to keep the reachability view current:

* **recompute** — re-run q4/q5 after every change (the stateless
  baseline);
* **incremental** — semi-naive propagation from the delta
  (:class:`repro.faurelog.incremental.IncrementalEvaluator`).

Expected shape: recompute cost grows with the full database per event;
incremental cost tracks the (small) set of new derivations — the gap
widens with base size, which is exactly the argument incremental
verifiers (Jinjing, INCV) make, here reproduced on top of c-tables.

Run: ``pytest benchmarks/bench_incremental.py --benchmark-only``
or   ``python benchmarks/bench_incremental.py``.
"""

import pytest

from repro.ctable.table import Database
from repro.faurelog.evaluation import evaluate
from repro.faurelog.incremental import IncrementalEvaluator
from repro.network.forwarding import compile_forwarding
from repro.network.reachability import reachability_program
from repro.solver.interface import ConditionSolver
from repro.workloads.ribgen import RibConfig, generate_rib

BASE_PREFIXES = 40
EVENTS = 12

PROGRAM = reachability_program(per_flow=True)


def _workload(prefixes: int = BASE_PREFIXES, events_count: int = EVENTS):
    routes = generate_rib(RibConfig(prefixes=prefixes, as_count=70, seed=23))
    compiled = compile_forwarding(routes)
    # the event stream: fresh edges extending existing flows
    events = []
    for i, route in enumerate(routes[:events_count]):
        head = route.paths[0][0]
        events.append((route.prefix, f"NEW{i}", head))
    return compiled, events


def run_incremental() -> int:
    compiled, events = _workload()
    solver = ConditionSolver(compiled.domains)
    inc = IncrementalEvaluator(PROGRAM, compiled.database(), solver=solver)
    new = 0
    for flow, src, dst in events:
        new += inc.insert("F", [flow, src, dst])
    return new


def run_recompute() -> int:
    compiled, events = _workload()
    solver = ConditionSolver(compiled.domains)
    db = compiled.database()
    total = 0
    for flow, src, dst in events:
        db.table("F").add([flow, src, dst])
        result = evaluate(PROGRAM, db, solver=solver)
        total = len(result.table("R"))
    return total


def test_incremental(benchmark):
    new = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    benchmark.extra_info["events"] = EVENTS
    benchmark.extra_info["new_derivations"] = new


def test_recompute(benchmark):
    total = benchmark.pedantic(run_recompute, rounds=1, iterations=1)
    benchmark.extra_info["events"] = EVENTS
    benchmark.extra_info["final_tuples"] = total


def build_report(prefixes: int = BASE_PREFIXES, events_count: int = EVENTS) -> dict:
    """Per-event latency rows for the ``BENCH_incremental.json`` artifact.

    Measures, over the same announcement stream:

    * ``incremental_s`` — one :meth:`IncrementalEvaluator.insert` (the
      serve daemon's per-update apply cost);
    * ``recompute_s`` — a full q4/q5 re-evaluation after the same edge
      lands (the stateless baseline);
    * ``speedup`` — their ratio, per event and in aggregate.

    Both sides must agree on the final ``R`` cardinality; the report
    records the check so CI can gate on it.
    """
    import time

    compiled, events = _workload(prefixes, events_count)
    solver = ConditionSolver(compiled.domains)
    start = time.perf_counter()
    inc = IncrementalEvaluator(PROGRAM, compiled.database(), solver=solver)
    initial_s = time.perf_counter() - start

    recompute_db = compiled.database()
    recompute_solver = ConditionSolver(compiled.domains)
    rows = []
    for i, (flow, src, dst) in enumerate(events):
        start = time.perf_counter()
        derived = inc.insert("F", [flow, src, dst])
        incremental_s = time.perf_counter() - start

        recompute_db.table("F").add([flow, src, dst])
        start = time.perf_counter()
        result = evaluate(PROGRAM, recompute_db, solver=recompute_solver)
        recompute_s = time.perf_counter() - start
        rows.append(
            {
                "event": i,
                "new_derivations": derived,
                "incremental_s": round(incremental_s, 6),
                "recompute_s": round(recompute_s, 6),
                "speedup": round(recompute_s / max(incremental_s, 1e-9), 2),
            }
        )
    incremental_total = sum(row["incremental_s"] for row in rows)
    recompute_total = sum(row["recompute_s"] for row in rows)
    latencies = sorted(row["incremental_s"] for row in rows)
    return {
        "workload": "incremental-announcements",
        "prefixes": prefixes,
        "events": len(rows),
        "initial_eval_s": round(initial_s, 4),
        "final_tuples_agree": len(inc.table("R")) == len(result.table("R")),
        "incremental_total_s": round(incremental_total, 4),
        "recompute_total_s": round(recompute_total, 4),
        "speedup_vs_recompute": round(
            recompute_total / max(incremental_total, 1e-9), 2
        ),
        "update_latency_max_s": round(latencies[-1], 6) if latencies else 0.0,
        "update_latency_p50_s": round(latencies[len(latencies) // 2], 6)
        if latencies
        else 0.0,
        "rows": rows,
    }


def main() -> None:
    import time

    t0 = time.perf_counter()
    run_incremental()
    inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_recompute()
    rec = time.perf_counter() - t0
    print(f"{EVENTS} announcement events over a {BASE_PREFIXES}-prefix base:")
    print(f"  incremental: {inc:6.2f}s (includes the initial evaluation)")
    print(f"  recompute  : {rec:6.2f}s (full q4/q5 per event)")
    print(f"  speedup    : {rec / max(inc, 1e-9):5.1f}x")


if __name__ == "__main__":
    main()
