"""Machine-readable benchmark reports for the Table-4 RIB workload.

Produces three JSON artifacts next to the repo root (or ``--out-dir``):

* ``BENCH_table4.json`` — the paper's Table 4 measurements (per query
  and prefix size: sql/solver/wall seconds and generated tuple counts)
  at ``jobs=1``, i.e. the serial reproduction;
* ``BENCH_parallel.json`` — the same q6/q7/q8 sweep at ``jobs=1`` vs
  ``jobs=2`` and ``--jobs N`` side by side, with per-row
  ``speedup_vs_serial`` and the host's ``cpu_count`` so a reader can
  judge whether a speedup was physically possible on the measuring
  machine.  Parallel rows carry two *distinct* time columns: ``wall_s``
  (parent wall clock — what a user waits) and ``cpu_s`` (the workers'
  summed sql+solver CPU time — what the work costs).  Workers account
  phases on ``process_time``, so ``cpu_s`` is additive across workers
  and directly comparable to the serial row — earlier revisions summed
  per-worker *wall* phases, which on a timeshared host overstated the
  work by up to the worker count (rows where "sql_s" exceeded
  ``wall_s``).  Rows also report ``tasks`` (shard messages sent),
  ``ipc_bytes`` (pickled bytes both directions) and
  ``shared_memo_hits`` (cross-worker verdicts served by the shared
  store);
* ``BENCH_incremental.json`` — per-announcement update latency for
  semi-naive incremental maintenance vs recompute-from-scratch (the
  serve daemon's per-update apply cost; see bench_incremental.py);
* ``BENCH_serve.json`` — the serve daemon under multi-client load
  (query p50/p99, acked-ingest throughput, shed rate, threshold
  compactions) with two gates: a cold restart on the same WAL must
  answer the row projection byte-identically to the live daemon, and
  the live WAL suffix must stay bounded by the compaction interval
  (see bench_serve.py).

Both runs must generate identical tuple counts (``jobs`` changes how
the work is scheduled, never what is answered); the report asserts this
and exits non-zero on divergence, which is what the CI ``bench-smoke``
job leans on.

Run: ``python benchmarks/report.py`` (full sweep, jobs=4) or
``python benchmarks/report.py --smoke`` (smallest prefix, jobs=2).
"""

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.network.forwarding import compile_forwarding
from repro.workloads.ribgen import RibConfig, generate_rib

try:  # package-relative when imported by pytest
    from .bench_incremental import build_report as build_incremental_report
    from .bench_serve import FULL as SERVE_FULL
    from .bench_serve import SMOKE as SERVE_SMOKE
    from .bench_serve import build_report as build_serve_report
    from .bench_table4 import _fresh_analyzer, _pattern_stats, run_ablation
    from .conftest import PREFIX_SIZES
except ImportError:  # python benchmarks/report.py
    from bench_incremental import build_report as build_incremental_report
    from bench_serve import FULL as SERVE_FULL
    from bench_serve import SMOKE as SERVE_SMOKE
    from bench_serve import build_report as build_serve_report
    from bench_table4 import _fresh_analyzer, _pattern_stats, run_ablation
    from conftest import PREFIX_SIZES

QUERIES = ("q6", "q7", "q8")


def _fast_path_hit_rate(stats):
    """Share of solver decisions the interval/atom fast path settled.

    ``None`` when the phase recorded no fast-path activity at all
    (e.g. every verdict came from a cache).
    """
    extra = getattr(stats, "extra", None) or {}
    hits = extra.get("fast_path_hits", 0)
    misses = extra.get("fast_path_misses", 0)
    total = hits + misses
    return round(hits / total, 4) if total else None


def run_sweep(prefixes: int, jobs: int) -> List[Dict]:
    """One Table-4 column: q4–q5 then q6/q7/q8 at the given job count.

    Returns one row dict per query with the report schema: query,
    prefixes, sql_s, solver_s, cpu_s, wall_s, tuples, jobs, tasks,
    ipc_bytes, shared_memo_hits.  ``sql_s``/``solver_s`` are the phase
    split (summed worker CPU when ``jobs > 1``); ``cpu_s`` is their sum;
    ``wall_s`` is the parent's wall clock around the whole query.
    """
    routes = generate_rib(
        RibConfig(prefixes=prefixes, as_count=max(60, prefixes // 4), seed=20210610)
    )
    compiled = compile_forwarding(routes)
    analyzer = _fresh_analyzer(compiled, jobs=jobs)
    start = time.perf_counter()
    analyzer.compute()
    rows = [
        {
            "query": "q4-q5",
            "prefixes": prefixes,
            "sql_s": round(analyzer.stats.sql_seconds, 4),
            "solver_s": round(analyzer.stats.solver_seconds, 4),
            "cpu_s": round(
                analyzer.stats.sql_seconds + analyzer.stats.solver_seconds, 4
            ),
            "wall_s": round(time.perf_counter() - start, 4),
            "tuples": analyzer.stats.tuples_generated,
            "jobs": 1,  # the recursive fixpoint is inherently serial
            "tasks": 0,
            "ipc_bytes": 0,
            "shared_memo_hits": 0,
            "fast_path_hit_rate": _fast_path_hit_rate(analyzer.stats),
        }
    ]
    for query in QUERIES:
        # The shard/IPC/store accounting accumulates on the *analyzer's*
        # stats across queries; per-query values are before/after deltas.
        marks = dict(analyzer.stats.extra)
        start = time.perf_counter()
        stats = _pattern_stats(analyzer, compiled, routes, query, jobs=jobs)
        wall = time.perf_counter() - start

        def delta(key):
            return analyzer.stats.extra.get(key, 0) - marks.get(key, 0)

        rows.append(
            {
                "query": query,
                "prefixes": prefixes,
                "sql_s": round(stats.sql_seconds, 4),
                "solver_s": round(stats.solver_seconds, 4),
                "cpu_s": round(stats.sql_seconds + stats.solver_seconds, 4),
                "wall_s": round(wall, 4),
                "tuples": stats.tuples_generated,
                "jobs": jobs,
                "tasks": int(delta("parallel_tasks")),
                "ipc_bytes": int(delta("ipc_bytes")),
                "shared_memo_hits": int(delta("shared_memo_hits")),
                "fast_path_hit_rate": _fast_path_hit_rate(stats),
            }
        )
    return rows


def build_reports(sizes: List[int], jobs: int) -> Dict[str, Dict]:
    """Run the serial and parallel sweeps; assemble both report dicts."""
    serial_rows: List[Dict] = []
    parallel_rows: List[Dict] = []
    mismatches: List[str] = []
    # Always include a jobs=2 column: the "parallelism must not *hurt*"
    # gate is defined at two workers, whatever --jobs asks for.
    job_levels = sorted({2, jobs}) if jobs > 1 else []
    for prefixes in sizes:
        serial = run_sweep(prefixes, jobs=1)
        serial_rows.extend(serial)
        for s_row in serial:
            parallel_rows.append({**s_row, "speedup_vs_serial": 1.0})
        for level in job_levels:
            parallel = run_sweep(prefixes, jobs=level)
            for s_row, p_row in zip(serial, parallel):
                if s_row["tuples"] != p_row["tuples"]:
                    mismatches.append(
                        f"{s_row['query']}@{prefixes}: serial {s_row['tuples']} "
                        f"vs jobs={level} {p_row['tuples']} tuples"
                    )
                # q4-q5 is serial in both runs (row carries jobs=1); its
                # wall delta between the sweeps is noise, so skip the
                # duplicate.
                if p_row["jobs"] > 1:
                    parallel_rows.append(
                        {
                            **p_row,
                            "speedup_vs_serial": round(
                                s_row["wall_s"] / p_row["wall_s"], 3
                            )
                            if p_row["wall_s"]
                            else 1.0,
                        }
                    )
    # Static-optimizer ablation: per query, solver decisions with
    # --optimize off vs on (private memo tables per arm).  Rows are
    # joined onto the serial rows by (query, prefixes); the existing
    # schema only gains keys, so older consumers keep working.
    for prefixes in sizes:
        for abl in run_ablation(prefixes, jobs=1):
            if not abl["tuples_agree"]:
                mismatches.append(
                    f"{abl['query']}@{prefixes}: --optimize off "
                    f"{abl['tuples']} vs on {abl['tuples_optimized']} tuples"
                )
            for row in serial_rows:
                if (
                    row["query"] == abl["query"]
                    and row["prefixes"] == abl["prefixes"]
                ):
                    row["decisions"] = abl["decisions"]
                    row["decisions_optimized"] = abl["decisions_optimized"]
                    row["decision_reduction"] = abl["decision_reduction"]
    meta = {
        "workload": "table4-rib",
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "job_levels": job_levels,
        "prefix_sizes": sizes,
        "tuple_counts_agree": not mismatches,
        "tuple_mismatches": mismatches,
    }
    return {
        "BENCH_table4.json": {**meta, "jobs": 1, "rows": serial_rows},
        "BENCH_parallel.json": {**meta, "rows": parallel_rows},
    }


#: (prefixes, events) for the incremental-maintenance artifact.
INCREMENTAL_FULL = (40, 12)
INCREMENTAL_SMOKE = (20, 4)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=4, help="parallel worker count (default 4)"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"prefix sizes to sweep (default {PREFIX_SIZES})",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for the JSON artifacts"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest prefix size only, jobs=2 unless --jobs given",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        sizes = args.sizes or [min(PREFIX_SIZES)]
        jobs = args.jobs if args.jobs != parser.get_default("jobs") else 2
    else:
        sizes = args.sizes or list(PREFIX_SIZES)
        jobs = args.jobs

    os.makedirs(args.out_dir, exist_ok=True)
    reports = build_reports(sizes, jobs)
    inc_prefixes, inc_events = INCREMENTAL_SMOKE if args.smoke else INCREMENTAL_FULL
    reports["BENCH_incremental.json"] = build_incremental_report(
        inc_prefixes, inc_events
    )
    serve_params = SERVE_SMOKE if args.smoke else SERVE_FULL
    reports["BENCH_serve.json"] = build_serve_report(*serve_params)
    for name, payload in reports.items():
        path = os.path.join(args.out_dir, name)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        # Round-trip so a malformed artifact fails loudly here, not in CI.
        with open(path) as handle:
            json.load(handle)
        print(f"wrote {path} ({len(payload['rows'])} rows)")

    parallel = reports["BENCH_parallel.json"]
    if not parallel["tuple_counts_agree"]:
        for line in parallel["tuple_mismatches"]:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    rows = parallel["rows"]
    serial_by = {
        (r["query"], r["prefixes"]): r for r in rows if r["jobs"] == 1
    }
    best = max(
        (
            row["speedup_vs_serial"]
            for row in rows
            if row["jobs"] > 1 and row["query"] in QUERIES
        ),
        default=1.0,
    )
    print(
        f"serial/parallel tuple counts agree; best q6-q8 speedup "
        f"{best:.2f}x at jobs={jobs} on a {parallel['cpu_count']}-cpu host"
    )
    failures = []
    # Gate: two workers must never make things *worse* than serial by
    # more than 25% (plus a small absolute slack so sub-second smoke
    # runs don't gate on scheduler noise).  On a host with ≥2 CPUs the
    # bound is on wall time — what a user actually waits.  On a 1-CPU
    # host parallel wall is serial wall plus every fork/IPC cost with
    # zero chance of overlap, so wall is not a property of this code;
    # there the bound is on cpu_s — the *work* must stay within 25% of
    # serial (no duplicated solving, no accounting distortion), which is
    # exactly the machine-independent part of the claim.
    twos = [r for r in rows if r["jobs"] == 2 and r["query"] in QUERIES]
    if twos:
        multi_core = (parallel["cpu_count"] or 1) >= 2
        metric = "wall_s" if multi_core else "cpu_s"
        p_cost = sum(r[metric] for r in twos)
        s_cost = sum(
            serial_by[(r["query"], r["prefixes"])][metric] for r in twos
        )
        if p_cost > 1.25 * s_cost + 0.5:
            failures.append(
                f"jobs=2 q6-q8 {metric} {p_cost:.2f}s exceeds "
                f"1.25x serial ({s_cost:.2f}s)"
            )
        print(
            f"jobs=2 overhead gate ({metric}): q6-q8 {p_cost:.2f}s "
            f"vs serial {s_cost:.2f}s"
        )
    # Gate: with real cores available, the fan-out must actually win.
    if (parallel["cpu_count"] or 1) >= 2 and best < 1.5:
        failures.append(
            f"best q6-q8 speedup {best:.2f}x < 1.5x on a "
            f"{parallel['cpu_count']}-cpu host"
        )
    # Gate: the workers' *summed* solver CPU at the deepest job level
    # must stay within 1.5x of the serial run's on q6 and q8 — the same
    # decisions are made, only scheduled differently, so a blow-up here
    # means duplicated work (or dishonest wall-based accounting).
    deepest = max((r["jobs"] for r in rows), default=1)
    if deepest > 1:
        for row in rows:
            if row["jobs"] != deepest or row["query"] not in ("q6", "q8"):
                continue
            s_solver = serial_by[(row["query"], row["prefixes"])]["solver_s"]
            if row["solver_s"] > 1.5 * s_solver + 0.05:
                failures.append(
                    f"{row['query']}@{row['prefixes']}: jobs={deepest} summed "
                    f"solver_s {row['solver_s']:.3f} exceeds 1.5x serial "
                    f"({s_solver:.3f})"
                )
        print(
            f"cpu accounting gate: jobs={deepest} summed q6/q8 solver_s "
            f"within 1.5x of serial"
            if not any("summed" in f for f in failures)
            else "cpu accounting gate: FAILING"
        )
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    reductions = [
        (row["query"], row["prefixes"], row["decision_reduction"])
        for row in reports["BENCH_table4.json"]["rows"]
        if "decision_reduction" in row and row["query"] in ("q6", "q8")
    ]
    if reductions:
        worst = min(r for _, _, r in reductions)
        print(
            f"optimizer ablation: q6/q8 solver-decision reduction "
            f"{worst:.1%}..{max(r for _, _, r in reductions):.1%} with --optimize"
        )
        if worst < 0.20:
            for query, prefixes, r in reductions:
                if r < 0.20:
                    print(
                        f"FAIL: {query}@{prefixes} shed only {r:.1%} "
                        f"of solver decisions (<20%)",
                        file=sys.stderr,
                    )
            return 1
    incremental = reports["BENCH_incremental.json"]
    if not incremental["final_tuples_agree"]:
        print(
            "MISMATCH: incremental maintenance and recompute-from-scratch "
            "disagree on the final R cardinality",
            file=sys.stderr,
        )
        return 1
    print(
        f"incremental maintenance: {incremental['events']} events, "
        f"p50 update latency {incremental['update_latency_p50_s']}s, "
        f"{incremental['speedup_vs_recompute']:.1f}x vs recompute"
    )
    serve = reports["BENCH_serve.json"]
    if not serve["restart_rows_agree"]:
        print(
            "MISMATCH: serve daemon cold restart (snapshot + WAL-suffix "
            "replay) diverged from the live daemon's row projection",
            file=sys.stderr,
        )
        return 1
    if not serve["wal_bounded"]:
        print(
            f"FAIL: serve WAL unbounded after threshold compaction "
            f"({serve['wal_entries']} live entries)",
            file=sys.stderr,
        )
        return 1
    print(
        f"serve stress: {serve['clients']} clients, query p50 "
        f"{serve['query_p50_s']}s / p99 {serve['query_p99_s']}s, "
        f"{serve['ingest_per_s']:.0f} acked updates/s, "
        f"shed rate {serve['shed_rate']:.1%}, "
        f"{serve['compactions']} compactions, restart byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
