"""Tier-2 gate on the interval/atom fast path's hit rate.

The ≥5× solver-time reduction in ``BENCH_table4.json`` rests entirely
on the semi-decision fast path settling (nearly) every q6/q8 solver
call before the enumeration/DPLL backends run.  A soundness-preserving
regression that quietly knocks the hit rate down — a narrowed fragment,
a budget set too low, a canonical form the atomizer no longer
recognizes — would not fail any correctness test; it would just slide
Table 4 back toward the seed numbers.  This gate makes that slide loud:

* **live**: run the q6/q8 pattern sweep at a smoke size and demand a
  ``fast_path_hit_rate`` of at least :data:`REQUIRED_HIT_RATE` from the
  merged evaluator stats, with byte-identical tuple counts against a
  fast-path-off run of the same sweep;
* **artifact**: the committed ``BENCH_table4.json`` must carry the same
  floor on every q6/q8 row, so a stale or hand-edited artifact cannot
  claim a speedup the code no longer delivers.

Run: ``python benchmarks/bench_fastpath.py`` or
``pytest benchmarks/bench_fastpath.py``.
"""

import argparse
import json
import os
import sys

from repro.network.forwarding import compile_forwarding
from repro.workloads.ribgen import RibConfig, generate_rib

try:  # package-relative when imported by pytest
    from .bench_table4 import _fresh_analyzer, _pattern_stats
except ImportError:  # python benchmarks/bench_fastpath.py
    from bench_table4 import _fresh_analyzer, _pattern_stats

#: Floor on hits / (hits + misses) for the q6/q8 pattern sweeps.  The
#: measured rate is 1.0 across every size; 0.9 leaves headroom for
#: workload drift without letting the fast path decay into a bystander.
REQUIRED_HIT_RATE = 0.9

GATED_QUERIES = ("q6", "q8")

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_table4.json")


def _hit_rate(stats) -> float:
    extra = getattr(stats, "extra", None) or {}
    hits = extra.get("fast_path_hits", 0)
    misses = extra.get("fast_path_misses", 0)
    total = hits + misses
    return hits / total if total else 0.0


def run_gate(prefixes: int):
    """Measure the q6/q8 hit rate live; return per-query results.

    Each entry is ``(query, hit_rate, tuples_fast, tuples_slow)`` where
    the tuple counts come from fast-path-on and -off runs of the same
    sweep — they must agree exactly.
    """
    routes = generate_rib(
        RibConfig(prefixes=prefixes, as_count=max(60, prefixes // 4), seed=20210610)
    )
    compiled = compile_forwarding(routes)
    results = []
    for query in GATED_QUERIES:
        fast = _fresh_analyzer(compiled, fast_path=True)
        fast.compute()
        fast_stats = _pattern_stats(fast, compiled, routes, query)
        slow = _fresh_analyzer(compiled, fast_path=False)
        slow.compute()
        slow_stats = _pattern_stats(slow, compiled, routes, query)
        results.append(
            (
                query,
                _hit_rate(fast_stats),
                fast_stats.tuples_generated,
                slow_stats.tuples_generated,
            )
        )
    return results


def test_fast_path_hit_rate_floor():
    for query, rate, tuples_fast, tuples_slow in run_gate(prefixes=30):
        assert tuples_fast == tuples_slow, (
            f"{query}: fast path changed the answer "
            f"({tuples_fast} vs {tuples_slow} tuples)"
        )
        assert rate >= REQUIRED_HIT_RATE, (
            f"{query}: fast_path_hit_rate {rate:.3f} < {REQUIRED_HIT_RATE}"
        )


def test_committed_artifact_holds_the_floor():
    with open(ARTIFACT) as fh:
        report = json.load(fh)
    assert report["tuple_counts_agree"] is True
    gated = 0
    for row in report["rows"]:
        if row["query"] not in GATED_QUERIES:
            continue
        gated += 1
        rate = row.get("fast_path_hit_rate")
        assert rate is not None, f"{row['query']}@{row['prefixes']}: no hit rate"
        assert rate >= REQUIRED_HIT_RATE, (
            f"{row['query']}@{row['prefixes']}: committed hit rate {rate} "
            f"< {REQUIRED_HIT_RATE}"
        )
    assert gated >= len(GATED_QUERIES), "artifact is missing gated query rows"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smallest instance")
    parser.add_argument("--prefixes", type=int, default=None)
    args = parser.parse_args(argv)
    prefixes = args.prefixes or (20 if args.smoke else 50)
    failed = False
    for query, rate, tuples_fast, tuples_slow in run_gate(prefixes):
        agree = tuples_fast == tuples_slow
        ok = agree and rate >= REQUIRED_HIT_RATE
        failed |= not ok
        print(
            f"{query}@{prefixes}: hit_rate={rate:.3f} "
            f"tuples={tuples_fast}{'==' if agree else '!='}{tuples_slow} "
            f"[{'ok' if ok else 'FAIL'}]"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
