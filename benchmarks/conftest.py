"""Shared workload fixtures for the benchmark harness.

RIB sizes are scaled to laptop-friendly values (the paper ran 1 000 to
922 067 prefixes on a 1.4 GHz laptop over hours; we keep the default
sweep under a minute).  Set ``FAURE_BENCH_SCALE`` to multiply the prefix
counts, e.g. ``FAURE_BENCH_SCALE=10 pytest benchmarks/``.
"""

import os

import pytest

from repro.network.forwarding import compile_forwarding
from repro.solver.interface import ConditionSolver
from repro.workloads.ribgen import RibConfig, generate_rib

SCALE = float(os.environ.get("FAURE_BENCH_SCALE", "1"))

#: The #prefix sweep standing in for the paper's {1000, 10000, 100000, 922067}.
PREFIX_SIZES = [max(10, int(n * SCALE)) for n in (50, 100, 200)]


@pytest.fixture(scope="session")
def rib_workloads():
    """prefix-count → (routes, compiled forwarding)."""
    out = {}
    for prefixes in PREFIX_SIZES:
        routes = generate_rib(
            RibConfig(prefixes=prefixes, as_count=max(60, prefixes // 4), seed=20210610)
        )
        out[prefixes] = (routes, compile_forwarding(routes))
    return out
