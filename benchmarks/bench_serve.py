"""Serve daemon under multi-client load: latency, throughput, lifecycle.

One ingest stream (plain, conditional, removable, and withdrawn facts —
the full protocol-v2 mutation surface) runs against a live
:class:`~repro.serve.server.FaureServer` while N query clients hammer
the read path.  Threshold compaction (``--compact-every``) fires
repeatedly mid-stream, so the numbers include the log-lifecycle cost a
long-lived daemon actually pays.

The report (``BENCH_serve.json`` via report.py) carries:

* ``query_p50_s`` / ``query_p99_s`` — read latency under concurrent
  ingest (reads are served lock-free from the published epoch snapshot,
  so they should not degrade with writer activity);
* ``ingest_per_s`` — acked durable updates per second (fsync-bound);
* ``shed_rate`` — share of ingest requests refused with a typed
  ``OVERLOADED`` (admission control working as designed, never a hang);
* ``wal_bounded`` — after threshold compactions the live WAL suffix
  must stay at or below the compaction interval (the flat-recovery
  claim);
* ``restart_rows_agree`` — the cardinality-agreement gate: a cold
  restart on the same WAL (newest snapshot + suffix replay) must
  answer the row projection byte-identically to the live daemon.

Run: ``python benchmarks/bench_serve.py`` (or ``--smoke``), or
``pytest benchmarks/bench_serve.py --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import FaureServer
from repro.serve.state import ServeState

PROGRAM_TEXT = "R(f, x, y) :- F(f, x, y).\nR(f, x, z) :- R(f, x, y), F(f, y, z).\n"

#: (query clients, ingest updates, compaction interval)
FULL = (4, 80, 16)
SMOKE = (2, 24, 8)


def database_text(flows: int = 3, hops: int = 3) -> str:
    """A seed EDB: per-flow forwarding chains plus one conditional link."""
    from repro.ctable.condition import eq
    from repro.ctable.io import dump_database
    from repro.ctable.table import Database
    from repro.ctable.terms import CVariable
    from repro.solver.domains import BOOL_DOMAIN, DomainMap, Unbounded

    db = Database()
    table = db.create_table("F", ["flow", "src", "dst"])
    for f in range(flows):
        for h in range(hops):
            table.add([f"p{f}", f"n{h}", f"n{h + 1}"])
    table.add(["p0", f"n{hops}", "edge"], eq(CVariable("up"), 1))
    domains = DomainMap({CVariable("up"): BOOL_DOMAIN}, default=Unbounded("any"))
    return dump_database(db, domains)


def _rows_only(answer: dict) -> str:
    keep = ("relation", "schema", "status", "rows", "total")
    return json.dumps({k: answer[k] for k in keep}, sort_keys=True)


def _query_worker(address, done, out):
    latencies, shed = [], 0
    client = ServeClient(*address).connect()
    try:
        while not done.is_set():
            start = time.perf_counter()
            answer = client.query("R")
            latencies.append(time.perf_counter() - start)
            if not answer.get("ok") and answer.get("code") == "OVERLOADED":
                shed += 1
    finally:
        client.close()
    out.append({"queries": len(latencies), "latencies": latencies, "shed": shed})


def _percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    index = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[index]


def build_report(clients: int, updates: int, compact_every: int) -> dict:
    """Drive the stress run; return the ``BENCH_serve.json`` payload."""
    db_text = database_text()
    with tempfile.TemporaryDirectory() as tmp:
        wal = os.path.join(tmp, "bench.wal")
        state = ServeState(PROGRAM_TEXT, db_text, wal, compact_every=compact_every)
        server = FaureServer(state)
        threading.Thread(target=server.serve_forever, daemon=True).start()

        done = threading.Event()
        worker_out: list = []
        threads = [
            threading.Thread(
                target=_query_worker, args=(server.address, done, worker_out)
            )
            for _ in range(clients)
        ]
        for thread in threads:
            thread.start()

        ingest = ServeClient(*server.address).connect()
        guards, shed, acked = [], 0, 0
        start = time.perf_counter()
        try:
            for i in range(updates):
                removable = i % 5 == 4
                response = ingest.update(
                    "F",
                    [f"p{i % 3}", f"n{i}", f"x{i}"],
                    condition="$up == 1" if i % 7 == 6 else None,
                    removable=removable,
                    txid=f"bench-{i}",
                )
                if not response.get("ok"):
                    shed += 1
                    continue
                acked += 1
                if removable:
                    guards.append(response["guard"])
            # withdraw half the removable facts through the same WAL path
            withdrawn = guards[: len(guards) // 2]
            for j, guard in enumerate(withdrawn):
                response = ingest.withdraw(guard, txid=f"bench-wd-{j}")
                if response.get("ok"):
                    acked += 1
                else:
                    shed += 1
            ingest_s = time.perf_counter() - start
            done.set()
            for thread in threads:
                thread.join(timeout=30)
            live = _rows_only(ingest.query("R"))
            status = ingest.admin("status")
        finally:
            done.set()
            ingest.close()
            server.stop()

        # cardinality-agreement gate: a cold restart must answer the
        # same projection from snapshot + WAL-suffix replay alone
        restarted = ServeState(PROGRAM_TEXT, db_text, wal)
        recovered = _rows_only(restarted.query("R"))

    latencies = sorted(
        lat for out in worker_out for lat in out["latencies"]
    )
    queries = sum(out["queries"] for out in worker_out)
    requests = updates + len(withdrawn)
    rows = [
        {
            "client": i,
            "queries": out["queries"],
            "p50_s": round(_percentile(sorted(out["latencies"]), 0.50), 6),
            "p99_s": round(_percentile(sorted(out["latencies"]), 0.99), 6),
            "shed": out["shed"],
        }
        for i, out in enumerate(worker_out)
    ]
    return {
        "workload": "serve-stress",
        "clients": clients,
        "updates": requests,
        "acked": acked,
        "ingest_per_s": round(acked / max(ingest_s, 1e-9), 1),
        "queries_total": queries,
        "query_p50_s": round(_percentile(latencies, 0.50), 6),
        "query_p99_s": round(_percentile(latencies, 0.99), 6),
        "shed_rate": round(shed / max(requests, 1), 4),
        "compactions": status["counters"]["compactions"],
        "withdrawals": status["counters"]["withdrawals"],
        "wal_entries": status["wal_entries"],
        "wal_bounded": status["wal_entries"] <= compact_every,
        "restart_rows_agree": recovered == live,
        "rows": rows,
    }


def test_serve_stress(benchmark):
    clients, updates, compact_every = SMOKE
    report = benchmark.pedantic(
        build_report, args=(clients, updates, compact_every), rounds=1, iterations=1
    )
    assert report["restart_rows_agree"], "restart diverged from the live daemon"
    assert report["wal_bounded"], "threshold compaction failed to bound the WAL"
    assert report["compactions"] >= 1
    benchmark.extra_info.update(
        {k: report[k] for k in ("ingest_per_s", "query_p50_s", "shed_rate")}
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    args = parser.parse_args(argv)
    clients, updates, compact_every = SMOKE if args.smoke else FULL
    report = build_report(clients, updates, compact_every)
    print(
        f"{clients} query clients over {report['updates']} updates "
        f"(compact every {compact_every}):"
    )
    print(
        f"  query latency: p50 {report['query_p50_s'] * 1e3:7.2f}ms  "
        f"p99 {report['query_p99_s'] * 1e3:7.2f}ms  "
        f"({report['queries_total']} queries)"
    )
    print(
        f"  ingest       : {report['ingest_per_s']:7.1f} acked/s  "
        f"shed rate {report['shed_rate']:.1%}"
    )
    print(
        f"  lifecycle    : {report['compactions']} compactions, "
        f"{report['withdrawals']} withdrawals, "
        f"{report['wal_entries']} live WAL entries"
    )
    failures = []
    if not report["restart_rows_agree"]:
        failures.append("cold restart diverged from the live daemon's rows")
    if not report["wal_bounded"]:
        failures.append(
            f"WAL not bounded: {report['wal_entries']} entries "
            f"> compact_every={compact_every}"
        )
    if report["compactions"] < 1:
        failures.append("threshold compaction never fired")
    for line in failures:
        print(f"FAIL: {line}")
    if not failures:
        print("  restart state byte-identical to live rows; WAL bounded")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
