"""Ablations of fauré's design choices (DESIGN.md §5).

Four knobs, each isolating one mechanism:

* **solver pruning on/off** — the paper's step 3.  Without it,
  contradictory tuples survive and inflate every later join.
* **eager vs lazy pruning** — prune inside each operator (small
  intermediates) or once at the end (the paper's staged pipeline).
* **solver backend** — exact finite-domain enumeration vs the DPLL(T)
  driver on identical queries (forced via the enumeration limit).
* **condition locality** — parallel (local conditions, the RIB shape) vs
  chain (every condition mentions every link): fauré's best and worst
  cases for the same world count.

Run: ``pytest benchmarks/bench_ablation.py --benchmark-only``
or   ``python benchmarks/bench_ablation.py``.
"""

import pytest

from repro.engine.algebra import ColumnRef, Join, Pred, Scan, Selection
from repro.engine.pipeline import run_eager, run_lazy
from repro.engine.stats import EvalStats
from repro.faurelog.evaluation import FaureEvaluator
from repro.network.forwarding import compile_forwarding
from repro.network.reachability import ReachabilityAnalyzer, reachability_program
from repro.solver.interface import ConditionSolver
from repro.workloads.ribgen import RibConfig, generate_rib

try:
    from .bench_lossless import chain_frr, parallel_frr
except ImportError:
    from bench_lossless import chain_frr, parallel_frr

RIB_PREFIXES = 60


@pytest.fixture(scope="module")
def rib():
    routes = generate_rib(RibConfig(prefixes=RIB_PREFIXES, as_count=80, seed=7))
    return compile_forwarding(routes)


def evaluate_reachability(compiled, prune: bool) -> EvalStats:
    solver = ConditionSolver(compiled.domains)
    evaluator = FaureEvaluator(compiled.database(), solver=solver, prune=prune)
    evaluator.evaluate(reachability_program(per_flow=True))
    return evaluator.stats


class TestSolverPruning:
    """Step-3 pruning on vs off during fixpoint evaluation."""

    def test_pruning_on(self, benchmark, rib):
        stats = benchmark.pedantic(
            lambda: evaluate_reachability(rib, prune=True), rounds=1, iterations=1
        )
        benchmark.extra_info["tuples"] = stats.tuples_generated
        benchmark.extra_info["pruned"] = stats.tuples_pruned

    def test_pruning_off(self, benchmark, rib):
        stats = benchmark.pedantic(
            lambda: evaluate_reachability(rib, prune=False), rounds=1, iterations=1
        )
        benchmark.extra_info["tuples"] = stats.tuples_generated
        benchmark.extra_info["pruned"] = stats.tuples_pruned


class TestPipelineStaging:
    """Eager (per-operator) vs lazy (final-pass) solver pruning."""

    def _plan_and_db(self, rib):
        from repro.ctable.table import Database
        from repro.engine.algebra import Rename

        db = Database([rib.table.copy("F1"), rib.table.copy("F2")])
        right = Rename(
            Scan("F2"), {"flow": "flow2", "n1": "m1", "n2": "m2"}, name="F2r"
        )
        # two-hop pairs: join F1.n2 = F2.n1 (per-flow join keys are
        # constants, conditions compose)
        plan = Join(Scan("F1"), right, on=[("n2", "m1")], project_right=["m2"])
        return plan, db

    def test_eager(self, benchmark, rib):
        plan, db = self._plan_and_db(rib)
        solver = ConditionSolver(rib.domains)
        _, stats = benchmark.pedantic(
            lambda: run_eager(plan, db, ConditionSolver(rib.domains)),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["tuples"] = stats.tuples_generated
        benchmark.extra_info["pruned"] = stats.tuples_pruned

    def test_lazy(self, benchmark, rib):
        plan, db = self._plan_and_db(rib)
        _, stats = benchmark.pedantic(
            lambda: run_lazy(plan, db, ConditionSolver(rib.domains)),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["tuples"] = stats.tuples_generated
        benchmark.extra_info["pruned"] = stats.tuples_pruned


class TestSolverBackend:
    """Exact enumeration vs DPLL(T) on the same satisfiability load."""

    def _conditions(self, rib):
        return [t.condition for t in rib.table][:800]

    def test_enumeration_backend(self, benchmark, rib):
        conditions = self._conditions(rib)

        def run():
            solver = ConditionSolver(rib.domains)  # enumeration fits
            return sum(1 for c in conditions if solver.is_satisfiable(c))

        sat = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["sat_conditions"] = sat

    def test_dpll_backend(self, benchmark, rib):
        conditions = self._conditions(rib)

        def run():
            solver = ConditionSolver(rib.domains, enumeration_limit=0)  # force DPLL
            return sum(1 for c in conditions if solver.is_satisfiable(c))

        sat = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["sat_conditions"] = sat


class TestGoalSpecialization:
    """q7-style point queries: bottom-up everything vs goal-directed."""

    def _goal(self, rib):
        from repro.ctable.terms import Variable
        from repro.faurelog.ast import Atom

        route_prefix = next(iter(rib.path_vars))
        return Atom("R", [route_prefix, Variable("a"), Variable("b")])

    def test_bottom_up_then_select(self, benchmark, rib):
        from repro.ctable.terms import Constant

        goal = self._goal(rib)

        def run():
            solver = ConditionSolver(rib.domains)
            evaluator = FaureEvaluator(rib.database(), solver=solver)
            result = evaluator.evaluate(reachability_program(per_flow=True))
            flow = goal.terms[0]
            return [t for t in result.table("R") if t.values[0] == flow]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["rows"] = len(rows)

    def test_goal_directed(self, benchmark, rib):
        from repro.faurelog.specialize import solve_goal

        goal = self._goal(rib)

        def run():
            solver = ConditionSolver(rib.domains)
            return solve_goal(
                reachability_program(per_flow=True), rib.database(), goal, solver=solver
            )

        table = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["rows"] = len(table)


class TestConditionLocality:
    """Parallel (local) vs chain (global) condition structure, equal k."""

    K = 7

    def _run(self, config):
        solver = ConditionSolver(config.domain_map())
        analyzer = ReachabilityAnalyzer(config.database(), solver)
        analyzer.compute()
        return analyzer.stats

    def test_parallel_local_conditions(self, benchmark):
        stats = benchmark.pedantic(
            lambda: self._run(parallel_frr(self.K)), rounds=1, iterations=1
        )
        benchmark.extra_info["tuples"] = stats.tuples_generated

    def test_chain_global_conditions(self, benchmark):
        stats = benchmark.pedantic(
            lambda: self._run(chain_frr(self.K)), rounds=1, iterations=1
        )
        benchmark.extra_info["tuples"] = stats.tuples_generated


def main() -> None:
    import time

    routes = generate_rib(RibConfig(prefixes=RIB_PREFIXES, as_count=80, seed=7))
    compiled = compile_forwarding(routes)

    print("Ablation 1 — solver pruning during evaluation")
    for prune in (True, False):
        t0 = time.perf_counter()
        stats = evaluate_reachability(compiled, prune=prune)
        wall = time.perf_counter() - t0
        label = "on " if prune else "off"
        print(
            f"  pruning {label}: {wall:6.2f}s  "
            f"{stats.tuples_generated} tuples ({stats.tuples_pruned} pruned)"
        )

    print("\nAblation 2 — condition locality (k=7 protected links)")
    for name, config in (("parallel", parallel_frr(7)), ("chain", chain_frr(7))):
        solver = ConditionSolver(config.domain_map())
        analyzer = ReachabilityAnalyzer(config.database(), solver)
        t0 = time.perf_counter()
        analyzer.compute()
        print(f"  {name:>8}: {time.perf_counter() - t0:6.2f}s  {analyzer.stats.tuples_generated} tuples")

    print("\nAblation 3 — goal-directed vs bottom-up for a point query")
    from repro.ctable.terms import Variable
    from repro.faurelog.ast import Atom
    from repro.faurelog.specialize import solve_goal

    prefix0 = next(iter(compiled.path_vars))
    goal = Atom("R", [prefix0, Variable("a"), Variable("b")])
    t0 = time.perf_counter()
    solver = ConditionSolver(compiled.domains)
    evaluator = FaureEvaluator(compiled.database(), solver=solver)
    full = evaluator.evaluate(reachability_program(per_flow=True))
    bottom_up = time.perf_counter() - t0
    t0 = time.perf_counter()
    goal_table = solve_goal(
        reachability_program(per_flow=True),
        compiled.database(),
        goal,
        solver=ConditionSolver(compiled.domains),
    )
    goal_time = time.perf_counter() - t0
    print(f"    bottom-up: {bottom_up:6.3f}s ({len(full.table('R'))} tuples total)")
    print(f"    goal-dir : {goal_time:6.3f}s ({len(goal_table)} tuples for the flow)")

    print("\nAblation 4 — solver backend on the RIB condition load")
    conditions = [t.condition for t in compiled.table][:800]
    for name, limit in (("enumeration", 1 << 20), ("dpll", 0)):
        solver = ConditionSolver(compiled.domains, enumeration_limit=limit)
        t0 = time.perf_counter()
        sat = sum(1 for c in conditions if solver.is_satisfiable(c))
        print(f"  {name:>11}: {time.perf_counter() - t0:6.3f}s  ({sat} satisfiable)")


if __name__ == "__main__":
    main()
