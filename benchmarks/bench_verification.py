"""Relative-complete verification vs the complete approach (§5, §7).

§7's claim: "fauré's relative-complete verifiers use constraint
subsumption, a reasoning process that entirely eliminates the need to
access network state."  This bench quantifies it along two axes:

* **state size** — random enterprises with more subnets/servers: the
  category (i) subsumption test should stay flat (it never reads the
  state), while direct evaluation grows with the state;
* **uncertainty** — more unknown (c-variable) entries: the
  possible-worlds baseline doubles per unknown, direct c-table
  evaluation grows gently, subsumption stays flat.

Run: ``pytest benchmarks/bench_verification.py --benchmark-only``
or   ``python benchmarks/bench_verification.py``.
"""

import pytest

from repro.solver.interface import ConditionSolver
from repro.verify.baseline import sweep_constraint
from repro.verify.constraints import Constraint
from repro.verify.subsumption import check_subsumption
from repro.workloads.enterprisegen import ScenarioConfig, generate_scenario

#: State-size sweep: (subnets, servers).
STATE_SIZES = [(2, 2), (4, 4), (6, 6), (8, 8)]

#: Uncertainty sweep: number of unknown entries.
UNKNOWN_COUNTS = [0, 2, 4, 6, 8]


def scenario_for(size=(2, 2), unknowns=0):
    subnets, servers = size
    return generate_scenario(
        ScenarioConfig(
            subnets=subnets, servers=servers, unknown_entries=unknowns, seed=42
        )
    )


def run_subsumption(scenario):
    solver = ConditionSolver(scenario.domains)
    return check_subsumption(
        Constraint("target", scenario.target),
        [Constraint("policy", p) for p in scenario.policies],
        solver,
        schemas=scenario.schemas,
        column_domains=scenario.column_domains,
    )


def run_direct(scenario):
    solver = ConditionSolver(scenario.domains)
    return Constraint("target", scenario.target).check(scenario.database, solver)


def run_world_sweep(scenario):
    return sweep_constraint(
        scenario.target, scenario.database, scenario.domains
    )


@pytest.mark.parametrize("size", STATE_SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_subsumption_vs_state_size(benchmark, size):
    """Category (i): should be flat — it never touches the state."""
    scenario = scenario_for(size=size)
    result = benchmark.pedantic(lambda: run_subsumption(scenario), rounds=1, iterations=1)
    benchmark.extra_info["state_rows"] = len(scenario.database.table("R"))
    benchmark.extra_info["verdict"] = str(result)


@pytest.mark.parametrize("size", STATE_SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_direct_check_vs_state_size(benchmark, size):
    """Direct evaluation reads the state: grows with it."""
    scenario = scenario_for(size=size)
    result = benchmark.pedantic(lambda: run_direct(scenario), rounds=1, iterations=1)
    benchmark.extra_info["state_rows"] = len(scenario.database.table("R"))
    benchmark.extra_info["status"] = result.status.value


@pytest.mark.parametrize("unknowns", UNKNOWN_COUNTS)
def test_direct_check_vs_uncertainty(benchmark, unknowns):
    """C-table evaluation under growing uncertainty (stays polynomial)."""
    scenario = scenario_for(unknowns=unknowns)
    benchmark.pedantic(lambda: run_direct(scenario), rounds=1, iterations=1)
    benchmark.extra_info["unknown_entries"] = unknowns


@pytest.mark.parametrize("unknowns", UNKNOWN_COUNTS)
def test_baseline_sweep_vs_uncertainty(benchmark, unknowns):
    """The complete approach: world count multiplies per unknown."""
    scenario = scenario_for(unknowns=unknowns)
    sweep = benchmark.pedantic(lambda: run_world_sweep(scenario), rounds=1, iterations=1)
    benchmark.extra_info["unknown_entries"] = unknowns
    benchmark.extra_info["worlds"] = sweep.worlds


def main() -> None:
    import time

    print("Category (i) subsumption vs direct check, growing STATE size")
    print(f"{'state':>8} {'R rows':>7} {'subsume (s)':>12} {'direct (s)':>11}")
    for size in STATE_SIZES:
        scenario = scenario_for(size=size)
        t0 = time.perf_counter(); run_subsumption(scenario); sub = time.perf_counter() - t0
        t0 = time.perf_counter(); run_direct(scenario); direct = time.perf_counter() - t0
        rows = len(scenario.database.table("R"))
        print(f"{size[0]}x{size[1]:<6} {rows:>7} {sub:>12.3f} {direct:>11.3f}")

    print("\nDirect c-table check vs possible-worlds sweep, growing UNCERTAINTY")
    print(f"{'unknowns':>9} {'worlds':>7} {'direct (s)':>11} {'sweep (s)':>10}")
    for unknowns in UNKNOWN_COUNTS:
        scenario = scenario_for(unknowns=unknowns)
        t0 = time.perf_counter(); run_direct(scenario); direct = time.perf_counter() - t0
        t0 = time.perf_counter(); sweep = run_world_sweep(scenario); sw = time.perf_counter() - t0
        print(f"{unknowns:>9} {sweep.worlds:>7} {direct:>11.3f} {sw:>10.3f}")


if __name__ == "__main__":
    main()
