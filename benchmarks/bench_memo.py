"""Decision-call savings from canonical interning + shared memoization.

The Table-4 RIB workload runs as a multi-stage pipeline: the recursive
q4/q5 fixpoint computes R, then the q6 and q8 failure-pattern queries
nest over it.  Each stage historically built its own
:class:`ConditionSolver` with a cold structural cache, so semantically
repeated conditions re-entered the enumeration/DPLL machinery at every
stage.  This benchmark runs the identical workload twice —

* **memo**: every stage's solver shares one :class:`MemoTable`
  (canonical-form verdict cache), as the pipeline now does by default;
* **no-memo**: ``memo=None`` everywhere (the ``--no-memo`` CLI path);

— and reports the reduction in *backend decision calls*
(``SolverStats.decisions`` = enumeration + DPLL invocations, the
expensive part) plus wall-clock.  The rendered query outputs of both
runs are asserted byte-identical: memoization changes how much work is
done, never what is answered.

Run: ``python benchmarks/bench_memo.py`` (``--smoke`` for the CI-sized
instance) or ``pytest benchmarks/bench_memo.py``.
"""

import argparse
import sys
import time

from repro.network.forwarding import compile_forwarding
from repro.network.reachability import ReachabilityAnalyzer
from repro.solver.interface import ConditionSolver
from repro.solver.memo import MemoTable
from repro.workloads.failures import at_least_k_failures, exactly_k_failures
from repro.workloads.ribgen import RibConfig, generate_rib

#: Floor demanded of decisions(no-memo) / decisions(memo).
REQUIRED_RATIO = 1.5


def run_workload(prefixes: int, memo):
    """The three-stage Table-4 pipeline with per-stage fresh solvers.

    ``memo`` is a :class:`MemoTable` shared by every stage, or ``None``
    to disable memoization.  Returns ``(decisions, seconds, output)``
    where ``output`` is the full rendering of every result table.
    """
    routes = generate_rib(
        RibConfig(prefixes=prefixes, as_count=max(60, prefixes // 4), seed=20210610)
    )
    compiled = compile_forwarding(routes)
    outputs = []
    decisions = 0
    start = time.perf_counter()

    # Stage 1: q4/q5 recursive fixpoint computes R.
    solver = ConditionSolver(compiled.domains, memo=memo)
    analyzer = ReachabilityAnalyzer(compiled.database(), solver, per_flow=True)
    outputs.append(analyzer.compute().pretty(max_rows=None))
    decisions += solver.stats.decisions

    # Stages 2-4: the q6 / q7 / q8 failure patterns of Table 4, each
    # stage with a *fresh* solver (cold structural cache — only the
    # shared memo carries over between stages).
    for kind in ("q6", "q7", "q8"):
        stage_solver = ConditionSolver(compiled.domains, memo=memo)
        analyzer.solver = stage_solver
        for route in routes:
            variables = list(compiled.variables_of(route.prefix))
            if len(variables) < 2:
                continue
            if kind == "q6":
                pattern = exactly_k_failures(variables, len(variables) - 1)
                table, _ = analyzer.under_pattern(
                    pattern, flow=route.prefix, name="T1"
                )
            elif kind == "q7":
                pattern = exactly_k_failures(variables, len(variables) - 1)
                table, _ = analyzer.under_pattern(
                    pattern,
                    flow=route.prefix,
                    source=route.paths[0][0],
                    dest=route.paths[0][-1],
                    name="T2",
                )
            else:
                pattern = at_least_k_failures(variables, 1)
                table, _ = analyzer.under_pattern(
                    pattern, flow=route.prefix, name="T3"
                )
            outputs.append(table.pretty(max_rows=None))
        decisions += stage_solver.stats.decisions

    return decisions, time.perf_counter() - start, "\n".join(outputs)


def compare(prefixes: int):
    """Run memo-on and memo-off; return the report dict."""
    memo = MemoTable()
    with_memo = run_workload(prefixes, memo)
    without = run_workload(prefixes, None)
    return {
        "prefixes": prefixes,
        "decisions_memo": with_memo[0],
        "decisions_no_memo": without[0],
        "seconds_memo": with_memo[1],
        "seconds_no_memo": without[1],
        "identical_output": with_memo[2] == without[2],
        "memo_counters": memo.counters(),
    }


def test_memo_reduces_decisions_with_identical_output():
    """CI guard: the ratio floor and byte-identical output both hold."""
    report = compare(prefixes=12)
    assert report["identical_output"], "memoized output diverged from baseline"
    assert report["decisions_memo"] > 0
    ratio = report["decisions_no_memo"] / report["decisions_memo"]
    assert ratio >= REQUIRED_RATIO, (
        f"decision-call reduction {ratio:.2f}x below the {REQUIRED_RATIO}x floor "
        f"({report['decisions_no_memo']} vs {report['decisions_memo']})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized instance (a few seconds)"
    )
    parser.add_argument(
        "--prefixes", type=int, default=None, help="override the RIB size"
    )
    args = parser.parse_args(argv)
    prefixes = args.prefixes if args.prefixes else (12 if args.smoke else 50)

    report = compare(prefixes)
    ratio = (
        report["decisions_no_memo"] / report["decisions_memo"]
        if report["decisions_memo"]
        else float("inf")
    )
    print(f"Table-4 RIB workload, {prefixes} prefixes (q4-q5 + q6-q8):")
    print(
        f"  decisions   no-memo={report['decisions_no_memo']:>6} "
        f"memo={report['decisions_memo']:>6}   reduction={ratio:.2f}x"
    )
    print(
        f"  wall-clock  no-memo={report['seconds_no_memo']:.3f}s "
        f"memo={report['seconds_memo']:.3f}s"
    )
    counters = report["memo_counters"]
    print(
        f"  memo        hits={counters['memo_hits']} misses={counters['memo_misses']} "
        f"entries={counters['memo_entries']} interned={counters['interned']}"
    )
    print(f"  output      byte-identical: {report['identical_output']}")
    ok = report["identical_output"] and ratio >= REQUIRED_RATIO
    print(f"  verdict     {'PASS' if ok else 'FAIL'} (floor {REQUIRED_RATIO}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
