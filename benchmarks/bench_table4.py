"""Table 4 — running time of reachability analysis on RIB inputs.

The paper reports, for four RIB sizes, the per-query SQL time, Z3
(solver) time, and generated tuple counts for:

* q4–q5: recursive all-pairs reachability (SQL time only in the paper);
* q6: reachability under a 2-link-failure pattern;
* q7: a nested, endpoint-pinned query;
* q8: reachability with at-least-one-failure.

We reproduce the same measurements on the synthetic RIB at scaled-down
prefix counts.  Shapes to look for (paper vs ours):

* q4–q5 grows roughly linearly in #prefixes;
* q6/q8 touch every prefix → tuple counts and solver time scale with the
  input, with solver time dominating SQL time;
* q7 is pinned to one flow/endpoint pair → nearly flat.

Run: ``pytest benchmarks/bench_table4.py --benchmark-only``
or   ``python benchmarks/bench_table4.py`` for the paper's table layout
(``--jobs N`` fans the per-prefix q6–q8 queries across a worker pool;
the printed numbers are identical for every ``jobs`` value).
"""

import argparse
from typing import List

import pytest

from repro.ctable.condition import Condition, LinearAtom
from repro.engine.stats import EvalStats
from repro.network.reachability import PatternQuery, ReachabilityAnalyzer
from repro.solver.interface import ConditionSolver
from repro.workloads.failures import at_least_k_failures, exactly_k_failures

try:  # pytest run
    from .conftest import PREFIX_SIZES
except ImportError:  # python benchmarks/bench_table4.py
    from conftest import PREFIX_SIZES


def _fresh_analyzer(
    compiled,
    jobs: int = 1,
    fast_path: bool = True,
    optimize: bool = False,
    fresh_memo: bool = False,
):
    """Build an analyzer; ``fresh_memo`` gives the run a private memo
    table so on/off ablation pairs cannot serve each other's verdicts."""
    from repro.solver.memo import MemoTable

    solver = ConditionSolver(
        compiled.domains,
        fast_path=fast_path,
        **({"memo": MemoTable()} if fresh_memo else {}),
    )
    return ReachabilityAnalyzer(
        compiled.database(), solver, per_flow=True, jobs=jobs, optimize=optimize
    )


def _pattern_queries(compiled, routes, kind: str) -> List[PatternQuery]:
    """The per-prefix q6/q7/q8-shaped queries, one list per query kind."""
    queries: List[PatternQuery] = []
    for route in routes:
        variables = list(compiled.variables_of(route.prefix))
        if len(variables) < 2:
            continue
        if kind == "q6":
            queries.append(
                PatternQuery(
                    exactly_k_failures(variables, len(variables) - 1),
                    name="T1",
                    flow=route.prefix,
                )
            )
        elif kind == "q7":
            queries.append(
                PatternQuery(
                    exactly_k_failures(variables, len(variables) - 1),
                    name="T2",
                    flow=route.prefix,
                    source=route.paths[0][0],
                    dest=route.paths[0][-1],
                )
            )
        else:  # q8
            queries.append(
                PatternQuery(
                    at_least_k_failures(variables, 1), name="T3", flow=route.prefix
                )
            )
    return queries


def _pattern_stats(analyzer, compiled, routes, kind: str, jobs: int = 1) -> EvalStats:
    """Run a q6/q7/q8-shaped query over every prefix; merge stats.

    ``jobs > 1`` fans the independent per-prefix queries across a worker
    pool via :meth:`ReachabilityAnalyzer.under_patterns`; the merged
    stats (and the result tables) are identical for every ``jobs``.
    """
    total = EvalStats()
    for _, stats in analyzer.under_patterns(
        _pattern_queries(compiled, routes, kind), jobs=jobs
    ):
        total.add(stats)
    return total


@pytest.mark.parametrize("prefixes", PREFIX_SIZES)
def test_q4_q5_recursion(benchmark, rib_workloads, prefixes):
    """q4–q5: all-pairs reachability via the recursive fixpoint."""
    routes, compiled = rib_workloads[prefixes]

    def run():
        analyzer = _fresh_analyzer(compiled)
        analyzer.compute()
        return analyzer

    analyzer = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["prefixes"] = prefixes
    benchmark.extra_info["sql_seconds"] = round(analyzer.stats.sql_seconds, 4)
    benchmark.extra_info["solver_seconds"] = round(analyzer.stats.solver_seconds, 4)
    benchmark.extra_info["tuples"] = analyzer.stats.tuples_generated


@pytest.mark.parametrize("prefixes", PREFIX_SIZES)
@pytest.mark.parametrize("query", ["q6", "q7", "q8"])
def test_failure_patterns(benchmark, rib_workloads, prefixes, query):
    """q6/q7/q8: failure-pattern queries nested over R."""
    routes, compiled = rib_workloads[prefixes]
    analyzer = _fresh_analyzer(compiled)
    analyzer.compute()  # R computed once, outside the measured region

    def run():
        return _pattern_stats(analyzer, compiled, routes, query)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["prefixes"] = prefixes
    benchmark.extra_info["query"] = query
    benchmark.extra_info["sql_seconds"] = round(stats.sql_seconds, 4)
    benchmark.extra_info["solver_seconds"] = round(stats.solver_seconds, 4)
    benchmark.extra_info["tuples"] = stats.tuples_generated


def run_ablation(prefixes: int, jobs: int = 1) -> List[dict]:
    """The ``--optimize`` on/off ablation for one prefix size.

    Each arm gets a private memo table (no verdict cross-pollination)
    and its own analyzer.  Returns one row per query with the solver
    decision counts (``SolverStats.decisions``: fast-path + enumeration
    + DPLL verdicts actually *computed*) for both arms, the reduction,
    and whether the generated tuple counts agree — the ablation is only
    meaningful if the answers are the same.
    """
    from repro.network.forwarding import compile_forwarding
    from repro.workloads.ribgen import RibConfig, generate_rib

    routes = generate_rib(
        RibConfig(prefixes=prefixes, as_count=max(60, prefixes // 4), seed=20210610)
    )
    compiled = compile_forwarding(routes)

    def sweep(optimize: bool):
        analyzer = _fresh_analyzer(
            compiled, jobs=jobs, optimize=optimize, fresh_memo=True
        )
        analyzer.compute()
        rows = {
            "q4-q5": (
                analyzer.solver.stats.decisions,
                analyzer.stats.tuples_generated,
            )
        }
        for query in ("q6", "q7", "q8"):
            before = analyzer.solver.stats.decisions
            stats = _pattern_stats(analyzer, compiled, routes, query, jobs=jobs)
            rows[query] = (
                analyzer.solver.stats.decisions - before,
                stats.tuples_generated,
            )
        return rows

    baseline = sweep(optimize=False)
    optimized = sweep(optimize=True)
    out = []
    for query in ("q4-q5", "q6", "q7", "q8"):
        dec_off, tup_off = baseline[query]
        dec_on, tup_on = optimized[query]
        out.append(
            {
                "query": query,
                "prefixes": prefixes,
                "decisions": dec_off,
                "decisions_optimized": dec_on,
                "decision_reduction": round(1 - dec_on / dec_off, 4)
                if dec_off
                else 0.0,
                "tuples": tup_off,
                "tuples_optimized": tup_on,
                "tuples_agree": tup_off == tup_on,
            }
        )
    return out


def _print_ablation(sizes: List[int], jobs: int) -> bool:
    """Print the optimizer ablation table; ``True`` iff sound + effective
    (all tuple counts agree and q6/q8 shed ≥20% of solver decisions)."""
    header = (
        f"{'#prefix':>8} {'query':>6} | {'dec off':>8} {'dec on':>8} "
        f"{'reduction':>9} | {'tuples':>8} {'agree':>5}"
    )
    print("Optimizer ablation: solver decisions with --optimize off vs on")
    print(header)
    print("-" * len(header))
    ok = True
    for prefixes in sizes:
        for row in run_ablation(prefixes, jobs=jobs):
            print(
                f"{row['prefixes']:>8} {row['query']:>6} | "
                f"{row['decisions']:>8} {row['decisions_optimized']:>8} "
                f"{row['decision_reduction']:>8.1%} | "
                f"{row['tuples']:>8} {str(row['tuples_agree']):>5}"
            )
            if not row["tuples_agree"]:
                print(f"MISMATCH: {row['query']}@{prefixes} tuple counts diverge")
                ok = False
            if row["query"] in ("q6", "q8") and row["decision_reduction"] < 0.20:
                print(
                    f"FAIL: {row['query']}@{prefixes} shed only "
                    f"{row['decision_reduction']:.1%} of solver decisions (<20%)"
                )
                ok = False
    return ok


def main(argv=None) -> None:
    """Print the paper's Table 4 layout for the scaled RIB sweep."""
    from repro.network.forwarding import compile_forwarding
    from repro.workloads.ribgen import RibConfig, generate_rib

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the q6/q7/q8 per-prefix fan-out (default 1)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"prefix sizes to sweep (default {PREFIX_SIZES})",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the static-optimizer on/off ablation instead of the "
        "plain sweep (exits non-zero on tuple divergence or a <20%% "
        "q6/q8 decision reduction)",
    )
    args = parser.parse_args(argv)
    sizes = args.sizes or PREFIX_SIZES

    if args.optimize:
        if not _print_ablation(sizes, args.jobs):
            raise SystemExit(1)
        return

    header = (
        f"{'#prefix':>8} | {'q4-q5 sql':>9} | "
        f"{'q6 sql':>7} {'q6 slv':>7} {'q6 #tup':>8} | "
        f"{'q7 sql':>7} {'q7 slv':>7} {'q7 #tup':>8} | "
        f"{'q8 sql':>7} {'q8 slv':>7} {'q8 #tup':>8}"
    )
    print("Table 4 (reproduced, scaled): reachability on RIB inputs")
    print(header)
    print("-" * len(header))
    for prefixes in sizes:
        routes = generate_rib(
            RibConfig(prefixes=prefixes, as_count=max(60, prefixes // 4), seed=20210610)
        )
        compiled = compile_forwarding(routes)
        analyzer = _fresh_analyzer(compiled, jobs=args.jobs)
        analyzer.compute()
        rec_sql = analyzer.stats.sql_seconds
        cells = [f"{prefixes:>8} | {rec_sql:>9.2f} |"]
        for query in ("q6", "q7", "q8"):
            stats = _pattern_stats(analyzer, compiled, routes, query, jobs=args.jobs)
            cells.append(
                f" {stats.sql_seconds:>7.2f} {stats.solver_seconds:>7.2f} "
                f"{stats.tuples_generated:>8} |"
            )
        print("".join(cells).rstrip("|"))


if __name__ == "__main__":
    main()
