"""Scaling fauré on standard topology families.

Not a paper table — a robustness sweep showing that one fauré evaluation
covers astronomically many failure worlds when conditions stay local:

* **fat-tree** (datacenter): per-pod protected uplinks, path conditions
  touch ≤2 link variables → world count 2^8…2^18, evaluation stays
  polynomial in topology size;
* **grid**: paths share protected links, conditions compound — a
  middle ground;
* **ring**: the adversarial extreme (every long path crosses many
  protected links), kept small by design.

Run: ``pytest benchmarks/bench_scale.py --benchmark-only``
or   ``python benchmarks/bench_scale.py``.
"""

import pytest

from repro.network.reachability import ReachabilityAnalyzer
from repro.solver.interface import ConditionSolver
from repro.workloads.topologen import fat_tree_frr, grid_frr, ring_frr

FAT_TREE_ARITIES = [2, 4]
GRID_SIZES = [(2, 2), (2, 3)]
RING_SIZES = [4, 6]


def run(config):
    solver = ConditionSolver(config.domain_map())
    analyzer = ReachabilityAnalyzer(config.database(), solver)
    analyzer.compute()
    return analyzer


@pytest.mark.parametrize("k", FAT_TREE_ARITIES)
def test_fat_tree(benchmark, k):
    config = fat_tree_frr(k)
    analyzer = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    benchmark.extra_info["protected"] = len(config.state_variables)
    benchmark.extra_info["worlds"] = 2 ** len(config.state_variables)
    benchmark.extra_info["tuples"] = analyzer.stats.tuples_generated


@pytest.mark.parametrize("size", GRID_SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_grid(benchmark, size):
    config = grid_frr(*size)
    analyzer = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    benchmark.extra_info["protected"] = len(config.state_variables)
    benchmark.extra_info["tuples"] = analyzer.stats.tuples_generated


@pytest.mark.parametrize("n", RING_SIZES)
def test_ring(benchmark, n):
    config = ring_frr(n)
    analyzer = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    benchmark.extra_info["protected"] = len(config.state_variables)
    benchmark.extra_info["tuples"] = analyzer.stats.tuples_generated


def main() -> None:
    import time

    print("Scaling across topology families (one evaluation, all worlds)")
    print(f"{'topology':>12} {'nodes':>6} {'protected':>9} {'worlds':>10} {'time (s)':>9} {'tuples':>7}")
    cases = (
        [(f"fat-tree k={k}", fat_tree_frr(k)) for k in FAT_TREE_ARITIES]
        + [(f"grid {r}x{c}", grid_frr(r, c)) for r, c in GRID_SIZES]
        + [(f"ring {n}", ring_frr(n)) for n in RING_SIZES]
    )
    for name, config in cases:
        t0 = time.perf_counter()
        analyzer = run(config)
        wall = time.perf_counter() - t0
        protected = len(config.state_variables)
        print(
            f"{name:>12} {len(config.topology):>6} {protected:>9} "
            f"{2**protected:>10} {wall:>9.3f} {analyzer.stats.tuples_generated:>7}"
        )


if __name__ == "__main__":
    main()
