"""Crash-safe incremental verification daemon (serve mode).

The long-lived counterpart of the one-shot CLI commands: a resident
:class:`~repro.ctable.table.Database` plus
:class:`~repro.faurelog.incremental.IncrementalEvaluator` behind a
line-protocol endpoint, ingesting a stream of updates (RIB
announcements, ACL rows) and answering concurrent queries against
consistent snapshots.  Robustness properties:

* **write-ahead logging** (:mod:`repro.serve.wal`): every accepted
  update is fsync'd with a monotone sequence number *before* it is
  applied, so a SIGKILL at any point replays to a state identical to a
  from-scratch run over the full update stream;
* **epoch/snapshot isolation** (:mod:`repro.serve.epochs`): in-flight
  queries read an immutable pre-update snapshot while the next epoch
  applies;
* **admission control and graceful degradation**
  (:mod:`repro.serve.server`): a bounded ingest queue sheds overload
  with explicit retry-after responses, per-request governor budgets
  degrade queries to ``INCONCLUSIVE`` instead of stalling, and
  malformed updates are rejected without poisoning the resident state;
* **log lifecycle** (:mod:`repro.serve.snapshots`): WAL compaction
  folds the durable prefix into fingerprint-stamped seed snapshots
  (atomic write-new → rename, retire only after the fsync), keeping
  both steady-state log size and daemon open time bounded;
* **read replicas** (:mod:`repro.serve.replica`): pull-based followers
  bootstrap from a primary snapshot, tail the WAL with a sequence
  cursor, answer queries with an explicit ``lag_seqs`` staleness
  contract, and survive the primary's SIGKILL serving consistent reads;
* **withdrawal** (guard c-variables): facts ingested ``removable`` get
  a fresh boolean guard conjoined onto their condition, and
  ``withdraw`` is a WAL'd guard *assignment* — the paper's answer to
  deletion, flowing through the same ordered replay as every insert.

See ``docs/ROBUSTNESS.md`` §serve/§compaction/§replication/§withdrawal
for the full contract.
"""

# NOTE: .client is deliberately not imported here — it doubles as
# ``python -m repro.serve.client`` and importing it from the package
# would shadow the runpy execution of the same module.
from .epochs import EpochManager, RelationView, Snapshot
from .protocol import FEATURES, PROTOCOL_VERSION, ServeRequestError
from .replica import ReplicaTailer, bootstrap_replica
from .server import FaureServer
from .snapshots import load_latest_snapshot, write_snapshot
from .state import ServeState
from .wal import UpdateEntry, WriteAheadLog

__all__ = [
    "EpochManager",
    "FEATURES",
    "FaureServer",
    "PROTOCOL_VERSION",
    "RelationView",
    "ReplicaTailer",
    "ServeRequestError",
    "ServeState",
    "Snapshot",
    "UpdateEntry",
    "WriteAheadLog",
    "bootstrap_replica",
    "load_latest_snapshot",
    "write_snapshot",
]
