"""Crash-safe incremental verification daemon (serve mode).

The long-lived counterpart of the one-shot CLI commands: a resident
:class:`~repro.ctable.table.Database` plus
:class:`~repro.faurelog.incremental.IncrementalEvaluator` behind a
line-protocol endpoint, ingesting a stream of updates (RIB
announcements, ACL rows) and answering concurrent queries against
consistent snapshots.  Robustness properties:

* **write-ahead logging** (:mod:`repro.serve.wal`): every accepted
  update is fsync'd with a monotone sequence number *before* it is
  applied, so a SIGKILL at any point replays to a state identical to a
  from-scratch run over the full update stream;
* **epoch/snapshot isolation** (:mod:`repro.serve.epochs`): in-flight
  queries read an immutable pre-update snapshot while the next epoch
  applies;
* **admission control and graceful degradation**
  (:mod:`repro.serve.server`): a bounded ingest queue sheds overload
  with explicit retry-after responses, per-request governor budgets
  degrade queries to ``INCONCLUSIVE`` instead of stalling, and
  malformed updates are rejected without poisoning the resident state.

See ``docs/ROBUSTNESS.md`` §serve for the full contract.
"""

# NOTE: .client is deliberately not imported here — it doubles as
# ``python -m repro.serve.client`` and importing it from the package
# would shadow the runpy execution of the same module.
from .epochs import EpochManager, RelationView, Snapshot
from .protocol import ServeRequestError
from .server import FaureServer
from .state import ServeState
from .wal import UpdateEntry, WriteAheadLog

__all__ = [
    "EpochManager",
    "FaureServer",
    "RelationView",
    "ServeRequestError",
    "ServeState",
    "Snapshot",
    "UpdateEntry",
    "WriteAheadLog",
]
