"""Read replicas: bootstrap from a primary snapshot, tail its WAL.

A replica is a full :class:`~repro.serve.state.ServeState` of its own —
local WAL, local snapshots, the same recovery invariant — whose log is
*fed* by the primary instead of by clients:

* **bootstrap**: fetch the primary's consistent snapshot over the
  ``snapshot`` op, write it durably as the local seed snapshot, and
  build the state from it (replaying any local WAL suffix a previous
  incarnation left behind).  When the primary is unreachable, fall back
  to the newest *local* snapshot — a replica restart while the primary
  is down serves stale-but-consistent reads immediately;
* **tail**: :class:`ReplicaTailer` polls ``tail`` with a sequence
  cursor (the local WAL's ``last_seq``, so resume-after-restart is
  automatic), appends each batch gaplessly via
  :meth:`ServeState.apply_replicated` (durable-before-apply, one
  publish per batch — readers see a consistent prefix of the primary's
  history, never a half-batch), and records the primary's ``last_seq``
  so every replica response can report ``lag_seqs``;
* **compaction race**: a ``COMPACTED`` answer means the cursor fell
  below the primary's snapshot horizon — the tailer re-bootstraps via
  :meth:`ServeState.adopt_bootstrap` and resumes tailing above the new
  base.

The pull model keeps the primary oblivious: it serves ``tail`` like any
other read, holds no replica registry, and its SIGKILL at any point
leaves every replica serving its last consistent prefix (marked by
``primary_up: false``) until the primary returns.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from .protocol import ServeRequestError
from .state import ServeState
from .wal import UpdateEntry

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .client import ServeClient

__all__ = ["ReplicaTailer", "bootstrap_replica", "peek_local_snapshot"]


def _client_class():
    # Imported lazily: repro.serve.client doubles as ``python -m
    # repro.serve.client``, and importing it at package-import time
    # would shadow that runpy execution (see repro.serve.__init__).
    from .client import ServeClient

    return ServeClient


def peek_local_snapshot(wal_path: str) -> Optional[Dict[str, Any]]:
    """The newest structurally-valid local snapshot, fingerprint unchecked.

    Bootstrap chicken-and-egg breaker: the workload texts (and hence the
    fingerprint) live *inside* the snapshot, so a replica starting with
    the primary down reads them from here first; the subsequent
    :class:`ServeState` construction re-validates the fingerprint.
    """
    import json
    import os

    from .snapshots import SNAPSHOT_MAGIC, list_snapshots

    for _seq, path in list_snapshots(wal_path):
        if not os.path.exists(path):
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                obj = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(obj, dict) and obj.get("magic") == SNAPSHOT_MAGIC:
            if all(k in obj for k in ("program", "database", "seq")):
                return obj
    return None


def bootstrap_replica(
    primary: Tuple[str, int],
    wal_path: str,
    timeout: float = 30.0,
    **state_kwargs: Any,
) -> ServeState:
    """Build a replica state: primary snapshot first, local fallback.

    Raises :class:`ConnectionError` only when the primary is unreachable
    *and* no local snapshot exists (a brand-new replica genuinely needs
    one live fetch).
    """
    host, port = primary
    try:
        with _client_class()(host, port, timeout=timeout) as client:
            response = client.snapshot_fetch()
        if not response.get("ok"):
            raise ServeRequestError(
                response.get("code", "INTERNAL"),
                response.get("error", "snapshot fetch failed"),
            )
        return ServeState.from_bootstrap(response["snapshot"], wal_path, **state_kwargs)
    except (ConnectionError, OSError) as exc:
        local = peek_local_snapshot(wal_path)
        if local is None:
            raise ConnectionError(
                f"primary {host}:{port} unreachable and no local snapshot at "
                f"{wal_path}: {exc}"
            ) from exc
        # Stale-but-consistent: local snapshot + local WAL suffix.
        return ServeState(local["program"], local["database"], wal_path, **state_kwargs)


class ReplicaTailer(threading.Thread):
    """Background thread keeping a replica converged with its primary.

    Exposes ``primary_seq`` (the primary's last durable sequence, as of
    the last successful poll) and ``primary_up`` — the server stamps
    both into every replica response as the staleness contract.
    """

    def __init__(
        self,
        state: ServeState,
        primary: Tuple[str, int],
        poll_interval: float = 0.2,
        batch: int = 512,
        timeout: float = 30.0,
    ):
        super().__init__(name="faure-replica-tail", daemon=True)
        self.state = state
        self.primary = primary
        self.poll_interval = poll_interval
        self.batch = batch
        self.timeout = timeout
        self.primary_seq: Optional[int] = None
        self.primary_up = False
        self.rebootstraps = 0
        self.last_error: Optional[str] = None
        self._halt = threading.Event()
        self._client: Optional["ServeClient"] = None

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        self._halt.set()
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass

    def wait_caught_up(self, seq: int, deadline: float = 30.0) -> bool:
        """Block until the local WAL reaches ``seq`` (test/ops helper)."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if self.state.wal.last_seq >= seq:
                return True
            time.sleep(0.02)
        return False

    # -- the tail loop --------------------------------------------------------

    def _connect(self) -> "ServeClient":
        if self._client is None:
            host, port = self.primary
            self._client = _client_class()(host, port, timeout=self.timeout).connect()
        return self._client

    def _drop_connection(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover
                pass

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        backoff = self.poll_interval
        while not self._halt.is_set():
            try:
                caught_up = self._poll_once()
                self.primary_up = True
                backoff = self.poll_interval
                if caught_up:
                    self._halt.wait(self.poll_interval)
            except (ConnectionError, OSError) as exc:
                # Primary down (or mid-restart): keep serving the local
                # prefix, keep knocking with bounded backoff.
                self.primary_up = False
                self.last_error = str(exc)
                self._drop_connection()
                self._halt.wait(backoff)
                backoff = min(backoff * 2, 2.0)
            except Exception as exc:  # unexpected: record, back off, retry
                self.primary_up = False
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._drop_connection()
                self._halt.wait(backoff)
                backoff = min(backoff * 2, 2.0)

    def _poll_once(self) -> bool:
        """One tail round-trip; returns True when fully caught up."""
        client = self._connect()
        cursor = self.state.wal.last_seq
        response = client.tail(after_seq=cursor, max_entries=self.batch)
        if not response.get("ok"):
            if response.get("code") == "COMPACTED":
                self._rebootstrap(client)
                return False
            raise ConnectionError(
                f"tail refused: {response.get('code')}: {response.get('error')}"
            )
        self.primary_seq = int(response.get("last_seq", cursor))
        entries = [UpdateEntry.from_obj(obj) for obj in response.get("entries", [])]
        if entries:
            self.state.apply_replicated(entries)
        return self.state.wal.last_seq >= self.primary_seq

    def _rebootstrap(self, client: ServeClient) -> None:
        """Cursor fell below the primary's compaction horizon: start over."""
        response = client.snapshot_fetch()
        if not response.get("ok"):
            raise ConnectionError(
                f"re-bootstrap refused: {response.get('code')}: "
                f"{response.get('error')}"
            )
        self.state.adopt_bootstrap(response["snapshot"])
        self.rebootstraps += 1
