"""A minimal client for the serve protocol, usable as a library or CLI.

Library::

    with ServeClient("127.0.0.1", 4711) as client:
        client.update("F", ["p1", "A", "B"], txid="announce-17")
        answer = client.query("R", where="$a == 1")

CLI (one request per invocation, JSON response on stdout)::

    python -m repro.serve.client --port 4711 health
    python -m repro.serve.client --port 4711 update F p1 A B --txid k1
    python -m repro.serve.client --port 4711 query R --where '$a == 1'
    python -m repro.serve.client --port 4711 shutdown

The CLI prints the response as compact key-sorted JSON, so two runs
against equal daemon states are byte-identical — which is what the CI
kill/restart smoke job diffs.  Exit code 0 for ``ok`` responses, the
response's ``errno`` otherwise.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .protocol import MAX_LINE_BYTES, encode

__all__ = ["ServeClient", "main"]


class ServeClient:
    """One persistent connection speaking the line protocol."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection management -----------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    @classmethod
    def wait_until_up(
        cls, host: str, port: int, deadline: float = 10.0
    ) -> "ServeClient":
        """Poll until the daemon accepts connections (startup race helper)."""
        end = time.monotonic() + deadline
        last: Optional[Exception] = None
        while time.monotonic() < end:
            try:
                client = cls(host, port).connect()
                client.health()
                return client
            except OSError as exc:
                last = exc
                time.sleep(0.05)
        raise ConnectionError(f"serve daemon not up at {host}:{port}: {last}")

    # -- request plumbing ----------------------------------------------------

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        assert self._sock is not None and self._file is not None
        self._sock.sendall(encode(obj))
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        return json.loads(line.decode("utf-8"))

    # -- the protocol surface ------------------------------------------------

    def update(
        self,
        relation: str,
        values: Sequence[str],
        condition: Optional[str] = None,
        txid: Optional[str] = None,
        weaken: bool = False,
    ) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "op": "update",
            "relation": relation,
            "values": list(values),
        }
        if condition is not None:
            obj["condition"] = condition
        if txid is not None:
            obj["txid"] = txid
        if weaken:
            obj["weaken"] = True
        return self.request(obj)

    def query(
        self,
        relation: str,
        where: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"op": "query", "relation": relation}
        if where is not None:
            obj["where"] = where
        if limit is not None:
            obj["limit"] = limit
        return self.request(obj)

    def health(self) -> Dict[str, Any]:
        return self.request({"op": "health"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})


# -- the CLI face -------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client", description="serve-protocol client"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--wait", action="store_true", help="poll until the daemon is up first"
    )
    sub = parser.add_subparsers(dest="op", required=True)

    update = sub.add_parser("update", help="insert (or weaken) one EDB fact")
    update.add_argument("relation")
    update.add_argument("values", nargs="+")
    update.add_argument("--condition")
    update.add_argument("--txid")
    update.add_argument("--weaken", action="store_true")

    query = sub.add_parser("query", help="read one relation from the snapshot")
    query.add_argument("relation")
    query.add_argument("--where")
    query.add_argument("--limit", type=int)
    query.add_argument(
        "--rows-only",
        action="store_true",
        help="print only the state-dependent fields (relation/schema/"
        "status/rows/total), dropping epoch/seq — byte-comparable across "
        "daemon restarts",
    )

    sub.add_parser("health", help="daemon health/status")
    sub.add_parser("shutdown", help="graceful daemon shutdown")

    args = parser.parse_args(argv)
    if args.wait:
        client = ServeClient.wait_until_up(args.host, args.port)
        client.timeout = args.timeout
    else:
        client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        with client:
            if args.op == "update":
                response = client.update(
                    args.relation,
                    args.values,
                    condition=args.condition,
                    txid=args.txid,
                    weaken=args.weaken,
                )
            elif args.op == "query":
                response = client.query(args.relation, where=args.where, limit=args.limit)
                if args.rows_only and response.get("ok"):
                    keep = ("relation", "schema", "status", "rows", "total", "truncated")
                    response = {k: response[k] for k in keep if k in response}
                    response["ok"] = True
            elif args.op == "health":
                response = client.health()
            else:
                response = client.shutdown()
    except (ConnectionError, OSError) as exc:
        # The daemon died mid-request (or was never up): a clean typed
        # failure, not a traceback — the caller decides whether to retry.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, sort_keys=True, separators=(",", ":")))
    if response.get("ok"):
        return 0
    return int(response.get("errno", 1))


if __name__ == "__main__":
    sys.exit(main())
