"""A client for the serve protocol, usable as a library or CLI.

Library::

    with ServeClient("127.0.0.1", 4711, replicas=[("127.0.0.1", 4712)]) as client:
        client.update("F", ["p1", "A", "B"], txid="announce-17")
        answer = client.query("R", where="$a == 1")

CLI (one request per invocation, JSON response on stdout)::

    python -m repro.serve.client --port 4711 health
    python -m repro.serve.client --port 4711 update F p1 A B --txid k1
    python -m repro.serve.client --port 4711 update F p3 A B --removable
    python -m repro.serve.client --port 4711 withdraw __g4
    python -m repro.serve.client --port 4711 --replica 127.0.0.1:4712 query R
    python -m repro.serve.client --port 4711 shutdown

The CLI prints the response as compact key-sorted JSON, so two runs
against equal daemon states are byte-identical — which is what the CI
kill/restart smoke job diffs.  Exit code 0 for ``ok`` responses, the
response's ``errno`` otherwise.

Failover: *reads* (query/health) fall back to the configured replicas
when the primary is unreachable, and any answer obtained that way is
stamped ``"stale": true`` — the caller always knows it is reading a
consistent-but-possibly-behind prefix (the response's ``lag_seqs``
quantifies how far).  Writes never fail over: a replica would only
answer ``READ_ONLY``, and silently re-routing a write is how split
brains are born.

Negotiation: v2 operations (removable updates, withdraw, tail,
snapshot, admin) are gated on the peer's advertised ``features`` (from
its health response).  Against an old-style peer the client raises a
typed :class:`ServeRequestError` with code ``UNSUPPORTED`` *before*
sending anything the peer would mishandle — never a hang, never a raw
traceback.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .protocol import MAX_BULK_BYTES, MAX_LINE_BYTES, ServeRequestError, encode

__all__ = ["ServeClient", "main", "parse_hostport"]

#: Ops a v1 peer (PR 6) does not speak, and the feature each requires.
_V2_OPS: Dict[str, str] = {
    "withdraw": "withdraw",
    "tail": "tail",
    "snapshot": "snapshot",
    "admin": "admin",
}


def parse_hostport(spec: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``host:port`` (or bare ``port``) → (host, port)."""
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        return host or default_host, int(port)
    return default_host, int(spec)


class ServeClient:
    """One persistent connection speaking the line protocol.

    ``replicas`` is an optional list of ``(host, port)`` read replicas
    used as query/health fallbacks when the primary is unreachable.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        replicas: Optional[Sequence[Tuple[str, int]]] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.replicas: List[Tuple[str, int]] = [
            (h, int(p)) for h, p in (replicas or [])
        ]
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._features: Optional[Tuple[str, ...]] = None

    # -- connection management -----------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    @classmethod
    def wait_until_up(
        cls, host: str, port: int, deadline: float = 10.0
    ) -> "ServeClient":
        """Poll until the daemon accepts connections (startup race helper)."""
        end = time.monotonic() + deadline
        last: Optional[Exception] = None
        while time.monotonic() < end:
            try:
                client = cls(host, port).connect()
                client.request({"op": "health"})
                return client
            except OSError as exc:
                last = exc
                time.sleep(0.05)
        raise ConnectionError(f"serve daemon not up at {host}:{port}: {last}")

    # -- request plumbing ----------------------------------------------------

    def request(self, obj: Dict[str, Any], bulk: bool = False) -> Dict[str, Any]:
        """Send one request line, read one response line.

        ``bulk`` raises the response-size cap to :data:`MAX_BULK_BYTES`
        (snapshot transfers, tail batches).  A connection-level failure
        drops the socket so the next request reconnects cleanly.
        """
        self.connect()
        assert self._sock is not None and self._file is not None
        limit = MAX_BULK_BYTES if bulk else MAX_LINE_BYTES
        try:
            self._sock.sendall(encode(obj))
            line = self._file.readline(limit + 1)
        except (ConnectionError, OSError):
            self.close()
            raise
        if not line:
            self.close()
            raise ConnectionError("serve daemon closed the connection")
        return json.loads(line.decode("utf-8"))

    def _read_request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """A read (query/health): primary first, then replica failover.

        A failover answer is stamped ``stale: true`` — it is a
        consistent prefix of the primary's history, but possibly behind
        it (``lag_seqs`` says by how much, when the replica knows).
        """
        try:
            return self.request(obj)
        except (ConnectionError, OSError):
            if not self.replicas:
                raise
        last_exc: Optional[Exception] = None
        for host, port in self.replicas:
            fallback = ServeClient(host, port, timeout=self.timeout)
            try:
                with fallback:
                    response = fallback.request(obj)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                continue
            response["stale"] = True
            response.setdefault("served_by", {"host": host, "port": port})
            return response
        raise ConnectionError(
            f"primary {self.host}:{self.port} and all "
            f"{len(self.replicas)} replica(s) unreachable: {last_exc}"
        )

    # -- negotiation ----------------------------------------------------------

    def features(self) -> Tuple[str, ...]:
        """The peer's advertised capabilities (cached after first health)."""
        if self._features is None:
            health = self.request({"op": "health"})
            advertised = health.get("features")
            self._features = (
                tuple(advertised) if isinstance(advertised, list) else ()
            )
        return self._features

    def _require_feature(self, op: str, feature: str) -> None:
        if feature not in self.features():
            raise ServeRequestError(
                "UNSUPPORTED",
                f"peer {self.host}:{self.port} does not speak {op!r} "
                f"(advertised features: {list(self.features()) or 'none'}); "
                "upgrade the daemon to protocol v2",
            )

    # -- the protocol surface ------------------------------------------------

    def update(
        self,
        relation: str,
        values: Sequence[str],
        condition: Optional[str] = None,
        txid: Optional[str] = None,
        weaken: bool = False,
        removable: bool = False,
    ) -> Dict[str, Any]:
        if removable:
            # An old peer would silently ignore the flag and store the
            # fact *permanently* — refuse locally instead.
            self._require_feature("update(removable)", "removable")
        obj: Dict[str, Any] = {
            "op": "update",
            "relation": relation,
            "values": list(values),
        }
        if condition is not None:
            obj["condition"] = condition
        if txid is not None:
            obj["txid"] = txid
        if weaken:
            obj["weaken"] = True
        if removable:
            obj["removable"] = True
        return self.request(obj)

    def withdraw(self, guard: str, txid: Optional[str] = None) -> Dict[str, Any]:
        self._require_feature("withdraw", _V2_OPS["withdraw"])
        obj: Dict[str, Any] = {"op": "withdraw", "guard": guard}
        if txid is not None:
            obj["txid"] = txid
        return self.request(obj)

    def query(
        self,
        relation: str,
        where: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"op": "query", "relation": relation}
        if where is not None:
            obj["where"] = where
        if limit is not None:
            obj["limit"] = limit
        return self._read_request(obj)

    def health(self) -> Dict[str, Any]:
        return self._read_request({"op": "health"})

    def tail(
        self, after_seq: int = 0, max_entries: Optional[int] = None
    ) -> Dict[str, Any]:
        self._require_feature("tail", _V2_OPS["tail"])
        obj: Dict[str, Any] = {"op": "tail", "after_seq": after_seq}
        if max_entries is not None:
            obj["max"] = max_entries
        return self.request(obj, bulk=True)

    def snapshot_fetch(self) -> Dict[str, Any]:
        self._require_feature("snapshot", _V2_OPS["snapshot"])
        return self.request({"op": "snapshot"}, bulk=True)

    def admin(self, action: str, **extra: Any) -> Dict[str, Any]:
        self._require_feature("admin", _V2_OPS["admin"])
        obj: Dict[str, Any] = {"op": "admin", "action": action}
        obj.update(extra)
        return self.request(obj, bulk=True)

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})


# -- the CLI face -------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client", description="serve-protocol client"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--replica",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="read replica to fall back to when the primary is down "
        "(repeatable; failover answers are stamped stale:true)",
    )
    parser.add_argument(
        "--wait", action="store_true", help="poll until the daemon is up first"
    )
    sub = parser.add_subparsers(dest="op", required=True)

    update = sub.add_parser("update", help="insert (or weaken) one EDB fact")
    update.add_argument("relation")
    update.add_argument("values", nargs="+")
    update.add_argument("--condition")
    update.add_argument("--txid")
    update.add_argument("--weaken", action="store_true")
    update.add_argument(
        "--removable",
        action="store_true",
        help="guard the fact with a fresh boolean c-variable so it can be "
        "withdrawn later (the response carries the guard handle)",
    )

    withdraw = sub.add_parser(
        "withdraw", help="assign a removable fact's guard to 0 (drop its worlds)"
    )
    withdraw.add_argument("guard")
    withdraw.add_argument("--txid")

    query = sub.add_parser("query", help="read one relation from the snapshot")
    query.add_argument("relation")
    query.add_argument("--where")
    query.add_argument("--limit", type=int)
    query.add_argument(
        "--rows-only",
        action="store_true",
        help="print only the state-dependent fields (relation/schema/"
        "status/rows/total), dropping epoch/seq — byte-comparable across "
        "daemon restarts",
    )

    sub.add_parser("health", help="daemon health/status")
    sub.add_parser("shutdown", help="graceful daemon shutdown")

    args = parser.parse_args(argv)
    replicas = [parse_hostport(spec, args.host) for spec in args.replica]
    if args.wait:
        client = ServeClient.wait_until_up(args.host, args.port)
        client.timeout = args.timeout
        client.replicas = replicas
    else:
        client = ServeClient(
            args.host, args.port, timeout=args.timeout, replicas=replicas
        )
    try:
        with client:
            if args.op == "update":
                response = client.update(
                    args.relation,
                    args.values,
                    condition=args.condition,
                    txid=args.txid,
                    weaken=args.weaken,
                    removable=args.removable,
                )
            elif args.op == "withdraw":
                response = client.withdraw(args.guard, txid=args.txid)
            elif args.op == "query":
                response = client.query(args.relation, where=args.where, limit=args.limit)
                if args.rows_only and response.get("ok"):
                    keep = ("relation", "schema", "status", "rows", "total", "truncated")
                    response = {k: response[k] for k in keep if k in response}
                    response["ok"] = True
            elif args.op == "health":
                response = client.health()
            else:
                response = client.shutdown()
    except ServeRequestError as exc:
        # Negotiation failure (old peer): typed, local, no bytes sent.
        response = exc.response()
        print(json.dumps(response, sort_keys=True, separators=(",", ":")))
        return int(response.get("errno", 1))
    except (ConnectionError, OSError) as exc:
        # The daemon died mid-request (or was never up): a clean typed
        # failure, not a traceback — the caller decides whether to retry.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, sort_keys=True, separators=(",", ":")))
    if response.get("ok"):
        return 0
    return int(response.get("errno", 1))


if __name__ == "__main__":
    sys.exit(main())
