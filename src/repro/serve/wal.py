"""The serve-mode write-ahead log, built on the checkpoint journal.

Durability contract (the reason serve mode survives SIGKILL):

* every accepted update is assigned the next **monotone sequence
  number** and appended to the journal with ``flush()`` + ``fsync()``
  **before** it is applied to the resident evaluator — so an update is
  either durable or it never happened, and the resident state is always
  a prefix-replay of the log;
* the journal's header **fingerprint** digests the serve inputs
  (program text, seed database text), so a WAL can never be replayed
  against a different workload — that is a
  :class:`~repro.robustness.errors.CheckpointError`, never a silent
  splice;
* a **torn tail** (the daemon died mid-append) is truncated on open,
  exactly like checkpoint resume;
* client-supplied ``txid`` markers are replayed into a dedup map, so a
  client that retries an update it never got an ack for (the daemon
  died between fsync and reply) gets the original sequence number back
  instead of a double-apply.

Log lifecycle (compaction): a log opened *above a snapshot* carries
``base_seq`` — the highest sequence already folded into the seed
snapshot.  Open-time cost is then proportional to the **suffix**, not
the daemon's lifetime history, and the txid dedup map is seeded from
the snapshot instead of rebuilt by scanning every entry ever logged.
:meth:`WriteAheadLog.rewrite` atomically replaces the backing journal
with just the suffix (write-new → rename), which is how compaction
retires folded segments.

Entries store the update in its *wire form* (raw value/condition
strings), not parsed objects: replay re-parses through the same
validation path a live request takes, keeping a recovered state
byte-identical to an uninterrupted one.  Removable facts additionally
carry their **guard c-variable** name (assigned at sequencing time, so
replay sees the same guard), and ``withdraw`` entries reference that
guard — withdrawal is an *assignment*, not a retraction, so it flows
through the same ordered replay as any other entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..robustness.checkpoint import CheckpointJournal, fingerprint_of, rewrite_journal

__all__ = ["UpdateEntry", "WriteAheadLog", "wal_fingerprint"]

#: Journal record kind used for update entries.
KIND = "update"


def wal_fingerprint(program_text: str, database_text: str) -> str:
    """Digest of the serve workload a WAL belongs to."""
    return fingerprint_of("serve", program_text, database_text)


@dataclass(frozen=True)
class UpdateEntry:
    """One durable update, in wire form.

    ``kind`` is ``"insert"``, ``"weaken"``, or ``"withdraw"``;
    ``values`` are the raw term strings as received; ``condition`` is
    raw condition text or ``None`` (unconditional).  ``guard`` is the
    guard c-variable name: on an insert it marks the fact removable
    (the daemon conjoins ``guard == 1`` onto the stored condition), on
    a withdraw it names the guard being assigned 0.  ``seq`` is 0 until
    the log assigns one.
    """

    kind: str
    relation: str
    values: tuple
    condition: Optional[str] = None
    txid: Optional[str] = None
    guard: Optional[str] = None
    seq: int = 0

    def to_obj(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "relation": self.relation,
            "values": list(self.values),
        }
        if self.condition is not None:
            obj["condition"] = self.condition
        if self.txid is not None:
            obj["txid"] = self.txid
        if self.guard is not None:
            obj["guard"] = self.guard
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "UpdateEntry":
        return cls(
            kind=obj["kind"],
            relation=obj["relation"],
            values=tuple(obj["values"]),
            condition=obj.get("condition"),
            txid=obj.get("txid"),
            guard=obj.get("guard"),
            seq=int(obj["seq"]),
        )


class WriteAheadLog:
    """Monotone-sequence update log over a :class:`CheckpointJournal`."""

    def __init__(
        self,
        journal: CheckpointJournal,
        base_seq: int = 0,
        seed_txids: Optional[Mapping[str, int]] = None,
    ):
        self.journal = journal
        self.base_seq = base_seq
        self._entries: List[UpdateEntry] = []
        self._txids: Dict[str, int] = dict(seed_txids or {})
        for _, payload in journal.entries(KIND):
            entry = UpdateEntry.from_obj(payload)
            self._entries.append(entry)
            if entry.txid is not None:
                self._txids.setdefault(entry.txid, entry.seq)
        # Replay order is append order; sequence numbers are assigned
        # monotonically, so this sort is a no-op on a well-formed log
        # and a repair on one hand-edited out of order.
        self._entries.sort(key=lambda e: e.seq)
        last = self._entries[-1].seq if self._entries else 0
        self._next_seq = max(last, base_seq) + 1

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        fingerprint: str,
        base_seq: int = 0,
        seed_txids: Optional[Mapping[str, int]] = None,
    ) -> "WriteAheadLog":
        """Open (or create) the log; replays durable entries into memory.

        ``base_seq``/``seed_txids`` come from the seed snapshot when one
        exists: sequences at or below ``base_seq`` are already folded in,
        so replay (and a crash between snapshot-fsync and segment
        retirement, which leaves the folded prefix still in the log)
        only ever re-applies the suffix.
        """
        return cls(
            CheckpointJournal.open(path, fingerprint),
            base_seq=base_seq,
            seed_txids=seed_txids,
        )

    def close(self) -> None:
        self.journal.close()

    @property
    def path(self) -> str:
        return self.journal.path

    # -- append / replay -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest durable sequence number (``base_seq`` when suffix-empty)."""
        return self._next_seq - 1

    def seen_txid(self, txid: str) -> Optional[int]:
        """The sequence an update with this txid already holds, if any."""
        return self._txids.get(txid)

    def append(self, entry: UpdateEntry) -> UpdateEntry:
        """Assign the next sequence number and make the entry durable.

        Returns the sequenced entry.  The fsync happens inside
        ``journal.record`` — when this method returns, the update will
        survive any crash.  Apply it *after* this returns, never before.
        """
        if entry.txid is not None and entry.txid in self._txids:
            raise ValueError(f"txid {entry.txid!r} already durable")
        sequenced = UpdateEntry(
            kind=entry.kind,
            relation=entry.relation,
            values=entry.values,
            condition=entry.condition,
            txid=entry.txid,
            guard=entry.guard,
            seq=self._next_seq,
        )
        self._record(sequenced)
        return sequenced

    def append_replicated(self, entry: UpdateEntry) -> UpdateEntry:
        """Durably append an already-sequenced entry tailed from a primary.

        The entry must be the next expected sequence — replicas apply a
        gapless prefix of the primary's log, never a sparse sample.
        """
        if entry.seq != self._next_seq:
            raise ValueError(
                f"replicated entry out of order: got seq {entry.seq}, "
                f"expected {self._next_seq}"
            )
        self._record(entry)
        return entry

    def _record(self, sequenced: UpdateEntry) -> None:
        self.journal.record(KIND, f"{sequenced.seq:016d}", sequenced.to_obj())
        self._next_seq = sequenced.seq + 1
        self._entries.append(sequenced)
        if sequenced.txid is not None:
            self._txids[sequenced.txid] = sequenced.seq

    def entries(self) -> List[UpdateEntry]:
        """All durable entries in sequence order (replay order)."""
        return list(self._entries)

    def entries_after(self, seq: int, limit: Optional[int] = None) -> List[UpdateEntry]:
        """Durable entries with sequence ``> seq``, oldest first.

        Safe to call from reader threads while the ingest thread
        appends: the list is copied before filtering.
        """
        suffix = [e for e in list(self._entries) if e.seq > seq]
        return suffix[:limit] if limit is not None else suffix

    def txids(self) -> Dict[str, int]:
        """The full txid→seq dedup map (snapshot persistence)."""
        return dict(self._txids)

    def size_bytes(self) -> int:
        """Current on-disk size of the backing journal."""
        import os

        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def rewrite(self, base_seq: int) -> None:
        """Atomically drop every entry with seq ``<= base_seq`` from disk.

        The compaction tail: the caller has already fsync'd a snapshot
        folding the prefix.  The journal is rebuilt (write-new → rename)
        with only the suffix, the in-memory entry list shrinks to match,
        and the txid map keeps *all* txids (the folded ones live on in
        the snapshot; keeping them here too preserves dedup between the
        rewrite and the next snapshot load).
        """
        suffix = [e for e in self._entries if e.seq > base_seq]
        fingerprint = self.journal.fingerprint
        self.journal.close()
        self.journal = rewrite_journal(
            self.path,
            fingerprint,
            [(KIND, f"{e.seq:016d}", e.to_obj()) for e in suffix],
        )
        self._entries = suffix
        self.base_seq = base_seq
        last = suffix[-1].seq if suffix else 0
        self._next_seq = max(last, base_seq) + 1

    def __len__(self) -> int:
        return len(self._entries)
