"""The serve-mode write-ahead log, built on the checkpoint journal.

Durability contract (the reason serve mode survives SIGKILL):

* every accepted update is assigned the next **monotone sequence
  number** and appended to the journal with ``flush()`` + ``fsync()``
  **before** it is applied to the resident evaluator — so an update is
  either durable or it never happened, and the resident state is always
  a prefix-replay of the log;
* the journal's header **fingerprint** digests the serve inputs
  (program text, seed database text), so a WAL can never be replayed
  against a different workload — that is a
  :class:`~repro.robustness.errors.CheckpointError`, never a silent
  splice;
* a **torn tail** (the daemon died mid-append) is truncated on open,
  exactly like checkpoint resume;
* client-supplied ``txid`` markers are replayed into a dedup map, so a
  client that retries an update it never got an ack for (the daemon
  died between fsync and reply) gets the original sequence number back
  instead of a double-apply.

Entries store the update in its *wire form* (raw value/condition
strings), not parsed objects: replay re-parses through the same
validation path a live request takes, keeping a recovered state
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..robustness.checkpoint import CheckpointJournal, fingerprint_of

__all__ = ["UpdateEntry", "WriteAheadLog", "wal_fingerprint"]

#: Journal record kind used for update entries.
KIND = "update"


def wal_fingerprint(program_text: str, database_text: str) -> str:
    """Digest of the serve workload a WAL belongs to."""
    return fingerprint_of("serve", program_text, database_text)


@dataclass(frozen=True)
class UpdateEntry:
    """One durable update, in wire form.

    ``kind`` is ``"insert"`` or ``"weaken"``; ``values`` are the raw
    term strings as received; ``condition`` is raw condition text or
    ``None`` (unconditional).  ``seq`` is 0 until the log assigns one.
    """

    kind: str
    relation: str
    values: tuple
    condition: Optional[str] = None
    txid: Optional[str] = None
    seq: int = 0

    def to_obj(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "relation": self.relation,
            "values": list(self.values),
        }
        if self.condition is not None:
            obj["condition"] = self.condition
        if self.txid is not None:
            obj["txid"] = self.txid
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "UpdateEntry":
        return cls(
            kind=obj["kind"],
            relation=obj["relation"],
            values=tuple(obj["values"]),
            condition=obj.get("condition"),
            txid=obj.get("txid"),
            seq=int(obj["seq"]),
        )


class WriteAheadLog:
    """Monotone-sequence update log over a :class:`CheckpointJournal`."""

    def __init__(self, journal: CheckpointJournal):
        self.journal = journal
        self._entries: List[UpdateEntry] = []
        self._txids: Dict[str, int] = {}
        for _, payload in journal.entries(KIND):
            entry = UpdateEntry.from_obj(payload)
            self._entries.append(entry)
            if entry.txid is not None:
                self._txids.setdefault(entry.txid, entry.seq)
        # Replay order is append order; sequence numbers are assigned
        # monotonically, so this sort is a no-op on a well-formed log
        # and a repair on one hand-edited out of order.
        self._entries.sort(key=lambda e: e.seq)
        self._next_seq = self._entries[-1].seq + 1 if self._entries else 1

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, path: str, fingerprint: str) -> "WriteAheadLog":
        """Open (or create) the log; replays durable entries into memory."""
        return cls(CheckpointJournal.open(path, fingerprint))

    def close(self) -> None:
        self.journal.close()

    @property
    def path(self) -> str:
        return self.journal.path

    # -- append / replay -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest durable sequence number (0 when the log is empty)."""
        return self._next_seq - 1

    def seen_txid(self, txid: str) -> Optional[int]:
        """The sequence an update with this txid already holds, if any."""
        return self._txids.get(txid)

    def append(self, entry: UpdateEntry) -> UpdateEntry:
        """Assign the next sequence number and make the entry durable.

        Returns the sequenced entry.  The fsync happens inside
        ``journal.record`` — when this method returns, the update will
        survive any crash.  Apply it *after* this returns, never before.
        """
        if entry.txid is not None and entry.txid in self._txids:
            raise ValueError(f"txid {entry.txid!r} already durable")
        sequenced = UpdateEntry(
            kind=entry.kind,
            relation=entry.relation,
            values=entry.values,
            condition=entry.condition,
            txid=entry.txid,
            seq=self._next_seq,
        )
        self.journal.record(KIND, f"{sequenced.seq:016d}", sequenced.to_obj())
        self._next_seq += 1
        self._entries.append(sequenced)
        if sequenced.txid is not None:
            self._txids[sequenced.txid] = sequenced.seq
        return sequenced

    def entries(self) -> List[UpdateEntry]:
        """All durable entries in sequence order (replay order)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
