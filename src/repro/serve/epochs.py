"""Epoch/snapshot isolation for the serve daemon.

The resident :class:`~repro.faurelog.incremental.IncrementalEvaluator`
mutates its tables in place while an update applies.  Queries must never
observe that half-applied state, so the daemon publishes an immutable
:class:`Snapshot` after each successful apply and queries read *only*
snapshots:

* a snapshot captures, per relation, the tuple sequence at publish time
  (c-tuples are immutable, so sharing them is safe — capturing is an
  O(rows) pointer copy, no deep clone);
* :meth:`EpochManager.publish` swaps the current snapshot atomically
  (one reference assignment under a lock, with a monotone-epoch guard);
* a query holds the snapshot it started with for its whole lifetime —
  an update landing mid-query advances the *manager*, never the
  snapshot already being read.

This is multi-versioning with exactly two interesting versions: the
published epoch N (readers) and the in-progress epoch N+1 (the single
ingest thread).  No reader ever blocks an ingest and vice versa.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ctable.table import CTuple, Database
from ..ctable.terms import Constant, CVariable

__all__ = ["RelationView", "Snapshot", "EpochManager"]


@dataclass(frozen=True)
class RelationView:
    """One relation's immutable contents at a snapshot's epoch."""

    name: str
    schema: Tuple[str, ...]
    tuples: Tuple[CTuple, ...]

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass(frozen=True)
class Snapshot:
    """A consistent, immutable view of every relation at one epoch.

    ``seq`` is the highest WAL sequence number applied when the
    snapshot was taken — the durability watermark a query's answer is
    current *as of*.  ``assignments`` maps withdrawn guard c-variables
    to their assigned constants *as of this epoch*: queries substitute
    them into row conditions, so a withdrawal becoming visible is an
    epoch advance like any other update — a reader holding the prior
    snapshot keeps seeing the prior (consistent) worlds.
    """

    epoch: int
    seq: int
    relations: Dict[str, RelationView]
    assignments: Dict[CVariable, Constant] = field(default_factory=dict)

    def relation(self, name: str) -> RelationView:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"no relation {name!r} in epoch {self.epoch}") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.relations))

    @classmethod
    def capture(
        cls,
        database: Database,
        epoch: int,
        seq: int,
        assignments: Optional[Dict[CVariable, Constant]] = None,
    ) -> "Snapshot":
        """Freeze the current contents of every table in ``database``."""
        relations = {
            table.name: RelationView(
                name=table.name,
                schema=tuple(table.schema),
                tuples=table.tuples(),
            )
            for table in database
        }
        return cls(
            epoch=epoch,
            seq=seq,
            relations=relations,
            assignments=dict(assignments) if assignments else {},
        )


class EpochManager:
    """Atomic publish/read of the daemon's current snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Snapshot] = None

    def current(self) -> Snapshot:
        """The latest published snapshot (raises before first publish)."""
        snapshot = self._current
        if snapshot is None:
            raise RuntimeError("no snapshot published yet")
        return snapshot

    def publish(self, snapshot: Snapshot) -> None:
        """Swap in a new snapshot; epochs must advance monotonically.

        A full rebuild (crash recovery mid-run) republishes the replayed
        state at a *higher* epoch, so the monotone guard holds across
        recoveries too.
        """
        with self._lock:
            if self._current is not None and snapshot.epoch <= self._current.epoch:
                raise ValueError(
                    f"epoch must advance: {snapshot.epoch} after "
                    f"{self._current.epoch}"
                )
            self._current = snapshot
