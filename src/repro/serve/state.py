"""The daemon's resident state: WAL-fronted evaluator + snapshots.

:class:`ServeState` owns the recovery invariant of serve mode:

    resident state  ==  initial evaluation of (program, seed database)
                        + replay of every durable WAL entry, in order.

Every mutation path preserves it:

* a live update is validated, made durable (:meth:`WriteAheadLog.append`
  fsyncs before returning), applied, and published as the next epoch;
* a crash at any point recovers by :meth:`ServeState.__init__` running
  the right-hand side from scratch — which is *the same code path* a
  live update takes (:meth:`IncrementalEvaluator.apply`), so recovered
  answers are byte-identical to an uninterrupted run's;
* an apply that blows up *after* its entry became durable triggers an
  in-process rebuild from the log (the entry replays as part of it), so
  a poisoned apply degrades to a recovery, never to a half-applied
  resident state.

Queries never touch the evaluator: they read the epoch manager's
current immutable snapshot, with an optional condition filter decided
by a **per-request** governed solver — budget exhaustion degrades the
answer to ``INCONCLUSIVE`` (undecided rows flagged, definite rows
intact) instead of stalling the daemon.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..ctable.condition import TRUE, TrueCond, conjoin
from ..ctable.io import condition_to_obj, load_database, term_to_obj
from ..ctable.table import CTuple
from ..faurelog.ast import ProgramError
from ..faurelog.incremental import IncrementalEvaluator
from ..faurelog.parser import parse_program
from ..robustness.governor import Governor
from ..robustness.verdict import Verdict
from ..solver.interface import ConditionSolver
from ..solver.memo import MemoTable
from .epochs import EpochManager, Snapshot
from .protocol import ServeRequestError, parse_values, parse_where
from .wal import UpdateEntry, WriteAheadLog, wal_fingerprint

__all__ = ["ServeBudgets", "ServeState", "row_to_obj"]


@dataclass(frozen=True)
class ServeBudgets:
    """Per-request resource budgets (update apply and query filtering)."""

    deadline_seconds: Optional[float] = None
    solver_call_budget: Optional[int] = None
    steps_per_call: Optional[int] = None
    max_condition_atoms: Optional[int] = None

    @property
    def any(self) -> bool:
        return any(
            v is not None
            for v in (
                self.deadline_seconds,
                self.solver_call_budget,
                self.steps_per_call,
                self.max_condition_atoms,
            )
        )

    def governor(self) -> Optional[Governor]:
        """A fresh armed governor, or ``None`` when nothing is bounded.

        Always ``on_budget="degrade"``: a daemon answers degraded, it
        does not die because one request was expensive.
        """
        if not self.any:
            return None
        return Governor(
            deadline_seconds=self.deadline_seconds,
            solver_call_budget=self.solver_call_budget,
            steps_per_call=self.steps_per_call,
            max_condition_atoms=self.max_condition_atoms,
            on_budget="degrade",
        ).start()


def row_to_obj(tup: CTuple, unknown: bool = False) -> Dict[str, Any]:
    """One snapshot row in the wire encoding (ctable interchange terms)."""
    row: Dict[str, Any] = {"values": [term_to_obj(v) for v in tup.values]}
    if not isinstance(tup.condition, TrueCond):
        row["condition"] = condition_to_obj(tup.condition)
    if unknown:
        row["unknown"] = True
    return row


class ServeState:
    """Resident database + evaluator behind a write-ahead log."""

    def __init__(
        self,
        program_text: str,
        database_text: str,
        wal_path: str,
        budgets: Optional[ServeBudgets] = None,
        optimize: bool = False,
    ):
        self.program_text = program_text
        self.database_text = database_text
        self.budgets = budgets or ServeBudgets()
        self.optimize = optimize
        self.program = parse_program(program_text)
        self.epochs = EpochManager()
        self._epoch = 0
        self._lock = threading.Lock()  # serializes submit/recovery
        self.counters: Dict[str, int] = {
            "updates_applied": 0,
            "updates_duplicate": 0,
            "updates_rejected": 0,
            "queries": 0,
            "queries_inconclusive": 0,
            "recoveries": 0,
        }
        self.wal = WriteAheadLog.open(
            wal_path, wal_fingerprint(program_text, database_text)
        )
        self._rebuild()
        self._publish()

    # -- build / recover -----------------------------------------------------

    def _rebuild(self) -> None:
        """(Re)create the evaluator from the seed and replay the WAL."""
        database, domains = load_database(self.database_text)
        self.domains = domains
        self._memo = MemoTable()
        self._update_governor = self.budgets.governor()
        solver = ConditionSolver(
            domains, governor=self._update_governor, memo=self._memo
        )
        precheck = None
        if self.optimize:
            # Static pre-admission slicing: the optimizer's precheck gives
            # per-update sat/entailment verdicts without solver calls and
            # arms the evaluator's reader-index impact slicing.  Replay
            # runs the identical optimized path, so recovered answers stay
            # byte-identical to the uninterrupted run's.
            from ..analysis.optimize import optimize_program

            optimization = optimize_program(self.program, database, domains)
            precheck = optimization.precheck_for(self._update_governor)
        self.evaluator = IncrementalEvaluator(
            self.program, database, solver=solver, precheck=precheck
        )
        for entry in self.wal.entries():
            self._apply_entry(entry)

    def _publish(self) -> None:
        self._epoch += 1
        self.epochs.publish(
            Snapshot.capture(self.evaluator.combined, self._epoch, self.wal.last_seq)
        )

    def close(self) -> None:
        self.wal.close()

    # -- update path ---------------------------------------------------------

    def _apply_entry(self, entry: UpdateEntry) -> int:
        """Apply one durable entry; live updates and replay both land here."""
        terms = parse_values(list(entry.values))
        condition = parse_where(entry.condition)
        if self._update_governor is not None:
            self._update_governor.start()  # re-arm the per-update deadline
        return self.evaluator.apply(
            entry.kind, entry.relation, terms, condition if condition is not None else TRUE
        )

    def admit(self, entry: UpdateEntry) -> None:
        """Semantic validation against schema and program — pre-durability.

        Raises :class:`ServeRequestError`; a rejected update never
        reaches the WAL, so replay cannot meet an entry the evaluator
        would refuse and a malformed client cannot poison the state.
        """
        if entry.relation in self.program.idb_predicates():
            raise ServeRequestError(
                "IDB_INSERT",
                f"{entry.relation} is derived; updates may only touch the EDB",
            )
        if entry.relation not in self.evaluator.database:
            raise ServeRequestError(
                "UNKNOWN_RELATION", f"no stored relation {entry.relation!r}"
            )
        table = self.evaluator.database.table(entry.relation)
        if len(entry.values) != table.arity:
            raise ServeRequestError(
                "ARITY",
                f"{entry.relation} has arity {table.arity}, "
                f"got {len(entry.values)} value(s)",
            )
        try:
            self.evaluator.check_insertable(entry.relation)
        except ProgramError as exc:
            raise ServeRequestError("NON_MONOTONE", str(exc)) from exc

    def submit(self, entry: UpdateEntry) -> Dict[str, Any]:
        """Admit, log, apply, publish — the full life of one update."""
        with self._lock:
            if entry.txid is not None:
                seen = self.wal.seen_txid(entry.txid)
                if seen is not None:
                    # A retried update the client never got an ack for:
                    # answer with the original sequence, no double-apply.
                    self.counters["updates_duplicate"] += 1
                    snapshot = self.epochs.current()
                    return {
                        "ok": True,
                        "seq": seen,
                        "epoch": snapshot.epoch,
                        "duplicate": True,
                    }
            try:
                self.admit(entry)
            except ServeRequestError:
                self.counters["updates_rejected"] += 1
                raise
            sequenced = self.wal.append(entry)  # durable *before* apply
            recovered = False
            try:
                derived = self._apply_entry(sequenced)
            except Exception:
                # The resident state may be half-applied; rebuild it from
                # the log (which includes the entry that just blew up).
                self.counters["recoveries"] += 1
                self._rebuild()
                derived = None
                recovered = True
            self._publish()
            self.counters["updates_applied"] += 1
            response: Dict[str, Any] = {
                "ok": True,
                "seq": sequenced.seq,
                "epoch": self._epoch,
                "derived": derived,
            }
            if recovered:
                response["recovered"] = True
            return response

    # -- query path ----------------------------------------------------------

    def query(
        self,
        relation: str,
        where: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Answer from the current snapshot; never blocks an ingest.

        With a ``where`` filter, each row's condition conjoined with the
        filter goes to a fresh per-request governed solver: ``SAT`` rows
        are returned, ``UNSAT`` rows dropped, and ``UNKNOWN`` (budget
        ran out) rows returned flagged — the response degrades to
        ``status: INCONCLUSIVE`` rather than stalling or failing.
        """
        snapshot = self.epochs.current()
        try:
            view = snapshot.relation(relation)
        except KeyError:
            raise ServeRequestError(
                "UNKNOWN_RELATION", f"no relation {relation!r}"
            ) from None
        condition = parse_where(where)
        self.counters["queries"] += 1
        rows = []
        status = "OK"
        if condition is None:
            for tup in view.tuples:
                rows.append(row_to_obj(tup))
        else:
            solver = ConditionSolver(
                self.domains, governor=self.budgets.governor(), memo=self._memo
            )
            for tup in view.tuples:
                verdict = solver.sat_verdict(conjoin([tup.condition, condition]))
                if verdict is Verdict.UNSAT:
                    continue
                unknown = verdict is Verdict.UNKNOWN
                if unknown:
                    status = "INCONCLUSIVE"
                rows.append(row_to_obj(tup, unknown=unknown))
        if status == "INCONCLUSIVE":
            self.counters["queries_inconclusive"] += 1
        total = len(rows)
        truncated = limit is not None and total > limit
        if truncated:
            rows = rows[:limit]
        response: Dict[str, Any] = {
            "ok": True,
            "epoch": snapshot.epoch,
            "seq": snapshot.seq,
            "relation": relation,
            "schema": list(view.schema),
            "status": status,
            "rows": rows,
            "total": total,
        }
        if truncated:
            response["truncated"] = True
        return response

    # -- health --------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        snapshot = self.epochs.current()
        return {
            "ok": True,
            "epoch": snapshot.epoch,
            "seq": snapshot.seq,
            "relations": {name: len(snapshot.relation(name)) for name in snapshot.names()},
            "wal_entries": len(self.wal),
            "counters": dict(self.counters),
        }
