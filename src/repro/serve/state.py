"""The daemon's resident state: WAL-fronted evaluator + snapshots.

:class:`ServeState` owns the recovery invariant of serve mode:

    resident state  ==  newest durable seed snapshot (or the initial
                        evaluation of (program, seed database) when no
                        snapshot exists)
                        + replay of every durable WAL entry above the
                        snapshot's sequence, in order.

Every mutation path preserves it:

* a live update is validated, made durable (:meth:`WriteAheadLog.append`
  fsyncs before returning), applied, and published as the next epoch;
* a crash at any point recovers by :meth:`ServeState.__init__` running
  the right-hand side from scratch — which is *the same code path* a
  live update takes (:meth:`IncrementalEvaluator.apply`), so recovered
  answers are byte-identical to an uninterrupted run's;
* an apply that blows up *after* its entry became durable triggers an
  in-process rebuild from the log (the entry replays as part of it), so
  a poisoned apply degrades to a recovery, never to a half-applied
  resident state;
* **compaction** folds the whole durable prefix into a fresh snapshot
  (atomic write-new → rename, fsync before anything is retired), then
  rewrites the WAL down to the empty suffix — a crash between the two
  leaves snapshot *and* full log, and recovery replays only the suffix
  above the snapshot seq, so the overlap is harmless.

**Withdrawal** is the paper's guard-variable encoding: a fact ingested
with ``removable: true`` gets a fresh boolean guard c-variable
``__g<seq>`` conjoined onto its condition (``__g<seq> == 1``), and
``withdraw`` is a WAL'd *assignment* ``__g<seq> := 0`` — never a
retraction.  Queries substitute the recorded assignments into row
conditions: a condition that folds to FALSE drops the row, so after a
withdrawal the answer is exactly what a from-scratch evaluation without
the withdrawn fact represents, while the evaluator itself only ever saw
monotone growth.

Queries never touch the evaluator: they read the epoch manager's
current immutable snapshot, with an optional condition filter decided
by a **per-request** governed solver — budget exhaustion degrades the
answer to ``INCONCLUSIVE`` (undecided rows flagged, definite rows
intact) instead of stalling the daemon.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..ctable.condition import Condition, FALSE, TRUE, TrueCond, conjoin, eq
from ..ctable.io import (
    condition_to_obj,
    database_from_obj,
    domains_from_obj,
    load_database,
    term_to_obj,
)
from ..ctable.table import CTuple
from ..ctable.terms import Constant, CVariable
from ..faurelog.ast import ProgramError
from ..faurelog.incremental import IncrementalEvaluator
from ..faurelog.parser import parse_program
from ..parallel.supervisor import _sentinel_fires, chaos_directives
from ..robustness.governor import Governor
from ..robustness.verdict import Verdict
from ..solver.domains import BOOL_DOMAIN
from ..solver.interface import ConditionSolver
from ..solver.memo import MemoTable
from .epochs import EpochManager, Snapshot
from .protocol import ServeRequestError, parse_values, parse_where
from .snapshots import (
    build_snapshot_obj,
    load_latest_snapshot,
    retire_snapshots,
    write_snapshot,
)
from .wal import UpdateEntry, WriteAheadLog, wal_fingerprint

__all__ = ["ServeBudgets", "ServeState", "row_to_obj"]


@dataclass(frozen=True)
class ServeBudgets:
    """Per-request resource budgets (update apply and query filtering)."""

    deadline_seconds: Optional[float] = None
    solver_call_budget: Optional[int] = None
    steps_per_call: Optional[int] = None
    max_condition_atoms: Optional[int] = None

    @property
    def any(self) -> bool:
        return any(
            v is not None
            for v in (
                self.deadline_seconds,
                self.solver_call_budget,
                self.steps_per_call,
                self.max_condition_atoms,
            )
        )

    def governor(self) -> Optional[Governor]:
        """A fresh armed governor, or ``None`` when nothing is bounded.

        Always ``on_budget="degrade"``: a daemon answers degraded, it
        does not die because one request was expensive.
        """
        if not self.any:
            return None
        return Governor(
            deadline_seconds=self.deadline_seconds,
            solver_call_budget=self.solver_call_budget,
            steps_per_call=self.steps_per_call,
            max_condition_atoms=self.max_condition_atoms,
            on_budget="degrade",
        ).start()


def row_to_obj(tup: CTuple, unknown: bool = False, condition: Optional[Condition] = None) -> Dict[str, Any]:
    """One snapshot row in the wire encoding (ctable interchange terms).

    ``condition`` overrides the tuple's own condition — the query path
    passes the guard-substituted (withdrawal-aware) form.
    """
    effective = tup.condition if condition is None else condition
    row: Dict[str, Any] = {"values": [term_to_obj(v) for v in tup.values]}
    if not isinstance(effective, TrueCond):
        row["condition"] = condition_to_obj(effective)
    if unknown:
        row["unknown"] = True
    return row


def _maybe_compact_die() -> None:
    """Chaos hook: hard-exit between snapshot fsync and segment retirement.

    Directive ``compact-die:<sentinel>`` — the worst instant of a
    compaction, proving recovery tolerates snapshot+full-log overlap.
    """
    for directive in chaos_directives():
        if directive[0] == "compact-die" and _sentinel_fires(directive[1]):
            os._exit(1)


class ServeState:
    """Resident database + evaluator behind a write-ahead log."""

    def __init__(
        self,
        program_text: str,
        database_text: str,
        wal_path: str,
        budgets: Optional[ServeBudgets] = None,
        optimize: bool = False,
        compact_every: Optional[int] = None,
        compact_bytes: Optional[int] = None,
    ):
        self.program_text = program_text
        self.database_text = database_text
        self.budgets = budgets or ServeBudgets()
        self.optimize = optimize
        self.compact_every = compact_every
        self.compact_bytes = compact_bytes
        self.program = parse_program(program_text)
        self.fingerprint = wal_fingerprint(program_text, database_text)
        self.epochs = EpochManager()
        self._epoch = 0
        self._lock = threading.Lock()  # serializes submit/recovery/compaction
        self.counters: Dict[str, int] = {
            "updates_applied": 0,
            "updates_duplicate": 0,
            "updates_rejected": 0,
            "withdrawals": 0,
            "queries": 0,
            "queries_inconclusive": 0,
            "recoveries": 0,
            "compactions": 0,
            "replicated_applied": 0,
        }
        self._snapshot_obj, self.snapshot_path = load_latest_snapshot(
            wal_path, self.fingerprint
        )
        base_seq = int(self._snapshot_obj["seq"]) if self._snapshot_obj else 0
        seed_txids = self._snapshot_obj.get("txids") if self._snapshot_obj else None
        self.wal = WriteAheadLog.open(
            wal_path, self.fingerprint, base_seq=base_seq, seed_txids=seed_txids
        )
        self._rebuild()
        self._publish()

    @classmethod
    def from_bootstrap(
        cls, obj: Dict[str, Any], wal_path: str, **kwargs: Any
    ) -> "ServeState":
        """Build a state from a primary's snapshot object (replica start).

        The snapshot is first made durable locally (it becomes this
        node's own compaction base), then the normal recovery path picks
        it up — a replica restart with the primary unreachable recovers
        from its local snapshot + local WAL suffix alone.
        """
        write_snapshot(wal_path, obj)
        return cls(obj["program"], obj["database"], wal_path, **kwargs)

    # -- build / recover -----------------------------------------------------

    def _rebuild(self) -> None:
        """(Re)create the evaluator and replay the WAL suffix.

        With a seed snapshot: adopt its serialized EDB/IDB/guard state
        verbatim (no initial evaluation) and replay only entries above
        its seq.  Without one: initial evaluation of the seed database,
        then full replay — PR 6's original invariant.
        """
        self.guards: Dict[str, Dict[str, Any]] = {}
        self.assignments: Dict[CVariable, Constant] = {}
        restored_idb = None
        if self._snapshot_obj is not None:
            obj = self._snapshot_obj
            database = database_from_obj({"tables": obj["edb"]})
            domains = domains_from_obj({"domains": obj["domains"]})
            restored_idb = database_from_obj({"tables": obj["idb"]})
            for name, info in obj.get("guards", {}).items():
                self.guards[name] = dict(info)
                self.domains_declare_guard(name, domains)
                if info.get("withdrawn"):
                    self.assignments[CVariable(name)] = Constant(0)
            base_seq = int(obj["seq"])
        else:
            database, domains = load_database(self.database_text)
            base_seq = 0
        self.domains = domains
        self._memo = MemoTable()
        self._update_governor = self.budgets.governor()
        solver = ConditionSolver(
            domains, governor=self._update_governor, memo=self._memo
        )
        precheck = None
        if self.optimize:
            # Static pre-admission slicing: the optimizer's precheck gives
            # per-update sat/entailment verdicts without solver calls and
            # arms the evaluator's reader-index impact slicing.  Replay
            # runs the identical optimized path, so recovered answers stay
            # byte-identical to the uninterrupted run's.
            from ..analysis.optimize import optimize_program

            optimization = optimize_program(self.program, database, domains)
            precheck = optimization.precheck_for(self._update_governor)
        self.evaluator = IncrementalEvaluator(
            self.program,
            database,
            solver=solver,
            precheck=precheck,
            restored_idb=restored_idb,
        )
        for entry in self.wal.entries():
            if entry.seq <= base_seq:
                # Compaction crashed between snapshot fsync and segment
                # retirement: the folded prefix is still on disk.  It is
                # already inside the snapshot — replaying it twice would
                # double-apply.
                continue
            self._apply_entry(entry)

    @staticmethod
    def domains_declare_guard(name: str, domains) -> None:
        """Guards are boolean: 1 = fact present, 0 = withdrawn."""
        domains.declare(CVariable(name), BOOL_DOMAIN)

    def _publish(self) -> None:
        self._epoch += 1
        self.epochs.publish(
            Snapshot.capture(
                self.evaluator.combined,
                self._epoch,
                self.wal.last_seq,
                assignments=self.assignments,
            )
        )

    def close(self) -> None:
        self.wal.close()

    # -- update path ---------------------------------------------------------

    def _apply_entry(self, entry: UpdateEntry) -> int:
        """Apply one durable entry; live updates and replay both land here."""
        if entry.kind == "withdraw":
            info = self.guards.get(entry.guard)
            if info is None:  # replay of a guard the snapshot should hold
                raise ProgramError(f"withdraw of unknown guard {entry.guard!r}")
            info["withdrawn"] = True
            info["withdraw_seq"] = entry.seq
            self.assignments[CVariable(entry.guard)] = Constant(0)
            return 0
        terms = parse_values(list(entry.values))
        condition = parse_where(entry.condition)
        if condition is None:
            condition = TRUE
        if entry.guard:
            # A removable fact: conjoin the fresh guard (``guard == 1``)
            # so withdrawal later is an assignment, not a retraction.
            self.domains_declare_guard(entry.guard, self.domains)
            self.guards[entry.guard] = {
                "relation": entry.relation,
                "seq": entry.seq,
                "withdrawn": False,
                "withdraw_seq": None,
            }
            condition = conjoin([condition, eq(CVariable(entry.guard), 1)])
        if self._update_governor is not None:
            self._update_governor.start()  # re-arm the per-update deadline
        return self.evaluator.apply(entry.kind, entry.relation, terms, condition)

    def admit(self, entry: UpdateEntry) -> None:
        """Semantic validation against schema and program — pre-durability.

        Raises :class:`ServeRequestError`; a rejected update never
        reaches the WAL, so replay cannot meet an entry the evaluator
        would refuse and a malformed client cannot poison the state.
        """
        if entry.kind == "withdraw":
            if entry.guard not in self.guards:
                raise ServeRequestError(
                    "UNKNOWN_GUARD",
                    f"no removable fact with guard {entry.guard!r}",
                )
            return
        if entry.relation in self.program.idb_predicates():
            raise ServeRequestError(
                "IDB_INSERT",
                f"{entry.relation} is derived; updates may only touch the EDB",
            )
        if entry.relation not in self.evaluator.database:
            raise ServeRequestError(
                "UNKNOWN_RELATION", f"no stored relation {entry.relation!r}"
            )
        table = self.evaluator.database.table(entry.relation)
        if len(entry.values) != table.arity:
            raise ServeRequestError(
                "ARITY",
                f"{entry.relation} has arity {table.arity}, "
                f"got {len(entry.values)} value(s)",
            )
        try:
            self.evaluator.check_insertable(entry.relation)
        except ProgramError as exc:
            raise ServeRequestError("NON_MONOTONE", str(exc)) from exc

    def submit(self, entry: UpdateEntry) -> Dict[str, Any]:
        """Admit, log, apply, publish — the full life of one update."""
        with self._lock:
            if entry.txid is not None:
                seen = self.wal.seen_txid(entry.txid)
                if seen is not None:
                    # A retried update the client never got an ack for:
                    # answer with the original sequence, no double-apply.
                    self.counters["updates_duplicate"] += 1
                    snapshot = self.epochs.current()
                    return {
                        "ok": True,
                        "seq": seen,
                        "epoch": snapshot.epoch,
                        "duplicate": True,
                    }
            if entry.kind == "withdraw":
                return self._submit_withdraw(entry)
            try:
                self.admit(entry)
            except ServeRequestError:
                self.counters["updates_rejected"] += 1
                raise
            if entry.guard == "":
                # Removable: mint the guard name from the seq this entry
                # is about to take, so replay reconstructs it verbatim.
                entry = dataclasses.replace(
                    entry, guard=f"__g{self.wal.last_seq + 1}"
                )
            sequenced = self.wal.append(entry)  # durable *before* apply
            recovered = False
            try:
                derived = self._apply_entry(sequenced)
            except Exception:
                # The resident state may be half-applied; rebuild it from
                # the log (which includes the entry that just blew up).
                self.counters["recoveries"] += 1
                self._rebuild()
                derived = None
                recovered = True
            self._publish()
            self.counters["updates_applied"] += 1
            response: Dict[str, Any] = {
                "ok": True,
                "seq": sequenced.seq,
                "epoch": self._epoch,
                "derived": derived,
            }
            if sequenced.guard:
                response["guard"] = sequenced.guard
            if recovered:
                response["recovered"] = True
            self._maybe_compact_locked()
            return response

    def _submit_withdraw(self, entry: UpdateEntry) -> Dict[str, Any]:
        """Withdraw = durably log a guard assignment, then apply it."""
        try:
            self.admit(entry)
        except ServeRequestError:
            self.counters["updates_rejected"] += 1
            raise
        info = self.guards[entry.guard]
        if info.get("withdrawn"):
            # Withdrawal is idempotent: answering with the original
            # sequence mirrors the txid-retry contract for inserts.
            self.counters["updates_duplicate"] += 1
            return {
                "ok": True,
                "seq": info.get("withdraw_seq"),
                "epoch": self.epochs.current().epoch,
                "guard": entry.guard,
                "withdrawn": True,
                "duplicate": True,
            }
        entry = dataclasses.replace(entry, relation=info["relation"])
        sequenced = self.wal.append(entry)  # durable *before* apply
        self._apply_entry(sequenced)
        self._publish()
        self.counters["withdrawals"] += 1
        self._maybe_compact_locked()
        return {
            "ok": True,
            "seq": sequenced.seq,
            "epoch": self._epoch,
            "guard": sequenced.guard,
            "withdrawn": True,
        }

    # -- replica apply -------------------------------------------------------

    def apply_replicated(self, entries: List[UpdateEntry]) -> int:
        """Apply a gapless batch of entries tailed from the primary.

        Entries keep the *primary's* sequence numbers; each is made
        durable in the local WAL before it is applied (the same
        durable-before-apply contract as primary ingest), and the batch
        publishes **once** — replica readers always observe a consistent
        prefix of the primary's history, never a half-batch.
        """
        if not entries:
            return 0
        applied = 0
        with self._lock:
            for entry in entries:
                if entry.seq <= self.wal.last_seq:
                    continue  # already durable locally (tail overlap)
                self.wal.append_replicated(entry)
                try:
                    self._apply_entry(entry)
                except Exception:
                    self.counters["recoveries"] += 1
                    self._rebuild()
                applied += 1
            if applied:
                self._publish()
                self.counters["replicated_applied"] += applied
            self._maybe_compact_locked()
        return applied

    def adopt_bootstrap(self, obj: Dict[str, Any]) -> None:
        """Replace local state with a primary snapshot (re-bootstrap).

        Used when the tail cursor fell below the primary's compaction
        horizon: the snapshot is made durable locally, the local WAL is
        rewritten down to the (empty) suffix, and the resident state is
        rebuilt from the new base.
        """
        if obj.get("fingerprint") != self.fingerprint:
            raise ServeRequestError(
                "INTERNAL",
                "bootstrap snapshot is for a different workload",
            )
        with self._lock:
            path = write_snapshot(self.wal.path, obj)
            self._snapshot_obj, self.snapshot_path = obj, path
            self.wal.rewrite(int(obj["seq"]))
            retire_snapshots(self.wal.path, int(obj["seq"]))
            self._rebuild()
            self._publish()

    # -- compaction ----------------------------------------------------------

    def _maybe_compact_locked(self) -> None:
        """Fire a threshold-triggered compaction (caller holds the lock)."""
        if len(self.wal) == 0:
            return
        if self.compact_every is not None and len(self.wal) >= self.compact_every:
            self._compact_locked()
        elif (
            self.compact_bytes is not None
            and self.wal.size_bytes() >= self.compact_bytes
        ):
            self._compact_locked()

    def compact(self, force: bool = False) -> Dict[str, Any]:
        """Fold the durable log into a fresh seed snapshot (admin path)."""
        with self._lock:
            if len(self.wal) == 0 and not force:
                return {
                    "ok": True,
                    "compacted": False,
                    "seq": self.wal.last_seq,
                    "reason": "log suffix is empty",
                }
            return self._compact_locked()

    def _compact_locked(self) -> Dict[str, Any]:
        obj = self.snapshot_obj()
        path = write_snapshot(self.wal.path, obj)  # fsync'd before any retire
        _maybe_compact_die()  # chaos: die with snapshot durable, log intact
        self._snapshot_obj, self.snapshot_path = obj, path
        self.wal.rewrite(int(obj["seq"]))
        retire_snapshots(self.wal.path, int(obj["seq"]))
        self.counters["compactions"] += 1
        return {
            "ok": True,
            "compacted": True,
            "seq": int(obj["seq"]),
            "snapshot": path,
            "wal_entries": len(self.wal),
            "wal_bytes": self.wal.size_bytes(),
        }

    def snapshot_now(self) -> Dict[str, Any]:
        """Write a durable seed snapshot without retiring any log segment.

        The admin ``snapshot`` action: the next restart replays only the
        suffix above this snapshot (open time drops), while the full log
        stays on disk for tailing replicas and forensics.  ``compact``
        is this plus segment retirement.
        """
        with self._lock:
            obj = self.snapshot_obj()
            path = write_snapshot(self.wal.path, obj)
            self._snapshot_obj, self.snapshot_path = obj, path
            return {"ok": True, "seq": int(obj["seq"]), "snapshot": path}

    def snapshot_obj(self) -> Dict[str, Any]:
        """Serialize the resident state (caller holds the lock)."""
        return build_snapshot_obj(
            self.fingerprint,
            self.wal.last_seq,
            self.program_text,
            self.database_text,
            self.evaluator,
            self.domains,
            self.guards,
            self.wal.txids(),
        )

    def bootstrap_obj(self) -> Dict[str, Any]:
        """A consistent snapshot for a replica (takes the lock briefly)."""
        with self._lock:
            return self.snapshot_obj()

    # -- query path ----------------------------------------------------------

    def query(
        self,
        relation: str,
        where: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Answer from the current snapshot; never blocks an ingest.

        Guard assignments recorded by withdrawals are substituted into
        every row condition first: a condition folding to FALSE drops
        the row (those worlds no longer exist), one folding to TRUE
        returns the row unconditional — so answers after a withdrawal
        match a from-scratch evaluation without the withdrawn fact.

        With a ``where`` filter, each surviving row's condition conjoined
        with the filter goes to a fresh per-request governed solver:
        ``SAT`` rows are returned, ``UNSAT`` rows dropped, and
        ``UNKNOWN`` (budget ran out) rows returned flagged — the
        response degrades to ``status: INCONCLUSIVE`` rather than
        stalling or failing.
        """
        snapshot = self.epochs.current()
        try:
            view = snapshot.relation(relation)
        except KeyError:
            raise ServeRequestError(
                "UNKNOWN_RELATION", f"no relation {relation!r}"
            ) from None
        condition = parse_where(where)
        assignments = snapshot.assignments
        if condition is not None and assignments:
            condition = condition.substitute(assignments)
        self.counters["queries"] += 1
        rows = []
        status = "OK"
        solver: Optional[ConditionSolver] = None
        for tup in view.tuples:
            effective = (
                tup.condition.substitute(assignments) if assignments else tup.condition
            )
            if effective is FALSE:
                continue  # withdrawn worlds: the row no longer exists
            if condition is None:
                rows.append(row_to_obj(tup, condition=effective))
                continue
            if condition is FALSE:
                continue
            if solver is None:
                solver = ConditionSolver(
                    self.domains, governor=self.budgets.governor(), memo=self._memo
                )
            verdict = solver.sat_verdict(conjoin([effective, condition]))
            if verdict is Verdict.UNSAT:
                continue
            unknown = verdict is Verdict.UNKNOWN
            if unknown:
                status = "INCONCLUSIVE"
            rows.append(row_to_obj(tup, unknown=unknown, condition=effective))
        if status == "INCONCLUSIVE":
            self.counters["queries_inconclusive"] += 1
        total = len(rows)
        truncated = limit is not None and total > limit
        if truncated:
            rows = rows[:limit]
        response: Dict[str, Any] = {
            "ok": True,
            "epoch": snapshot.epoch,
            "seq": snapshot.seq,
            "relation": relation,
            "schema": list(view.schema),
            "status": status,
            "rows": rows,
            "total": total,
        }
        if truncated:
            response["truncated"] = True
        return response

    # -- health --------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        snapshot = self.epochs.current()
        return {
            "ok": True,
            "epoch": snapshot.epoch,
            "seq": snapshot.seq,
            "relations": {name: len(snapshot.relation(name)) for name in snapshot.names()},
            "wal_entries": len(self.wal),
            "counters": dict(self.counters),
        }

    def status(self) -> Dict[str, Any]:
        """The serve-admin view: health plus log/snapshot lifecycle."""
        out = self.health()
        withdrawn = sum(1 for info in self.guards.values() if info.get("withdrawn"))
        out.update(
            {
                "wal_path": self.wal.path,
                "wal_bytes": self.wal.size_bytes(),
                "wal_base_seq": self.wal.base_seq,
                "snapshot_path": self.snapshot_path,
                "snapshot_seq": (
                    int(self._snapshot_obj["seq"]) if self._snapshot_obj else None
                ),
                "compact_every": self.compact_every,
                "compact_bytes": self.compact_bytes,
                "guards": len(self.guards),
                "withdrawn": withdrawn,
            }
        )
        return out
