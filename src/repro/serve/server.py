"""The serve daemon: a threaded line-protocol endpoint over ServeState.

Request handling is split by contention class:

* **queries and health** run directly on the handler thread against the
  current immutable snapshot — any number run concurrently, and none
  can observe a half-applied update (epoch isolation);
* **updates and withdrawals** funnel through a *bounded* ingest queue
  drained by a single ingest thread, which serializes the
  WAL-append→apply→publish sequence.  When the queue is full the
  request is **shed** with an explicit ``OVERLOADED`` + ``retry_after``
  response — the daemon under overload answers honestly instead of
  stalling or dying;
* a request the ingest thread cannot apply for *infrastructure* reasons
  (not a validation reject — those never reach the queue) marks the
  daemon failed: in-flight requests get ``INTERNAL`` responses and the
  process exits with code 6 (``EXIT_SERVE_FAILURE``), leaving the WAL
  as the authoritative state for the next start.

Replication surface (protocol v2): ``tail`` streams durable WAL
entries above a cursor (handler-thread read — the WAL's in-memory list
is copied, never locked against ingest), answering ``COMPACTED`` when
the cursor fell below the compaction horizon; ``snapshot`` transfers a
consistent bootstrap snapshot.  A server started with
``role="replica"`` answers queries but refuses ingest with
``READ_ONLY`` (redirecting to the primary), and stamps every response
with ``lag_seqs``/``primary_up`` so clients can reason about staleness
explicitly.

Chaos hooks: the ingest loop honors the ``FAURE_CHAOS`` directive
``serve-hang-apply:<seconds>:<sentinel>`` (sleep once before the next
apply), which the overload tests use to make shedding deterministic;
the WAL inherits ``die-after-records`` from the checkpoint journal, and
compaction honors ``compact-die`` (exit between snapshot fsync and
segment retirement), so the chaos suite can SIGKILL the daemon at the
exact production danger points.
"""

from __future__ import annotations

import queue
import socketserver
import threading
import time
from typing import Any, Dict, Optional, Tuple

from ..parallel.supervisor import _sentinel_fires, chaos_directives
from .protocol import (
    FEATURES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServeRequestError,
    decode_request,
    encode,
    error_response,
    validate_update,
    validate_withdraw,
)
from .state import ServeState

__all__ = ["FaureServer"]

#: Seconds an update handler waits for the ingest thread before giving
#: up with INTERNAL — a backstop, not a normal path (the queue bound is
#: the real admission control).
_INGEST_WAIT_SECONDS = 120.0

#: Default max entries per tail batch (a client may ask for fewer).
_TAIL_BATCH_MAX = 512


class _Box:
    """One in-flight update's rendezvous between handler and ingest."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None


def _maybe_chaos_hang() -> None:
    """Fire a scheduled ``serve-hang-apply`` directive (test hook)."""
    for directive in chaos_directives():
        if directive[0] == "serve-hang-apply" and _sentinel_fires(directive[2]):
            time.sleep(float(directive[1]))


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    faure: "FaureServer"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: FaureServer = self.server.faure  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not line:
                return
            if not line.strip():
                continue
            response, close = server.dispatch(line.strip())
            try:
                self.wfile.write(encode(response))
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            # A stopping daemon answers the in-flight request, then drops
            # the connection — so tailing replicas and pooled clients see
            # the stop as a disconnect, the same signal a crash gives.
            if close or server._stopping.is_set():
                return


class FaureServer:
    """Lifecycle owner: TCP endpoint, ingest thread, graceful shutdown."""

    def __init__(
        self,
        state: ServeState,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        shed_retry_after: float = 0.1,
        role: str = "primary",
        primary_addr: Optional[Tuple[str, int]] = None,
    ):
        if role not in ("primary", "replica"):
            raise ValueError(f"unknown serve role {role!r}")
        self.state = state
        self.role = role
        self.primary_addr = primary_addr
        #: Set by the replica runner: the tailer thread keeping this
        #: replica converged (carries primary_seq / primary_up).
        self.tailer: Optional[Any] = None
        self.queue_limit = queue_limit
        self.shed_retry_after = shed_retry_after
        self.started = time.monotonic()
        self.counters: Dict[str, int] = {"requests": 0, "shed": 0, "protocol_errors": 0}
        self.fatal: Optional[BaseException] = None
        self._stopping = threading.Event()
        self._queue: "queue.Queue[Optional[Tuple[Any, _Box]]]" = queue.Queue(
            maxsize=max(1, queue_limit)
        )
        self._tcp = _ThreadedTCPServer((host, port), _Handler)
        self._tcp.faure = self
        self._ingest = threading.Thread(
            target=self._ingest_loop, name="faure-ingest", daemon=True
        )
        self._ingest.start()

    # -- addresses -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real one."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    # -- the ingest thread ---------------------------------------------------

    def _ingest_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            entry, box = item
            _maybe_chaos_hang()
            try:
                box.result = self.state.submit(entry)
            except ServeRequestError as exc:
                box.error = exc
            except BaseException as exc:  # infrastructure failure: daemon is done
                self.fatal = exc
                box.error = exc
                box.event.set()
                self._request_stop(drain=False)
                return
            box.event.set()

    # -- request dispatch ----------------------------------------------------

    def dispatch(self, line: bytes) -> Tuple[Dict[str, Any], bool]:
        """Answer one request line; returns (response, close_connection)."""
        self.counters["requests"] += 1
        try:
            obj = decode_request(line)
        except ServeRequestError as exc:
            self.counters["protocol_errors"] += 1
            return self._stamp(exc.response()), False
        op = obj["op"]
        close = False
        if op == "health":
            response = self._health()
        elif op == "shutdown":
            self._request_stop(drain=True)
            response, close = {"ok": True, "shutdown": True}, True
        elif op == "query":
            response = self._query(obj)
        elif op == "tail":
            response = self._tail(obj)
        elif op == "snapshot":
            response = self._snapshot()
        elif op == "admin":
            response = self._admin(obj)
        else:  # update / withdraw
            response = self._update(obj)
        return self._stamp(response), close

    def _stamp(self, response: Dict[str, Any]) -> Dict[str, Any]:
        """Replica staleness contract: lag in every response line."""
        if self.role == "replica":
            response.setdefault("role", "replica")
            tailer = self.tailer
            primary_seq = getattr(tailer, "primary_seq", None)
            local_seq = self.state.wal.last_seq
            response["lag_seqs"] = (
                max(0, primary_seq - local_seq) if primary_seq is not None else None
            )
            response["primary_up"] = bool(getattr(tailer, "primary_up", False))
        return response

    def _health(self) -> Dict[str, Any]:
        health = self.state.health()
        health["uptime_s"] = round(time.monotonic() - self.started, 3)
        health["queue_depth"] = self._queue.qsize()
        health["queue_limit"] = self.queue_limit
        health["server"] = dict(self.counters)
        health["protocol"] = PROTOCOL_VERSION
        health["features"] = list(FEATURES)
        health["role"] = self.role
        return health

    def _status(self) -> Dict[str, Any]:
        status = self.state.status()
        status["uptime_s"] = round(time.monotonic() - self.started, 3)
        status["queue_depth"] = self._queue.qsize()
        status["queue_limit"] = self.queue_limit
        status["server"] = dict(self.counters)
        status["protocol"] = PROTOCOL_VERSION
        status["features"] = list(FEATURES)
        status["role"] = self.role
        if self.primary_addr is not None:
            status["primary"] = {
                "host": self.primary_addr[0],
                "port": self.primary_addr[1],
            }
        return status

    def _query(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        relation = obj.get("relation")
        if not isinstance(relation, str) or not relation:
            return error_response("MALFORMED", "query needs a 'relation' string")
        limit = obj.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            return error_response("MALFORMED", "'limit' must be a non-negative integer")
        try:
            return self.state.query(relation, where=obj.get("where"), limit=limit)
        except ServeRequestError as exc:
            return exc.response()

    def _tail(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Durable entries above a cursor — the replica catch-up stream."""
        after_seq = obj.get("after_seq", 0)
        if not isinstance(after_seq, int) or after_seq < 0:
            return error_response("MALFORMED", "'after_seq' must be a non-negative integer")
        max_entries = obj.get("max", _TAIL_BATCH_MAX)
        if not isinstance(max_entries, int) or max_entries <= 0:
            return error_response("MALFORMED", "'max' must be a positive integer")
        wal = self.state.wal
        if after_seq < wal.base_seq:
            # The cursor predates the compaction horizon: those entries
            # were folded into a snapshot and no longer exist as log
            # records.  The replica must re-bootstrap from the snapshot.
            return error_response(
                "COMPACTED",
                f"entries through seq {wal.base_seq} were compacted into a "
                "snapshot; re-bootstrap via the 'snapshot' op",
                base_seq=wal.base_seq,
            )
        entries = wal.entries_after(after_seq, limit=min(max_entries, _TAIL_BATCH_MAX))
        return {
            "ok": True,
            "entries": [e.to_obj() for e in entries],
            "last_seq": wal.last_seq,
            "base_seq": wal.base_seq,
        }

    def _snapshot(self) -> Dict[str, Any]:
        """Consistent bootstrap snapshot (briefly excludes ingest)."""
        try:
            return {"ok": True, "snapshot": self.state.bootstrap_obj()}
        except ServeRequestError as exc:
            return exc.response()

    def _admin(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        action = obj.get("action")
        if action == "status":
            return self._status()
        if action == "compact":
            if self._stopping.is_set():
                return error_response("OVERLOADED", "daemon is shutting down")
            try:
                return self.state.compact(force=bool(obj.get("force", False)))
            except ServeRequestError as exc:
                return exc.response()
        if action == "snapshot":
            if self._stopping.is_set():
                return error_response("OVERLOADED", "daemon is shutting down")
            try:
                return self.state.snapshot_now()
            except ServeRequestError as exc:
                return exc.response()
        return error_response(
            "MALFORMED",
            f"unknown admin action {action!r} (want status, compact, or snapshot)",
        )

    def _update(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        if self.role == "replica":
            extra: Dict[str, Any] = {}
            if self.primary_addr is not None:
                extra["primary"] = {
                    "host": self.primary_addr[0],
                    "port": self.primary_addr[1],
                }
            return error_response(
                "READ_ONLY",
                "this node is a read replica; send updates to the primary",
                **extra,
            )
        if self._stopping.is_set():
            return error_response(
                "OVERLOADED",
                "daemon is shutting down",
                retry_after=self.shed_retry_after,
                status="OVERLOADED",
            )
        try:
            if obj.get("op") == "withdraw":
                entry = validate_withdraw(obj)
            else:
                entry = validate_update(obj)
        except ServeRequestError as exc:
            self.state.counters["updates_rejected"] += 1
            return exc.response()
        box = _Box()
        try:
            self._queue.put_nowait((entry, box))
        except queue.Full:
            # Admission control: shed with an explicit, retryable answer
            # instead of blocking the handler on a saturated ingest.
            self.counters["shed"] += 1
            return error_response(
                "OVERLOADED",
                f"ingest queue full ({self.queue_limit}); retry later",
                retry_after=self.shed_retry_after,
                status="OVERLOADED",
            )
        if not box.event.wait(timeout=_INGEST_WAIT_SECONDS):
            return error_response("INTERNAL", "ingest did not answer in time")
        if box.error is not None:
            if isinstance(box.error, ServeRequestError):
                return box.error.response()
            return error_response("INTERNAL", f"apply failed: {box.error}")
        assert box.result is not None
        return box.result

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> int:
        """Block until shutdown; returns 0 (graceful) or 6 (failed)."""
        try:
            self._tcp.serve_forever(poll_interval=0.05)
        finally:
            self._finish()
        return 6 if self.fatal is not None else 0

    def _request_stop(self, drain: bool) -> None:
        """Initiate shutdown from any thread (idempotent)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if not drain:
            # Fail fast: wake every parked update handler with INTERNAL.
            try:
                while True:
                    item = self._queue.get_nowait()
                    if item is not None:
                        item[1].error = RuntimeError("daemon failed")
                        item[1].event.set()
            except queue.Empty:
                pass
        # serve_forever must be stopped from a different thread.
        threading.Thread(target=self._tcp.shutdown, daemon=True).start()

    def stop(self) -> None:
        """Graceful stop for in-process (test) embeddings."""
        self._request_stop(drain=True)

    def _finish(self) -> None:
        """Drain the ingest queue, stop the ingest thread, close the WAL."""
        self._stopping.set()
        if self._ingest.is_alive():
            self._queue.put(None)  # FIFO: everything queued drains first
            self._ingest.join(timeout=_INGEST_WAIT_SECONDS)
        tailer = self.tailer
        if tailer is not None:
            try:
                tailer.stop()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass
        self._tcp.server_close()
        self.state.close()
