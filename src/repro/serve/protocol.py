"""The serve wire protocol: newline-delimited JSON requests/responses.

One request per line, one response line per request, over a plain TCP
stream.  Requests::

    {"op": "update",  "relation": "F", "values": ["p1", "A", "B"],
     "condition": "$x == 1"?, "txid": "client-key"?, "weaken": bool?}
    {"op": "query",   "relation": "R", "where": "$x == 1"?, "limit": 10?}
    {"op": "health"}
    {"op": "shutdown"}

Responses always carry ``"ok"``.  Failures mirror the CLI's exit-code
taxonomy in an ``"errno"`` field so scripts can classify them the same
way (2 = malformed request — the exit-code-2 class —, 3 = budget
exhausted, 6 = server-side failure), plus a symbolic ``"code"``::

    {"ok": false, "code": "MALFORMED", "errno": 2, "error": "..."}
    {"ok": false, "code": "OVERLOADED", "errno": 6, "retry_after": 0.05}

Degraded (but sound) answers are *successes* with a status field:
a query that exhausted its budget returns ``"status": "INCONCLUSIVE"``
with every definite row plus the rows it could not decide flagged
``"unknown": true`` — partial information, never a stall.

Validation happens *before* the write-ahead log sees an update: a
request that fails :func:`validate_update` is rejected without a log
append, so replay never encounters a malformed entry and a bad client
cannot poison the resident state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..ctable.parse import ParseError, TokenStream, parse_condition, parse_term, tokenize
from ..ctable.terms import Constant
from .wal import UpdateEntry

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_BULK_BYTES",
    "PROTOCOL_VERSION",
    "FEATURES",
    "ServeRequestError",
    "decode_request",
    "encode",
    "error_response",
    "validate_update",
    "validate_withdraw",
    "parse_values",
    "parse_where",
]

#: Requests larger than this are refused outright (a malformed or
#: hostile client must not make the daemon buffer without bound).
MAX_LINE_BYTES = 1 << 20

#: Cap on *bulk* response lines a client will read (snapshot transfer,
#: tail batches) — large state is expected there, unbounded is not.
MAX_BULK_BYTES = 64 << 20

#: Wire protocol generation.  v1 (PR 6) speaks update/query/health/
#: shutdown; v2 adds removable facts + withdraw, replica tail/snapshot,
#: and the admin surface.  Servers advertise ``protocol`` and
#: ``features`` in health responses; clients gate v2-only requests on
#: that advertisement so an old peer produces a typed error, not a hang.
PROTOCOL_VERSION = 2

#: Capability names a v2 server advertises.
FEATURES = ("removable", "withdraw", "tail", "snapshot", "admin", "compaction")

#: errno values mirroring the CLI exit codes (see repro.cli).
ERRNO_MALFORMED = 2
ERRNO_BUDGET = 3
ERRNO_SERVE = 6

#: Symbolic code -> errno. Everything in the exit-code-2 class is a
#: request the server refused to even log; OVERLOADED/INTERNAL are
#: server-side conditions.  READ_ONLY (ingest sent to a replica),
#: UNSUPPORTED (feature the peer does not speak), UNKNOWN_GUARD and
#: COMPACTED (tail cursor below the primary's snapshot horizon) are all
#: requests the server refuses without touching its log, so they share
#: the exit-code-2 class.
ERRNO_OF = {
    "MALFORMED": ERRNO_MALFORMED,
    "UNKNOWN_RELATION": ERRNO_MALFORMED,
    "ARITY": ERRNO_MALFORMED,
    "IDB_INSERT": ERRNO_MALFORMED,
    "NON_MONOTONE": ERRNO_MALFORMED,
    "UNKNOWN_GUARD": ERRNO_MALFORMED,
    "READ_ONLY": ERRNO_MALFORMED,
    "UNSUPPORTED": ERRNO_MALFORMED,
    "COMPACTED": ERRNO_MALFORMED,
    "BUDGET": ERRNO_BUDGET,
    "OVERLOADED": ERRNO_SERVE,
    "INTERNAL": ERRNO_SERVE,
}

_OPS = (
    "update",
    "withdraw",
    "query",
    "health",
    "shutdown",
    "tail",
    "snapshot",
    "admin",
)


class ServeRequestError(Exception):
    """A request the server refuses; carries the protocol error code."""

    def __init__(self, code: str, message: str):
        if code not in ERRNO_OF:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.errno = ERRNO_OF[code]

    def response(self, **extra: Any) -> Dict[str, Any]:
        return error_response(self.code, str(self), **extra)


def error_response(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ok": False,
        "code": code,
        "errno": ERRNO_OF[code],
        "error": message,
    }
    out.update(extra)
    return out


def encode(obj: Dict[str, Any]) -> bytes:
    """One response/request as a wire line (compact, key-sorted JSON)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and shape-check one request line."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeRequestError("MALFORMED", "request exceeds the line size limit")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeRequestError("MALFORMED", f"not a JSON request: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServeRequestError("MALFORMED", "request must be a JSON object")
    op = obj.get("op")
    if op not in _OPS:
        raise ServeRequestError("MALFORMED", f"unknown op {op!r} (want one of {_OPS})")
    return obj


# -- update validation (parse-before-log) ------------------------------------


def parse_values(raw_values: List[Any]) -> List[Any]:
    """Parse raw value strings into terms, CLI update-spec style.

    Identifiers resolve to constants (an update carries data, not
    program variables); ``$x`` spellings resolve to c-variables through
    the shared term grammar.
    """
    terms = []
    for raw in raw_values:
        if not isinstance(raw, str) or not raw.strip():
            raise ServeRequestError("MALFORMED", f"bad value {raw!r}: want a term string")
        try:
            stream = TokenStream(tokenize(raw), raw)
            term = parse_term(stream, resolve_ident=lambda n: Constant(n))
            if not stream.exhausted:
                tok = stream.peek()
                raise ParseError(f"trailing input {tok[1]!r}", tok[2], raw)
        except ParseError as exc:
            raise ServeRequestError("MALFORMED", f"bad value {raw!r}: {exc}") from exc
        terms.append(term)
    return terms


def parse_where(raw: Optional[str]):
    """Parse an optional condition string (update condition or query filter)."""
    if raw is None:
        return None
    if not isinstance(raw, str):
        raise ServeRequestError("MALFORMED", f"bad condition {raw!r}: want a string")
    try:
        return parse_condition(raw)
    except ParseError as exc:
        raise ServeRequestError("MALFORMED", f"bad condition {raw!r}: {exc}") from exc


def validate_update(obj: Dict[str, Any]) -> UpdateEntry:
    """Shape-check an update request into an (unsequenced) WAL entry.

    Only wire-level validation happens here (field types, term and
    condition grammar); the state layer separately checks the entry
    against the schema and the program (relation exists, arity,
    EDB-only, monotone) — both before the WAL append.
    """
    relation = obj.get("relation")
    if not isinstance(relation, str) or not relation:
        raise ServeRequestError("MALFORMED", "update needs a 'relation' string")
    raw_values = obj.get("values")
    if not isinstance(raw_values, list) or not raw_values:
        raise ServeRequestError("MALFORMED", "update needs a non-empty 'values' list")
    parse_values(raw_values)  # grammar check; terms are rebuilt at apply
    condition = obj.get("condition")
    parse_where(condition)
    txid = obj.get("txid")
    if txid is not None and not isinstance(txid, str):
        raise ServeRequestError("MALFORMED", "'txid' must be a string")
    weaken = obj.get("weaken", False)
    if not isinstance(weaken, bool):
        raise ServeRequestError("MALFORMED", "'weaken' must be a boolean")
    if weaken and condition is None:
        raise ServeRequestError("MALFORMED", "a weaken update needs a 'condition'")
    removable = obj.get("removable", False)
    if not isinstance(removable, bool):
        raise ServeRequestError("MALFORMED", "'removable' must be a boolean")
    if removable and weaken:
        raise ServeRequestError(
            "MALFORMED",
            "a weaken widens an existing fact's worlds; only a fresh insert "
            "can be 'removable' (it gets its own guard c-variable)",
        )
    return UpdateEntry(
        kind="weaken" if weaken else "insert",
        relation=relation,
        values=tuple(raw_values),
        condition=condition,
        txid=txid,
        # The guard *name* is assigned at sequencing time (it embeds the
        # WAL seq); the sentinel "" marks the entry as wanting one.
        guard="" if removable else None,
    )


def validate_withdraw(obj: Dict[str, Any]) -> UpdateEntry:
    """Shape-check a withdraw request into an (unsequenced) WAL entry.

    Withdrawal is the paper's guard-variable encoding: the request names
    the guard handle the original removable insert returned, and the
    durable entry records an *assignment* of that guard — existence of
    the guard (and whether it was already withdrawn) is the state
    layer's admission check, exactly like schema checks for inserts.
    """
    guard = obj.get("guard")
    if not isinstance(guard, str) or not guard:
        raise ServeRequestError(
            "MALFORMED",
            "withdraw needs the 'guard' handle returned by the removable insert",
        )
    txid = obj.get("txid")
    if txid is not None and not isinstance(txid, str):
        raise ServeRequestError("MALFORMED", "'txid' must be a string")
    return UpdateEntry(
        kind="withdraw",
        relation=obj.get("relation") if isinstance(obj.get("relation"), str) else "",
        values=(),
        condition=None,
        txid=txid,
        guard=guard,
    )
