"""The serve wire protocol: newline-delimited JSON requests/responses.

One request per line, one response line per request, over a plain TCP
stream.  Requests::

    {"op": "update",  "relation": "F", "values": ["p1", "A", "B"],
     "condition": "$x == 1"?, "txid": "client-key"?, "weaken": bool?}
    {"op": "query",   "relation": "R", "where": "$x == 1"?, "limit": 10?}
    {"op": "health"}
    {"op": "shutdown"}

Responses always carry ``"ok"``.  Failures mirror the CLI's exit-code
taxonomy in an ``"errno"`` field so scripts can classify them the same
way (2 = malformed request — the exit-code-2 class —, 3 = budget
exhausted, 6 = server-side failure), plus a symbolic ``"code"``::

    {"ok": false, "code": "MALFORMED", "errno": 2, "error": "..."}
    {"ok": false, "code": "OVERLOADED", "errno": 6, "retry_after": 0.05}

Degraded (but sound) answers are *successes* with a status field:
a query that exhausted its budget returns ``"status": "INCONCLUSIVE"``
with every definite row plus the rows it could not decide flagged
``"unknown": true`` — partial information, never a stall.

Validation happens *before* the write-ahead log sees an update: a
request that fails :func:`validate_update` is rejected without a log
append, so replay never encounters a malformed entry and a bad client
cannot poison the resident state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..ctable.parse import ParseError, TokenStream, parse_condition, parse_term, tokenize
from ..ctable.terms import Constant
from .wal import UpdateEntry

__all__ = [
    "MAX_LINE_BYTES",
    "ServeRequestError",
    "decode_request",
    "encode",
    "error_response",
    "validate_update",
    "parse_values",
    "parse_where",
]

#: Requests larger than this are refused outright (a malformed or
#: hostile client must not make the daemon buffer without bound).
MAX_LINE_BYTES = 1 << 20

#: errno values mirroring the CLI exit codes (see repro.cli).
ERRNO_MALFORMED = 2
ERRNO_BUDGET = 3
ERRNO_SERVE = 6

#: Symbolic code -> errno. Everything in the exit-code-2 class is a
#: request the server refused to even log; OVERLOADED/INTERNAL are
#: server-side conditions.
ERRNO_OF = {
    "MALFORMED": ERRNO_MALFORMED,
    "UNKNOWN_RELATION": ERRNO_MALFORMED,
    "ARITY": ERRNO_MALFORMED,
    "IDB_INSERT": ERRNO_MALFORMED,
    "NON_MONOTONE": ERRNO_MALFORMED,
    "BUDGET": ERRNO_BUDGET,
    "OVERLOADED": ERRNO_SERVE,
    "INTERNAL": ERRNO_SERVE,
}

_OPS = ("update", "query", "health", "shutdown")


class ServeRequestError(Exception):
    """A request the server refuses; carries the protocol error code."""

    def __init__(self, code: str, message: str):
        if code not in ERRNO_OF:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.errno = ERRNO_OF[code]

    def response(self, **extra: Any) -> Dict[str, Any]:
        return error_response(self.code, str(self), **extra)


def error_response(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ok": False,
        "code": code,
        "errno": ERRNO_OF[code],
        "error": message,
    }
    out.update(extra)
    return out


def encode(obj: Dict[str, Any]) -> bytes:
    """One response/request as a wire line (compact, key-sorted JSON)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and shape-check one request line."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeRequestError("MALFORMED", "request exceeds the line size limit")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeRequestError("MALFORMED", f"not a JSON request: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServeRequestError("MALFORMED", "request must be a JSON object")
    op = obj.get("op")
    if op not in _OPS:
        raise ServeRequestError("MALFORMED", f"unknown op {op!r} (want one of {_OPS})")
    return obj


# -- update validation (parse-before-log) ------------------------------------


def parse_values(raw_values: List[Any]) -> List[Any]:
    """Parse raw value strings into terms, CLI update-spec style.

    Identifiers resolve to constants (an update carries data, not
    program variables); ``$x`` spellings resolve to c-variables through
    the shared term grammar.
    """
    terms = []
    for raw in raw_values:
        if not isinstance(raw, str) or not raw.strip():
            raise ServeRequestError("MALFORMED", f"bad value {raw!r}: want a term string")
        try:
            stream = TokenStream(tokenize(raw), raw)
            term = parse_term(stream, resolve_ident=lambda n: Constant(n))
            if not stream.exhausted:
                tok = stream.peek()
                raise ParseError(f"trailing input {tok[1]!r}", tok[2], raw)
        except ParseError as exc:
            raise ServeRequestError("MALFORMED", f"bad value {raw!r}: {exc}") from exc
        terms.append(term)
    return terms


def parse_where(raw: Optional[str]):
    """Parse an optional condition string (update condition or query filter)."""
    if raw is None:
        return None
    if not isinstance(raw, str):
        raise ServeRequestError("MALFORMED", f"bad condition {raw!r}: want a string")
    try:
        return parse_condition(raw)
    except ParseError as exc:
        raise ServeRequestError("MALFORMED", f"bad condition {raw!r}: {exc}") from exc


def validate_update(obj: Dict[str, Any]) -> UpdateEntry:
    """Shape-check an update request into an (unsequenced) WAL entry.

    Only wire-level validation happens here (field types, term and
    condition grammar); the state layer separately checks the entry
    against the schema and the program (relation exists, arity,
    EDB-only, monotone) — both before the WAL append.
    """
    relation = obj.get("relation")
    if not isinstance(relation, str) or not relation:
        raise ServeRequestError("MALFORMED", "update needs a 'relation' string")
    raw_values = obj.get("values")
    if not isinstance(raw_values, list) or not raw_values:
        raise ServeRequestError("MALFORMED", "update needs a non-empty 'values' list")
    parse_values(raw_values)  # grammar check; terms are rebuilt at apply
    condition = obj.get("condition")
    parse_where(condition)
    txid = obj.get("txid")
    if txid is not None and not isinstance(txid, str):
        raise ServeRequestError("MALFORMED", "'txid' must be a string")
    weaken = obj.get("weaken", False)
    if not isinstance(weaken, bool):
        raise ServeRequestError("MALFORMED", "'weaken' must be a boolean")
    if weaken and condition is None:
        raise ServeRequestError("MALFORMED", "a weaken update needs a 'condition'")
    return UpdateEntry(
        kind="weaken" if weaken else "insert",
        relation=relation,
        values=tuple(raw_values),
        condition=condition,
        txid=txid,
    )
