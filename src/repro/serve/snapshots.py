"""Seed snapshots: the WAL's compaction target and the replica's bootstrap.

A snapshot folds "initial evaluation of (program, seed database) plus a
durable WAL prefix" into one fingerprint-stamped JSON file, so that

* **compaction** can retire the folded prefix from the log — recovery
  becomes "load newest valid snapshot, replay the WAL suffix" instead
  of "re-evaluate everything since the daemon was born";
* a **read replica** can bootstrap from the primary's state without
  replaying the primary's whole history (the same object travels over
  the wire as the ``snapshot`` protocol op).

Durability contract:

* a snapshot is written to a sibling temp file, fsync'd, then
  ``os.replace``'d to its final name ``<wal>.snap.<seq:016d>`` and the
  directory fsync'd — the final name never holds a partial file;
* WAL segments are retired (and older snapshots deleted) only *after*
  the new snapshot is durable, so a crash between the two leaves a
  snapshot at seq S plus a log still containing entries ``<= S`` —
  recovery replays only the suffix ``> S`` and the overlap is harmless;
* on load, candidates are tried newest-first and anything torn,
  foreign-magic, or JSON-invalid **falls back to the previous one**
  (a *fingerprint* mismatch on an otherwise valid snapshot is a hard
  :class:`~repro.robustness.errors.CheckpointError`, exactly like the
  WAL header check — never a silent splice of a different workload).

The payload captures the resident state *byte-exactly*: EDB and IDB
tables in ctable-interchange encoding with row order preserved, the
domain map (including guard-variable domains), the guard registry and
its withdrawal assignments, and the txid→seq dedup map — so a state
restored from snapshot + suffix replay answers queries byte-identical
to one that replayed the full log from the seed.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..ctable.io import database_to_obj, domains_to_obj
from ..robustness.errors import CheckpointError
from ..robustness.checkpoint import fsync_dir

__all__ = [
    "SNAPSHOT_MAGIC",
    "snapshot_path",
    "list_snapshots",
    "build_snapshot_obj",
    "write_snapshot",
    "load_latest_snapshot",
    "retire_snapshots",
]

SNAPSHOT_MAGIC = "faure-seed-snapshot-v1"

_SNAP_RE = re.compile(r"\.snap\.(\d{16})$")


def snapshot_path(wal_path: str, seq: int) -> str:
    """The canonical file name of the snapshot folding seqs ``1..seq``."""
    return f"{wal_path}.snap.{seq:016d}"


def list_snapshots(wal_path: str) -> List[Tuple[int, str]]:
    """Existing snapshot files for this WAL, newest (highest seq) first."""
    directory = os.path.dirname(os.path.abspath(wal_path)) or "."
    base = os.path.basename(wal_path)
    found = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        if not name.startswith(base + ".snap."):
            continue
        match = _SNAP_RE.search(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def build_snapshot_obj(
    fingerprint: str,
    seq: int,
    program_text: str,
    database_text: str,
    evaluator,
    domains,
    guards: Dict[str, Dict[str, Any]],
    txids: Dict[str, int],
) -> Dict[str, Any]:
    """Serialize the resident state as of ``seq`` (caller holds the lock).

    ``program_text``/``database_text`` ride along so a replica (or an
    operator) can reconstruct the workload — and its fingerprint — from
    the snapshot alone, with the primary unreachable.
    """
    edb_tables = database_to_obj(evaluator.database)["tables"]
    edb_names = {t["name"] for t in edb_tables}
    idb = [
        t
        for t in database_to_obj(evaluator.combined)["tables"]
        if t["name"] not in edb_names
    ]
    return {
        "magic": SNAPSHOT_MAGIC,
        "fingerprint": fingerprint,
        "seq": seq,
        "program": program_text,
        "database": database_text,
        "domains": domains_to_obj(domains)["domains"],
        "guards": {name: dict(info) for name, info in guards.items()},
        "txids": dict(txids),
        "edb": edb_tables,
        "idb": idb,
    }


def write_snapshot(wal_path: str, obj: Dict[str, Any]) -> str:
    """Durably write ``obj`` as the snapshot for its ``seq``; return path.

    write-new → fsync → atomic rename → fsync dir.  The final name only
    ever names a complete file; retiring anything (older snapshots, WAL
    segments) is the *caller's* job and must happen after this returns.
    """
    final = snapshot_path(wal_path, int(obj["seq"]))
    directory = os.path.dirname(os.path.abspath(final)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(wal_path) + ".snaptmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(obj, handle, separators=(",", ":"), sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise
    fsync_dir(final)
    return final


def _validate(obj: Any, fingerprint: str, path: str) -> Dict[str, Any]:
    if not isinstance(obj, dict) or obj.get("magic") != SNAPSHOT_MAGIC:
        raise ValueError("not a seed snapshot")
    for key in (
        "fingerprint",
        "seq",
        "program",
        "database",
        "domains",
        "guards",
        "txids",
        "edb",
        "idb",
    ):
        if key not in obj:
            raise ValueError(f"snapshot missing {key!r}")
    if obj["fingerprint"] != fingerprint:
        raise CheckpointError(
            f"{path}: snapshot is for a different workload "
            f"(fingerprint {obj['fingerprint'][:12]}… != {fingerprint[:12]}…); "
            "refusing to splice foreign state — delete the file to start over"
        )
    return obj


def load_latest_snapshot(
    wal_path: str, fingerprint: str
) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Newest *valid* snapshot (object, path), or ``(None, None)``.

    Torn or malformed candidates fall back to the next-older one;
    a valid snapshot with a foreign fingerprint is a hard error.
    """
    for _seq, path in list_snapshots(wal_path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                obj = json.load(handle)
        except (OSError, ValueError):
            continue  # torn/partial: fall back to the previous snapshot
        try:
            return _validate(obj, fingerprint, path), path
        except ValueError:
            continue
    return None, None


def retire_snapshots(wal_path: str, keep_seq: int) -> int:
    """Delete snapshots older than ``keep_seq``; returns how many."""
    removed = 0
    for seq, path in list_snapshots(wal_path):
        if seq < keep_seq:
            try:
                os.remove(path)
                removed += 1
            except OSError:  # pragma: no cover - already gone
                pass
    return removed
