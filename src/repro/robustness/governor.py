"""The resource governor: deadlines, budgets, and size ceilings.

Both solver backends (exact enumeration and the DPLL(T) driver) are
worst-case exponential, so one pathological condition can wedge an
entire query.  The :class:`Governor` bounds that risk with three knobs:

* a **per-query deadline** (wall-clock seconds, armed by :meth:`start`);
* a **solver-call budget** (number of decision-procedure invocations);
* a **per-call step budget** with per-stage sub-budgets (cooperative
  ticks inside the backends), plus a **condition-size ceiling** that
  refuses oversized conditions before exponential work starts.

Exhaustion raises :class:`~repro.robustness.errors.BudgetExceeded` (or
:class:`ConditionTooLarge`).  What happens next is the *caller's*
policy, recorded here as ``on_budget``:

* ``"degrade"`` (default) — the solver converts the failure into an
  ``UNKNOWN`` verdict and each call-site falls back to its sound
  default (keep the tuple, skip the merge, report inconclusive);
* ``"fail"`` — the exception propagates, for callers that prefer a
  crisp error over a partial answer.

A governor also carries the optional
:class:`~repro.robustness.faultinject.FaultInjector`, so every fault a
test wants to inject flows through the same chokepoint real exhaustion
does, and an :class:`GovernorEvents` ledger that the stats layer
surfaces (budget hits, fallbacks, kept-unknown tuples).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .errors import BudgetExceeded, ConditionTooLarge

__all__ = ["Governor", "GovernorEvents", "WorkTicket", "ON_BUDGET_MODES"]

#: Accepted degradation policies.
ON_BUDGET_MODES = ("degrade", "fail")

#: How many ticks pass between wall-clock deadline checks.  Checking the
#: clock on every tick would dominate the backends' inner loops.
_DEADLINE_CHECK_MASK = 0xFF


@dataclass
class GovernorEvents:
    """Cumulative ledger of governance events for one governor."""

    solver_calls: int = 0
    budget_hits: int = 0  # deadline, call-budget, or step-budget exhaustion
    condition_rejections: int = 0  # oversized conditions refused
    fallbacks: int = 0  # enumeration → DPLL escalations
    unknown_verdicts: int = 0  # calls degraded to UNKNOWN
    injected_faults: int = 0  # faults fired by the injector
    retries: int = 0  # retry-with-larger-budget escalations
    # Supervised-execution failure accounting (repro.parallel.supervisor):
    worker_crashes: int = 0  # worker processes found dead mid-task
    task_timeouts: int = 0  # tasks killed for exceeding their wall-clock cap
    task_retries: int = 0  # task re-submissions after a crash/timeout
    tasks_quarantined: int = 0  # tasks re-run inline after the retry budget
    tasks_lost: int = 0  # tasks degraded/failed after the retry budget

    def reset(self) -> None:
        self.solver_calls = 0
        self.budget_hits = 0
        self.condition_rejections = 0
        self.fallbacks = 0
        self.unknown_verdicts = 0
        self.injected_faults = 0
        self.retries = 0
        self.worker_crashes = 0
        self.task_timeouts = 0
        self.task_retries = 0
        self.tasks_quarantined = 0
        self.tasks_lost = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "solver_calls": self.solver_calls,
            "budget_hits": self.budget_hits,
            "condition_rejections": self.condition_rejections,
            "fallbacks": self.fallbacks,
            "unknown_verdicts": self.unknown_verdicts,
            "injected_faults": self.injected_faults,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "task_timeouts": self.task_timeouts,
            "task_retries": self.task_retries,
            "tasks_quarantined": self.tasks_quarantined,
            "tasks_lost": self.tasks_lost,
        }


class WorkTicket:
    """Cooperative cancellation token for one solver routine.

    Backends call :meth:`tick` in their inner loops; the ticket raises
    :class:`BudgetExceeded` when its step budget runs out, and checks
    the governor's wall-clock deadline every few hundred ticks.
    """

    __slots__ = ("governor", "steps", "used")

    def __init__(self, governor: Optional["Governor"], steps: Optional[int]):
        self.governor = governor
        self.steps = steps
        self.used = 0

    def tick(self, n: int = 1) -> None:
        self.used += n
        if self.steps is not None and self.used > self.steps:
            if self.governor is not None:
                self.governor.events.budget_hits += 1
            raise BudgetExceeded(
                f"solver step budget of {self.steps} exhausted", resource="steps"
            )
        if self.governor is not None and (self.used & _DEADLINE_CHECK_MASK) == 0:
            self.governor.check_deadline()

    @property
    def remaining(self) -> Optional[int]:
        if self.steps is None:
            return None
        return max(0, self.steps - self.used)

    def sub(self, fraction: float) -> "WorkTicket":
        """A per-stage sub-ticket holding ``fraction`` of the remainder."""
        if self.steps is None:
            return WorkTicket(self.governor, None)
        return WorkTicket(self.governor, max(1, int(self.remaining * fraction)))


class Governor:
    """Per-query resource budgets threaded through the solver stack.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget per query (armed by :meth:`start`); ``None``
        disables the deadline.
    solver_call_budget:
        Maximum decision-procedure invocations per query.
    steps_per_call:
        Cooperative step budget handed to each backend invocation.
    max_condition_atoms:
        Conditions with more atoms than this are refused
        (:class:`ConditionTooLarge`) before any solving is attempted.
    on_budget:
        ``"degrade"`` (sound three-valued degradation) or ``"fail"``.
    injector:
        Optional deterministic fault injector; consulted on every
        solver call.
    clock:
        Injectable monotonic clock (tests pin it to fake time).
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        solver_call_budget: Optional[int] = None,
        steps_per_call: Optional[int] = None,
        max_condition_atoms: Optional[int] = None,
        on_budget: str = "degrade",
        injector=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if on_budget not in ON_BUDGET_MODES:
            raise ValueError(
                f"on_budget must be one of {ON_BUDGET_MODES}, got {on_budget!r}"
            )
        self.deadline_seconds = deadline_seconds
        self.solver_call_budget = solver_call_budget
        self.steps_per_call = steps_per_call
        self.max_condition_atoms = max_condition_atoms
        self.on_budget = on_budget
        self.injector = injector
        self.clock = clock
        self.events = GovernorEvents()
        self._deadline_at: Optional[float] = None
        self._calls_used = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def degrade(self) -> bool:
        return self.on_budget == "degrade"

    def start(self) -> "Governor":
        """Arm the per-query deadline and reset per-query counters."""
        self._calls_used = 0
        if self.deadline_seconds is not None:
            self._deadline_at = self.clock() + self.deadline_seconds
        else:
            self._deadline_at = None
        return self

    def ensure_started(self) -> None:
        """Arm the deadline if no query has armed it yet (idempotent)."""
        if self._deadline_at is None and self.deadline_seconds is not None:
            self.start()

    def scale(self, factor: float) -> "Governor":
        """Multiply every configured budget by ``factor`` (for retries).

        Used by the verifier's retry-with-larger-budget escalation; the
        caller re-arms with :meth:`start` afterwards.
        """
        if self.deadline_seconds is not None:
            self.deadline_seconds *= factor
        if self.solver_call_budget is not None:
            self.solver_call_budget = int(self.solver_call_budget * factor)
        if self.steps_per_call is not None:
            self.steps_per_call = int(self.steps_per_call * factor)
        self.events.retries += 1
        return self

    def remaining_calls(self) -> Optional[int]:
        """Solver calls left in the budget (``None`` when unbounded)."""
        if self.solver_call_budget is None:
            return None
        return max(0, self.solver_call_budget - self._calls_used)

    def absorb(self, events: Dict[str, int], calls: int = 0) -> None:
        """Fold a worker governor's event ledger into this one.

        ``calls`` additionally advances the call-budget counter, so a
        parallel phase consumes the same budget the serial path would
        have; the *next* call past an exhausted budget raises, exactly
        as in the serial path.
        """
        for key, value in events.items():
            setattr(self.events, key, getattr(self.events, key) + value)
        self._calls_used += calls

    # -- checks ------------------------------------------------------------

    def remaining_seconds(self) -> Optional[float]:
        if self._deadline_at is None:
            return None
        return self._deadline_at - self.clock()

    def check_deadline(self) -> None:
        """Raise :class:`BudgetExceeded` once the deadline has passed."""
        if self._deadline_at is not None and self.clock() > self._deadline_at:
            self.events.budget_hits += 1
            raise BudgetExceeded(
                f"query deadline of {self.deadline_seconds}s exceeded",
                resource="deadline",
            )

    def admit(self, condition) -> None:
        """Refuse conditions over the size ceiling before solving them."""
        if self.max_condition_atoms is None:
            return
        atoms = sum(1 for _ in condition.atoms())
        if atoms > self.max_condition_atoms:
            self.events.condition_rejections += 1
            raise ConditionTooLarge(
                f"condition has {atoms} atoms, over the ceiling of "
                f"{self.max_condition_atoms}",
                atoms=atoms,
                limit=self.max_condition_atoms,
            )

    def begin_solver_call(self, condition=None) -> WorkTicket:
        """Admit one decision-procedure invocation.

        Counts the call against the budget, fires any scheduled injected
        fault, checks the deadline and (when given) the condition size,
        and returns the :class:`WorkTicket` the backend must tick.
        """
        self._calls_used += 1
        self.events.solver_calls += 1
        if self.injector is not None:
            self.injector.on_solver_call(self)
        if (
            self.solver_call_budget is not None
            and self._calls_used > self.solver_call_budget
        ):
            self.events.budget_hits += 1
            raise BudgetExceeded(
                f"solver-call budget of {self.solver_call_budget} exhausted",
                resource="solver-calls",
            )
        self.check_deadline()
        if condition is not None:
            self.admit(condition)
        return WorkTicket(self, self.steps_per_call)
