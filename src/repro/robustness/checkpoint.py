"""Checkpoint/resume: a durable journal of completed work units.

Long analyses (large RIBs, wide verification suites) die for boring
reasons — OOM killers, preempted machines, ^C.  Restarting from zero
repeats hours of NP-complete solving whose answers were already known.
A :class:`CheckpointJournal` makes completed *units* durable as they
finish, so a killed run resumes by replaying the journal and re-running
**zero** completed units:

* **definite memo verdicts** — every ``put`` into the shared
  :class:`~repro.solver.memo.MemoTable` streams to the journal through
  the table's observer hook (UNKNOWN never enters the memo, so the
  journal inherits the governor's never-cache-UNKNOWN contract);
* **pattern-query results** — each per-prefix failure-pattern c-table
  plus its :class:`~repro.engine.stats.EvalStats`;
* **computed reachability tables** and **per-target verify verdicts**.

Format: line 1 is a header ``{"magic", "fingerprint"}``; each further
line is one JSON record ``{"kind", "key", "payload"}``, appended with
``flush()`` + ``fsync()`` so a record is either durable or absent.  A
torn final line (the process died mid-append) is tolerated and
discarded on load; everything before it replays.  The fingerprint is a
digest of the run's *inputs* (database text, program text, flags that
change semantics) — resuming against different inputs is a hard
:class:`~repro.robustness.errors.CheckpointError`, never a silent
splice of foreign results.

Determinism: replayed units return the exact objects the original run
computed (c-tables and verdicts round-trip through
:mod:`repro.ctable.io`), and memo verdicts are keyed by canonical form
with the domain signature *recomputed* against the live
:class:`~repro.solver.domains.DomainMap` — so a resumed run's output is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, Optional, Tuple

from typing import TYPE_CHECKING

from .errors import CheckpointError

if TYPE_CHECKING:  # runtime imports stay lazy: ctable.io imports the
    # solver package, which imports robustness — importing it here would
    # make robustness/__init__ circular.
    from ..ctable.table import CTable
    from ..engine.stats import EvalStats

__all__ = [
    "CheckpointJournal",
    "fingerprint_of",
    "fsync_dir",
    "rewrite_journal",
    "digest_key",
    "table_to_obj",
    "table_from_obj",
    "stats_to_obj",
    "stats_from_obj",
    "verdict_to_obj",
    "verdict_from_obj",
]

MAGIC = "faure-checkpoint-v1"


def fingerprint_of(*parts: Optional[str]) -> str:
    """Digest of the run's semantic inputs (order- and None-sensitive)."""
    h = hashlib.sha256()
    for part in parts:
        marker = b"\x00none\x00" if part is None else part.encode("utf-8")
        h.update(len(marker).to_bytes(8, "big"))
        h.update(marker)
    return h.hexdigest()


def fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` (make a rename durable)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def rewrite_journal(
    path: str, fingerprint: str, records: Iterable[Tuple[str, Any, Any]]
) -> "CheckpointJournal":
    """Atomically replace the journal at ``path`` with the given records.

    Used by serve-mode WAL compaction to retire a long log: the new
    journal is written (and fsync'd, record by record) to a sibling
    temp file, then ``os.replace``'d over the old one and the directory
    fsync'd — a crash at any point leaves either the complete old log
    or the complete new one, never a splice.  Returns a freshly opened
    journal on the final path.
    """
    tmp = path + ".rewrite"
    if os.path.exists(tmp):
        os.remove(tmp)
    staging = CheckpointJournal.open(tmp, fingerprint)
    try:
        for kind, key, payload in records:
            staging.record(kind, key, payload)
    finally:
        staging.close()
    os.replace(tmp, path)
    fsync_dir(path)
    return CheckpointJournal.open(path, fingerprint)


def digest_key(obj: Any) -> str:
    """Stable digest of a JSON-able key object (record identity)."""
    encoded = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


# -- payload serializers (reusing the ctable interchange encoding) -----------


def table_to_obj(table: "CTable") -> Dict[str, Any]:
    from ..ctable.condition import TrueCond
    from ..ctable.io import condition_to_obj, term_to_obj

    rows = []
    for tup in table:
        row: Dict[str, Any] = {"values": [term_to_obj(v) for v in tup.values]}
        if not isinstance(tup.condition, TrueCond):
            row["condition"] = condition_to_obj(tup.condition)
        rows.append(row)
    return {"name": table.name, "schema": list(table.schema), "rows": rows}


def table_from_obj(obj: Dict[str, Any]) -> "CTable":
    from ..ctable.io import condition_from_obj, term_from_obj
    from ..ctable.table import CTable

    table = CTable(obj["name"], obj["schema"])
    for row in obj.get("rows", []):
        values = [term_from_obj(v) for v in row["values"]]
        if "condition" in row:
            table.add(values, condition_from_obj(row["condition"]))
        else:
            table.add(values)
    return table


def stats_to_obj(stats: "EvalStats") -> Dict[str, Any]:
    return {
        "sql_seconds": stats.sql_seconds,
        "solver_seconds": stats.solver_seconds,
        "tuples_generated": stats.tuples_generated,
        "tuples_pruned": stats.tuples_pruned,
        "iterations": stats.iterations,
        "unknown_kept": stats.unknown_kept,
        "partial_results": stats.partial_results,
        "extra": dict(stats.extra),
    }


def stats_from_obj(obj: Dict[str, Any]) -> "EvalStats":
    from ..engine.stats import EvalStats

    stats = EvalStats(
        sql_seconds=obj["sql_seconds"],
        solver_seconds=obj["solver_seconds"],
        tuples_generated=obj["tuples_generated"],
        tuples_pruned=obj["tuples_pruned"],
        iterations=obj["iterations"],
        unknown_kept=obj["unknown_kept"],
        partial_results=obj["partial_results"],
    )
    stats.extra.update(obj.get("extra", {}))
    return stats


def verdict_to_obj(verdict) -> Dict[str, Any]:
    from ..ctable.io import condition_to_obj

    return {
        "status": verdict.status.name,
        "decided_by": verdict.decided_by.name if verdict.decided_by else None,
        "violation_condition": condition_to_obj(verdict.violation_condition),
        "trail": list(verdict.trail),
        "memo_stats": dict(verdict.memo_stats),
    }


def verdict_from_obj(obj: Dict[str, Any]):
    from ..ctable.io import condition_from_obj
    from ..verify.constraints import Status
    from ..verify.verifier import Level, Verdict

    return Verdict(
        status=Status[obj["status"]],
        decided_by=Level[obj["decided_by"]] if obj["decided_by"] else None,
        violation_condition=condition_from_obj(obj["violation_condition"]),
        trail=list(obj["trail"]),
        memo_stats=dict(obj["memo_stats"]),
    )


def _memo_key_to_obj(key: Tuple) -> Optional[Dict[str, Any]]:
    """Serialize a memo key; None for shapes the journal does not keep."""
    from ..ctable.io import condition_to_obj

    try:
        if key[0] == "sat":
            return {"op": "sat", "cond": condition_to_obj(key[1])}
        if key[0] == "implies":
            return {
                "op": "implies",
                "a": condition_to_obj(key[1]),
                "b": condition_to_obj(key[2]),
            }
    except TypeError:
        return None  # a condition outside the interchange grammar
    return None


class CheckpointJournal:
    """Append-only journal of completed work units for one workload.

    Use :meth:`open` — it validates or writes the header, replays every
    durable record into memory, and leaves the file open for appends.
    ``record`` is idempotent per ``(kind, key)``: replayed units are
    never re-appended, so resume → resume → … keeps the journal
    minimal.
    """

    def __init__(self, path: str, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint
        self._seen: Dict[Tuple[str, str], Any] = {}
        self._file = None
        #: Units found durable on open (what resume saved).
        self.replayed = 0
        #: Units appended by this process.
        self.recorded = 0
        self._appended = 0  # chaos accounting, counts only this process

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, path: str, fingerprint: str) -> "CheckpointJournal":
        journal = cls(path, fingerprint)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            journal._load()
            journal._file = open(path, "a", encoding="utf-8")
        else:
            journal._file = open(path, "w", encoding="utf-8")
            journal._append({"magic": MAGIC, "fingerprint": fingerprint})
        return journal

    def _load(self) -> None:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        try:
            header = json.loads(lines[0])
            magic, fingerprint = header["magic"], header["fingerprint"]
        except (ValueError, KeyError, IndexError) as exc:
            raise CheckpointError(
                f"{self.path}: not a checkpoint journal (bad header)"
            ) from exc
        if magic != MAGIC:
            raise CheckpointError(f"{self.path}: unsupported journal format {magic!r}")
        if fingerprint != self.fingerprint:
            raise CheckpointError(
                f"{self.path}: checkpoint is for a different workload "
                f"(fingerprint {fingerprint[:12]}… != {self.fingerprint[:12]}…); "
                "refusing to splice foreign results — delete the file to start over"
            )
        durable = len(lines[0]) + 1  # bytes of the valid prefix, incl. newline
        for line in lines[1:]:
            if not line:
                continue
            try:
                record = json.loads(line)
                kind, key, payload = record["kind"], record["key"], record["payload"]
            except (ValueError, KeyError):
                break  # torn tail: the process died mid-append; discard
            durable += len(line) + 1
            self._seen[(kind, key)] = payload
            self.replayed += 1
        if durable < len(raw):
            # Drop the torn tail so appends start on a fresh line.
            with open(self.path, "r+b") as handle:
                handle.truncate(durable)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- record / query ------------------------------------------------------

    def _append(self, obj: Dict[str, Any]) -> None:
        self._file.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def _maybe_die(self) -> None:
        """Chaos hook: hard-exit after N appends (``die-after-records``)."""
        from ..parallel.supervisor import _sentinel_fires, chaos_directives

        for directive in chaos_directives():
            if directive[0] != "die-after-records":
                continue
            if self._appended >= int(directive[1]) and _sentinel_fires(directive[2]):
                os._exit(1)

    def record(self, kind: str, key: Any, payload: Any) -> bool:
        """Durably append one completed unit (idempotent per kind+key).

        Returns ``True`` when the unit was appended, ``False`` when it
        was already durable (so callers — e.g. the serve-mode WAL — can
        tell a fresh write from a replayed duplicate).
        """
        digest = key if isinstance(key, str) else digest_key(key)
        if (kind, digest) in self._seen:
            return False
        self._seen[(kind, digest)] = payload
        self._append({"kind": kind, "key": digest, "payload": payload})
        self.recorded += 1
        self._appended += 1
        self._maybe_die()
        return True

    def get(self, kind: str, key: Any) -> Optional[Any]:
        """The payload of a completed unit, or ``None`` if not durable."""
        digest = key if isinstance(key, str) else digest_key(key)
        return self._seen.get((kind, digest))

    def entries(self, kind: str) -> Iterable[Tuple[str, Any]]:
        """Durable units of one kind, in append order.

        Append order is load order: ``_seen`` is an insertion-ordered
        dict rebuilt line-by-line on :meth:`open`, so consumers that
        need a total order (the serve WAL replays updates by sequence
        number) observe records exactly as they were made durable.
        """
        for (record_kind, digest), payload in self._seen.items():
            if record_kind == kind:
                yield digest, payload

    def count(self, kind: str) -> int:
        """Number of durable units of one kind."""
        return sum(1 for record_kind, _ in self._seen if record_kind == kind)

    # -- the memo bridge -----------------------------------------------------

    def replay_memo(self, memo, domains) -> int:
        """Seed a live memo table from the journal's definite verdicts.

        Keys are rebuilt against the *live* ``domains`` (the signature is
        never persisted), so a verdict only applies when the resumed
        run's domains make it the same question.  Call before
        :meth:`attach`, so replay does not re-journal what it reads.
        """
        from ..ctable.io import condition_from_obj

        replayed = 0
        for _, payload in self.entries("memo"):
            key_obj, value = payload["key"], payload["value"]
            if key_obj["op"] == "sat":
                cond = condition_from_obj(key_obj["cond"])
                key = ("sat", cond, memo.domain_signature(domains, cond.cvariables()))
            else:
                a = condition_from_obj(key_obj["a"])
                b = condition_from_obj(key_obj["b"])
                cvars = a.cvariables() | b.cvariables()
                key = ("implies", a, b, memo.domain_signature(domains, cvars))
            memo.put(key, bool(value))
            replayed += 1
        return replayed

    def attach(self, memo, domains) -> int:
        """Replay journaled verdicts into ``memo``, then observe it.

        Returns the number of replayed memo entries.  After this call
        every *new* definite verdict the run computes streams to the
        journal as it lands in the memo.  Subscription goes through
        :meth:`MemoTable.add_observer`, so the journal coexists with the
        cross-worker shared verdict store's writer.
        """
        replayed = self.replay_memo(memo, domains)

        def observe(key: Tuple, value: bool) -> None:
            key_obj = _memo_key_to_obj(key)
            if key_obj is not None:
                self.record("memo", key_obj, {"key": key_obj, "value": value})

        memo.add_observer(observe)
        return replayed
