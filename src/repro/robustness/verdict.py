"""Three-valued solver verdicts.

Under resource governance a decision procedure has three honest answers,
not two: ``SAT``, ``UNSAT``, or ``UNKNOWN`` ("the budget ran out before
I could tell").  :class:`Verdict` is the satisfiability lattice;
:class:`Trivalent` is the matching lattice for derived boolean questions
(implication, validity), where ``UNKNOWN`` propagates Kleene-style.

The key soundness fact exploited by every governed call-site: for a
c-table, *pruning is an optimisation, never a correctness requirement*.
A tuple whose condition is ``UNKNOWN`` can be kept — an unsatisfiable
condition contributes no rows to any possible world, so keeping it
leaves ``rep(T)`` unchanged.  Degradation therefore trades
simplification, never information.
"""

from __future__ import annotations

import enum

from .errors import BudgetExceeded

__all__ = ["Verdict", "Trivalent"]


class Verdict(enum.Enum):
    """Three-valued satisfiability verdict."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    @property
    def is_definite(self) -> bool:
        return self is not Verdict.UNKNOWN

    @staticmethod
    def from_bool(value: bool) -> "Verdict":
        return Verdict.SAT if value else Verdict.UNSAT

    def as_bool(self) -> bool:
        """Collapse to a boolean; a definite answer is required."""
        if self is Verdict.SAT:
            return True
        if self is Verdict.UNSAT:
            return False
        raise BudgetExceeded(
            "no definite satisfiability verdict available (budget exhausted)",
            resource="verdict",
        )

    def __str__(self) -> str:
        return self.value


class Trivalent(enum.Enum):
    """Kleene three-valued answer to a boolean question."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    @property
    def is_definite(self) -> bool:
        return self is not Trivalent.UNKNOWN

    @staticmethod
    def from_bool(value: bool) -> "Trivalent":
        return Trivalent.TRUE if value else Trivalent.FALSE

    def as_bool(self) -> bool:
        if self is Trivalent.TRUE:
            return True
        if self is Trivalent.FALSE:
            return False
        raise BudgetExceeded(
            "no definite answer available (budget exhausted)", resource="verdict"
        )

    def __str__(self) -> str:
        return self.value
