"""Resource governance and fault tolerance for the fauré stack.

Every fauré query ends in a solver pass, and both solver backends are
worst-case exponential — without bounds, one pathological condition
hangs the pipeline.  This package supplies the bounds and the sound way
out:

* :mod:`~repro.robustness.errors` — the structured failure hierarchy
  (``FaureError`` → ``BudgetExceeded`` / ``SolverFailure`` /
  ``ConditionTooLarge``);
* :mod:`~repro.robustness.verdict` — three-valued verdicts
  (``SAT``/``UNSAT``/``UNKNOWN``) and the Kleene booleans they induce;
* :mod:`~repro.robustness.governor` — per-query deadlines, solver-call
  budgets, step budgets, and condition-size ceilings, with a
  degrade-vs-fail policy;
* :mod:`~repro.robustness.faultinject` — deterministic injection of
  timeouts, failures, and oversized conditions, so every degradation
  path is provably exercised;
* :mod:`~repro.robustness.checkpoint` — a durable journal of completed
  work units (definite memo verdicts, pattern-query results, verify
  verdicts) so a killed run resumes byte-for-byte, re-running zero
  completed units.

Soundness contract (see ``docs/ROBUSTNESS.md``): on ``UNKNOWN`` every
call-site keeps the tuple / skips the merge / reports inconclusive, so
the possible-worlds semantics of every result is preserved — degraded
output is merely *less simplified*, never wrong.
"""

from .checkpoint import CheckpointJournal, fingerprint_of
from .errors import (
    BudgetExceeded,
    CheckpointError,
    ConditionTooLarge,
    FaureError,
    SolverFailure,
    WorkerLost,
)
from .faultinject import FaultInjector, FaultPlan
from .governor import Governor, GovernorEvents, ON_BUDGET_MODES, WorkTicket
from .verdict import Trivalent, Verdict

__all__ = [
    "FaureError",
    "BudgetExceeded",
    "SolverFailure",
    "ConditionTooLarge",
    "WorkerLost",
    "CheckpointError",
    "CheckpointJournal",
    "fingerprint_of",
    "Verdict",
    "Trivalent",
    "Governor",
    "GovernorEvents",
    "WorkTicket",
    "ON_BUDGET_MODES",
    "FaultInjector",
    "FaultPlan",
]
