"""Structured exception hierarchy for resource governance.

Every failure the governance layer can signal derives from
:class:`FaureError`, so callers (and the CLI) can distinguish *our*
controlled degradation signals from genuine programming errors:

* :class:`BudgetExceeded` — a per-query deadline, solver-call budget, or
  per-call step budget ran out before a definite verdict was reached;
* :class:`SolverFailure` — a solver routine failed outright (in practice
  this arises from fault injection or a backend rejecting a condition);
* :class:`ConditionTooLarge` — a condition exceeded the configured size
  ceiling and was refused before any exponential work started.

All three are *safe to degrade on*: a c-table tuple whose condition
cannot be decided can be soundly kept (the table stays loss-less, merely
less simplified), which is what every governed call-site does in
``degrade`` mode.
"""

from __future__ import annotations

__all__ = [
    "FaureError",
    "BudgetExceeded",
    "SolverFailure",
    "ConditionTooLarge",
    "WorkerLost",
    "CheckpointError",
]


class FaureError(Exception):
    """Base class of all controlled failures raised by this package."""


class BudgetExceeded(FaureError):
    """A deadline or work budget ran out before the answer was found.

    ``resource`` names what ran out (``"deadline"``, ``"solver-calls"``,
    ``"steps"``, ...) so telemetry and tests can tell the cases apart.
    """

    def __init__(self, message: str, resource: str = "budget"):
        super().__init__(message)
        self.resource = resource


class SolverFailure(FaureError):
    """A solver routine failed without producing a verdict."""


class ConditionTooLarge(FaureError):
    """A condition exceeded the configured size ceiling.

    ``atoms`` / ``limit`` carry the measured size and the ceiling when
    known (fault-injected instances may leave them at ``None``).
    """

    def __init__(self, message: str, atoms: int = None, limit: int = None):
        super().__init__(message)
        self.atoms = atoms
        self.limit = limit


class WorkerLost(FaureError):
    """A worker process died and its task could not be recovered.

    Raised by the supervised executor when a task exhausts its retry
    budget and the caller's worker-loss policy forbids both inline
    quarantine and sound degradation.  ``task_index`` names the task (by
    submission order) when known.  Unlike the three errors above this is
    *not* always safe to degrade on — whether a lost task can be
    absorbed depends on the call-site (prune: keep-as-UNKNOWN; verify:
    INCONCLUSIVE; pattern fan-out: no sound partial answer exists, so
    the loss propagates).
    """

    def __init__(self, message: str, task_index: int = None):
        super().__init__(message)
        self.task_index = task_index


class CheckpointError(FaureError):
    """A checkpoint journal cannot be used for this run.

    Raised when a journal's header is malformed or its workload
    fingerprint does not match the current inputs — resuming from a
    checkpoint of a *different* workload would silently splice foreign
    results into this run, so the mismatch is a hard error rather than
    a warning.
    """
