"""Deterministic fault injection for the solver stack.

The degradation paths built into the governor are only trustworthy if
they are *exercised*: a timeout that never fires in CI is a timeout that
breaks in production.  :class:`FaultInjector` deterministically injects
the three failure classes the governor can produce —

* **timeouts** (:class:`BudgetExceeded`), as if a budget ran out
  mid-call;
* **spurious failures** (:class:`SolverFailure`), as if a backend died;
* **oversized conditions** (:class:`ConditionTooLarge`), as if a
  condition blew past the size ceiling —

on a fixed every-Nth-call schedule, so a test run is exactly
reproducible: the same plan over the same query injects the same faults
at the same call indices.  Injection flows through
:meth:`Governor.begin_solver_call`, the same chokepoint real exhaustion
uses, so an injected fault takes precisely the degradation path a real
one would.

The soundness property the test-suite proves with this harness: for any
injection plan, ``rep(degraded c-table) = rep(exact c-table)`` — kept
UNKNOWN tuples carry unsatisfiable or redundant conditions that add no
rows to any possible world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .errors import BudgetExceeded, ConditionTooLarge, SolverFailure

__all__ = ["FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """Every-Nth-call schedule for each fault class.

    ``timeout_every=3`` injects a timeout on every third solver call
    (1/3 ≈ 33% of calls).  ``start_after`` lets the first N calls
    through untouched, which keeps query *setup* (domain probing,
    trivial prunes) deterministic while stressing the main workload.
    When two classes land on the same call, precedence is timeout >
    failure > oversize; at most one fault fires per call.
    """

    timeout_every: Optional[int] = None
    failure_every: Optional[int] = None
    oversize_every: Optional[int] = None
    start_after: int = 0

    def __post_init__(self):
        for name in ("timeout_every", "failure_every", "oversize_every"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def enabled(self) -> bool:
        return any(
            v is not None
            for v in (self.timeout_every, self.failure_every, self.oversize_every)
        )


class FaultInjector:
    """Counts solver calls and fires the plan's faults deterministically."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.calls = 0
        self.injected: Dict[str, int] = {"timeout": 0, "failure": 0, "oversize": 0}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset(self) -> None:
        self.calls = 0
        for key in self.injected:
            self.injected[key] = 0

    def _fire(self, kind: str, governor) -> None:
        self.injected[kind] += 1
        if governor is not None:
            governor.events.injected_faults += 1

    def on_solver_call(self, governor=None) -> None:
        """Hook invoked by :meth:`Governor.begin_solver_call`."""
        self.calls += 1
        n = self.calls - self.plan.start_after
        if n <= 0:
            return
        if self.plan.timeout_every is not None and n % self.plan.timeout_every == 0:
            self._fire("timeout", governor)
            raise BudgetExceeded(
                f"injected solver timeout (call #{self.calls})", resource="injected"
            )
        if self.plan.failure_every is not None and n % self.plan.failure_every == 0:
            self._fire("failure", governor)
            raise SolverFailure(f"injected solver failure (call #{self.calls})")
        if self.plan.oversize_every is not None and n % self.plan.oversize_every == 0:
            self._fire("oversize", governor)
            raise ConditionTooLarge(
                f"injected oversized condition (call #{self.calls})"
            )
