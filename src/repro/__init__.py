"""Fauré: a partial approach to network analysis — full reproduction.

Reproduces Lan, Gui & Wang, *Fauré: A Partial Approach to Network
Analysis* (HotNets '21): c-tables for loss-less modeling of uncertain
networks, the fauré-log datalog extension that queries them, and the
relative-complete verification ladder (constraint subsumption via
containment-to-evaluation reduction, plus update rewriting).

Package map
-----------
``repro.ctable``
    The c-table data model: c-domain terms, conditions, tables,
    possible-worlds semantics.
``repro.solver``
    Decision procedures over conditions (the Z3 substitute).
``repro.engine``
    In-memory relational engine with the paper's three-phase pipeline
    and a mini-SQL front-end (the PostgreSQL substitute).
``repro.faurelog``
    The fauré-log language: AST, parser, c-valuation, stratified
    fixpoint evaluation, containment, update rewrite.
``repro.network``
    Network substrate: topologies, fast-reroute configs, per-prefix
    forwarding, the enterprise scenario.
``repro.verify``
    Relative-complete verification and the complete-approach baseline.
``repro.workloads``
    Synthetic RIBs, failure-pattern families, scenario generators.

Quickstart
----------
>>> from repro import paper_figure1, ReachabilityAnalyzer, ConditionSolver
>>> config = paper_figure1()
>>> solver = ConditionSolver(config.domain_map())
>>> analyzer = ReachabilityAnalyzer(config.database(), solver)
>>> table = analyzer.compute()   # all-pairs reachability, all failure worlds
"""

from .ctable import (
    CTable,
    CTuple,
    Condition,
    Constant,
    CVariable,
    Database,
    FALSE,
    LinearAtom,
    TRUE,
    Variable,
    conjoin,
    cvar,
    disjoin,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    var,
)
from .engine import EvalStats, SqlEngine
from .faurelog import (
    Atom,
    Deletion,
    FaureEvaluator,
    Insertion,
    Literal,
    Program,
    Rule,
    apply_update,
    contains,
    evaluate,
    parse_program,
    rewrite_constraint,
)
from .network import (
    EnterpriseModel,
    FrrConfig,
    PrefixRoutes,
    ReachabilityAnalyzer,
    Topology,
    compile_forwarding,
    paper_figure1,
)
from .solver import BOOL_DOMAIN, ConditionSolver, DomainMap, FiniteDomain, IntRange, Unbounded
from .verify import (
    Constraint,
    RelativeCompleteVerifier,
    Status,
    check_subsumption,
    check_with_update,
    sweep_constraint,
)
from .workloads import RibConfig, generate_rib, parse_rib

__version__ = "1.0.0"

__all__ = [
    "CTable",
    "CTuple",
    "Condition",
    "Constant",
    "CVariable",
    "Database",
    "FALSE",
    "LinearAtom",
    "TRUE",
    "Variable",
    "conjoin",
    "cvar",
    "disjoin",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "var",
    "EvalStats",
    "SqlEngine",
    "Atom",
    "Deletion",
    "FaureEvaluator",
    "Insertion",
    "Literal",
    "Program",
    "Rule",
    "apply_update",
    "contains",
    "evaluate",
    "parse_program",
    "rewrite_constraint",
    "EnterpriseModel",
    "FrrConfig",
    "PrefixRoutes",
    "ReachabilityAnalyzer",
    "Topology",
    "compile_forwarding",
    "paper_figure1",
    "BOOL_DOMAIN",
    "ConditionSolver",
    "DomainMap",
    "FiniteDomain",
    "IntRange",
    "Unbounded",
    "Constraint",
    "RelativeCompleteVerifier",
    "Status",
    "check_subsumption",
    "check_with_update",
    "sweep_constraint",
    "RibConfig",
    "generate_rib",
    "parse_rib",
    "__version__",
]
