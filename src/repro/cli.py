"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``rib generate``
    Synthesize a route-views-like RIB dump (the §6 workload).
``rib analyze``
    Compile a RIB dump into the forwarding c-table and run the q4/q5
    all-pairs reachability analysis, reporting the Table 4 row.
``query``
    Run a fauré-log program (file or inline) against a c-table database
    stored in the JSON interchange format of :mod:`repro.ctable.io`.
``verify``
    Run the relative-complete verification ladder on constraint files,
    optionally with an update (``+Pred(a,b)`` / ``-Pred(a,b)`` specs)
    and/or a state database.
``lint``
    Static analysis of fauré-log files: typed ``F0xx`` diagnostics with
    source spans, ``--select``/``--ignore`` code filters, text or JSON
    output, and in-file ``% edb:`` / ``% outputs:`` pragmas.  Exit code
    1 when any error-severity finding survives filtering.
``examples``
    List the bundled example scripts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .ctable.io import dump_database, load_database
from .ctable.parse import ParseError, TokenStream, parse_term, tokenize
from .ctable.terms import Constant
from .engine.stats import EvalStats
from .faurelog.evaluation import evaluate
from .faurelog.parser import parse_program
from .faurelog.rewrite import Deletion, Insertion
from .network.forwarding import compile_forwarding
from .network.reachability import PatternQuery, ReachabilityAnalyzer
from .parallel.supervisor import ON_WORKER_LOSS_MODES, SupervisedExecutor
from .robustness.checkpoint import CheckpointJournal, fingerprint_of
from .robustness.errors import (
    BudgetExceeded,
    CheckpointError,
    ConditionTooLarge,
    FaureError,
    SolverFailure,
    WorkerLost,
)
from .robustness.governor import Governor, ON_BUDGET_MODES
from .solver.interface import SHARED_MEMO, ConditionSolver
from .verify.constraints import Constraint
from .verify.verifier import RelativeCompleteVerifier
from .workloads.ribgen import RibConfig, dump_rib, generate_rib, parse_rib

__all__ = ["main", "parse_update_spec", "parse_lint_pragmas"]

# Distinct exit codes so scripts can tell failure classes apart:
#   2 — parse/usage errors (bad program text, malformed specs, missing files,
#       checkpoint fingerprint mismatches)
#   3 — a resource budget or deadline ran out (``--on-budget fail``)
#   4 — a solver routine failed outright
#   5 — a worker process was lost past the supervised retry budget and the
#       worker-loss policy forbade recovery (``--on-worker-loss fail``, or a
#       call-site with no sound partial answer)
#   6 — the serve daemon failed: could not bind its endpoint, or the ingest
#       thread hit an infrastructure failure it could not recover from
#       (the WAL remains authoritative for the next start)
EXIT_PARSE_ERROR = 2
EXIT_BUDGET = 3
EXIT_SOLVER_FAILURE = 4
EXIT_WORKER_FAILURE = 5
EXIT_SERVE_FAILURE = 6


def _add_governor_args(parser: argparse.ArgumentParser) -> None:
    """Resource-governance knobs shared by the query-running commands."""
    group = parser.add_argument_group("resource governance")
    group.add_argument(
        "--deadline",
        type=float,
        help="per-query wall-clock deadline in seconds",
    )
    group.add_argument(
        "--solver-budget",
        type=int,
        help="maximum number of solver calls per query",
    )
    group.add_argument(
        "--solver-steps",
        type=int,
        help="cooperative step budget per solver call",
    )
    group.add_argument(
        "--max-condition-atoms",
        type=int,
        help="refuse conditions with more atoms than this",
    )
    group.add_argument(
        "--on-budget",
        choices=ON_BUDGET_MODES,
        default="degrade",
        help="on budget exhaustion: degrade soundly (default) or fail",
    )
    parser.add_argument(
        "--no-memo",
        action="store_true",
        help="disable the shared canonical-form verdict memoization",
    )
    parser.add_argument(
        "--no-fast-path",
        action="store_true",
        help="disable the interval/atom semi-decision fast path (every "
        "solver decision routes to enumeration/DPLL; verdicts identical)",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the whole-program static optimizer before evaluation: "
        "narrow domains, slice query-irrelevant rules, and pre-classify "
        "condition conjuncts so statically decided verdicts skip the "
        "solver (results byte-identical with or without)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for parallelizable phases (batched condition "
            "pruning, pattern fan-out, per-constraint verification); "
            "default 1 = fully serial"
        ),
    )
    parser.add_argument(
        "--shared-memo",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share solver verdicts across --jobs workers through the "
        "crash-tolerant append-only verdict log (default: on; answers "
        "are identical either way — sharing only removes repeated work)",
    )
    supervision = parser.add_argument_group("worker supervision (with --jobs > 1)")
    supervision.add_argument(
        "--task-timeout",
        type=float,
        help="wall-clock seconds one parallel task may run before its worker "
        "is killed and the task retried",
    )
    supervision.add_argument(
        "--task-retries",
        type=int,
        default=2,
        help="re-submissions of a crashed/timed-out task before the "
        "worker-loss policy applies (default: 2)",
    )
    supervision.add_argument(
        "--on-worker-loss",
        choices=ON_WORKER_LOSS_MODES,
        default="inline",
        help="past the retry budget: re-run the task inline in the parent "
        "(default, byte-identical to --jobs 1), degrade soundly, or fail "
        f"with exit code {EXIT_WORKER_FAILURE}",
    )


def _memo_from_args(args):
    """``memo=`` argument for ConditionSolver honoring ``--no-memo``."""
    return None if getattr(args, "no_memo", False) else SHARED_MEMO


def _fast_path_from_args(args) -> bool:
    """``fast_path=`` argument honoring ``--no-fast-path``."""
    return not getattr(args, "no_fast_path", False)


def _governor_from_args(args) -> Optional[Governor]:
    """Build (and arm) a governor when any knob was supplied."""
    knobs = (
        getattr(args, "deadline", None),
        getattr(args, "solver_budget", None),
        getattr(args, "solver_steps", None),
        getattr(args, "max_condition_atoms", None),
    )
    if all(k is None for k in knobs):
        return None
    governor = Governor(
        deadline_seconds=args.deadline,
        solver_call_budget=args.solver_budget,
        steps_per_call=args.solver_steps,
        max_condition_atoms=args.max_condition_atoms,
        on_budget=args.on_budget,
    )
    governor.start()
    return governor


def _executor_from_args(args) -> Optional[SupervisedExecutor]:
    """A supervised executor honoring the CLI's supervision knobs.

    ``None`` for serial runs — the jobs=1 paths never build a pool.
    """
    jobs = getattr(args, "jobs", 1)
    if jobs <= 1:
        return None
    return SupervisedExecutor(
        jobs,
        task_timeout=getattr(args, "task_timeout", None),
        task_retries=getattr(args, "task_retries", 2),
        on_worker_loss=getattr(args, "on_worker_loss", "inline"),
        shared_memo=getattr(args, "shared_memo", True),
    )


def _open_checkpoint(args, *fingerprint_parts: Optional[str]):
    """Open ``--checkpoint`` (when given) against the inputs' fingerprint."""
    path = getattr(args, "checkpoint", None)
    if not path:
        return None
    return CheckpointJournal.open(path, fingerprint_of(*fingerprint_parts))


def _close_checkpoint(checkpoint) -> None:
    """Summarize (to stderr — stdout stays byte-identical on resume)."""
    if checkpoint is None:
        return
    print(
        f"-- checkpoint: {checkpoint.replayed} unit(s) replayed, "
        f"{checkpoint.recorded} recorded -> {checkpoint.path}",
        file=sys.stderr,
    )
    checkpoint.close()


def _report_governor(governor: Optional[Governor]) -> None:
    if governor is None:
        return
    events = governor.events
    if events.budget_hits or events.unknown_verdicts or events.condition_rejections:
        print(
            f"-- governor: {events.unknown_verdicts} unknown verdict(s), "
            f"{events.budget_hits} budget hit(s), "
            f"{events.fallbacks} fallback(s), "
            f"{events.condition_rejections} oversized condition(s)"
        )


def _report_supervision(executor: Optional[SupervisedExecutor]) -> None:
    """Failure accounting goes to stderr: a supervised run that recovered
    must keep stdout byte-identical to an undisturbed serial run."""
    if executor is None or not executor.failures.any:
        return
    f = executor.failures
    print(
        f"-- supervision: {f.worker_crashes} worker crash(es), "
        f"{f.task_timeouts} timeout(s), {f.task_retries} retried, "
        f"{f.tasks_quarantined} quarantined, {f.tasks_lost} lost",
        file=sys.stderr,
    )


def parse_update_spec(spec: str):
    """Parse ``+Pred(v1, v2)`` / ``-Pred(v1, _, v3)`` into an operation."""
    spec = spec.strip()
    if not spec or spec[0] not in "+-":
        raise ValueError(f"update spec must start with + or -: {spec!r}")
    insert = spec[0] == "+"
    body = spec[1:].strip()
    open_paren = body.find("(")
    if open_paren < 0 or not body.endswith(")"):
        raise ValueError(f"malformed update spec {spec!r}")
    predicate = body[:open_paren].strip()
    inner = body[open_paren + 1:-1]
    values = []
    for cell in inner.split(","):
        cell = cell.strip()
        if cell == "_":
            if insert:
                raise ValueError("wildcards are only allowed in deletions")
            values.append(None)
            continue
        stream = TokenStream(tokenize(cell), cell)
        term = parse_term(stream, resolve_ident=lambda n: Constant(n))
        values.append(term)
    if insert:
        return Insertion(predicate, tuple(values))
    return Deletion(predicate, tuple(values))


def _cmd_rib_generate(args) -> int:
    config = RibConfig(
        prefixes=args.prefixes,
        paths_per_prefix=args.paths,
        as_count=args.ases,
        seed=args.seed,
    )
    routes = generate_rib(config)
    text = dump_rib(routes)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {len(routes)} prefixes to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_rib_analyze(args) -> int:
    rib_text = Path(args.rib).read_text()
    routes = parse_rib(rib_text)
    compiled = compile_forwarding(routes)
    governor = _governor_from_args(args)
    memo = _memo_from_args(args)
    solver = ConditionSolver(
        compiled.domains,
        governor=governor,
        memo=memo,
        fast_path=_fast_path_from_args(args),
    )
    checkpoint = _open_checkpoint(
        args, "rib-analyze", rib_text, "patterns" if args.patterns else None
    )
    if checkpoint is not None and solver.memo is not None:
        # Replay journaled definite verdicts, then stream new ones.
        checkpoint.attach(solver.memo, compiled.domains)
    executor = _executor_from_args(args)
    analyzer = ReachabilityAnalyzer(
        compiled.database(),
        solver,
        per_flow=True,
        jobs=getattr(args, "jobs", 1),
        checkpoint=checkpoint,
        optimize=getattr(args, "optimize", False),
    )
    try:
        reach = analyzer.compute()
        print(f"prefixes:       {len(routes)}")
        print(f"F entries:      {len(compiled.table)}")
        print(f"R tuples:       {len(reach)}")
        if args.patterns:
            from .workloads.failures import at_least_k_failures

            queries = []
            for route in routes:
                variables = list(compiled.variables_of(route.prefix))
                if len(variables) < 2:
                    continue
                queries.append(
                    PatternQuery(
                        at_least_k_failures(variables, 1),
                        name="T3",
                        flow=route.prefix,
                    )
                )
            results = analyzer.under_patterns(queries, executor=executor)
            for query, (table, _stats) in zip(queries, results):
                print(f"pattern {query.flow}: {len(table)} tuple(s)")
        stats = analyzer.stats
        print(f"sql seconds:    {stats.sql_seconds:.3f}")
        print(f"solver seconds: {stats.solver_seconds:.3f}")
        _report_governor(governor)
        _report_supervision(executor)
    finally:
        _close_checkpoint(checkpoint)
    return 0


def _cmd_query(args) -> int:
    db, domains = load_database(Path(args.db).read_text())
    if args.program_file:
        text = Path(args.program_file).read_text()
    else:
        text = args.program
    program = parse_program(text)
    governor = _governor_from_args(args)
    effective_domains = domains
    precheck = None
    inactive = None
    optimization = None
    if getattr(args, "optimize", False):
        from .analysis.optimize import optimize_program

        optimization = optimize_program(
            program, db, domains,
            outputs=[args.output] if args.output else None,
        )
        program = optimization.sliced
        effective_domains = optimization.narrowed
        precheck = optimization.precheck_for(governor)
        inactive = optimization.inactive_for(governor)
    solver = ConditionSolver(
        effective_domains,
        governor=governor,
        memo=_memo_from_args(args),
        fast_path=_fast_path_from_args(args),
    )
    stats = EvalStats()
    result = evaluate(
        program, db, solver=solver, stats=stats,
        precheck=precheck, inactive_rules=inactive,
    )
    names = [args.output] if args.output else sorted(result.names())
    for name in names:
        print(result.table(name).pretty(max_rows=args.limit))
        print()
    status = " [PARTIAL: budget exhausted]" if stats.partial_results else ""
    print(
        f"-- {stats.tuples_generated} tuples derived "
        f"(sql {stats.sql_seconds:.3f}s, solver {stats.solver_seconds:.3f}s, "
        f"{stats.unknown_kept} kept-unknown){status}"
    )
    if optimization is not None:
        summary = optimization.describe()
        if summary:
            print(summary)
    _report_governor(governor)
    return 0


def _cmd_verify(args) -> int:
    targets = [
        Constraint(Path(p).stem, parse_program(Path(p).read_text()))
        for p in args.target
    ]
    known = [
        Constraint(Path(p).stem, parse_program(Path(p).read_text()))
        for p in args.known
    ]
    update = [parse_update_spec(s) for s in args.update] if args.update else None
    state = None
    domains = None
    if args.db:
        state, domains = load_database(Path(args.db).read_text())
    from .solver.domains import DomainMap, Unbounded

    governor = _governor_from_args(args)
    memo = _memo_from_args(args)
    effective_domains = (
        domains if domains is not None else DomainMap(default=Unbounded("any"))
    )
    solver = ConditionSolver(
        effective_domains,
        governor=governor,
        memo=memo,
        fast_path=_fast_path_from_args(args),
    )
    checkpoint = _open_checkpoint(
        args,
        "verify",
        *[Path(p).read_text() for p in args.target],
        *[Path(p).read_text() for p in args.known],
        *(args.update or []),
        Path(args.db).read_text() if args.db else None,
    )
    if checkpoint is not None and solver.memo is not None:
        checkpoint.attach(solver.memo, effective_domains)
    executor = _executor_from_args(args)
    verifier = RelativeCompleteVerifier(known, solver)
    try:
        verdicts = verifier.verify_many(
            targets,
            update=update,
            state=state,
            jobs=getattr(args, "jobs", 1),
            executor=executor,
            checkpoint=checkpoint,
        )
        for target, verdict in zip(targets, verdicts):
            print(f"{target.name}: {verdict}")
            for step in verdict.trail:
                print(f"  {step}")
        _report_governor(governor)
        _report_supervision(executor)
    finally:
        _close_checkpoint(checkpoint)
    return 0 if all(v.ok for v in verdicts) else 1


def _cmd_sql(args) -> int:
    from .engine.sql import SqlEngine
    from .solver.domains import DomainMap, Unbounded

    if args.db:
        db, domains = load_database(Path(args.db).read_text())
    else:
        from .ctable.table import Database

        db, domains = Database(), DomainMap(default=Unbounded("any"))
    governor = _governor_from_args(args)
    memo = _memo_from_args(args)
    statements = (
        Path(args.script).read_text() if args.script else " ".join(args.statement)
    )
    checkpoint = _open_checkpoint(
        args,
        "sql",
        statements,
        Path(args.db).read_text() if args.db else None,
    )
    solver = ConditionSolver(
        domains,
        governor=governor,
        memo=memo,
        fast_path=_fast_path_from_args(args),
    )
    if checkpoint is not None and solver.memo is not None:
        # The SQL path checkpoints at memo granularity: every definite
        # verdict the batch pruner computes is durable, so a resumed
        # script replays them instead of re-solving.
        checkpoint.attach(solver.memo, domains)
    executor = _executor_from_args(args)
    engine = SqlEngine(
        db,
        solver=solver,
        jobs=getattr(args, "jobs", 1),
        executor=executor,
    )
    try:
        result = engine.script(statements)
        if result is not None:
            print(result.pretty(max_rows=args.limit))
        if args.save:
            Path(args.save).write_text(dump_database(db, domains))
            print(f"saved database to {args.save}")
        _report_supervision(executor)
    finally:
        _close_checkpoint(checkpoint)
    return 0


#: ``% key: values`` pragma lines recognised at the top of lint inputs.
_LINT_PRAGMAS = ("edb", "outputs", "size", "lint-ignore")


def parse_lint_pragmas(text: str) -> dict:
    """Extract lint directives from ``%`` comment lines.

    Recognised forms (anywhere in the file, one per line)::

        % edb: R Fw Lb          declared stored relations
        % outputs: panic        output predicates for reachability
        % size: R 5000          row-count hint for cost estimates
        % lint-ignore: F007     per-file ignored diagnostic codes

    Returns ``{"edb": [...], "outputs": [...], "sizes": {...},
    "ignore": [...]}`` with empty defaults.
    """
    import re

    out = {"edb": [], "outputs": [], "sizes": {}, "ignore": []}
    pattern = re.compile(
        r"^\s*%\s*(" + "|".join(_LINT_PRAGMAS) + r")\s*:\s*(.*?)\s*$"
    )
    for line in text.splitlines():
        match = pattern.match(line)
        if not match:
            continue
        key, rest = match.group(1), match.group(2).split()
        if key == "edb":
            out["edb"].extend(rest)
        elif key == "outputs":
            out["outputs"].extend(rest)
        elif key == "lint-ignore":
            out["ignore"].extend(rest)
        elif key == "size":
            if len(rest) != 2:
                raise ValueError(
                    f"malformed size pragma (want '% size: Pred N'): {line.strip()!r}"
                )
            out["sizes"][rest[0]] = int(rest[1])
    return out


def _cmd_lint(args) -> int:
    from .analysis import (
        Severity,
        analyze_text,
        render_json,
        render_sarif,
        render_text,
    )

    findings = []
    parse_failed = False
    for path in args.programs:
        text = Path(path).read_text()
        pragmas = parse_lint_pragmas(text)
        ignore = list(args.ignore or []) + pragmas["ignore"]
        try:
            findings.extend(
                analyze_text(
                    text,
                    edb=list(args.edb or []) + pragmas["edb"],
                    outputs=list(args.outputs or []) + pragmas["outputs"],
                    file=path,
                    sizes=pragmas["sizes"],
                    select=args.select,
                    ignore=ignore or None,
                )
            )
            if getattr(args, "optimize_report", False):
                findings.extend(
                    _optimizer_findings(
                        text,
                        path,
                        outputs=list(args.outputs or []) + pragmas["outputs"],
                        select=args.select,
                        ignore=ignore or None,
                    )
                )
        except ParseError as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            parse_failed = True
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
    if parse_failed:
        return EXIT_PARSE_ERROR
    errors = sum(1 for d in findings if d.severity is Severity.ERROR)
    return 1 if errors else 0


def _optimizer_findings(text, path, outputs=None, select=None, ignore=None):
    """F016–F020 findings from the static optimizer (``--optimize-report``).

    The optimizer needs a database for its EDB seeding; linting has none,
    so the whole-program pass runs with an empty database and the
    *declared* (unbounded-by-default) domains — exactly the subset of its
    reasoning that depends on the program text alone.
    """
    from .analysis import filter_diagnostics
    from .analysis.optimize import optimize_program
    from .ctable.table import Database
    from .faurelog.ast import ProgramError
    from .faurelog.parser import parse_program
    from .solver.domains import DomainMap, Unbounded

    try:
        program = parse_program(text)
    except ParseError:
        return []
    try:
        result = optimize_program(
            program,
            Database(),
            DomainMap(default=Unbounded("any")),
            outputs=outputs or None,
        )
    except ProgramError:
        return []
    import dataclasses

    findings = [dataclasses.replace(d, file=path) for d in result.diagnostics]
    return filter_diagnostics(findings, select=select, ignore=ignore)


def _cmd_serve(args) -> int:
    """Run the crash-safe incremental verification daemon."""
    import json
    import os
    import signal

    from .serve.server import FaureServer
    from .serve.state import ServeBudgets, ServeState

    budgets = ServeBudgets(
        deadline_seconds=args.deadline,
        solver_call_budget=args.solver_budget,
        steps_per_call=args.solver_steps,
        max_condition_atoms=args.max_condition_atoms,
    )
    state_kwargs = dict(
        budgets=budgets,
        optimize=getattr(args, "optimize", False),
        compact_every=args.compact_every,
        compact_bytes=args.compact_bytes,
    )
    tailer = None
    primary_addr = None
    if args.replica_of:
        # Replica: the workload (program + seed database) comes from the
        # primary's snapshot, not from local flags.
        from .serve.client import parse_hostport
        from .serve.replica import ReplicaTailer, bootstrap_replica

        if args.db or args.program or args.program_file:
            print(
                "serve failure: --replica-of takes its workload from the "
                "primary's snapshot; drop --db/--program/--program-file",
                file=sys.stderr,
            )
            return EXIT_PARSE_ERROR
        primary_addr = parse_hostport(args.replica_of, args.host)
        try:
            state = bootstrap_replica(primary_addr, args.wal, **state_kwargs)
        except (ConnectionError, OSError) as exc:
            print(f"serve failure: cannot bootstrap replica: {exc}", file=sys.stderr)
            return EXIT_SERVE_FAILURE
        tailer = ReplicaTailer(
            state, primary_addr, poll_interval=args.poll_interval
        )
    else:
        if not args.db or not (args.program or args.program_file):
            print(
                "serve failure: a primary needs --db and --program/--program-file "
                "(or start as a replica with --replica-of HOST:PORT)",
                file=sys.stderr,
            )
            return EXIT_PARSE_ERROR
        program_text = (
            Path(args.program_file).read_text() if args.program_file else args.program
        )
        database_text = Path(args.db).read_text()
        state = ServeState(program_text, database_text, args.wal, **state_kwargs)
    try:
        server = FaureServer(
            state,
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            shed_retry_after=args.retry_after,
            role="replica" if args.replica_of else "primary",
            primary_addr=primary_addr,
        )
    except OSError as exc:
        print(f"serve failure: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        state.close()
        return EXIT_SERVE_FAILURE
    if tailer is not None:
        server.tailer = tailer
        tailer.start()
    host, port = server.address
    snapshot = state.epochs.current()
    # The ready line: tests and scripts parse this to find the ephemeral
    # port; everything after it speaks the wire protocol, not stdout.
    print(
        json.dumps(
            {
                "serving": {
                    "host": host,
                    "port": port,
                    "pid": os.getpid(),
                    "epoch": snapshot.epoch,
                    "seq": snapshot.seq,
                    "replayed": len(state.wal),
                    "wal": args.wal,
                    "role": server.role,
                }
            },
            sort_keys=True,
            separators=(",", ":"),
        ),
        flush=True,
    )

    def _graceful(_signum, _frame):  # type: ignore[no-untyped-def]
        server.stop()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    code = server.serve_forever()
    if code != 0:
        print(f"serve failure: {server.fatal}", file=sys.stderr)
        return EXIT_SERVE_FAILURE
    print(
        f"-- serve: {state.counters['updates_applied']} update(s) applied, "
        f"{state.counters['updates_rejected']} rejected, "
        f"{server.counters['shed']} shed, "
        f"{state.counters['recoveries']} recover(ies), "
        f"{state.counters['compactions']} compaction(s); "
        f"wal={state.wal.path} seq={state.wal.last_seq}",
        file=sys.stderr,
    )
    return 0


def _cmd_serve_admin(args) -> int:
    """Administer a running serve daemon (status / compact / snapshot)."""
    import json

    from .serve.client import ServeClient
    from .serve.protocol import ServeRequestError

    try:
        if args.wait:
            client = ServeClient.wait_until_up(args.host, args.port)
            client.timeout = args.timeout
        else:
            client = ServeClient(args.host, args.port, timeout=args.timeout)
        with client:
            if args.action == "compact":
                response = client.admin("compact", force=args.force)
            elif args.action == "snapshot":
                response = client.admin("snapshot")
            else:
                response = client.admin("status")
    except ServeRequestError as exc:
        # Old peer (no admin surface): typed refusal, errno-class exit.
        response = exc.response()
        print(json.dumps(response, sort_keys=True, separators=(",", ":")))
        return int(response["errno"])
    except (ConnectionError, OSError) as exc:
        print(f"serve-admin failure: {exc}", file=sys.stderr)
        return EXIT_SERVE_FAILURE
    print(json.dumps(response, sort_keys=True, separators=(",", ":")))
    if response.get("ok"):
        return 0
    return int(response.get("errno", EXIT_SERVE_FAILURE))


def _cmd_examples(_args) -> int:
    examples = [
        ("quickstart.py", "c-tables + fauré-log on the paper's Table 2"),
        ("fast_reroute.py", "§4 loss-less reachability under failures"),
        ("multi_team_verification.py", "§5 relative-complete verification"),
        ("rib_reachability.py", "§6 RIB pipeline with Table 4 reporting"),
        ("sql_session.py", "the mini-SQL face of the engine"),
        ("interdomain_visibility.py", "limited visibility across domains"),
        ("update_plan.py", "multi-step change-plan safety"),
        ("acl_audit.py", "auditing a partially visible ACL"),
        ("streaming_monitor.py", "incremental constraint monitoring"),
    ]
    for name, blurb in examples:
        print(f"  examples/{name:<28} {blurb}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="fauré: partial network analysis"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rib = sub.add_parser("rib", help="synthetic RIB workloads")
    rib_sub = rib.add_subparsers(dest="rib_command", required=True)
    gen = rib_sub.add_parser("generate", help="generate a RIB dump")
    gen.add_argument("--prefixes", type=int, default=100)
    gen.add_argument("--paths", type=int, default=5)
    gen.add_argument("--ases", type=int, default=120)
    gen.add_argument("--seed", type=int, default=20210610)
    gen.add_argument("-o", "--output")
    gen.set_defaults(func=_cmd_rib_generate)
    ana = rib_sub.add_parser("analyze", help="reachability analysis of a dump")
    ana.add_argument("rib")
    ana.add_argument(
        "--patterns",
        action="store_true",
        help="additionally run a per-prefix at-least-one-failure pattern "
        "query (q8 shape) for every multi-path prefix; fans out across --jobs",
    )
    ana.add_argument(
        "--checkpoint",
        help="journal completed units to this file and resume from it "
        "(killed runs re-run zero completed units)",
    )
    _add_governor_args(ana)
    ana.set_defaults(func=_cmd_rib_analyze)

    query = sub.add_parser("query", help="run a fauré-log program")
    query.add_argument("--db", required=True, help="database JSON file")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--program", help="inline program text")
    group.add_argument("--program-file", help="program file")
    query.add_argument("--output", help="only print this predicate")
    query.add_argument("--limit", type=int, default=30, help="max rows shown")
    _add_governor_args(query)
    query.set_defaults(func=_cmd_query)

    verify = sub.add_parser("verify", help="relative-complete verification")
    verify.add_argument(
        "--target",
        required=True,
        nargs="+",
        help="target constraint file(s); several fan out across --jobs",
    )
    verify.add_argument("--known", nargs="*", default=[], help="known constraint files")
    verify.add_argument(
        "--update", nargs="*", help="update specs like '+Lb(R&D, GS)' '-Lb(Mkt, CS)'"
    )
    verify.add_argument("--db", help="state database JSON (enables level 3)")
    verify.add_argument(
        "--checkpoint",
        help="journal per-target verdicts (and memo entries) to this file; "
        "a resumed run re-verifies nothing already decided",
    )
    _add_governor_args(verify)
    verify.set_defaults(func=_cmd_verify)

    sql = sub.add_parser("sql", help="run mini-SQL statements on c-tables")
    sql.add_argument("statement", nargs="*", help="inline ;-separated statements")
    sql.add_argument("--db", help="database JSON to load first")
    sql.add_argument("--script", help="file of statements instead of inline")
    sql.add_argument("--save", help="write the resulting database JSON here")
    sql.add_argument("--limit", type=int, default=30)
    sql.add_argument(
        "--checkpoint",
        help="journal definite solver verdicts to this file; a resumed "
        "script replays them instead of re-solving",
    )
    _add_governor_args(sql)
    sql.set_defaults(func=_cmd_sql)

    serve = sub.add_parser(
        "serve",
        help="crash-safe incremental verification daemon "
        "(WAL-backed updates, snapshot-isolated queries)",
    )
    serve.add_argument(
        "--db",
        help="seed database JSON file (primaries; replicas take the "
        "workload from the primary's snapshot)",
    )
    serve_group = serve.add_mutually_exclusive_group()
    serve_group.add_argument("--program", help="inline program text")
    serve_group.add_argument("--program-file", help="program file")
    serve.add_argument(
        "--wal",
        required=True,
        help="write-ahead log path; replayed on start, fsync'd before "
        "every apply (fingerprint-guarded against foreign workloads)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = ephemeral; the bound port is printed "
        "in the ready line)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bounded ingest queue size; a full queue sheds updates with "
        "an explicit OVERLOADED/retry-after response (default: 64)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=0.1,
        help="retry hint (seconds) carried by shed responses",
    )
    serve_budgets = serve.add_argument_group(
        "per-request budgets (degrade to INCONCLUSIVE, never stall)"
    )
    serve_budgets.add_argument(
        "--deadline", type=float, help="per-request wall-clock deadline in seconds"
    )
    serve_budgets.add_argument(
        "--solver-budget", type=int, help="solver calls per request"
    )
    serve_budgets.add_argument(
        "--solver-steps", type=int, help="cooperative step budget per solver call"
    )
    serve_budgets.add_argument(
        "--max-condition-atoms",
        type=int,
        help="refuse conditions with more atoms than this",
    )
    serve.add_argument(
        "--optimize",
        action="store_true",
        help="run the static optimizer over the resident program: "
        "pre-admission impact slicing plus solver-free condition "
        "prechecks on the update path (answers byte-identical)",
    )
    serve_lifecycle = serve.add_argument_group(
        "log lifecycle (WAL compaction into seed snapshots)"
    )
    serve_lifecycle.add_argument(
        "--compact-every",
        type=int,
        help="fold the log into a snapshot whenever it holds this many "
        "entries (keeps steady-state log size and open time bounded)",
    )
    serve_lifecycle.add_argument(
        "--compact-bytes",
        type=int,
        help="fold the log into a snapshot whenever it exceeds this many "
        "bytes on disk",
    )
    serve_replica = serve.add_argument_group("replication")
    serve_replica.add_argument(
        "--replica-of",
        metavar="HOST:PORT",
        help="start as a read replica of this primary: bootstrap from its "
        "snapshot, tail its WAL, answer queries (ingest is redirected)",
    )
    serve_replica.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="replica tail poll interval in seconds when caught up "
        "(default: 0.2)",
    )
    serve.set_defaults(func=_cmd_serve)

    serve_admin = sub.add_parser(
        "serve-admin",
        help="administer a running serve daemon "
        "(status, compact the WAL, write a snapshot)",
    )
    serve_admin.add_argument("--host", default="127.0.0.1")
    serve_admin.add_argument("--port", type=int, required=True)
    serve_admin.add_argument("--timeout", type=float, default=30.0)
    serve_admin.add_argument(
        "--wait", action="store_true", help="poll until the daemon is up first"
    )
    serve_admin.add_argument(
        "action",
        choices=["status", "compact", "snapshot"],
        help="status: health + log/snapshot lifecycle; compact: fold the "
        "WAL into a seed snapshot and retire folded segments; snapshot: "
        "write a snapshot without retiring anything",
    )
    serve_admin.add_argument(
        "--force",
        action="store_true",
        help="compact even when the log suffix is empty",
    )
    serve_admin.set_defaults(func=_cmd_serve_admin)

    lint = sub.add_parser("lint", help="static checks on fauré-log files")
    lint.add_argument("programs", nargs="+", help="program file(s)")
    lint.add_argument("--edb", nargs="*", help="declared stored relations")
    lint.add_argument("--outputs", nargs="*", help="output predicates")
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text); sarif emits a SARIF 2.1.0 "
        "log for CI annotation surfaces",
    )
    lint.add_argument(
        "--optimize-report",
        action="store_true",
        help="also run the whole-program static optimizer and report its "
        "F016-F020 findings (unreachable rules, vacuous conditions, "
        "narrowed domains, query slicing, widening)",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only report these comma-separated codes (e.g. F011,F008)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="drop these comma-separated codes",
    )
    lint.set_defaults(func=_cmd_lint)

    examples = sub.add_parser("examples", help="list bundled examples")
    examples.set_defaults(func=_cmd_examples)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (BudgetExceeded, ConditionTooLarge) as exc:
        print(f"budget error: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except WorkerLost as exc:
        print(f"worker failure: {exc}", file=sys.stderr)
        return EXIT_WORKER_FAILURE
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    except SolverFailure as exc:
        print(f"solver error: {exc}", file=sys.stderr)
        return EXIT_SOLVER_FAILURE
    except FaureError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SOLVER_FAILURE
    except (ParseError, ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
