"""Workload generators for the benchmark harness.

Synthetic BGP RIBs (the route-views substitute of §6), failure-pattern
families (Listing 2 generalizations), and random multi-team enterprise
scenarios (§5 at scale).
"""

from .enterprisegen import Scenario, ScenarioConfig, generate_scenario
from .failures import (
    all_up,
    at_least_k_failures,
    at_most_k_failures,
    exactly_k_failures,
    must_include_failure,
)
from .ribgen import RibConfig, dump_rib, generate_as_graph, generate_rib, parse_rib
from .topologen import fat_tree_frr, grid_frr, random_frr, ring_frr

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "generate_scenario",
    "all_up",
    "at_least_k_failures",
    "at_most_k_failures",
    "exactly_k_failures",
    "must_include_failure",
    "RibConfig",
    "dump_rib",
    "generate_as_graph",
    "generate_rib",
    "parse_rib",
    "fat_tree_frr",
    "grid_frr",
    "random_frr",
    "ring_frr",
]
