"""Topology generators and failure-protected configurations at scale.

The paper's §4 example is a 5-node excerpt; these generators produce the
same *kind* of fast-reroute configuration on standard topology families,
so the loss-less machinery can be exercised (and benchmarked) on
realistically shaped networks:

* :func:`ring_frr` — a ring where each clockwise link is protected by
  the counter-clockwise detour;
* :func:`grid_frr` — an n×m grid with protected east/south primaries and
  orthogonal backups;
* :func:`fat_tree_frr` — a k-ary fat-tree (the datacenter staple) with
  protected edge→aggregation uplinks backed by the sibling aggregation
  switch;
* :func:`random_frr` — preferential-attachment graphs with a random
  subset of protected links.

Every generator returns a :class:`~repro.network.frr.FrrConfig`;
failures per protected link are independent {0,1} c-variables, so world
counts grow as 2^protected.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import networkx as nx

from ..network.frr import FrrConfig

__all__ = ["ring_frr", "grid_frr", "fat_tree_frr", "random_frr"]


def ring_frr(nodes: int) -> FrrConfig:
    """A ring: clockwise primaries, counter-clockwise detours.

    Node ``i``'s primary goes to ``i+1``; its backup next-hop is ``i-1``
    (the long way round).  All counter-clockwise links are unprotected.
    """
    if nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    config = FrrConfig()
    for i in range(nodes):
        nxt = (i + 1) % nodes
        prv = (i - 1) % nodes
        config.protect(i, nxt, backups=[prv], state_var=f"r{i}")
    for i in range(nodes):
        prv = (i - 1) % nodes
        config.add_link(i, prv)
    return config


def grid_frr(rows: int, cols: int) -> FrrConfig:
    """An n×m grid: east/south primaries protected, backups orthogonal."""
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2")
    config = FrrConfig()

    def node(r: int, c: int) -> str:
        return f"g{r}_{c}"

    for r in range(rows):
        for c in range(cols):
            here = node(r, c)
            if c + 1 < cols:
                backups = [node(r + 1, c)] if r + 1 < rows else []
                config.protect(here, node(r, c + 1), backups=backups,
                               state_var=f"e{r}_{c}")
            if r + 1 < rows:
                backups = [node(r, c + 1)] if c + 1 < cols else []
                config.protect(here, node(r + 1, c), backups=backups,
                               state_var=f"s{r}_{c}")
    return config


def fat_tree_frr(k: int = 4) -> FrrConfig:
    """A k-ary fat-tree with protected edge→aggregation uplinks.

    k pods, each with k/2 edge and k/2 aggregation switches; (k/2)²
    cores.  Each edge switch's primary uplink (to its first aggregation
    switch) is protected, backed by the pod's other aggregation
    switches.  Aggregation→core and downlinks are unprotected.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity must be even and >= 2")
    half = k // 2
    config = FrrConfig()
    cores = [f"core{i}" for i in range(half * half)]
    for pod in range(k):
        aggs = [f"p{pod}_agg{a}" for a in range(half)]
        edges = [f"p{pod}_edge{e}" for e in range(half)]
        for e, edge in enumerate(edges):
            primary, *rest = aggs
            config.protect(edge, primary, backups=rest, state_var=f"u{pod}_{e}")
            for agg in aggs:
                config.add_link(agg, edge)  # downlinks unprotected
        for a, agg in enumerate(aggs):
            for i in range(half):
                core = cores[a * half + i]
                config.add_link(agg, core)
                config.add_link(core, agg)
    return config


def random_frr(
    nodes: int,
    protected: int,
    seed: int = 0,
    attachment: int = 2,
) -> FrrConfig:
    """Preferential-attachment graph; a random subset of links protected.

    Protected links get up to two backups chosen from the source's other
    neighbors, mirroring the Figure 1 pattern on an organic topology.
    """
    rng = random.Random(seed)
    graph = nx.barabasi_albert_graph(nodes, min(attachment, nodes - 1), seed=seed)
    config = FrrConfig()
    links: List[Tuple[int, int]] = []
    for a, b in graph.edges():
        links.append((a, b))
        links.append((b, a))
    rng.shuffle(links)
    if protected > len(links):
        raise ValueError(f"cannot protect {protected} of {len(links)} links")
    chosen = links[:protected]
    chosen_set = set(chosen)
    for index, (src, dst) in enumerate(chosen):
        neighbors = [n for n in graph.neighbors(src) if n != dst]
        rng.shuffle(neighbors)
        config.protect(src, dst, backups=neighbors[:2], state_var=f"v{index}")
    for src, dst in links:
        if (src, dst) not in chosen_set:
            config.add_link(src, dst)
    return config
