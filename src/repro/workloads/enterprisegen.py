"""Random multi-team enterprise scenarios for the verification benches.

Scales the §5 running example: *n* subnets, *m* servers, a port universe,
random reachability/loadbalancer/firewall deployments, optionally with
*k* c-variable (unknown) entries — the knob that grows the possible-world
count the complete-approach baseline must enumerate while fauré's
subsumption test stays state-independent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ctable.condition import TRUE
from ..ctable.table import CTable, Database
from ..ctable.terms import CVariable
from ..faurelog.ast import Program
from ..faurelog.parser import parse_program
from ..solver.domains import Domain, DomainMap, FiniteDomain, Unbounded

__all__ = ["ScenarioConfig", "Scenario", "generate_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Size and uncertainty knobs for a generated enterprise."""

    subnets: int = 2
    servers: int = 2
    ports: Tuple[int, ...] = (80, 344, 7000)
    reach_density: float = 0.5
    deploy_density: float = 0.6
    unknown_entries: int = 0  # number of c-variable cells across tables
    seed: int = 7


@dataclass
class Scenario:
    """A generated enterprise: state, domains, and its policies."""

    database: Database
    domains: DomainMap
    subnets: Tuple[str, ...]
    servers: Tuple[str, ...]
    ports: Tuple[int, ...]
    target: Program
    policies: List[Program]
    schemas: Dict[str, List[str]]
    column_domains: Dict[str, Domain]


def generate_scenario(config: ScenarioConfig) -> Scenario:
    """Build a random scenario in the shape of §5.

    The target constraint requires the first subnet's traffic to the
    first server to pass a firewall; the policy set mirrors C_s (all
    traffic firewalled on known ports), so the target is always subsumed
    — the benches compare *how* the two verification approaches scale,
    not their verdicts.
    """
    rng = random.Random(config.seed)
    subnets = tuple(f"S{i}" for i in range(config.subnets))
    servers = tuple(f"H{j}" for j in range(config.servers))
    ports = tuple(config.ports)

    r_table = CTable("R", ["subnet", "server", "port"])
    lb_table = CTable("Lb", ["subnet", "server"])
    fw_table = CTable("Fw", ["subnet", "server"])
    domains = DomainMap(default=Unbounded("any"))
    coldoms: Dict[str, Domain] = {
        "subnet": FiniteDomain(subnets),
        "server": FiniteDomain(servers),
        "port": FiniteDomain(ports),
    }

    unknown_budget = config.unknown_entries
    var_counter = 0

    def maybe_unknown(column: str, concrete):
        nonlocal unknown_budget, var_counter
        if unknown_budget > 0 and rng.random() < 0.5:
            unknown_budget -= 1
            var = CVariable(f"w{var_counter}")
            var_counter += 1
            domains.declare(var, coldoms[column])
            return var
        return concrete

    for subnet in subnets:
        for server in servers:
            for port in ports:
                if rng.random() < config.reach_density:
                    r_table.add(
                        [
                            maybe_unknown("subnet", subnet),
                            maybe_unknown("server", server),
                            maybe_unknown("port", port),
                        ]
                    )
            if rng.random() < config.deploy_density:
                lb_table.add([subnet, server])
            fw_table.add([maybe_unknown("subnet", subnet), server])

    target = parse_program(
        f"panic :- R('{subnets[0]}', '{servers[0]}', $p), "
        f"not Fw('{subnets[0]}', '{servers[0]}')."
    )
    port_guards = ", ".join(f"$p != {p}" for p in ports)
    policy = parse_program(
        f"""
        panic :- V(x, y, p).
        V($x, $y, $p) :- R($x, $y, $p), not Fw($x, $y).
        V($x, $y, $p) :- R($x, $y, $p), {port_guards}.
        """
    )
    return Scenario(
        database=Database([r_table, lb_table, fw_table]),
        domains=domains,
        subnets=subnets,
        servers=servers,
        ports=ports,
        target=target,
        policies=[policy],
        schemas={"R": ["subnet", "server", "port"], "Lb": ["subnet", "server"], "Fw": ["subnet", "server"]},
        column_domains=coldoms,
    )
