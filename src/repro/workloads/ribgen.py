"""Synthetic BGP RIB generation — the stand-in for route-views (§6).

The paper infers forwarding configuration from the route-views2 RIB of
2021-06-10: per prefix, five AS paths (one primary, four ranked
backups).  Offline we synthesize a RIB with the same structure:

* an AS-level topology whose degree distribution is heavy-tailed
  (preferential attachment, as observed at the AS level);
* prefixes announced by random edge ASes;
* per prefix, ``paths_per_prefix`` distinct loop-free AS paths toward
  the origin from a common vantage AS, with realistic lengths (the
  route-views mean is ≈4 hops);
* a textual RIB dump format (``prefix|path|path|...``) plus a parser, so
  the benchmark harness exercises the same parse-then-compile pipeline
  the paper ran against the real file.

All randomness flows from an explicit seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..network.forwarding import PrefixRoutes

__all__ = [
    "RibConfig",
    "generate_as_graph",
    "generate_rib",
    "dump_rib",
    "parse_rib",
]


@dataclass(frozen=True)
class RibConfig:
    """Knobs of the synthetic RIB."""

    prefixes: int = 1000
    paths_per_prefix: int = 5
    as_count: int = 200
    attachment: int = 3  # preferential-attachment edges per new AS
    max_path_len: int = 6
    seed: int = 2021_06_10


def generate_as_graph(config: RibConfig) -> "nx.Graph":
    """A heavy-tailed AS-level graph (Barabási–Albert)."""
    m = min(config.attachment, max(1, config.as_count - 1))
    return nx.barabasi_albert_graph(config.as_count, m, seed=config.seed)


def _as_name(index: int) -> str:
    return f"AS{index}"


def _sample_paths(
    graph: "nx.Graph",
    origin: int,
    vantage: int,
    count: int,
    max_len: int,
    rng: random.Random,
) -> List[Tuple[str, ...]]:
    """Distinct loop-free vantage→origin paths, shortest-ish first.

    Uses randomized walks biased toward the origin (falling back to
    shortest paths) so path lengths cluster around the AS-level mean.
    """
    paths: List[Tuple[str, ...]] = []
    seen: Set[Tuple[int, ...]] = set()

    try:
        base = nx.shortest_path(graph, vantage, origin)
    except nx.NetworkXNoPath:
        return []
    if len(base) <= max_len + 1:
        seen.add(tuple(base))
        paths.append(tuple(_as_name(a) for a in base))

    attempts = 0
    while len(paths) < count and attempts < count * 60:
        attempts += 1
        walk = [vantage]
        visited = {vantage}
        ok = False
        while len(walk) <= max_len:
            here = walk[-1]
            if here == origin:
                ok = True
                break
            neighbors = [n for n in graph.neighbors(here) if n not in visited]
            if not neighbors:
                break
            # Bias: with probability 0.6 step along a shortest path.
            if rng.random() < 0.6:
                try:
                    nxt = nx.shortest_path(graph, here, origin)[1]
                    if nxt in visited:
                        nxt = rng.choice(neighbors)
                except (nx.NetworkXNoPath, IndexError):
                    nxt = rng.choice(neighbors)
            else:
                nxt = rng.choice(neighbors)
            walk.append(nxt)
            visited.add(nxt)
        if ok and walk[-1] == origin:
            key = tuple(walk)
            if key not in seen and len(walk) >= 2:
                seen.add(key)
                paths.append(tuple(_as_name(a) for a in walk))
    return paths


def generate_rib(config: RibConfig) -> List[PrefixRoutes]:
    """Synthesize per-prefix ranked routes.

    The primary is the first (shortest) path; backup preference order is
    randomized, as in the paper's setup.
    """
    rng = random.Random(config.seed)
    graph = generate_as_graph(config)
    nodes = list(graph.nodes())
    vantage = max(nodes, key=graph.degree)  # the route collector peer
    routes: List[PrefixRoutes] = []
    prefix_index = 0
    guard = 0
    while len(routes) < config.prefixes and guard < config.prefixes * 20:
        guard += 1
        origin = rng.choice(nodes)
        if origin == vantage:
            continue
        paths = _sample_paths(
            graph,
            origin,
            vantage,
            config.paths_per_prefix,
            config.max_path_len,
            rng,
        )
        if not paths:
            continue
        primary, backups = paths[0], paths[1:]
        rng.shuffle(backups)
        a = (prefix_index >> 16) & 0xFF
        b = (prefix_index >> 8) & 0xFF
        c = prefix_index & 0xFF
        prefix = f"10.{a}.{b}.{c}/24"
        prefix_index += 1
        routes.append(PrefixRoutes(prefix=prefix, paths=(primary, *backups)))
    return routes


def dump_rib(routes: Iterable[PrefixRoutes]) -> str:
    """Serialize to the textual dump format ``prefix|A B C|A D C|...``."""
    lines = []
    for route in routes:
        cells = [route.prefix] + [" ".join(path) for path in route.paths]
        lines.append("|".join(cells))
    return "\n".join(lines) + "\n"


def parse_rib(text: str) -> List[PrefixRoutes]:
    """Parse the dump format back into ranked routes."""
    routes: List[PrefixRoutes] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        cells = line.split("|")
        if len(cells) < 2:
            raise ValueError(f"line {lineno}: expected 'prefix|path|...', got {line!r}")
        prefix = cells[0].strip()
        paths = tuple(tuple(cell.split()) for cell in cells[1:] if cell.strip())
        routes.append(PrefixRoutes(prefix=prefix, paths=paths))
    return routes
