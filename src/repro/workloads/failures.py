"""Failure-pattern workload families for the reachability benches.

Listing 2 demonstrates three pattern shapes; this module generalizes
them into parameterized families over any set of link-state c-variables:

* :func:`exactly_k_failures` — q6's shape (`k` of `n` links down);
* :func:`must_include_failure` — q7's shape (a designated link down,
  composed with another pattern);
* :func:`at_least_k_failures` — q8's shape.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..ctable.condition import Condition, LinearAtom, conjoin, eq
from ..ctable.terms import CVariable

__all__ = [
    "exactly_k_failures",
    "at_least_k_failures",
    "at_most_k_failures",
    "must_include_failure",
    "all_up",
]


def _vars(variables: Iterable[CVariable]) -> List[CVariable]:
    out = list(variables)
    if not out:
        raise ValueError("no link-state variables given")
    return out


def exactly_k_failures(variables: Iterable[CVariable], k: int) -> Condition:
    """Exactly ``k`` of the links are down (sum of up-states = n - k)."""
    vs = _vars(variables)
    if not 0 <= k <= len(vs):
        raise ValueError(f"k={k} out of range for {len(vs)} links")
    return LinearAtom(vs, "=", len(vs) - k)


def at_least_k_failures(variables: Iterable[CVariable], k: int) -> Condition:
    """At least ``k`` links down (sum of up-states <= n - k)."""
    vs = _vars(variables)
    if not 0 <= k <= len(vs):
        raise ValueError(f"k={k} out of range for {len(vs)} links")
    return LinearAtom(vs, "<=", len(vs) - k)


def at_most_k_failures(variables: Iterable[CVariable], k: int) -> Condition:
    """At most ``k`` links down (sum of up-states >= n - k)."""
    vs = _vars(variables)
    if not 0 <= k <= len(vs):
        raise ValueError(f"k={k} out of range for {len(vs)} links")
    return LinearAtom(vs, ">=", len(vs) - k)


def must_include_failure(pattern: Condition, failed: CVariable) -> Condition:
    """Compose a pattern with "this particular link is down" (q7 shape)."""
    return conjoin([pattern, eq(failed, 0)])


def all_up(variables: Iterable[CVariable]) -> Condition:
    """The no-failure world."""
    return conjoin([eq(v, 1) for v in _vars(variables)])
