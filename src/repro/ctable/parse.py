"""Shared textual syntax for terms and conditions.

Both the mini-SQL front-end and the fauré-log parser need to read terms
of the c-domain and boolean conditions over them.  The surface syntax:

* ``$x`` — a c-variable (the paper's overbarred x̄);
* ``x`` (lowercase identifier) — resolved by the host parser: a program
  variable in fauré-log, a column reference in SQL;
* ``Mkt``, ``CS`` (capitalized identifiers), quoted strings, numbers —
  constants; dotted/slashed number-led tokens (``1.2.3.4``,
  ``10.0.0.0/8``) are string constants (addresses, prefixes);
* ``[A B C]`` — a tuple constant (an AS path, as in the paper's Table 2);
* conditions — comparisons ``t1 op t2`` with ``op`` in
  ``= == != <> < <= > >=``, linear sums ``$x + $y + $z = 1``, composed
  with ``AND``/``,``, ``OR``, ``NOT``, and parentheses.

The host parser supplies ``resolve_ident`` to decide what a lowercase
identifier means, which is the only point where the two dialects differ.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from .condition import Comparison, Condition, LinearAtom, conjoin, disjoin
from .terms import Constant, CVariable, Term, Variable

__all__ = [
    "Token",
    "tokenize",
    "TokenStream",
    "parse_term",
    "parse_condition",
    "ParseError",
    "Span",
    "line_col",
]


def line_col(text: str, position: int) -> Tuple[int, int]:
    """1-based (line, column) of a character offset into ``text``."""
    if position < 0:
        return (1, 1)
    position = min(position, len(text))
    line = text.count("\n", 0, position) + 1
    last_nl = text.rfind("\n", 0, position)
    return (line, position - last_nl)


@dataclass(frozen=True)
class Span:
    """A half-open source region, 1-based lines and columns.

    ``end_line``/``end_col`` point one past the last character, so a
    zero-width span has ``col == end_col``.
    """

    line: int
    col: int
    end_line: int
    end_col: int

    @classmethod
    def from_offsets(cls, text: str, start: int, end: int) -> "Span":
        sl, sc = line_col(text, start)
        el, ec = line_col(text, end)
        return cls(sl, sc, el, ec)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both."""
        if other is None:
            return self
        start = min((self.line, self.col), (other.line, other.col))
        end = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return Span(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class ParseError(ValueError):
    """Syntax error with position information (line:col when known)."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        context = ""
        self.line: Optional[int] = None
        self.col: Optional[int] = None
        if position >= 0 and text:
            self.line, self.col = line_col(text, position)
            snippet = text[max(0, position - 20):position + 20]
            context = f" at line {self.line}, column {self.col} near ...{snippet!r}..."
        super().__init__(f"{message}{context}")
        self.position = position


#: (kind, value, position)
Token = Tuple[str, str, int]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<cvar>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<addr>\d[\w.:/-]*[./:][\w.:/-]+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_&-]*)
  | (?P<op><=|>=|==|!=|<>|:-|[=<>+\-*(),\[\].¬!:])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT"}


def tokenize(text: str) -> List[Token]:
    """Tokenize; comments (% to end of line) and whitespace are dropped."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
        kind = match.lastgroup
        value = match.group()
        if kind not in ("ws", "comment"):
            if kind == "ident" and value.upper() in _KEYWORDS:
                tokens.append(("kw", value.upper(), pos))
            elif kind == "addr" and re.fullmatch(r"\d+\.\d+", value):
                tokens.append(("number", value, pos))  # plain decimal
            else:
                tokens.append((kind, value, pos))
        pos = match.end()
    tokens.append(("eof", "", len(text)))
    return _merge_qualified_names(tokens)


def _merge_qualified_names(tokens: List[Token]) -> List[Token]:
    """Join strictly adjacent ``ident . ident`` into one dotted name.

    Qualified column references (``P.dest``) read as a single identifier;
    a rule-terminating period (``... Mkt.``) stays separate because the
    next token is not glued to the dot.
    """
    merged: List[Token] = []
    i = 0
    while i < len(tokens):
        kind, value, pos = tokens[i]
        if kind == "ident":
            while (
                i + 2 < len(tokens)
                and tokens[i + 1][:2] == ("op", ".")
                and tokens[i + 1][2] == pos + len(value)
                and tokens[i + 2][0] == "ident"
                and tokens[i + 2][2] == tokens[i + 1][2] + 1
            ):
                value = f"{value}.{tokens[i + 2][1]}"
                i += 2
            merged.append(("ident", value, pos))
        else:
            merged.append(tokens[i])
        i += 1
    return merged


class TokenStream:
    """Cursor over a token list with peek/expect helpers."""

    def __init__(self, tokens: List[Token], text: str = ""):
        self.tokens = tokens
        self.text = text
        self.index = 0
        #: End offset of the last consumed token (for span construction).
        self.last_end = 0

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.peek()
        if tok[0] != "eof":
            self.index += 1
            self.last_end = tok[2] + len(tok[1])
        return tok

    def span_from(self, start: int) -> Span:
        """Span from offset ``start`` to the end of the last consumed token."""
        return Span.from_offsets(self.text, start, max(start, self.last_end))

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok[0] == kind and (value is None or tok[1] == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value or kind
            raise ParseError(f"expected {want!r}, got {got[1]!r}", got[2], self.text)
        return tok

    @property
    def exhausted(self) -> bool:
        return self.peek()[0] == "eof"


#: Maps a lowercase identifier to a Term (host-dialect dependent).
IdentResolver = Callable[[str], Term]


def default_resolver(name: str) -> Term:
    """fauré-log convention: capitalized → constant, else program variable."""
    if name[0].isupper():
        return Constant(name)
    return Variable(name)


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def parse_term(stream: TokenStream, resolve_ident: IdentResolver = default_resolver) -> Term:
    """Parse one term of the c-domain (or a program variable)."""
    tok = stream.peek()
    kind, value, pos = tok
    if kind == "op" and value == "-":
        nxt = stream.peek(1)
        if nxt[0] == "number":
            stream.next()
            stream.next()
            num = float(nxt[1]) if "." in nxt[1] else int(nxt[1])
            return Constant(-num)
    if kind == "cvar":
        stream.next()
        return CVariable(value[1:])
    if kind == "string":
        stream.next()
        return Constant(_unquote(value))
    if kind == "addr":
        stream.next()
        return Constant(value)
    if kind == "number":
        stream.next()
        return Constant(float(value) if "." in value else int(value))
    if kind == "ident":
        stream.next()
        return resolve_ident(value)
    if kind == "op" and value == "[":
        stream.next()
        elements: List = []
        while not stream.accept("op", "]"):
            inner = stream.next()
            if inner[0] == "eof":
                raise ParseError("unterminated path literal", pos, stream.text)
            if inner[0] == "op" and inner[1] == ",":
                continue
            if inner[0] == "string":
                elements.append(_unquote(inner[1]))
            elif inner[0] == "number":
                elements.append(float(inner[1]) if "." in inner[1] else int(inner[1]))
            else:
                elements.append(inner[1])
        return Constant(tuple(elements))
    raise ParseError(f"expected a term, got {value!r}", pos, stream.text)


_OP_CANON = {"==": "=", "<>": "!="}
_CMP_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


def _parse_sum(
    stream: TokenStream, resolve_ident: IdentResolver
) -> List[Tuple[int, Term]]:
    """Parse ``term (+ term | - term)*`` as signed addends."""
    addends = [(1, parse_term(stream, resolve_ident))]
    while True:
        if stream.accept("op", "+"):
            addends.append((1, parse_term(stream, resolve_ident)))
        elif stream.peek()[:2] == ("op", "-"):
            stream.next()
            addends.append((-1, parse_term(stream, resolve_ident)))
        else:
            return addends


def _sum_to_condition(
    lhs: List[Tuple[int, Term]],
    op: str,
    rhs: List[Tuple[int, Term]],
    pos: int,
    text: str,
) -> Condition:
    """Build a Comparison (1 term vs 1 term) or LinearAtom (sums)."""
    op = _OP_CANON.get(op, op)
    if len(lhs) == 1 and len(rhs) == 1 and lhs[0][0] == 1 and rhs[0][0] == 1:
        return Comparison(lhs[0][1], op, rhs[0][1]).constant_fold()
    coeffs = {}
    shift = 0.0
    for sign, side in ((1, lhs), (-1, rhs)):
        for addend_sign, term in side:
            total_sign = sign * addend_sign
            if isinstance(term, CVariable):
                coeffs[term] = coeffs.get(term, 0) + total_sign
            elif isinstance(term, Constant) and isinstance(term.value, (int, float)):
                shift += total_sign * term.value
            else:
                raise ParseError(
                    f"linear atoms allow only numeric constants and c-variables, got {term}",
                    pos,
                    text,
                )
    # coeffs (lhs - rhs variables)  op  -shift
    bound = -shift
    if isinstance(bound, float) and bound.is_integer():
        bound = int(bound)
    return LinearAtom(coeffs, op, bound)


def _parse_atom(stream: TokenStream, resolve_ident: IdentResolver) -> Condition:
    if stream.accept("op", "("):
        inner = _parse_or(stream, resolve_ident)
        stream.expect("op", ")")
        return inner
    if stream.accept("kw", "NOT") or stream.accept("op", "¬") or stream.accept("op", "!"):
        return _parse_atom(stream, resolve_ident).negate()
    pos = stream.peek()[2]
    lhs = _parse_sum(stream, resolve_ident)
    tok = stream.peek()
    if tok[0] == "op" and tok[1] in _CMP_OPS:
        stream.next()
        rhs = _parse_sum(stream, resolve_ident)
        return _sum_to_condition(lhs, tok[1], rhs, pos, stream.text)
    raise ParseError(f"expected comparison operator, got {tok[1]!r}", tok[2], stream.text)


def _parse_and(stream: TokenStream, resolve_ident: IdentResolver) -> Condition:
    parts = [_parse_atom(stream, resolve_ident)]
    while stream.accept("kw", "AND"):
        parts.append(_parse_atom(stream, resolve_ident))
    return conjoin(parts)


def _parse_or(stream: TokenStream, resolve_ident: IdentResolver) -> Condition:
    parts = [_parse_and(stream, resolve_ident)]
    while stream.accept("kw", "OR"):
        parts.append(_parse_and(stream, resolve_ident))
    return disjoin(parts)


def parse_condition(
    text_or_stream: Union[str, TokenStream],
    resolve_ident: IdentResolver = default_resolver,
) -> Condition:
    """Parse a condition expression.

    When given a string the whole input must be consumed; when given a
    stream, parsing stops at the first token that cannot extend the
    condition (so hosts can embed conditions in larger grammars).
    """
    if isinstance(text_or_stream, str):
        stream = TokenStream(tokenize(text_or_stream), text_or_stream)
        cond = _parse_or(stream, resolve_ident)
        if not stream.exhausted:
            tok = stream.peek()
            raise ParseError(f"trailing input {tok[1]!r}", tok[2], text_or_stream)
        return cond
    return _parse_or(text_or_stream, resolve_ident)
