"""C-tables: the incomplete-information data model at fauré's core.

Exposes terms of the c-domain (:class:`Constant`, :class:`CVariable`,
:class:`Variable`), the condition language, conditional tuples/tables,
and the possible-worlds semantics that grounds the loss-less-modeling
claim.
"""

from .condition import (
    And,
    Comparison,
    Condition,
    FALSE,
    LinearAtom,
    Not,
    Or,
    TRUE,
    conjoin,
    disjoin,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from .io import dump_database, load_database
from .table import CTable, CTuple, Database, Schema
from .terms import Constant, CVariable, Term, Variable, as_term, constant, cvar, var
from .worlds import (
    certain_rows,
    instantiate_database,
    instantiate_table,
    instantiate_tuple,
    iter_assignments,
    iter_worlds,
    possible_rows,
    world_count,
)

__all__ = [
    "And",
    "Comparison",
    "Condition",
    "FALSE",
    "LinearAtom",
    "Not",
    "Or",
    "TRUE",
    "conjoin",
    "disjoin",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "CTable",
    "CTuple",
    "Database",
    "Schema",
    "dump_database",
    "load_database",
    "Constant",
    "CVariable",
    "Term",
    "Variable",
    "as_term",
    "constant",
    "cvar",
    "var",
    "certain_rows",
    "instantiate_database",
    "instantiate_table",
    "instantiate_tuple",
    "iter_assignments",
    "iter_worlds",
    "possible_rows",
    "world_count",
]
