"""Conditional tables (c-tables) — fauré's data model.

A c-table (paper, §3; Imieliński–Lipski) is a relation whose entries may
be c-variables and whose tuples each carry a *condition* restricting the
assignments under which the tuple exists.  One c-table therefore stands
for a whole set of regular relations — one per satisfying assignment —
which is exactly how fauré models an uncertain network in a single
structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .condition import Condition, TRUE, conjoin
from .terms import Constant, CVariable, SlotPickleMixin, Term, as_term

__all__ = ["CTuple", "CTable", "Schema", "Database"]

#: Attribute names of a relation, in order.
Schema = Tuple[str, ...]


class CTuple(SlotPickleMixin):
    """One conditional tuple: a row of c-domain terms plus a condition."""

    __slots__ = ("values", "condition")

    def __init__(self, values: Sequence, condition: Condition = TRUE):
        vals = tuple(as_term(v) for v in values)
        for v in vals:
            if v.is_variable:
                raise ValueError(f"program variable {v} cannot be stored in a c-table")
        if not isinstance(condition, Condition):
            raise TypeError(f"condition must be a Condition, got {condition!r}")
        object.__setattr__(self, "values", vals)
        object.__setattr__(self, "condition", condition)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("CTuple is immutable")

    @property
    def arity(self) -> int:
        return len(self.values)

    @property
    def is_certain(self) -> bool:
        """True when the tuple has no c-variables and an empty condition."""
        return isinstance(self.condition, type(TRUE)) and all(
            v.is_constant for v in self.values
        )

    def cvariables(self) -> FrozenSet[CVariable]:
        """C-variables in the data part and in the condition."""
        out = {v for v in self.values if isinstance(v, CVariable)}
        return frozenset(out) | self.condition.cvariables()

    def with_condition(self, condition: Condition) -> "CTuple":
        """Same data part under a different condition."""
        return CTuple(self.values, condition)

    def and_condition(self, extra: Condition) -> "CTuple":
        """Conjoin an extra condition onto this tuple."""
        return CTuple(self.values, conjoin([self.condition, extra]))

    def substitute(self, mapping) -> "CTuple":
        """Apply a c-variable substitution to data part and condition."""
        values = [mapping.get(v, v) if isinstance(v, CVariable) else v for v in self.values]
        return CTuple(values, self.condition.substitute(mapping))

    def data_key(self) -> Tuple[Term, ...]:
        """Hashable key of the data part (ignoring the condition)."""
        return self.values

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CTuple)
            and self.values == other.values
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash((self.values, self.condition))

    def __repr__(self) -> str:
        return f"CTuple({list(self.values)!r}, {self.condition!r})"

    def __str__(self) -> str:
        data = ", ".join(str(v) for v in self.values)
        if isinstance(self.condition, type(TRUE)):
            return f"({data})"
        return f"({data})[{self.condition}]"


class CTable:
    """A named c-table: schema + conditional tuples.

    Insertion order is preserved; duplicate (data, condition) pairs are
    collapsed.  The table is mutable (it is the storage unit of the
    engine) but its tuples are immutable.
    """

    def __init__(self, name: str, schema: Sequence[str], tuples: Optional[Iterable] = None):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema: Schema = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise ValueError(f"duplicate attribute names in schema {self.schema}")
        self._tuples: List[CTuple] = []
        self._seen: set = set()
        if tuples:
            for t in tuples:
                self.add(t)

    @property
    def arity(self) -> int:
        return len(self.schema)

    def add(self, row, condition: Condition = TRUE) -> bool:
        """Add a tuple; returns False when an identical tuple existed.

        ``row`` may be a :class:`CTuple` (then ``condition`` must be left
        at the default) or a sequence of values.
        """
        if isinstance(row, CTuple):
            if condition is not TRUE:
                raise ValueError("pass the condition inside the CTuple")
            tup = row
        else:
            tup = CTuple(row, condition)
        if tup.arity != self.arity:
            raise ValueError(
                f"arity mismatch for {self.name}: expected {self.arity}, got {tup.arity}"
            )
        if tup in self._seen:
            return False
        self._seen.add(tup)
        self._tuples.append(tup)
        return True

    def extend(self, rows: Iterable) -> None:
        for row in rows:
            self.add(row)

    def tuples(self) -> Tuple[CTuple, ...]:
        return tuple(self._tuples)

    def cvariables(self) -> FrozenSet[CVariable]:
        out: set = set()
        for t in self._tuples:
            out |= t.cvariables()
        return frozenset(out)

    def is_regular(self) -> bool:
        """True when this is an ordinary relation (no partial information)."""
        return all(t.is_certain for t in self._tuples)

    def data_parts(self) -> FrozenSet[Tuple[Term, ...]]:
        return frozenset(t.data_key() for t in self._tuples)

    def copy(self, name: Optional[str] = None) -> "CTable":
        clone = CTable(name or self.name, self.schema)
        clone._tuples = list(self._tuples)
        clone._seen = set(self._seen)
        return clone

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.schema.index(attribute)
        except ValueError:
            raise KeyError(f"{self.name} has no attribute {attribute!r}") from None

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[CTuple]:
        return iter(self._tuples)

    def __contains__(self, tup: CTuple) -> bool:
        return tup in self._seen

    def __repr__(self) -> str:
        return f"CTable({self.name!r}, {list(self.schema)!r}, {len(self)} tuples)"

    def pretty(self, max_rows: Optional[int] = 30) -> str:
        """Render in the paper's Table 2/3 layout (condition column last)."""
        headers = list(self.schema) + ["condition"]
        rows = []
        shown = self._tuples if max_rows is None else self._tuples[:max_rows]
        for t in shown:
            cond = "" if isinstance(t.condition, type(TRUE)) else str(t.condition)
            rows.append([str(v) for v in t.values] + [cond])
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.name]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if max_rows is not None and len(self._tuples) > max_rows:
            lines.append(f"... ({len(self._tuples) - max_rows} more)")
        return "\n".join(lines)


class Database:
    """A named collection of c-tables (e.g. PATH' = {P^i, C})."""

    def __init__(self, tables: Optional[Iterable[CTable]] = None):
        self._tables: Dict[str, CTable] = {}
        if tables:
            for t in tables:
                self.add_table(t)

    def add_table(self, table: CTable) -> None:
        if table.name in self._tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def create_table(self, name: str, schema: Sequence[str]) -> CTable:
        table = CTable(name, schema)
        self.add_table(table)
        return table

    def table(self, name: str) -> CTable:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)

    def replace_table(self, table: CTable) -> None:
        self._tables[table.name] = table

    def names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def cvariables(self) -> FrozenSet[CVariable]:
        out: set = set()
        for t in self._tables.values():
            out |= t.cvariables()
        return frozenset(out)

    def copy(self) -> "Database":
        return Database(t.copy() for t in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[CTable]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"Database({list(self._tables)!r})"
