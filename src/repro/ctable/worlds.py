"""Possible-worlds semantics of c-tables.

A c-table T together with domain declarations for its c-variables
represents the set of regular relations ``rep(T) = { world(T, v) | v a
total assignment }`` — each assignment instantiates the c-variables and
keeps exactly the tuples whose conditions hold.  This module implements
that semantics directly; it is the ground-truth oracle against which the
loss-less-modeling claim (§4) is tested: any fauré-log query answered on
the c-table must coincide with answering it in every possible world.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..solver.domains import DomainMap
from .condition import Condition, TRUE
from .table import CTable, CTuple, Database
from .terms import Constant, CVariable, Term

__all__ = [
    "instantiate_tuple",
    "instantiate_table",
    "instantiate_database",
    "iter_assignments",
    "iter_worlds",
    "world_count",
    "certain_rows",
    "possible_rows",
]

Assignment = Mapping[CVariable, Constant]
Row = Tuple[Constant, ...]


def instantiate_tuple(tup: CTuple, assignment: Assignment) -> Optional[Row]:
    """The regular row this tuple denotes under ``assignment``.

    Returns ``None`` when the tuple's condition is false (the tuple does
    not exist in that world).  Every c-variable of the tuple must be
    assigned.
    """
    if not tup.condition.evaluate(assignment):
        return None
    row: List[Constant] = []
    for v in tup.values:
        if isinstance(v, CVariable):
            row.append(assignment[v])
        else:
            row.append(v)  # type: ignore[arg-type]
    return tuple(row)


def instantiate_table(table: CTable, assignment: Assignment) -> FrozenSet[Row]:
    """The regular relation (set of rows) in the world of ``assignment``."""
    rows = set()
    for tup in table:
        row = instantiate_tuple(tup, assignment)
        if row is not None:
            rows.add(row)
    return frozenset(rows)


def instantiate_database(db: Database, assignment: Assignment) -> Dict[str, FrozenSet[Row]]:
    """Instantiate every table of a database under one assignment."""
    return {t.name: instantiate_table(t, assignment) for t in db}


def iter_assignments(
    cvariables: Sequence[CVariable],
    domains: DomainMap,
) -> Iterator[Dict[CVariable, Constant]]:
    """All total assignments of the given c-variables (finite domains)."""
    cvars = sorted(set(cvariables), key=lambda v: v.name)
    value_lists = []
    for v in cvars:
        dom = domains.domain_of(v)
        if not dom.is_finite:
            raise ValueError(f"cannot enumerate worlds: {v.name} is unbounded")
        value_lists.append(dom.values())
    for combo in product(*value_lists):
        yield dict(zip(cvars, combo))


def iter_worlds(
    db: Database,
    domains: DomainMap,
) -> Iterator[Tuple[Dict[CVariable, Constant], Dict[str, FrozenSet[Row]]]]:
    """Enumerate (assignment, instantiated database) pairs."""
    cvars = sorted(db.cvariables(), key=lambda v: v.name)
    for assignment in iter_assignments(cvars, domains):
        yield assignment, instantiate_database(db, assignment)


def world_count(db: Database, domains: DomainMap) -> int:
    """Number of possible worlds (product of domain sizes)."""
    size = domains.enumeration_size(db.cvariables())
    if size is None:
        raise ValueError("database has c-variables over unbounded domains")
    return size


def certain_rows(table: CTable, domains: DomainMap) -> FrozenSet[Row]:
    """Rows present in *every* possible world of the table."""
    cvars = sorted(table.cvariables(), key=lambda v: v.name)
    result: Optional[set] = None
    for assignment in iter_assignments(cvars, domains):
        rows = set(instantiate_table(table, assignment))
        result = rows if result is None else result & rows
        if not result:
            break
    return frozenset(result or set())


def possible_rows(table: CTable, domains: DomainMap) -> FrozenSet[Row]:
    """Rows present in *some* possible world of the table."""
    cvars = sorted(table.cvariables(), key=lambda v: v.name)
    result: set = set()
    for assignment in iter_assignments(cvars, domains):
        result |= instantiate_table(table, assignment)
    return frozenset(result)
