"""Terms of the c-domain.

The c-domain ``dom^C`` (paper, §3) extends the usual attribute domain of
constants with *c-variables*: named placeholders for values that exist in
the network but are currently unknown.  A third kind of term, the
*program variable*, never appears inside a c-table; it only occurs in
fauré-log rules and is eliminated by valuation.

Terms are immutable and interned-friendly: equality and hashing are by
(kind, payload), so they can be used freely as dict keys and in sets.
"""

from __future__ import annotations

import re
from typing import Iterable, Union

__all__ = [
    "SlotPickleMixin",
    "Term",
    "Constant",
    "CVariable",
    "Variable",
    "Value",
    "as_term",
    "is_ground",
    "constant",
    "cvar",
    "var",
]

#: Python payloads a :class:`Constant` may wrap.
Value = Union[str, int, float, bool, tuple]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.&-]*$")


class SlotPickleMixin:
    """Pickle support for immutable ``__slots__`` classes.

    The immutable classes in this package block ``__setattr__``, which
    breaks pickle's default slot-state restoration (it calls ``setattr``).
    This mixin restores state through ``object.__setattr__`` instead, so
    terms, conditions, and tuples can cross process boundaries (the
    parallel execution layer ships them to worker processes).
    """

    __slots__ = ()

    def __getstate__(self):
        state = {}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                # Cached hash values are process-local (string hashing is
                # randomized per interpreter) and must never cross a
                # process boundary; cached cvariable sets just bloat the
                # payload.  The receiver recomputes both lazily.
                if name in ("_hash", "_cvars"):
                    continue
                state[name] = getattr(self, name)
        return state

    def __setstate__(self, state) -> None:
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                object.__setattr__(self, name, state.get(name))


class Term(SlotPickleMixin):
    """Base class for every member of the c-domain plus program variables."""

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_cvariable(self) -> bool:
        return isinstance(self, CVariable)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)


class Constant(Term):
    """A known value: string, number, boolean, or a tuple of values.

    Tuples model list-like attributes such as the AS paths ``[ABC]`` in
    the paper's Table 2.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Value):
        if isinstance(value, Constant):
            value = value.value
        if isinstance(value, list):
            value = tuple(value)
        if not isinstance(value, (str, int, float, bool, tuple)):
            raise TypeError(f"unsupported constant payload: {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Constant is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("const", self.value))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, tuple):
            return "[" + " ".join(str(v) for v in self.value) + "]"
        return str(self.value)


class CVariable(Term):
    """An unknown-but-existing value in a c-table (written x̄ in the paper).

    A c-variable is identified purely by its name; its legal values are
    declared separately in a :class:`repro.solver.domains.DomainMap`.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(f"invalid c-variable name: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("CVariable is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, CVariable) and self.name == other.name

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("cvar", self.name))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"CVariable({self.name!r})"

    def __str__(self) -> str:
        return f"{self.name}̄"  # combining macron, matching x̄


class Variable(Term):
    """A fauré-log program variable (plain x, y, z in the paper).

    Program variables are placeholders eliminated by valuation; they never
    appear inside a stored c-table.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(f"invalid variable name: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Variable is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("var", self.name))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


def constant(value: Value) -> Constant:
    """Shorthand constructor for :class:`Constant`."""
    return Constant(value)


def cvar(name: str) -> CVariable:
    """Shorthand constructor for :class:`CVariable`."""
    return CVariable(name)


def var(name: str) -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(name)


def as_term(value) -> Term:
    """Coerce a raw Python value (or a Term) into a :class:`Term`.

    Raw strings/numbers/tuples become constants.  Terms pass through.
    """
    if isinstance(value, Term):
        return value
    return Constant(value)


def is_ground(terms: Iterable[Term]) -> bool:
    """True when no program variable occurs among ``terms``."""
    return all(not t.is_variable for t in terms)
