"""Serialization of c-table databases and domain maps.

A small, explicit JSON encoding so partial network states can be saved,
shipped, and reloaded (the CLI's interchange format).  Every node is
typed — ``{"const": ...}``, ``{"cvar": "x"}`` — so the reader never has
to guess whether ``"x"`` was a string or a variable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..solver.domains import Domain, DomainMap, FiniteDomain, IntRange, Unbounded
from .condition import (
    And,
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    LinearAtom,
    Not,
    Or,
    TRUE,
    TrueCond,
)
from .table import CTable, CTuple, Database
from .terms import Constant, CVariable, Term

__all__ = [
    "term_to_obj",
    "term_from_obj",
    "condition_to_obj",
    "condition_from_obj",
    "database_to_obj",
    "database_from_obj",
    "domains_to_obj",
    "domains_from_obj",
    "dump_database",
    "load_database",
]


def term_to_obj(term: Term) -> Any:
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, tuple):
            return {"const": {"tuple": list(value)}}
        return {"const": value}
    if isinstance(term, CVariable):
        return {"cvar": term.name}
    raise TypeError(f"cannot serialize term {term!r}")


def term_from_obj(obj: Any) -> Term:
    if not isinstance(obj, dict) or len(obj) != 1:
        raise ValueError(f"malformed term object {obj!r}")
    if "const" in obj:
        value = obj["const"]
        if isinstance(value, dict) and "tuple" in value:
            return Constant(tuple(value["tuple"]))
        return Constant(value)
    if "cvar" in obj:
        return CVariable(obj["cvar"])
    raise ValueError(f"malformed term object {obj!r}")


def condition_to_obj(condition: Condition) -> Any:
    if isinstance(condition, TrueCond):
        return {"true": True}
    if isinstance(condition, FalseCond):
        return {"false": True}
    if isinstance(condition, Comparison):
        return {
            "cmp": {
                "lhs": term_to_obj(condition.lhs),
                "op": condition.op,
                "rhs": term_to_obj(condition.rhs),
            }
        }
    if isinstance(condition, LinearAtom):
        return {
            "linear": {
                "coeffs": [[v.name, c] for v, c in condition.coeffs],
                "op": condition.op,
                "bound": condition.bound,
            }
        }
    if isinstance(condition, And):
        return {"and": [condition_to_obj(c) for c in condition.children]}
    if isinstance(condition, Or):
        return {"or": [condition_to_obj(c) for c in condition.children]}
    if isinstance(condition, Not):
        return {"not": condition_to_obj(condition.child)}
    raise TypeError(f"cannot serialize condition {condition!r}")


def condition_from_obj(obj: Any) -> Condition:
    if not isinstance(obj, dict) or len(obj) != 1:
        raise ValueError(f"malformed condition object {obj!r}")
    (kind, payload), = obj.items()
    if kind == "true":
        return TRUE
    if kind == "false":
        return FALSE
    if kind == "cmp":
        return Comparison(
            term_from_obj(payload["lhs"]), payload["op"], term_from_obj(payload["rhs"])
        )
    if kind == "linear":
        coeffs = {CVariable(name): c for name, c in payload["coeffs"]}
        return LinearAtom(coeffs, payload["op"], payload["bound"])
    if kind == "and":
        return And([condition_from_obj(c) for c in payload])
    if kind == "or":
        return Or([condition_from_obj(c) for c in payload])
    if kind == "not":
        return Not(condition_from_obj(payload))
    raise ValueError(f"unknown condition kind {kind!r}")


def database_to_obj(db: Database) -> Dict[str, Any]:
    tables = []
    for table in db:
        rows = []
        for tup in table:
            row: Dict[str, Any] = {"values": [term_to_obj(v) for v in tup.values]}
            if not isinstance(tup.condition, TrueCond):
                row["condition"] = condition_to_obj(tup.condition)
            rows.append(row)
        tables.append({"name": table.name, "schema": list(table.schema), "rows": rows})
    return {"tables": tables}


def database_from_obj(obj: Dict[str, Any]) -> Database:
    db = Database()
    for table_obj in obj.get("tables", []):
        table = db.create_table(table_obj["name"], table_obj["schema"])
        for row in table_obj.get("rows", []):
            values = [term_from_obj(v) for v in row["values"]]
            condition = (
                condition_from_obj(row["condition"]) if "condition" in row else TRUE
            )
            table.add(values, condition)
    return db


def _domain_to_obj(domain: Domain) -> Any:
    if isinstance(domain, FiniteDomain):
        values = []
        for c in domain.values():
            values.append({"tuple": list(c.value)} if isinstance(c.value, tuple) else c.value)
        return {"finite": values}
    if isinstance(domain, IntRange):
        return {"range": [domain.lo, domain.hi]}
    if isinstance(domain, Unbounded):
        return {"unbounded": domain.kind}
    raise TypeError(f"cannot serialize domain {domain!r}")


def _domain_from_obj(obj: Any) -> Domain:
    (kind, payload), = obj.items()
    if kind == "finite":
        values = [tuple(v["tuple"]) if isinstance(v, dict) else v for v in payload]
        return FiniteDomain(values)
    if kind == "range":
        return IntRange(payload[0], payload[1])
    if kind == "unbounded":
        return Unbounded(payload)
    raise ValueError(f"unknown domain kind {kind!r}")


def domains_to_obj(domains: DomainMap) -> Dict[str, Any]:
    return {
        "domains": {
            var.name: _domain_to_obj(domains.domain_of(var))
            for var in sorted(domains.declared(), key=lambda v: v.name)
        }
    }


def domains_from_obj(obj: Dict[str, Any]) -> DomainMap:
    domains = DomainMap()
    for name, dom_obj in obj.get("domains", {}).items():
        domains.declare(name, _domain_from_obj(dom_obj))
    return domains


def dump_database(db: Database, domains: DomainMap | None = None, indent: int = 2) -> str:
    """JSON text of a database (and optional domain declarations)."""
    obj = database_to_obj(db)
    if domains is not None:
        obj.update(domains_to_obj(domains))
    return json.dumps(obj, indent=indent)


def load_database(text: str) -> tuple:
    """Parse JSON text back into (Database, DomainMap)."""
    obj = json.loads(text)
    return database_from_obj(obj), domains_from_obj(obj)
